"""Quickstart: route and sort on a simulated congested clique.

Run:  python examples/quickstart.py
"""

from repro import (
    route_lenzen,
    sort_lenzen,
    uniform_instance,
    uniform_sort_instance,
    verify_delivery,
    verify_sorted_batches,
)


def main() -> None:
    n = 25

    # --- Routing (Problem 3.1 / Theorem 3.7) ---------------------------
    # Every node is source and destination of n messages; the deterministic
    # algorithm delivers them all in at most 16 rounds, no matter how
    # adversarial the demand pattern is.
    instance = uniform_instance(n, seed=42)
    result = route_lenzen(instance)
    verify_delivery(instance, result.outputs)
    print(f"routing : n={n}, {n * n} messages delivered "
          f"in {result.rounds} rounds (paper bound: 16)")
    print(f"          per-phase budget: {result.phase_table()}")

    # --- Sorting (Problem 4.1 / Theorem 4.5) ----------------------------
    # Every node holds n keys; afterwards node i holds the i-th batch of
    # the global sorted order.  37 rounds, deterministically.
    sort_instance = uniform_sort_instance(n, seed=42)
    sort_result = sort_lenzen(sort_instance)
    verify_sorted_batches(sort_instance, sort_result.outputs)
    print(f"sorting : n={n}, {n * n} keys sorted "
          f"in {sort_result.rounds} rounds (paper bound: 37)")

    # Node 0 now holds the smallest batch:
    codec = sort_instance.codec
    batch0 = [codec.raw(t) for t in sort_result.outputs[0][:8]]
    print(f"          node 0's smallest keys: {batch0} ...")


if __name__ == "__main__":
    main()
