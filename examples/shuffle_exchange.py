"""All-to-all data shuffle — the workload behind distributed joins.

A "shuffle" (as in MapReduce / distributed hash joins) is exactly the
Information Distribution Task: every worker holds n records it must
repartition by hash to n workers.  With skewed key distributions some
worker pairs carry far more records than others, which cripples naive
direct exchange; Lenzen routing is oblivious to skew.

Run:  python examples/shuffle_exchange.py
"""

import random

from repro import (
    Message,
    RoutingInstance,
    route_lenzen,
    route_naive,
    route_valiant,
    verify_delivery,
)


def build_skewed_shuffle(n: int, seed: int) -> RoutingInstance:
    """Each worker repartitions n records; the key distribution is heavily
    skewed: three quarters of every worker's records hash to one hot
    partition (its successor), the rest spread uniformly.  Per-worker totals
    stay exactly n on both sides, as after range partitioning.
    """
    rng = random.Random(seed)
    hot = 3 * n // 4
    dests = [[(i + 1) % n] * hot for i in range(n)]
    # The remaining quarter: balanced random permutations.
    for _ in range(n - hot):
        perm = list(range(n))
        rng.shuffle(perm)
        for i in range(n):
            dests[i].append(perm[i])
    messages = [
        [
            Message(source=i, dest=d, seq=j, payload=rng.randrange(n * n))
            for j, d in enumerate(dests[i])
        ]
        for i in range(n)
    ]
    return RoutingInstance(n, messages)


def main() -> None:
    n = 36
    shuffle = build_skewed_shuffle(n, seed=7)
    demand = shuffle.demand_matrix()
    heaviest = max(max(row) for row in demand)
    print(f"shuffle: n={n} workers, {n * n} records, "
          f"heaviest worker pair carries {heaviest} records")

    naive = route_naive(shuffle)
    verify_delivery(shuffle, naive.outputs)
    print(f"  naive direct exchange : {naive.rounds} rounds "
          f"(= heaviest pair)")

    valiant = route_valiant(shuffle, seed=1)
    verify_delivery(shuffle, valiant.outputs)
    print(f"  randomized two-phase  : {valiant.rounds} rounds (w.h.p.)")

    lenzen = route_lenzen(shuffle)
    verify_delivery(shuffle, lenzen.outputs)
    print(f"  Lenzen deterministic  : {lenzen.rounds} rounds "
          f"(worst-case guarantee)")


if __name__ == "__main__":
    main()
