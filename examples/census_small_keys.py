"""Census with tiny keys: Section 6.3's 2-round counting sort.

100 precinct servers each tally votes over a handful of candidate ids —
keys of just a few bits.  Instead of the general 37-round sort, the
committee scheme of Section 6.3 orders *all* ballots in 2 rounds using
messages of 1-2 bits: committees of nodes aggregate the per-candidate
multiplicities bitwise.

Run:  python examples/census_small_keys.py
"""

import random

from repro.extensions import sort_small_keys


def main() -> None:
    n = 100            # precinct servers
    candidates = 4     # distinct keys — o(log n) bits
    max_votes = 7      # per-precinct cap per candidate (3 bits)

    rng = random.Random(2024)
    tallies = [
        [rng.randint(0, max_votes) for _ in range(candidates)]
        for _ in range(n)
    ]

    res = sort_small_keys(n, tallies, candidates, max_votes)
    totals = res.outputs[0]["totals"]
    print(f"{sum(totals)} ballots across {n} precincts ordered in "
          f"{res.rounds} rounds (general sorting: 37 rounds)")
    for c, t in enumerate(totals):
        print(f"  candidate {c}: {t} votes")

    # every precinct can place each of its own ballots in the global order:
    precinct = 42
    ranks = res.outputs[precinct]["ranks"]
    first = {c: rr[0] for c, rr in ranks.items() if rr}
    print(f"precinct {precinct}'s first ballot per candidate has global "
          f"rank: {first}")

    # sanity: all nodes agree on the totals
    assert all(res.outputs[v]["totals"] == totals for v in range(n))


if __name__ == "__main__":
    main()
