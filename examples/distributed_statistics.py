"""Distributed order statistics over sharded measurements.

n sensor aggregators each hold n latency samples.  Constant-round
congested-clique sorting answers global questions no aggregator could
answer locally: exact median, tail percentiles, the most common reading
(mode), and every sample's global rank.

Run:  python examples/distributed_statistics.py
"""

import random

from repro import (
    SortInstance,
    index_keys,
    median,
    mode,
    select_kth,
    verify_indices,
)


def main() -> None:
    n = 16
    rng = random.Random(99)
    # latency samples in ms, quantized — duplicates are common.
    samples = [
        [min(199, max(0, int(rng.gauss(40, 25)))) for _ in range(n)]
        for _ in range(n)
    ]
    inst = SortInstance(n, samples, key_universe=200)
    flat = sorted(s for row in samples for s in row)
    total = len(flat)

    med = median(inst)
    print(f"median latency  : {med.outputs[0]} ms "
          f"({med.rounds} rounds; all {n} nodes agree: "
          f"{len(set(med.outputs)) == 1})")
    assert med.outputs[0] == flat[total // 2]

    p99 = select_kth(inst, int(total * 0.99))
    print(f"p99 latency     : {p99.outputs[0]} ms ({p99.rounds} rounds)")
    assert p99.outputs[0] == flat[int(total * 0.99)]

    common = mode(inst)
    value, count = common.outputs[0]
    print(f"mode            : {value} ms seen {count} times "
          f"({common.rounds} rounds)")

    ranks = index_keys(inst)
    verify_indices(inst, ranks.outputs)
    sample0, seq0 = samples[3][0], 0
    rank0 = ranks.outputs[3][(sample0, seq0)]
    print(f"indexing        : node 3's first sample ({sample0} ms) has "
          f"dedup rank {rank0} ({ranks.rounds} rounds)")


if __name__ == "__main__":
    main()
