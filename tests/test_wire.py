"""The columnar wire data plane: round-trips, batched validation, plans.

Property tests pin the two contracts ISSUE 2 demands of the data plane:

* columnar encode/decode is the identity on valid packet outboxes;
* batched validation accepts/rejects exactly what the canonical per-packet
  :func:`validate_packet` accepts/rejects, error types included.

Plus unit coverage for forward-by-reference regrouping, the header codec,
the plan cache, and the piggyback fast paths.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CapacityExceeded,
    Packet,
    PlanCache,
    WireBatch,
    WordSizeViolation,
    decode_columns,
    encode_outbox,
    fast_packet,
    header_codec,
    pack_triple,
    plan_cache,
    regroup_segments,
    unpack_triple,
    validate_columns,
    validate_packet,
)
from repro.core.errors import ProtocolError
from repro.core.protocol import attach_piggyback, strip_piggyback
from repro.core.wire import HeaderCodec

# ---------------------------------------------------------------------------
# columnar encode/decode round-trip


outbox_strategy = st.dictionaries(
    st.integers(0, 63),
    st.lists(st.integers(-10**9, 10**9), max_size=8).map(
        lambda ws: Packet(tuple(ws))
    ),
    max_size=16,
)


@settings(max_examples=200, deadline=None)
@given(outbox=outbox_strategy)
def test_columnar_encode_decode_identity(outbox):
    dsts, payloads = encode_outbox(outbox)
    assert len(dsts) == len(payloads) == len(outbox)
    rebuilt = decode_columns(dsts, payloads)
    assert rebuilt == outbox
    # Insertion order (= wire order) survives the round trip.
    assert list(rebuilt) == list(outbox)


def test_decode_columns_rejects_ragged_buffers():
    with pytest.raises(ProtocolError, match="disagree"):
        decode_columns([0, 1], [(1,)])


def test_fast_packet_is_a_real_packet():
    pkt = fast_packet((1, 2, 3))
    assert isinstance(pkt, Packet)
    assert pkt == Packet((1, 2, 3))
    assert pkt.words == (1, 2, 3)
    assert len(pkt) == 3 and list(pkt) == [1, 2, 3] and pkt[1] == 2


# ---------------------------------------------------------------------------
# batched validation == per-packet validation


#: words that exercise every audit branch: in-range ints, boundary values,
#: out-of-range ints, bools, floats and strings.
weird_word = st.one_of(
    st.integers(-10**6, 10**6),
    st.integers(10**18, 10**30),
    st.integers(-10**30, -10**18),
    st.booleans(),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=2),
)

payload_strategy = st.lists(
    st.lists(weird_word, max_size=10).map(tuple), max_size=8
)


def _canonical_outcome(payloads, n, capacity):
    """(error type or None) of the per-packet reference audit."""
    for words in payloads:
        try:
            validate_packet(fast_packet(words), n, capacity)
        except (CapacityExceeded, WordSizeViolation) as exc:
            return type(exc)
    return None


@settings(max_examples=300, deadline=None)
@given(
    payloads=payload_strategy,
    n=st.integers(1, 200),
    capacity=st.integers(1, 9),
)
def test_batched_validation_matches_validate_packet(payloads, n, capacity):
    expected = _canonical_outcome(payloads, n, capacity)
    if expected is None:
        validate_columns(payloads, n, capacity)  # must not raise
    else:
        with pytest.raises(expected):
            validate_columns(payloads, n, capacity)


def test_batched_validation_reports_via_the_offending_packet():
    ok = fast_packet((1, 2))
    bad = fast_packet((10**60,))
    with pytest.raises(WordSizeViolation, match="outside polynomial bound"):
        validate_columns(
            [ok.words, bad.words], 4, 8, packets=[ok, bad]
        )


# ---------------------------------------------------------------------------
# WireBatch bucketed delivery


def test_wire_batch_delivery_order_and_stats():
    batch = WireBatch()
    batch.add_outbox(2, {0: fast_packet((7,)), 1: fast_packet((8, 9))})
    batch.add_outbox(3, {0: fast_packet((1, 2, 3))})
    assert len(batch) == 3
    inboxes = [{} for _ in range(4)]
    packets, words, max_edge = batch.deliver(inboxes)
    assert (packets, words, max_edge) == (3, 6, 3)
    # Bucketing preserves ascending-source order per destination.
    assert list(inboxes[0]) == [2, 3]
    assert inboxes[0][2].words == (7,)
    assert inboxes[1] == {2: fast_packet((8, 9))}
    # Delivery moves packets by reference, not by copy.
    pkt = fast_packet((5,))
    batch.clear()
    assert len(batch) == 0
    batch.add_outbox(0, {0: pkt})
    inboxes = [{}]
    batch.deliver(inboxes)
    assert inboxes[0][0] is pkt


# ---------------------------------------------------------------------------
# forward-by-reference regrouping (the Corollary 3.3 relay hop)


def _regroup_reference(inbox, seg):
    """The pre-refactor forwarding loop, kept as the oracle."""
    forward_words = {}
    for src in sorted(inbox):
        words = inbox[src].words
        if not words:
            continue
        if seg is None:
            segments = [(words[0], tuple(words[1:]))]
        else:
            if len(words) % seg != 0:
                raise ProtocolError("bad width")
            segments = [
                (words[i], tuple(words[i + 1 : i + seg]))
                for i in range(0, len(words), seg)
            ]
        for dest, item in segments:
            forward_words.setdefault(dest, []).extend((dest,) + item)
    return {d: Packet(tuple(ws)) for d, ws in forward_words.items()}


segmented_inbox = st.dictionaries(
    st.integers(0, 15),
    st.lists(
        st.tuples(st.integers(0, 7), st.integers(0, 99), st.integers(0, 99)),
        max_size=4,
    ).map(
        lambda segs: fast_packet(tuple(w for seg in segs for w in seg))
    ),
    max_size=8,
)


@settings(max_examples=200, deadline=None)
@given(inbox=segmented_inbox)
def test_regroup_segments_matches_reference(inbox):
    got = regroup_segments(inbox, 3)
    want = _regroup_reference(inbox, 3)
    assert got == want


def test_regroup_segments_forwards_whole_packets_by_reference():
    pkt = fast_packet((4, 10, 11, 4, 12, 13))  # both segments -> dest 4
    out = regroup_segments({0: pkt}, 3)
    assert out[4] is pkt
    # A second contributor to the same dest forces the copy path but keeps
    # ascending-source segment order.
    other = fast_packet((4, 20, 21))
    out = regroup_segments({1: other, 0: pkt}, 3)
    assert out[4].words == (4, 10, 11, 4, 12, 13, 4, 20, 21)


def test_regroup_segments_variable_width():
    a = fast_packet((2, 5, 6, 7))
    b = fast_packet((2, 8))
    out = regroup_segments({0: a, 1: b}, None)
    assert out[2].words == (2, 5, 6, 7, 2, 8)
    out_single = regroup_segments({0: a}, None)
    assert out_single[2] is a


def test_regroup_segments_rejects_ragged_packet():
    with pytest.raises(ProtocolError, match="segment width"):
        regroup_segments({0: fast_packet((1, 2, 3, 4))}, 3)


# ---------------------------------------------------------------------------
# header codec


@settings(max_examples=200, deadline=None)
@given(
    base=st.integers(2, 10**4),
    triple=st.tuples(
        st.floats(0, 1), st.floats(0, 1), st.floats(0, 1)
    ),
)
def test_header_codec_matches_pack_triple(base, triple):
    a, b, c = (int(x * (base - 1)) for x in triple)
    codec = header_codec(base)
    word = codec.pack(a, b, c)
    assert word == pack_triple(a, b, c, base)
    assert codec.unpack(word) == unpack_triple(word, base)
    assert codec.dest_of(word) == b
    assert codec.source_of(word) == a
    assert codec.seq_of(word) == c


def test_header_codec_is_plan_cached():
    assert header_codec(97) is header_codec(97)
    assert header_codec(97).base == 97
    with pytest.raises(ValueError):
        HeaderCodec(0)
    with pytest.raises(ValueError):
        header_codec(5).pack(5, 0, 0)


# ---------------------------------------------------------------------------
# plan cache


def test_plan_cache_hit_miss_and_clear():
    cache = PlanCache()
    calls = []
    assert cache.compute("k", lambda: calls.append(1) or "v") == "v"
    assert cache.compute("k", lambda: calls.append(1) or "v") == "v"
    assert len(calls) == 1
    assert cache.stats() == (1, 1, 1)
    cache.clear()
    assert cache.compute("k", lambda: calls.append(1) or "v") == "v"
    assert len(calls) == 2
    assert cache.stats() == (1, 2, 1)


def test_plan_cache_eviction_is_bounded():
    cache = PlanCache(maxsize=4)
    for i in range(10):
        cache.compute(i, lambda i=i: i)
    assert len(cache) == 4
    # Oldest entries were evicted FIFO; the newest survive.
    assert cache.compute(9, lambda: "recomputed") == 9


def test_plan_cache_disable_bypasses_store():
    cache = PlanCache()
    cache.disable()
    calls = []
    for _ in range(3):
        cache.compute("k", lambda: calls.append(1) or "v")
    assert len(calls) == 3 and len(cache) == 0
    cache.enable()
    cache.compute("k", lambda: calls.append(1) or "v")
    cache.compute("k", lambda: calls.append(1) or "v")
    assert len(calls) == 4


def test_global_plan_cache_is_shared():
    assert plan_cache() is plan_cache()
    sentinel = object()
    value = plan_cache().compute(("test_wire", "sentinel"), lambda: sentinel)
    assert value is sentinel


def test_verify_shared_bypasses_plan_cache():
    # The verify_shared determinism audit must re-run the raw computation
    # even when the shared fn routes through the warm plan cache —
    # otherwise the recompute replays the stored plan object and the audit
    # compares a value to itself.
    from repro.core import run_protocol
    from repro.core.context import planned

    state = {"calls": 0}

    def impure():
        state["calls"] += 1
        return state["calls"]

    def prog(ctx):
        ctx.shared_compute(
            "twk", lambda: planned(("test_wire", "impure"), impure)
        )
        yield {}
        return None

    with pytest.raises(ProtocolError, match="not\\s+deterministic"):
        run_protocol(3, prog, verify_shared=True)


# ---------------------------------------------------------------------------
# piggyback wire-level fast paths


def test_attach_piggyback_shares_filler_and_preserves_words():
    outbox = {1: fast_packet((10, 11))}
    out = attach_piggyback(outbox, 99, 4)
    assert set(out) == {0, 1, 2, 3}
    assert out[1].words == (10, 11, 99)
    assert out[0].words == (99,)
    # Unused edges share one immutable packet object.
    assert out[0] is out[2] is out[3]
    clean, words = strip_piggyback(out)
    assert words == {0: 99, 1: 99, 2: 99, 3: 99}
    assert clean == {1: Packet((10, 11))}


def test_strip_piggyback_still_rejects_empty_packets():
    with pytest.raises(ProtocolError, match="empty packet"):
        strip_piggyback({0: fast_packet(())})
