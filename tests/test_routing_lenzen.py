"""Theorem 3.7: the 16-round deterministic router (square and general n)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import ROUTING_PHASES, ROUTING_ROUNDS
from repro.core import InvalidInstance
from repro.routing import (
    Message,
    RoutingInstance,
    block_skew_instance,
    permutation_instance,
    route_lenzen,
    route_lenzen_square,
    transpose_instance,
    uniform_instance,
    verify_delivery,
)


@pytest.mark.parametrize("n", [4, 9, 16, 25, 36])
def test_square_rounds_bound(n):
    inst = uniform_instance(n, seed=n)
    res = route_lenzen_square(inst)
    verify_delivery(inst, res.outputs)
    assert res.rounds == ROUTING_ROUNDS


def test_phase_decomposition_matches_paper():
    res = route_lenzen_square(uniform_instance(25, seed=1))
    assert res.phase_table() == ROUTING_PHASES


@pytest.mark.parametrize(
    "maker", [permutation_instance, transpose_instance, block_skew_instance]
)
def test_adversarial_square_instances(maker):
    inst = maker(16)
    res = route_lenzen_square(inst)
    verify_delivery(inst, res.outputs)
    assert res.rounds == ROUTING_ROUNDS


@pytest.mark.parametrize("n", [2, 3, 5, 7, 10, 12, 20])
def test_general_n(n):
    inst = uniform_instance(n, seed=n * 7)
    res = route_lenzen(inst)
    verify_delivery(inst, res.outputs)
    assert res.rounds <= ROUTING_ROUNDS


def test_general_dispatches_square():
    inst = uniform_instance(9, seed=0)
    res = route_lenzen(inst)
    verify_delivery(inst, res.outputs)
    assert res.rounds == ROUTING_ROUNDS


def test_hotspot_nonsquare():
    inst = permutation_instance(11, shift=3)
    res = route_lenzen(inst)
    verify_delivery(inst, res.outputs)
    assert res.rounds <= ROUTING_ROUNDS


def test_relaxed_instance_under_n():
    msgs = [[] for _ in range(9)]
    msgs[0] = [Message(0, 8, j, j) for j in range(5)]
    msgs[3] = [Message(3, 0, 0, 42)]
    inst = RoutingInstance(9, msgs, exact=False)
    res = route_lenzen_square(inst)
    verify_delivery(inst, res.outputs)
    assert res.outputs[0] == [Message(3, 0, 0, 42)]


def test_two_lane_overload():
    # 2n messages per node via 2n permutations
    import random

    n = 16
    rng = random.Random(0)
    msgs = [[] for _ in range(n)]
    for j in range(2 * n):
        perm = list(range(n))
        rng.shuffle(perm)
        for i in range(n):
            msgs[i].append(Message(i, perm[i], j, j))
    inst = RoutingInstance(n, msgs, exact=False, max_load=2 * n)
    res = route_lenzen_square(inst)
    verify_delivery(inst, res.outputs)
    assert res.rounds == ROUTING_ROUNDS


def test_instance_validation():
    with pytest.raises(InvalidInstance):
        RoutingInstance(4, [[]] * 3)
    with pytest.raises(InvalidInstance):
        RoutingInstance(2, [[Message(0, 0, 0)], []])  # not exact
    with pytest.raises(InvalidInstance):
        RoutingInstance(
            2,
            [
                [Message(0, 0, 0), Message(0, 0, 1), Message(0, 1, 2)],
                [Message(1, 1, 0), Message(1, 1, 1)],
            ],
            exact=False,
        )  # source 0 exceeds cap
    with pytest.raises(InvalidInstance):
        RoutingInstance(2, [[Message(1, 0, 0)], []], exact=False)  # wrong src


def test_shared_cache_determinism_audit():
    # verify_shared recomputes every shared pattern; agreement proves the
    # colorings are pure functions of common knowledge.
    inst = uniform_instance(16, seed=2)
    res = route_lenzen_square(inst, verify_shared=True)
    verify_delivery(inst, res.outputs)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_random_square_instances_property(seed):
    inst = uniform_instance(16, seed=seed)
    res = route_lenzen_square(inst)
    verify_delivery(inst, res.outputs)
    assert res.rounds == ROUTING_ROUNDS


@settings(max_examples=8, deadline=None)
@given(n=st.integers(4, 14), seed=st.integers(0, 1000))
def test_random_general_instances_property(n, seed):
    inst = uniform_instance(n, seed=seed)
    res = route_lenzen(inst)
    verify_delivery(inst, res.outputs)
    assert res.rounds <= ROUTING_ROUNDS
