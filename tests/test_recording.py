"""Record/replay determinism: capture format, CRC framing, replay parity.

The ISSUE 6 tentpole's test spine: a hypothesis round-trip property
(capture a mixed-scenario stream run, replay it, byte-identical digests
and identical per-request status sequences) plus the error paths a
capture reader must not mis-parse — truncation, corruption, foreign
files, version drift.
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import RunRequest
from repro.scenarios import mixed_batch
from repro.scenarios.generators import recorded_arrivals
from repro.service import (
    BatchService,
    CaptureError,
    Recorder,
    ReplayingBackend,
    load_capture,
    replay_capture,
    requests_from_scenarios,
    serve,
)
from repro.service.recording import (
    CAPTURE_VERSION,
    CaptureWriter,
    main as recording_main,
    request_from_doc,
    request_to_doc,
    summary_from_doc,
    summary_to_doc,
)

SMALL_SIZES = dict(
    routing_sizes=(16,), sorting_sizes=(16,), multiplex_sizes=(16,)
)


def _requests(batch, engine="fast", seed0=700):
    return requests_from_scenarios(
        mixed_batch(batch, seed0=seed0, **SMALL_SIZES), engine=engine
    )


def _capture_stream(path, batch=4, seed0=700, arrivals=None):
    requests = _requests(batch, seed0=seed0)
    arrivals = arrivals if arrivals is not None else [0.0] * batch
    report = serve(
        requests,
        arrivals,
        workers=2,
        backend="thread",
        policy="block",
        warmup=False,
        record=str(path),
    )
    return requests, report


# -- round-trip determinism ---------------------------------------------------


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(batch=st.integers(min_value=1, max_value=5), seed0=st.integers(0, 99))
def test_capture_replay_roundtrip_property(tmp_path_factory, batch, seed0):
    """Capture a stream run, replay it: byte-identical digests and the
    same per-request status sequence, every time."""
    path = tmp_path_factory.mktemp("cap") / "trace.jsonl"
    requests, live = _capture_stream(path, batch=batch, seed0=seed0)
    assert live.ok, live.failures

    capture = load_capture(str(path))
    assert capture.requests == requests
    assert capture.capture_digest() == live.stream_digest()

    result = replay_capture(
        capture, workers=2, backend="thread", timescale=0.0, warmup=False
    )
    assert result.digests_match, (
        f"capture {result.capture_digest} != replay {result.replay_digest}"
    )
    assert result.statuses_match
    assert result.replayed_statuses == capture.statuses()


def test_capture_preserves_arrival_offsets(tmp_path):
    path = tmp_path / "trace.jsonl"
    _capture_stream(path, batch=3, arrivals=[0.0, 0.03, 0.06])
    capture = load_capture(str(path))
    offsets = capture.arrivals
    assert offsets[0] == 0.0
    assert offsets == sorted(offsets)
    # The recorded gaps reflect the replay clock, not completion order.
    assert offsets[2] >= 0.05
    normalized = recorded_arrivals(offsets)
    assert normalized[0] == 0.0
    assert normalized == sorted(normalized)
    assert recorded_arrivals(offsets, timescale=0.0) == [0.0] * 3


def test_replaying_backend_serves_recorded_summaries(tmp_path):
    path = tmp_path / "trace.jsonl"
    requests, live = _capture_stream(path, batch=4)
    capture = load_capture(str(path))
    backend = ReplayingBackend(capture)
    served = list(backend.execute(requests))
    assert sorted(s.digest for s in served) == sorted(
        s.digest for s in live.summaries
    )
    assert all(s.resolved for s in served)
    backend.close()

    # A request the capture never saw is an error, not a silent re-run.
    foreign = RunRequest(
        kind="routing", family="balanced", n=64, seed=12345, engine="fast"
    )
    backend = ReplayingBackend(capture)
    with pytest.raises(CaptureError, match="no recorded summary"):
        list(backend.execute([foreign]))


def test_batch_recording_tap(tmp_path):
    path = tmp_path / "batch.jsonl"
    requests = _requests(5)
    with Recorder(str(path), meta={"source": "batch"}) as recorder:
        report = recorder.record_batch(BatchService(workers=0), requests)
    assert report.ok
    capture = load_capture(str(path))
    assert capture.meta["source"] == "batch"
    assert len(capture.events) == len(requests)
    assert capture.arrivals == [0.0] * len(requests)
    assert capture.capture_digest() == report.batch_digest()
    assert capture.metrics is not None


# -- error paths --------------------------------------------------------------


def _write_lines(path, lines):
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")


def test_truncated_capture_rejected(tmp_path):
    path = tmp_path / "trace.jsonl"
    _capture_stream(path, batch=2)
    whole = path.read_text(encoding="utf-8")
    torn = tmp_path / "torn.jsonl"
    # Cut mid-record: a crash tore the final line.
    torn.write_text(whole[: len(whole) - 25], encoding="utf-8")
    with pytest.raises(CaptureError, match="truncated|crc"):
        load_capture(str(torn))


def test_corrupt_record_rejected(tmp_path):
    path = tmp_path / "trace.jsonl"
    _capture_stream(path, batch=2)
    lines = path.read_text(encoding="utf-8").splitlines()
    # Flip a field inside the last summary record's payload; the stored
    # CRC no longer matches the canonical encoding.
    idx = max(
        i for i, l in enumerate(lines) if json.loads(l)["kind"] == "sum"
    )
    doc = json.loads(lines[idx])
    doc["summary"]["rounds"] += 1
    lines[idx] = json.dumps(doc, sort_keys=True)
    bad = tmp_path / "bad.jsonl"
    _write_lines(bad, lines)
    with pytest.raises(CaptureError, match="crc mismatch"):
        load_capture(str(bad))


def test_foreign_and_versioned_headers_rejected(tmp_path):
    import zlib

    def framed(doc):
        body = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        doc = dict(doc, crc=zlib.crc32(body.encode()))
        return json.dumps(doc, sort_keys=True)

    not_capture = tmp_path / "notes.jsonl"
    _write_lines(not_capture, [framed({"kind": "note", "text": "hi"})])
    with pytest.raises(CaptureError, match="header"):
        load_capture(str(not_capture))

    future = tmp_path / "future.jsonl"
    _write_lines(
        future,
        [
            framed(
                {
                    "kind": "header",
                    "format": "repro-capture",
                    "version": CAPTURE_VERSION + 1,
                    "meta": {},
                }
            )
        ],
    )
    with pytest.raises(CaptureError, match="version"):
        load_capture(str(future))

    empty = tmp_path / "empty.jsonl"
    empty.write_text("", encoding="utf-8")
    with pytest.raises(CaptureError, match="empty"):
        load_capture(str(empty))

    missing = tmp_path / "missing.jsonl"
    with pytest.raises(CaptureError, match="cannot open"):
        load_capture(str(missing))


def test_summary_for_unrecorded_seq_rejected(tmp_path):
    path = tmp_path / "trace.jsonl"
    requests, live = _capture_stream(path, batch=1)
    lines = path.read_text(encoding="utf-8").splitlines()
    doc = next(
        json.loads(l) for l in lines if json.loads(l)["kind"] == "sum"
    )
    doc.pop("crc")
    doc["seq"] = 999

    import zlib

    doc["crc"] = zlib.crc32(
        json.dumps(doc, sort_keys=True, separators=(",", ":")).encode()
    )
    lines.append(json.dumps(doc, sort_keys=True))
    bad = tmp_path / "orphan.jsonl"
    _write_lines(bad, lines)
    with pytest.raises(CaptureError, match="unrecorded seq"):
        load_capture(str(bad))


def test_closed_writer_refuses_records(tmp_path):
    writer = CaptureWriter(str(tmp_path / "w.jsonl"))
    writer.close()
    with pytest.raises(CaptureError, match="closed"):
        writer.write_metrics({})


# -- envelope docs ------------------------------------------------------------


def test_envelope_docs_roundtrip_and_reject_unknown_fields(tmp_path):
    req = RunRequest(
        kind="routing", family="balanced", n=16, seed=3, engine="fast",
        tag="chaos:slow:5", deadline_ms=125.0,
    )
    assert request_from_doc(request_to_doc(req)) == req
    with pytest.raises(CaptureError, match="unknown fields"):
        request_from_doc({**request_to_doc(req), "priority": 9})

    path = tmp_path / "trace.jsonl"
    _, live = _capture_stream(path, batch=1)
    summary = live.summaries[0]
    assert summary_from_doc(summary_to_doc(summary)) == summary
    with pytest.raises(CaptureError, match="unknown fields"):
        summary_from_doc({**summary_to_doc(summary), "extra": 1})
    with pytest.raises(CaptureError, match="request"):
        summary_from_doc({"ok": True})


# -- CLI ----------------------------------------------------------------------


def test_recording_cli_info_and_replay(tmp_path, capsys):
    path = tmp_path / "trace.jsonl"
    _capture_stream(path, batch=3)
    assert recording_main(["info", str(path), "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["requests"] == 3
    assert doc["resolved"] == 3

    code = recording_main(
        ["replay", str(path), "--backend", "thread", "--timescale", "0"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "match" in out


def test_recording_cli_rejects_corrupt_capture(tmp_path, capsys):
    bad = tmp_path / "bad.jsonl"
    bad.write_text("not json at all\n", encoding="utf-8")
    assert recording_main(["info", str(bad)]) == 2
    assert "capture error" in capsys.readouterr().err
