"""Graph substrate: Euler splits, matchings, Koenig and greedy colorings."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ColoringError
from repro.graphtools import (
    BipartiteMultigraph,
    degree_histogram,
    euler_split,
    from_demand_matrix,
    greedy_edge_coloring,
    koenig_coloring_padded,
    koenig_edge_coloring,
    maximum_matching,
    num_colors,
    pad_to_regular,
    perfect_matching,
    verify_exact_coloring,
    verify_matching,
    verify_proper_coloring,
)


def regular_graph(n: int, d: int, seed: int) -> BipartiteMultigraph:
    """d-regular bipartite multigraph = union of d random permutations."""
    rng = random.Random(seed)
    g = BipartiteMultigraph(n, n)
    for _ in range(d):
        perm = list(range(n))
        rng.shuffle(perm)
        for u, v in enumerate(perm):
            g.add_edge(u, v)
    return g


def test_degrees_and_regularity():
    g = from_demand_matrix([[2, 0], [0, 2]])
    assert g.left_degrees() == [2, 2]
    assert g.right_degrees() == [2, 2]
    assert g.is_regular()
    assert g.regular_degree() == 2
    assert degree_histogram(g) == {2: 4}


def test_from_demand_matrix_edge_order():
    g = from_demand_matrix([[1, 2], [0, 1]])
    assert g.edges == [(0, 0), (0, 1), (0, 1), (1, 1)]


def test_pad_to_regular():
    g = from_demand_matrix([[1, 0], [0, 2]])
    padded, real = pad_to_regular(g)
    assert real == 3
    assert padded.is_regular()
    assert padded.regular_degree() == 2
    assert padded.edges[:3] == g.edges


def test_pad_rejects_rectangular():
    g = BipartiteMultigraph(2, 3, [(0, 0)])
    with pytest.raises(ColoringError):
        pad_to_regular(g)


def test_euler_split_halves_degrees():
    g = regular_graph(8, 4, seed=1)
    a, b = euler_split(g)
    assert sorted(a + b) == list(range(g.num_edges))
    for part in (a, b):
        sub, _ = g.subgraph(part)
        assert sub.is_regular()
        assert sub.regular_degree() == 2


def test_euler_split_rejects_odd_degrees():
    g = from_demand_matrix([[1, 0], [0, 1]])
    g.add_edge(0, 1)
    with pytest.raises(ColoringError):
        euler_split(g)


def test_perfect_matching_on_regular():
    g = regular_graph(10, 3, seed=2)
    m = perfect_matching(g)
    assert len(m) == 10
    verify_matching(g, m)


def test_maximum_matching_partial():
    # star: left 0 connected to all right, others isolated.
    g = BipartiteMultigraph(3, 3, [(0, 0), (0, 1), (0, 2)])
    m = maximum_matching(g)
    assert len(m) == 1


def test_perfect_matching_rejects_deficient():
    g = BipartiteMultigraph(2, 2, [(0, 0), (1, 0)])
    with pytest.raises(ColoringError):
        perfect_matching(g)


@pytest.mark.parametrize("d", [1, 2, 3, 5, 8])
def test_koenig_exact_colors(d):
    g = regular_graph(7, d, seed=d)
    colors = koenig_edge_coloring(g)
    verify_exact_coloring(g, colors, d)
    assert num_colors(colors) == d


def test_koenig_rejects_irregular():
    g = from_demand_matrix([[2, 0], [0, 1]])
    with pytest.raises(ColoringError):
        koenig_edge_coloring(g)


def test_koenig_padded_on_irregular():
    g = from_demand_matrix([[3, 1, 0], [1, 1, 1], [0, 1, 2]])
    colors = koenig_coloring_padded(g)
    verify_proper_coloring(g, colors)
    assert num_colors(colors) <= g.max_degree()


def test_greedy_bound():
    g = regular_graph(9, 6, seed=3)
    colors = greedy_edge_coloring(g)
    verify_proper_coloring(g, colors)
    assert num_colors(colors) <= 2 * 6 - 1


def test_coloring_deterministic():
    g1 = regular_graph(8, 4, seed=9)
    g2 = regular_graph(8, 4, seed=9)
    assert koenig_edge_coloring(g1) == koenig_edge_coloring(g2)


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(2, 8),
    d=st.integers(1, 6),
    seed=st.integers(0, 10_000),
)
def test_koenig_property_random_regular(n, d, seed):
    g = regular_graph(n, d, seed)
    colors = koenig_edge_coloring(g)
    verify_exact_coloring(g, colors, d)


@settings(max_examples=40, deadline=None)
@given(
    rows=st.lists(
        st.lists(st.integers(0, 4), min_size=3, max_size=3),
        min_size=3,
        max_size=3,
    )
)
def test_padded_koenig_property_any_demand(rows):
    g = from_demand_matrix(rows)
    colors = koenig_coloring_padded(g)
    verify_proper_coloring(g, colors)
    if g.num_edges:
        assert num_colors(colors) <= g.max_degree()


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(2, 7),
    d=st.integers(1, 5),
    seed=st.integers(0, 10_000),
)
def test_greedy_property(n, d, seed):
    g = regular_graph(n, d, seed)
    colors = greedy_edge_coloring(g)
    verify_proper_coloring(g, colors)
    assert num_colors(colors) <= 2 * d - 1
