"""The fault-tolerance layer: reconnect, idempotent resume, fault proxy.

The ISSUE 10 tentpole and satellites: the backoff/circuit-breaker
machinery in isolation, the toxic-spec grammar, the v2 codec's CRC
armour, the parametrized :class:`CommonClient` contract suite over all
three client implementations, the through-proxy differential (digest
parity under injected faults, zero duplicate executions), the server's
admission control and lineage cache semantics, and the cleanup /
idempotent-close contracts on every error path.
"""

import json
import socket
import struct
import threading
import time
import zlib

import pytest

from repro.core.engine import STATUS_COMPLETED
from repro.scenarios.generators import (
    flap_times,
    mixed_batch,
    remote_selfcheck_batch,
)
from repro.scenarios.runner import ALGORITHMS, AlgorithmSpec, register_algorithm
from repro.service import BatchService, requests_from_scenarios, summaries_digest
from repro.service.batch import execute_request
from repro.service.chaos import ChaosFault, parse_wire_faults
from repro.service.net import (
    CorruptFrame,
    NetError,
    SessionClosed,
    TruncatedFrame,
)
from repro.service.net._v2 import FLAG_CACHED, ProtocolV2
from repro.service.net.client import Client, CommonClient, MockClient
from repro.service.net.faultproxy import (
    FaultProxy,
    ProxyThread,
    Toxic,
    parse_toxic,
)
from repro.service.net.framing import (
    FRAME_ACCEPT,
    FRAME_HELLO,
    FRAME_NEGOTIATE,
    FRAME_SUBMIT,
    FRAME_SUMMARY,
    Frame,
    FrameDecoder,
    HandshakeError,
    control_payload,
    encode_frame,
)
from repro.service.net.resilience import (
    BackoffPolicy,
    CircuitBreaker,
    CircuitOpen,
    ResilientClient,
    RetriesExhausted,
)
from repro.service.net.server import ServerThread

SMALL_SIZES = dict(
    routing_sizes=(16,), sorting_sizes=(16,), multiplex_sizes=(16,)
)


def _requests(batch, engine="fast", seed0=1300, **kwargs):
    return requests_from_scenarios(
        mixed_batch(batch, seed0=seed0, **SMALL_SIZES), engine=engine, **kwargs
    )


def _free_port():
    """A port that was just free — for dead-server and recovery tests."""
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


@pytest.fixture
def sleepy_algorithm():
    """A routing algorithm that sleeps before delegating to ``naive`` —
    guarantees requests are genuinely in flight when faults strike."""
    name = "test-resilience-sleepy"
    naive = ALGORITHMS[("routing", "naive")]

    def run(inst, engine, seed):
        time.sleep(0.1)
        return naive.run(inst, engine, seed)

    register_algorithm(AlgorithmSpec(kind="routing", name=name, run=run))
    yield name
    del ALGORITHMS[("routing", name)]


def _sleepy_requests(batch, sleepy, seed0=88):
    scenarios = mixed_batch(
        batch, mix="routing/balanced:1", seed0=seed0, **SMALL_SIZES
    )
    return requests_from_scenarios(
        scenarios, engine="fast", algorithm=sleepy
    )


# -- backoff policy ----------------------------------------------------------


def test_backoff_grows_exponentially_and_caps():
    policy = BackoffPolicy(base_s=0.1, factor=2.0, max_s=0.5, jitter_frac=0.0)
    rng = __import__("random").Random(0)
    assert policy.delay_s(1, rng) == pytest.approx(0.1)
    assert policy.delay_s(2, rng) == pytest.approx(0.2)
    assert policy.delay_s(3, rng) == pytest.approx(0.4)
    assert policy.delay_s(4, rng) == pytest.approx(0.5)  # capped
    assert policy.delay_s(50, rng) == pytest.approx(0.5)


def test_backoff_jitter_stays_inside_its_band():
    policy = BackoffPolicy(base_s=0.2, factor=1.0, max_s=1.0, jitter_frac=0.25)
    rng = __import__("random").Random(7)
    delays = [policy.delay_s(1, rng) for _ in range(200)]
    assert all(0.15 <= d <= 0.25 for d in delays)
    assert max(delays) - min(delays) > 0.01  # it actually jitters


def test_backoff_attempt_is_one_based():
    with pytest.raises(ValueError):
        BackoffPolicy().delay_s(0, __import__("random").Random(0))


# -- circuit breaker ---------------------------------------------------------


def test_breaker_opens_after_threshold_and_probes_half_open():
    breaker = CircuitBreaker(threshold=2, reset_s=0.05)
    assert breaker.state == "closed" and breaker.allow()
    breaker.record_failure()
    assert breaker.state == "closed" and breaker.allow()
    breaker.record_failure()
    assert breaker.state == "open"
    assert not breaker.allow()
    time.sleep(0.06)
    assert breaker.state == "half-open"
    assert breaker.allow()  # exactly one probe goes through
    assert not breaker.allow()
    breaker.record_success()
    assert breaker.state == "closed" and breaker.failures == 0


def test_breaker_reopens_when_the_probe_fails():
    breaker = CircuitBreaker(threshold=1, reset_s=0.05)
    breaker.record_failure()
    assert breaker.state == "open"
    time.sleep(0.06)
    assert breaker.allow()  # the probe
    breaker.record_failure()  # probe failed: re-open for another reset_s
    assert breaker.state == "open"
    assert not breaker.allow()


# -- toxic-spec grammar ------------------------------------------------------


@pytest.mark.parametrize(
    "spec, kind, value, direction",
    [
        ("latency:20", "latency", 20.0, "both"),
        ("jitter:5@up", "jitter", 5.0, "up"),
        ("rate:64@down", "rate", 64.0, "down"),
        ("disconnect:4096", "disconnect", 4096.0, "both"),
        ("blackhole", "blackhole", 0.0, "both"),
        ("blackhole:250@down", "blackhole", 250.0, "down"),
        ("corrupt:0.01", "corrupt", 0.01, "both"),
    ],
)
def test_parse_toxic_grammar(spec, kind, value, direction):
    toxic = parse_toxic(spec)
    assert toxic == Toxic(kind, value, direction)
    # the canonical spec string round-trips through the parser
    assert parse_toxic(toxic.spec) == toxic


@pytest.mark.parametrize(
    "spec",
    [
        "latency",            # missing value
        "bogus:5",            # unknown kind
        "latency:abc",        # non-numeric value
        "latency:-1",         # negative
        "corrupt:1.5",        # probability out of range
        "rate:0",             # non-positive rate
        "disconnect:0",       # non-positive byte budget
        "latency:5@sideways",  # bad direction
    ],
)
def test_malformed_toxic_specs_raise_the_chaos_error(spec):
    with pytest.raises(ChaosFault):
        parse_toxic(spec)


def test_parse_wire_faults_bridges_the_chaos_vocabulary():
    toxics = parse_wire_faults(["latency:5", "corrupt:0.5@down"])
    assert [t.kind for t in toxics] == ["latency", "corrupt"]
    with pytest.raises(ChaosFault):
        parse_wire_faults(["latency:5", "nonsense"])


# -- protocol v2 codec: keys and CRC armour ----------------------------------


def test_v2_submit_roundtrip_carries_the_idempotency_key():
    requests = _requests(2)
    frame = ProtocolV2.encode_submit(9, requests, "key-abc")
    channel, key, decoded = ProtocolV2.decode_submit_ex(frame)
    assert (channel, key) == (9, "key-abc")
    assert decoded == list(requests)
    # the keyless accessor still works (server compatibility surface)
    channel2, decoded2 = ProtocolV2.decode_submit(frame)
    assert channel2 == 9 and len(decoded2) == len(requests)


def test_v2_flipped_bit_is_a_typed_corrupt_frame():
    requests = _requests(2)
    submit = ProtocolV2.encode_submit(1, requests, "k")
    damaged = bytearray(submit.payload)
    damaged[-1] ^= 0xFF  # envelope tail: covered by the CRC
    with pytest.raises(CorruptFrame):
        ProtocolV2.decode_submit_ex(Frame(FRAME_SUBMIT, bytes(damaged)))

    summaries = [execute_request(r) for r in requests]
    summary = ProtocolV2.encode_summary(1, summaries)
    damaged = bytearray(summary.payload)
    damaged[-1] ^= 0xFF
    with pytest.raises(CorruptFrame):
        ProtocolV2.decode_summary(
            Frame(FRAME_SUMMARY, bytes(damaged)), requests
        )


def test_v2_cached_flag_roundtrips_and_preserves_bytes():
    requests = _requests(2)
    envelope = ProtocolV2.summary_envelope(
        [execute_request(r) for r in requests]
    )
    frame = ProtocolV2.wrap_summary(3, envelope, cached=True)
    assert frame.flags == FLAG_CACHED
    assert ProtocolV2.summary_cached(frame)
    assert ProtocolV2.summary_channel(frame) == 3
    fresh = ProtocolV2.wrap_summary(3, envelope)
    assert not ProtocolV2.summary_cached(fresh)
    # both wrap the same envelope bytes — the byte-identical-answer rule
    assert frame.payload == fresh.payload


def test_v2_oversized_key_is_rejected_before_the_wire():
    with pytest.raises(ValueError):
        ProtocolV2.encode_submit(1, _requests(1), "k" * 256)


def test_v2_non_ascii_key_is_a_typed_corrupt_frame():
    envelope = b"RENVgarbage"
    payload = (
        struct.pack("<I", 1)
        + struct.pack("<B", 2)
        + b"\xff\xfe"
        + struct.pack("<I", zlib.crc32(envelope) & 0xFFFFFFFF)
        + envelope
    )
    with pytest.raises(CorruptFrame):
        ProtocolV2.decode_submit_ex(Frame(FRAME_SUBMIT, payload))


def test_v2_truncated_payloads_are_typed():
    with pytest.raises(TruncatedFrame):
        ProtocolV2.decode_submit_ex(Frame(FRAME_SUBMIT, b"\x01"))
    with pytest.raises(TruncatedFrame):
        ProtocolV2.summary_channel(Frame(FRAME_SUMMARY, b"\x00"))


# -- the CommonClient contract, over all three implementations ---------------


@pytest.fixture(scope="module")
def contract_server():
    """One shared server for the contract suite's wire-backed clients."""
    with ServerThread(workers=2) as st:
        yield st


@pytest.fixture(params=["mock", "tcp", "resilient"])
def make_client(request, contract_server):
    """A factory producing an unconnected client of each implementation."""
    def factory():
        if request.param == "mock":
            return MockClient()
        if request.param == "tcp":
            return Client(
                contract_server.host, contract_server.port, timeout=10
            )
        return ResilientClient(
            contract_server.host, contract_server.port, timeout=10
        )

    return factory


def test_contract_run_matches_the_sequential_digest(make_client):
    requests = _requests(12)
    expected = BatchService(workers=0).run_batch(requests).batch_digest()
    with make_client() as client:
        summaries = client.run(requests, chunk=5)
    assert len(summaries) == len(requests)
    assert summaries_digest(summaries) == expected


def test_contract_submit_collect_rejoins_in_order(make_client):
    requests = _requests(4)
    with make_client() as client:
        channel = client.submit(requests)
        summaries = client.collect(channel)
        assert [s.request for s in summaries] == list(requests)
        assert all(s.status == STATUS_COMPLETED for s in summaries)
        # a channel collects exactly once
        with pytest.raises(NetError):
            client.collect(channel)


def test_contract_unknown_channel_is_a_typed_error(make_client):
    with make_client() as client:
        with pytest.raises(NetError):
            client.collect(987654)


def test_contract_drain_resume_metrics_shapes(make_client):
    with make_client() as client:
        assert isinstance(client.drain(), int)
        keys = client.resume("contract-lineage")
        assert isinstance(keys, list)
        doc = client.metrics()
        assert "gateway" in doc and "engine" in doc


def test_contract_close_is_idempotent_from_every_state(make_client):
    # close without ever connecting
    client = make_client()
    client.close()
    client.close()
    # close twice after a session, then observe the typed closed state
    client = make_client()
    client.connect()
    assert client.connected
    client.close()
    assert not client.connected
    client.close()
    with pytest.raises(SessionClosed):
        client.protocol_version


# -- fault proxy: pass-through parity and each toxic -------------------------


def test_proxy_pass_through_preserves_digests():
    requests = _requests(16, seed0=1410)
    expected = BatchService(workers=0).run_batch(requests).batch_digest()
    with ServerThread(workers=2) as st:
        with ProxyThread(st.host, st.port, toxics=["latency:1"]) as proxy:
            with Client(proxy.host, proxy.port, timeout=10) as client:
                summaries = client.run(requests, chunk=8)
            stats = proxy.stats()
    assert summaries_digest(summaries) == expected
    assert stats["connections"] >= 1
    assert stats["bytes_up"] > 0 and stats["bytes_down"] > 0


def test_corrupting_proxy_fails_the_plain_client_with_a_typed_error():
    """Without the resilience layer, corruption is connection-fatal: a
    typed NetError (CorruptFrame end to end, or the decoder's own
    errors when the flip lands in a header), never a hang — and the
    client is hard-closed afterwards."""
    requests = _requests(24, seed0=1420)
    with ServerThread(workers=2) as st:
        with ProxyThread(st.host, st.port) as proxy:
            client = Client(proxy.host, proxy.port, timeout=3)
            client.connect()
            proxy.set_toxics(["corrupt:1@up"])
            with pytest.raises(NetError):
                client.run(requests, chunk=8)
            assert not client.connected
            with pytest.raises(SessionClosed):
                client.drain()
            client.close()  # idempotent from the aborted state


def test_disconnect_toxic_cuts_mid_frame_with_a_typed_error():
    requests = _requests(48, seed0=1430)
    with ServerThread(workers=2) as st:
        with ProxyThread(
            st.host, st.port, toxics=["disconnect:2048"]
        ) as proxy:
            client = Client(proxy.host, proxy.port, timeout=5)
            client.connect()
            with pytest.raises((SessionClosed, TruncatedFrame)):
                client.run(requests, chunk=8)
            assert not client.connected
            assert proxy.stats()["disconnects"] >= 1


def test_blackhole_toxic_surfaces_as_a_client_timeout():
    with ServerThread(workers=2) as st:
        with ProxyThread(st.host, st.port, toxics=["blackhole"]) as proxy:
            client = Client(proxy.host, proxy.port, timeout=0.3)
            with pytest.raises(NetError):
                client.connect()  # HELLO never arrives
            client.close()


def test_proxy_with_dead_upstream_fails_connections_typed():
    with ProxyThread("127.0.0.1", _free_port()) as proxy:
        client = Client(proxy.host, proxy.port, timeout=2)
        with pytest.raises(NetError):
            client.connect()
        client.close()


def test_proxy_thread_close_is_idempotent_and_safe_after_failed_start():
    blocker = socket.socket()
    blocker.bind(("127.0.0.1", 0))
    blocker.listen(1)
    try:
        bad = ProxyThread(
            "127.0.0.1", 1, port=blocker.getsockname()[1]
        )
        with pytest.raises(OSError):
            bad.start()
        bad.close()
        bad.close()
    finally:
        blocker.close()
    good = ProxyThread("127.0.0.1", _free_port()).start()
    good.close()
    good.close()


# -- resilient client: reconnect, dedup, differential ------------------------


def test_resilient_client_survives_flapping_with_digest_parity(
    sleepy_algorithm,
):
    """The reconnect differential's core: connections die repeatedly
    mid-run, yet the digest is byte-identical to the unfailed baseline
    and the gateway executed each request exactly once."""
    requests = _sleepy_requests(24, sleepy_algorithm, seed0=1440)
    expected = BatchService(workers=0).run_batch(requests).batch_digest()
    with ServerThread(workers=2, queue_cap=256, policy="block") as st:
        with ProxyThread(st.host, st.port) as proxy:
            stop = threading.Event()

            def flapper():
                while not stop.wait(0.12):
                    proxy.drop_connections()

            thread = threading.Thread(target=flapper, daemon=True)
            client = ResilientClient(
                proxy.host,
                proxy.port,
                timeout=5,
                backoff=BackoffPolicy(base_s=0.02, max_s=0.2, deadline_s=30),
                breaker=CircuitBreaker(threshold=50),
                seed=1,
            )
            with client:
                thread.start()
                try:
                    summaries = client.run(requests, chunk=4)
                finally:
                    stop.set()
                    thread.join(timeout=2)
                metrics = client.metrics()
                stats = client.stats()
            assert client.pending == 0  # zero stranded futures
    assert len(summaries) == len(requests)
    assert summaries_digest(summaries) == expected
    assert stats["reconnects"] >= 1
    # exactly one execution per request: resubmits after flaps were
    # answered from the lineage cache / coalesced, never re-executed.
    assert metrics["gateway"]["offered"] == len(requests)
    idem = metrics["idempotency"]
    assert idem["hits"] + idem["coalesced"] >= client.cache_hits


def test_through_proxy_differential_256_instances_with_faults():
    """The acceptance differential: the full REMOTE_SELFCHECK_MIX
    through the fault proxy (latency + periodic mid-frame disconnects)
    comes out byte-identical to the sequential baseline, with zero
    duplicate executions."""
    requests = requests_from_scenarios(
        remote_selfcheck_batch(256, seed0=0), engine="fast"
    )
    expected = BatchService(workers=0).run_batch(requests).batch_digest()
    with ServerThread(workers=4, queue_cap=256, policy="block") as st:
        with ProxyThread(
            st.host, st.port, toxics=["latency:1", "disconnect:65536"]
        ) as proxy:
            client = ResilientClient(
                proxy.host,
                proxy.port,
                timeout=10,
                backoff=BackoffPolicy(base_s=0.02, max_s=0.2, deadline_s=60),
                breaker=CircuitBreaker(threshold=50),
                seed=2,
            )
            with client:
                summaries = client.run(requests, chunk=32)
                metrics = client.metrics()
            assert client.pending == 0
    assert summaries_digest(summaries) == expected
    assert metrics["gateway"]["offered"] == len(requests)


def test_resilient_submit_channel_is_stable_across_reconnects():
    requests = _requests(3, seed0=1450)
    with ServerThread(workers=2) as st:
        with ProxyThread(st.host, st.port) as proxy:
            with ResilientClient(
                proxy.host,
                proxy.port,
                timeout=5,
                backoff=BackoffPolicy(base_s=0.01, max_s=0.1, deadline_s=20),
            ) as client:
                channel = client.submit(requests)
                proxy.drop_connections()  # kill it between submit and collect
                summaries = client.collect(channel)
                assert len(summaries) == len(requests)
                assert client.reconnects >= 1


def test_server_death_mid_collect_is_typed_and_fast(sleepy_algorithm):
    """The mid-collect cleanup satellite: killing the connection while
    collect() is blocked yields a typed error immediately, and every
    later call on the aborted client fails fast — no hangs, no leaked
    socket state."""
    requests = _sleepy_requests(4, sleepy_algorithm, seed0=1460)
    with ServerThread(workers=2) as st:
        with ProxyThread(st.host, st.port) as proxy:
            client = Client(proxy.host, proxy.port, timeout=10)
            client.connect()
            channel = client.submit(requests)
            killer = threading.Timer(0.05, proxy.drop_connections)
            killer.start()
            try:
                with pytest.raises((SessionClosed, TruncatedFrame)):
                    client.collect(channel)
            finally:
                killer.cancel()
            assert not client.connected
            t0 = time.perf_counter()
            with pytest.raises(SessionClosed):
                client.collect(channel)
            with pytest.raises(SessionClosed):
                client.drain()
            assert time.perf_counter() - t0 < 0.5
            client.close()
            client.close()


# -- lineage cache semantics (dedup, coalescing, eviction) -------------------


def test_resubmitting_a_key_is_answered_from_the_cache():
    requests = _requests(3, seed0=1470)
    with ServerThread(workers=2) as st:
        with Client(st.host, st.port, timeout=10) as client:
            client.resume("lin-dedup")
            first = client.collect(client.submit(requests, key="k1"))
            again = client.collect(client.submit(requests, key="k1"))
            assert client.cache_hits == 1
            assert summaries_digest(first) == summaries_digest(again)
            idem = client.metrics()["idempotency"]
            assert idem["hits"] >= 1 and idem["cached_keys"] >= 1
        # a later connection resuming the same lineage sees the key
        with Client(st.host, st.port, timeout=10) as other:
            assert "k1" in other.resume("lin-dedup")


def test_racing_resubmit_coalesces_onto_the_first_execution(
    sleepy_algorithm,
):
    requests = _sleepy_requests(2, sleepy_algorithm, seed0=1480)
    with ServerThread(workers=2) as st:
        with Client(st.host, st.port, timeout=10) as client:
            client.resume("lin-coalesce")
            ch1 = client.submit(requests, key="kc")
            ch2 = client.submit(requests, key="kc")  # races the execution
            first = client.collect(ch1)
            second = client.collect(ch2)
            assert summaries_digest(first) == summaries_digest(second)
            assert client.cache_hits == 1
            idem = client.metrics()["idempotency"]
            assert idem["coalesced"] >= 1


def test_lineage_cache_evicts_lru_past_its_bound():
    requests = _requests(1, seed0=1490)
    with ServerThread(workers=2, idempotency_keys=2) as st:
        with Client(st.host, st.port, timeout=10) as client:
            client.resume("lin-evict")
            for key in ("ka", "kb", "kc"):
                client.collect(client.submit(requests, key=key))
            cached = client.resume("lin-evict")
            assert len(cached) <= 2
            assert "ka" not in cached  # oldest key evicted first
            assert client.metrics()["idempotency"]["evictions"] >= 1


# -- admission control (retry-after) -----------------------------------------


def test_saturated_gateway_refuses_with_retry_after(sleepy_algorithm):
    big = _sleepy_requests(3, sleepy_algorithm, seed0=1500)
    small = _sleepy_requests(2, sleepy_algorithm, seed0=1510)
    with ServerThread(
        workers=1, queue_cap=2, policy="block", session_quota=64
    ) as st:
        with Client(st.host, st.port, timeout=10) as client:
            ch_big = client.submit(big)
            ch_small = client.submit(small)
            from repro.service.net import ServerError

            with pytest.raises(ServerError) as info:
                client.collect(ch_small)
            assert info.value.code == "retry-after"
            assert info.value.channel == ch_small
            assert (info.value.retry_after_ms or 0) > 0
            # the refusal is survivable: the session and the other
            # channel are intact, and the envelope retries cleanly.
            assert client.connected
            assert len(client.collect(ch_big)) == len(big)
            retried = client.collect(client.submit(small))
            assert all(s.status == STATUS_COMPLETED for s in retried)


def test_resilient_client_honours_retry_after(sleepy_algorithm):
    big = _sleepy_requests(3, sleepy_algorithm, seed0=1520)
    small = _sleepy_requests(2, sleepy_algorithm, seed0=1530)
    with ServerThread(
        workers=1, queue_cap=2, policy="block", session_quota=64
    ) as st:
        with ResilientClient(
            st.host,
            st.port,
            timeout=10,
            backoff=BackoffPolicy(base_s=0.02, max_s=0.2, deadline_s=30),
        ) as client:
            ch_big = client.submit(big)
            ch_small = client.submit(small)
            summaries = client.collect(ch_small)  # backs off, resubmits
            assert all(s.status == STATUS_COMPLETED for s in summaries)
            assert client.retry_afters >= 1
            assert len(client.collect(ch_big)) == len(big)


# -- dial failures: retries exhausted, circuit breaking, recovery ------------


def test_dead_server_exhausts_retries_with_a_typed_error():
    client = ResilientClient(
        "127.0.0.1",
        _free_port(),
        timeout=0.5,
        backoff=BackoffPolicy(
            base_s=0.005, max_s=0.02, max_attempts=3, deadline_s=5
        ),
        breaker=CircuitBreaker(threshold=100),
    )
    with pytest.raises(RetriesExhausted):
        client.connect()
    client.close()


def test_open_circuit_fails_fast():
    client = ResilientClient(
        "127.0.0.1",
        _free_port(),
        timeout=0.5,
        backoff=BackoffPolicy(base_s=0.005, max_s=0.02, deadline_s=5),
        breaker=CircuitBreaker(threshold=2, reset_s=60),
    )
    with pytest.raises(CircuitOpen):
        client.connect()
    t0 = time.perf_counter()
    with pytest.raises(CircuitOpen):
        client.connect()
    assert time.perf_counter() - t0 < 0.1  # no dial, no backoff sleep
    client.close()


def test_half_open_probe_recovers_when_the_server_returns():
    port = _free_port()
    breaker = CircuitBreaker(threshold=1, reset_s=0.15)
    client = ResilientClient(
        "127.0.0.1",
        port,
        timeout=2,
        backoff=BackoffPolicy(
            base_s=0.005, max_s=0.01, max_attempts=1, deadline_s=5
        ),
        breaker=breaker,
    )
    with pytest.raises((CircuitOpen, RetriesExhausted)):
        client.connect()
    assert breaker.state == "open"
    with ServerThread(port=port, workers=2) as _:
        time.sleep(0.2)  # past reset_s: the next attempt is the probe
        client.connect()
        assert client.connected
        assert breaker.state == "closed" and breaker.failures == 0
        summaries = client.run(_requests(3, seed0=1540))
        assert len(summaries) == 3
        client.close()


def test_resilient_client_rejects_pre_v2_servers_without_retrying():
    """A server that cannot speak the idempotency dialect is
    configuration, not weather: one typed HandshakeError, no retries."""
    listener = socket.socket()
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    port = listener.getsockname()[1]

    def v1_only_server():
        conn, _ = listener.accept()
        conn.settimeout(5)
        decoder = FrameDecoder()
        hello = {
            "server": "test-v1-only",
            "versions": [0, 1],
            "max_frame": 65536,
            "engine": "fast",
            "quota": 8,
        }
        conn.sendall(encode_frame(Frame(FRAME_HELLO, control_payload(hello))))
        while True:  # read NEGOTIATE
            frame = decoder.next_frame()
            if frame is not None:
                break
            decoder.feed(conn.recv(65536))
        assert frame.type == FRAME_NEGOTIATE
        accept = {"version": 1, "session": 1, "quota": 8}
        conn.sendall(
            encode_frame(Frame(FRAME_ACCEPT, control_payload(accept)))
        )
        time.sleep(0.2)
        conn.close()

    thread = threading.Thread(target=v1_only_server, daemon=True)
    thread.start()
    try:
        client = ResilientClient("127.0.0.1", port, timeout=2)
        t0 = time.perf_counter()
        with pytest.raises(HandshakeError):
            client.connect()
        assert time.perf_counter() - t0 < 1.0  # no backoff loop
        assert client.breaker.failures == 1
        client.close()
    finally:
        thread.join(timeout=5)
        listener.close()


# -- server thread lifecycle satellites --------------------------------------


def test_server_thread_close_is_idempotent_and_safe_after_failed_start():
    st = ServerThread(workers=2)
    st.start()
    st.close()
    st.close()
    bad = ServerThread(session_quota=0)  # invalid: start() must fail
    with pytest.raises(RuntimeError):
        bad.start()
    bad.close()
    bad.close()


# -- flap schedule generator -------------------------------------------------


def test_flap_times_is_deterministic_and_inside_the_window():
    flaps = flap_times(3.0, 60.0, jitter_frac=0.2, seed=7)
    assert flaps == flap_times(3.0, 60.0, jitter_frac=0.2, seed=7)
    assert len(flaps) == 19  # one per period strictly inside (0, 60)
    assert all(0.0 < t < 60.0 for t in flaps)
    assert all(a < b for a, b in zip(flaps, flaps[1:]))
    exact = flap_times(2.0, 10.0)
    assert exact == [2.0, 4.0, 6.0, 8.0]  # jitter defaults to zero


def test_flap_times_validates_its_arguments():
    with pytest.raises(ValueError):
        flap_times(0.0, 10.0)
    with pytest.raises(ValueError):
        flap_times(1.0, -1.0)
    with pytest.raises(ValueError):
        flap_times(1.0, 10.0, jitter_frac=2.0)


# -- CLI ---------------------------------------------------------------------


def test_cli_selfcheck_resilient_through_the_fault_proxy(capsys):
    from repro.service.net.__main__ import main as net_main

    rc = net_main(
        [
            "selfcheck",
            "--batch", "12",
            "--workers", "2",
            "--resilient",
            "--toxic", "latency:1",
        ]
    )
    out = capsys.readouterr().out
    assert rc == 0
    assert "selfcheck: sequential digest -> match" in out


def test_cli_soak_passes_all_four_gates(capsys):
    from repro.service.net.__main__ import main as net_main

    rc = net_main(
        [
            "soak",
            "--duration", "2",
            "--rate", "4",
            "--flap-every", "1",
            "--workers", "2",
            "--json",
        ]
    )
    doc = json.loads(capsys.readouterr().out)
    assert rc == 0
    assert doc["ok"] and all(doc["gates"].values())
    assert doc["stranded"] == 0
    assert doc["gateway_offered"] == doc["requests"]


# -- docstring pass over the resilience API ----------------------------------


def test_public_resilience_api_is_documented():
    """The docs satellite's enforcement clause, extended to the new
    layer: every public class, method and property is documented."""
    import inspect

    for cls in (
        BackoffPolicy,
        CircuitBreaker,
        ResilientClient,
        Toxic,
        FaultProxy,
        ProxyThread,
    ):
        assert inspect.getdoc(cls), f"{cls.__name__} lacks a docstring"
        for name, member in vars(cls).items():
            if name.startswith("_") or not callable(member):
                continue
            assert inspect.getdoc(member), (
                f"{cls.__name__}.{name} lacks a docstring"
            )
        for name, member in vars(cls).items():
            if isinstance(member, property) and not name.startswith("_"):
                assert member.__doc__, (
                    f"property {cls.__name__}.{name} lacks a docstring"
                )
