"""Differential fuzzing: four routers, one oracle, many seeded instances.

``lenzen``, ``naive``, ``randomized`` and ``optimized`` routing are run on
identical seeded random instances (several sizes, balanced and skewed);
every run must deliver the identical multiset of messages to every node,
and round counts must match the closed forms in :mod:`repro.analysis.bounds`
(an inequality for the constant-round routers, an exact prediction for the
naive baseline).
"""

import random

import pytest

from repro.analysis import ROUTING_ROUNDS
from repro.analysis.bounds import ROUTING_OPTIMIZED_ROUNDS
from repro.core.topology import is_perfect_square
from repro.routing import (
    RoutingInstance,
    block_skew_instance,
    bursty_instance,
    naive_round_bound,
    route_lenzen,
    route_naive,
    route_optimized,
    route_valiant,
    uniform_instance,
    verify_delivery,
)

#: square sizes run all four routers; non-square sizes skip ``optimized``.
SIZES = [16, 20, 25, 27]

FAMILIES = {
    "balanced": uniform_instance,
    "skewed": block_skew_instance,
    "bursty": bursty_instance,
}

_SEED_RNG = random.Random(0xC11C)
SEEDS = [_SEED_RNG.randrange(2 ** 16) for _ in range(3)]


def _routers_for(inst: RoutingInstance):
    routers = {
        "lenzen": lambda: route_lenzen(inst),
        "naive": lambda: route_naive(inst),
        "randomized": lambda: route_valiant(inst, seed=17),
    }
    if is_perfect_square(inst.n):
        routers["optimized"] = lambda: route_optimized(inst)
    return routers


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("family", sorted(FAMILIES))
@pytest.mark.parametrize("n", SIZES)
def test_routers_agree_on_random_instances(n, family, seed):
    inst = FAMILIES[family](n, seed=seed)
    expected = inst.expected_deliveries()
    results = {}
    for name, run in _routers_for(inst).items():
        res = run()
        verify_delivery(inst, res.outputs)
        # identical delivered multisets, node by node
        assert [sorted(node) for node in res.outputs] == expected, name
        results[name] = res

    assert results["lenzen"].rounds <= ROUTING_ROUNDS
    assert results["naive"].rounds == naive_round_bound(inst)
    if "optimized" in results:
        assert results["optimized"].rounds <= ROUTING_OPTIMIZED_ROUNDS


@pytest.mark.parametrize("seed", SEEDS[:2])
def test_differential_on_fast_engine(seed):
    # The same differential holds when all routers run on the fast engine.
    inst = uniform_instance(16, seed=seed)
    expected = inst.expected_deliveries()
    for run in (
        lambda: route_lenzen(inst, engine="fast"),
        lambda: route_naive(inst, engine="fast"),
        lambda: route_valiant(inst, seed=3, engine="fast"),
        lambda: route_optimized(inst, engine="fast"),
    ):
        res = run()
        assert [sorted(node) for node in res.outputs] == expected


def test_lenzen_round_count_is_constant_across_the_fuzz_corpus():
    # Theorem 3.7's bound is a worst-case constant: across the whole corpus
    # the deterministic router must never depend on the instance shape.
    rounds = set()
    for seed in SEEDS:
        for n in (16, 25):
            for family in FAMILIES.values():
                inst = family(n, seed=seed)
                rounds.add(route_lenzen(inst).rounds)
    assert max(rounds) <= ROUTING_ROUNDS
