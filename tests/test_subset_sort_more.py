"""Algorithm 3 edge cases: piggyback, parallel groups, degenerate shapes."""

import random

from repro.core import run_protocol
from repro.sorting import subset_sort


def test_parallel_groups_sort_independently():
    n = 16
    w = 4
    groups = tuple(tuple(range(g * w, (g + 1) * w)) for g in range(4))
    rng = random.Random(8)
    pools = [rng.sample(range(g * 10 ** 5, (g + 1) * 10 ** 5), 4 * 8)
             for g in range(4)]
    lists = {}
    for g in range(4):
        for r in range(w):
            lists[g * w + r] = sorted(pools[g][r * 8 : (r + 1) * 8])

    def prog(ctx):
        g, r = divmod(ctx.node_id, w)
        res = yield from subset_sort(
            ctx, groups, g, r, lists[ctx.node_id], 8, "pg"
        )
        return res

    res = run_protocol(n, prog, capacity=16)
    assert res.rounds == 10  # all four groups in the same 10 rounds
    for g in range(4):
        merged = []
        for r in range(w):
            merged.extend(res.outputs[g * w + r].run)
        assert merged == sorted(pools[g])


def test_piggyback_counts_visible_to_all():
    n = 9
    w = 3
    groups = tuple(tuple(range(g * w, (g + 1) * w)) for g in range(3))
    rng = random.Random(1)
    lists = {v: sorted(rng.sample(range(10 ** 6), 6)) for v in range(n)}

    def prog(ctx):
        g, r = divmod(ctx.node_id, w)
        res = yield from subset_sort(
            ctx, groups, g, r, lists[ctx.node_id], 6, "pb",
            redistribute=False, piggyback_my_count=True,
        )
        return res

    res = run_protocol(n, prog, capacity=16)
    # every node collected every node's final count
    expected = {v: len(res.outputs[v].run) for v in range(n)}
    for v in range(n):
        got = res.outputs[v].piggyback_counts
        assert got == expected


def test_single_member_group():
    groups = ((0,),)

    def prog(ctx):
        if ctx.node_id == 0:
            res = yield from subset_sort(
                ctx, groups, 0, 0, [5, 3, 9, 1], 4, "w1"
            )
        else:
            res = yield from subset_sort(ctx, groups, None, None, [], 4, "w1")
        return res

    res = run_protocol(4, prog, capacity=16)
    assert res.outputs[0].run == [1, 3, 5, 9]
    assert res.outputs[0].run_offset == 0


def test_empty_inputs():
    groups = ((0, 1),)

    def prog(ctx):
        if ctx.node_id < 2:
            res = yield from subset_sort(ctx, groups, 0, ctx.node_id, [], 4, "e")
        else:
            res = yield from subset_sort(ctx, groups, None, None, [], 4, "e")
        return res

    res = run_protocol(4, prog, capacity=16)
    assert res.outputs[0].run == []
    assert res.outputs[1].run == []


def test_heavily_skewed_inputs():
    """One node holds everything; delimiters still spread the load within
    the Lemma 4.3 bound."""
    groups = ((0, 1, 2, 3),)
    keys = sorted(random.Random(2).sample(range(10 ** 6), 32))

    def prog(ctx):
        mine = keys if ctx.node_id == 0 else []
        if ctx.node_id < 4:
            res = yield from subset_sort(
                ctx, groups, 0, ctx.node_id, mine, 32, "sk"
            )
        else:
            res = yield from subset_sort(
                ctx, groups, None, None, [], 32, "sk"
            )
        return res

    res = run_protocol(16, prog, capacity=16)
    merged = []
    for r in range(4):
        merged.extend(res.outputs[r].run)
    assert merged == keys
    # even split after step 8
    assert [len(res.outputs[r].run) for r in range(4)] == [8, 8, 8, 8]
