"""Section 5 internals: super-coloring and round-robin spreading."""

import random

from repro.core import run_protocol
from repro.core.message import pack_triple, unpack_triple
from repro.core.topology import square_partition
from repro.routing.optimized import _spread_rounds, _super_classes


def test_super_classes_bundle_counts():
    n, s = 16, 4
    # totals: one pair with 3 full bundles, others fractional
    totals = (
        (3 * n + 5, 0, 0, 11),
        (0, n, n, 2 * n),
        (n // 2, n // 2, 2 * n, n),
        (7, 3, 1, 5),
    )
    classes = _super_classes(totals, n, s)
    for (g, g2), cls in classes.items():
        assert len(cls) == totals[g][g2] // n
        for c in cls:
            assert 0 <= c < s
    # pairs with < n messages have no classes at all
    assert (3, 0) not in classes
    assert len(classes[(0, 0)]) == 3


def test_super_classes_matching_structure():
    """Classes come from a proper coloring: per original color, at most one
    pair per row and per column — here we just check that total bundles per
    group stay within the padded degree."""
    n, s = 16, 4
    totals = tuple(tuple(n for _ in range(s)) for _ in range(s))
    classes = _super_classes(totals, n, s)
    assert sum(len(v) for v in classes.values()) == s * s


def test_spread_rounds_balances_dest_groups():
    """After the 2-round round-robin spread, each member's per-destination-
    group share is within the Lemma 5.1 bound (~2 sqrt(n) for exact
    loads)."""
    n = 25
    part = square_partition(n)
    s = part.group_size
    rng = random.Random(4)
    hbase = n

    def dgroup(w):
        return unpack_triple(w[0], hbase)[1] // s

    # every node starts with n messages; destinations heavily skewed.
    def make_held(me):
        held = []
        for j in range(n):
            dest = (me * 3 + j // 7) % n  # clumped destinations
            held.append((pack_triple(me, dest, j, hbase), j))
        return held

    def prog(ctx):
        held = make_held(ctx.node_id)
        new_held = yield from _spread_rounds(
            ctx, part, held, dgroup, ctx.capacity
        )
        per = {}
        for w in new_held:
            per[dgroup(w)] = per.get(dgroup(w), 0) + 1
        return per

    res = run_protocol(n, prog, capacity=24)
    all_msgs = 0
    for per in res.outputs:
        for j, cnt in per.items():
            assert cnt <= 2 * s + 2, (j, cnt)
            all_msgs += cnt
    assert all_msgs == n * n  # nothing lost


def test_spread_rounds_preserves_messages():
    n = 16
    part = square_partition(n)
    hbase = n

    def dgroup(w):
        return unpack_triple(w[0], hbase)[1] // part.group_size

    def prog(ctx):
        held = [
            (pack_triple(ctx.node_id, (ctx.node_id + j) % n, j, hbase), j)
            for j in range(n)
        ]
        out = yield from _spread_rounds(ctx, part, held, dgroup, ctx.capacity)
        return out

    res = run_protocol(n, prog, capacity=24)
    seen = sorted(w for out in res.outputs for w in out)
    expected = sorted(
        (pack_triple(i, (i + j) % n, j, hbase), j)
        for i in range(n)
        for j in range(n)
    )
    assert seen == expected
