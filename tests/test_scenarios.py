"""The scenario subsystem: taxonomy, runner, differential cross-checks."""

import pytest

from repro.core.errors import VerificationError
from repro.routing import bursty_instance, route_naive, verify_delivery
from repro.scenarios import (
    BurstyMultiplexWorkload,
    Scenario,
    ScenarioRunner,
    default_scenarios,
    families,
    output_digest,
    scenario_matrix,
)
from repro.scenarios.runner import ALGORITHMS, algorithms


def test_taxonomy_covers_all_kinds():
    assert families("routing") == [
        "adversarial", "balanced", "bursty", "skewed", "transpose",
    ]
    assert families("sorting") == [
        "duplicates", "presorted", "reversed", "uniform",
    ]
    assert families("multiplex") == ["bursty"]
    with pytest.raises(ValueError, match="unknown scenario family"):
        Scenario("routing", "quantum", 16)


def test_scenario_matrix_and_defaults():
    matrix = scenario_matrix("routing", [16, 25], seeds=(0, 1))
    assert len(matrix) == len(families("routing")) * 2 * 2
    quick = default_scenarios(quick=True)
    assert {sc.kind for sc in quick} == {"routing", "sorting", "multiplex"}
    assert len(default_scenarios(quick=False)) > len(quick)
    sc = Scenario("routing", "balanced", 16, seed=2)
    assert "balanced" in sc.name and "n=16" in sc.name


def test_algorithm_registry():
    assert algorithms("routing") == [
        "lenzen", "naive", "optimized", "randomized",
    ]
    assert algorithms("sorting") == ["lenzen", "samplesort"]
    runner = ScenarioRunner()
    # optimized/sorting need square n
    assert "optimized" in runner.applicable_algorithms(
        Scenario("routing", "balanced", 16)
    )
    assert "optimized" not in runner.applicable_algorithms(
        Scenario("routing", "balanced", 20)
    )
    with pytest.raises(ValueError, match="no routing algorithm"):
        runner.run(Scenario("routing", "balanced", 16), "dijkstra")


@pytest.mark.parametrize("family", ["balanced", "skewed", "bursty"])
def test_routing_differential(family):
    runner = ScenarioRunner(engines=("reference", "fast"))
    report = runner.differential(Scenario("routing", family, 16, seed=1))
    assert report.ok, report.failures
    # all four routers on both engines
    assert len(report.outcomes) == 8
    assert len({o.digest for o in report.outcomes}) == 1
    lenzen = [o for o in report.outcomes if o.algorithm == "lenzen"]
    assert all(o.rounds <= o.budget for o in lenzen)


def test_sorting_differential():
    runner = ScenarioRunner()
    report = runner.differential(Scenario("sorting", "duplicates", 16, seed=2))
    assert report.ok, report.failures
    assert {o.algorithm for o in report.outcomes} == {"lenzen", "samplesort"}


def test_multiplex_differential_and_round_prediction():
    runner = ScenarioRunner()
    scenario = Scenario("multiplex", "bursty", 16, seed=3)
    report = runner.differential(scenario)
    assert report.ok, report.failures
    workload = scenario.build()
    assert all(
        o.rounds == workload.expected_rounds for o in report.outcomes
    )


def test_multiplex_workload_oracle_detects_corruption():
    workload = BurstyMultiplexWorkload(8, seed=1)
    expected = workload.expected_outputs()
    with pytest.raises(VerificationError):
        corrupted = [list(e) for e in expected]
        corrupted[0] = [[999], corrupted[0][1]]
        workload.verify(corrupted)


def test_bursty_instance_is_valid_and_routable():
    inst = bursty_instance(20, seed=9)
    assert not inst.exact
    counts = [len(msgs) for msgs in inst.messages_by_source]
    assert max(counts) <= inst.max_load
    assert min(counts) == 0 or min(counts) < max(counts)  # genuinely skewed
    res = route_naive(inst)
    verify_delivery(inst, res.outputs)


def test_output_digest_is_stable_and_discriminating():
    inst = bursty_instance(16, seed=4)
    a = route_naive(inst)
    b = route_naive(inst, engine="fast")
    assert output_digest("routing", a.outputs) == output_digest(
        "routing", b.outputs
    )
    other = bursty_instance(16, seed=5)
    c = route_naive(other)
    assert output_digest("routing", a.outputs) != output_digest(
        "routing", c.outputs
    )


def test_runner_reports_budget_violation_as_failure():
    # An algorithm whose budget predicts fewer rounds than measured must be
    # flagged, not silently accepted.
    from repro.scenarios.runner import AlgorithmSpec, register_algorithm

    name = "naive-misbudgeted"
    register_algorithm(AlgorithmSpec(
        kind="routing",
        name=name,
        run=ALGORITHMS[("routing", "naive")].run,
        budget=lambda inst: (0, True),
    ))
    try:
        runner = ScenarioRunner(engines=("reference",))
        outcome = runner.run(Scenario("routing", "balanced", 16), name)
        assert not outcome.ok
        assert "round count" in outcome.error
    finally:
        del ALGORITHMS[("routing", name)]


# -- arrival processes (the streaming gateway's open-loop clock) -------------


def test_poisson_arrivals_deterministic_and_sorted():
    from repro.scenarios import poisson_arrivals

    a = poisson_arrivals(rate=50.0, count=200, seed=11)
    b = poisson_arrivals(rate=50.0, count=200, seed=11)
    assert a == b
    assert len(a) == 200
    assert all(t2 > t1 for t1, t2 in zip(a, a[1:]))
    assert poisson_arrivals(50.0, 200, seed=12) != a
    # Mean interarrival tracks 1/rate (loose statistical bound).
    mean_gap = a[-1] / len(a)
    assert 0.5 / 50.0 < mean_gap < 2.0 / 50.0


def test_uniform_and_saturated_arrivals():
    from repro.scenarios import saturated_arrivals, uniform_arrivals

    u = uniform_arrivals(rate=10.0, count=4)
    assert u == [0.1, 0.2, 0.30000000000000004, 0.4]
    assert saturated_arrivals(3) == [0.0, 0.0, 0.0]
    assert saturated_arrivals(0) == []


def test_arrival_times_dispatch_and_errors():
    import pytest

    from repro.scenarios import arrival_times, poisson_arrivals

    assert arrival_times("poisson", 5.0, 10, seed=3) == poisson_arrivals(
        5.0, 10, seed=3
    )
    assert arrival_times("saturated", 5.0, 3) == [0.0, 0.0, 0.0]
    assert len(arrival_times("uniform", 5.0, 3)) == 3
    assert len(arrival_times("bursty", 5.0, 12, seed=3)) == 12
    with pytest.raises(ValueError, match="unknown arrival process"):
        arrival_times("fibonacci", 5.0, 3)
    with pytest.raises(ValueError):
        arrival_times("poisson", 0.0, 3)
    with pytest.raises(ValueError):
        arrival_times("uniform", -1.0, 3)
    with pytest.raises(ValueError):
        arrival_times("poisson", 1.0, -1)
