"""Cross-module integration: composed protocols and end-to-end pipelines."""

import random

from repro.analysis import ROUTING_ROUNDS, SORTING_ROUNDS
from repro.core import run_protocol
from repro.routing import (
    Message,
    RoutingInstance,
    route_lenzen,
    uniform_instance,
    verify_delivery,
)
from repro.routing.lenzen import _wire, header_base, lenzen_wire_program
from repro.sorting import (
    SortInstance,
    sort_lenzen,
    uniform_sort_instance,
    verify_sorted_batches,
)


def test_route_then_route_composition():
    """Two full routing instances executed back to back by one protocol —
    generators compose with plain `yield from`."""
    n = 16
    inst_a = uniform_instance(n, seed=1)
    inst_b = uniform_instance(n, seed=2)
    base = header_base(n, n)
    wire_a = [
        sorted(_wire(m, base) for m in inst_a.messages_by_source[i])
        for i in range(n)
    ]
    wire_b = [
        sorted(_wire(m, base) for m in inst_b.messages_by_source[i])
        for i in range(n)
    ]
    prog_a = lenzen_wire_program(n, wire_a, n, strict=True)
    prog_b = lenzen_wire_program(n, wire_b, n, strict=True)

    def prog(ctx):
        first = yield from prog_a(ctx)
        second = yield from prog_b(ctx)
        return (first, second)

    res = run_protocol(n, prog)
    assert res.rounds == 2 * ROUTING_ROUNDS
    verify_delivery(inst_a, [o[0] for o in res.outputs])
    verify_delivery(inst_b, [o[1] for o in res.outputs])


def test_sort_uses_exactly_one_router_invocation():
    """Algorithm 4 embeds Theorem 3.7 once (Step 6): phase audit shows a
    single 16-round router block inside the 37 rounds."""
    res = sort_lenzen(uniform_sort_instance(16, seed=4))
    table = res.phase_table()
    router_rounds = sum(
        v
        for k, v in table.items()
        if k.startswith("alg2.") or k.startswith("alg1.")
    )
    assert router_rounds == ROUTING_ROUNDS
    assert res.rounds == SORTING_ROUNDS


def test_route_messages_carrying_sort_payload():
    """Routing is payload-agnostic: ship packed key pairs, unpack at the
    destinations, and check nothing was altered in flight."""
    n = 9
    rng = random.Random(3)
    payloads = {}
    msgs = [[] for _ in range(n)]
    for j in range(n):
        perm = list(range(n))
        rng.shuffle(perm)
        for i in range(n):
            value = rng.randrange(n ** 4)
            payloads[(i, j)] = value
            msgs[i].append(Message(i, perm[i], j, value))
    inst = RoutingInstance(n, msgs)
    res = route_lenzen(inst)
    verify_delivery(inst, res.outputs)
    for k in range(n):
        for m in res.outputs[k]:
            assert m.payload == payloads[(m.source, m.seq)]


def test_sorting_instance_roundtrip_through_batches():
    """Union of output batches == multiset of tagged inputs (no key ever
    duplicated or lost), even with heavy duplicates."""
    inst = SortInstance(16, [[7] * 16 for _ in range(16)], key_universe=8)
    res = sort_lenzen(inst)
    got = sorted(t for batch in res.outputs for t in batch)
    assert got == inst.global_sorted_tagged()
    verify_sorted_batches(inst, res.outputs)


def test_full_pipeline_statistics():
    """The distributed-statistics pipeline end to end on a fresh instance
    (mirrors examples/distributed_statistics.py)."""
    from repro.sorting import median, mode, select_kth

    n = 9
    rng = random.Random(12)
    samples = [[rng.randrange(30) for _ in range(n)] for _ in range(n)]
    inst = SortInstance(n, samples, key_universe=30)
    flat = sorted(s for row in samples for s in row)

    assert median(inst).outputs[0] == flat[len(flat) // 2]
    assert select_kth(inst, 0).outputs[0] == flat[0]
    assert select_kth(inst, len(flat) - 1).outputs[0] == flat[-1]
    from collections import Counter

    counts = Counter(s for row in samples for s in row)
    best = max(counts.items(), key=lambda kv: (kv[1], -kv[0]))
    assert mode(inst).outputs[0] == best
