"""The network service: framing, negotiation, parity, shutdown.

The ISSUE 9 satellites: typed errors on every malformed-input path
(unknown magic, oversized frames, mid-frame disconnects — never hangs),
a ``_v0`` client downgrading cleanly against a ``_latest`` server, the
256-instance digest-parity differential (remote client == MockClient ==
in-process gateway == sequential), the drain test (server shutdown with
in-flight tickets resolves every future), per-session quotas, and the
docstring pass over the public client API.
"""

import socket
import time

import pytest

from repro.scenarios.generators import (
    REMOTE_SELFCHECK_MIX,
    mixed_batch,
    remote_selfcheck_batch,
)
from repro.scenarios.runner import ALGORITHMS, AlgorithmSpec, register_algorithm
from repro.service import BatchService, requests_from_scenarios, summaries_digest
from repro.service.net import (
    LATEST,
    PROTOCOLS,
    SUPPORTED_VERSIONS,
    BadMagic,
    Frame,
    FrameDecoder,
    HandshakeError,
    NetError,
    NetTimeout,
    OversizedFrame,
    ServerError,
    SessionClosed,
    TruncatedFrame,
    UnsupportedFrame,
    choose_version,
    protocol_for_version,
)
from repro.service.net._v0 import ProtocolV0
from repro.service.net.client import Client, CommonClient, MockClient
from repro.service.net.framing import (
    FRAME_DRAIN,
    FRAME_ERROR,
    FRAME_GOODBYE,
    FRAME_HELLO,
    FRAME_NEGOTIATE,
    FRAME_SUBMIT,
    FRAME_SUMMARY,
    HEADER,
    MAGIC,
    control_payload,
    encode_frame,
    pack_channel,
    parse_control,
    unpack_channel,
)
from repro.service.net.server import NetServer, ServerThread
from repro.service.stream import serve

SMALL_SIZES = dict(
    routing_sizes=(16,), sorting_sizes=(16,), multiplex_sizes=(16,)
)


def _requests(batch, engine="fast", seed0=900, **kwargs):
    return requests_from_scenarios(
        mixed_batch(batch, seed0=seed0, **SMALL_SIZES), engine=engine, **kwargs
    )


# -- framing: round-trips and typed malformed-input errors -------------------


def test_frame_roundtrip_survives_arbitrary_chunking():
    """The decoder reassembles frames from any byte-chunk schedule —
    including one byte at a time — because TCP never aligns reads with
    frame boundaries.
    """
    frames = [
        Frame(FRAME_HELLO, control_payload({"server": "x", "versions": [0, 1]})),
        Frame(FRAME_SUBMIT, pack_channel(7, b"\x01\x02\x03")),
        Frame(FRAME_GOODBYE, b""),
    ]
    wire = b"".join(encode_frame(f) for f in frames)
    for chunk in (1, 2, 5, len(wire)):
        decoder = FrameDecoder()
        out = []
        for i in range(0, len(wire), chunk):
            decoder.feed(wire[i:i + chunk])
            while True:
                frame = decoder.next_frame()
                if frame is None:
                    break
                out.append(frame)
        decoder.eof()  # clean boundary: must not raise
        assert out == frames
        assert decoder.buffered == 0


def test_bad_magic_is_a_typed_error():
    decoder = FrameDecoder()
    decoder.feed(b"GET / HTTP/1.1\r\n")
    with pytest.raises(BadMagic):
        decoder.next_frame()


def test_oversized_frame_rejected_from_header_alone():
    """The length prefix is validated before the payload is buffered, so
    a corrupt (or hostile) header can never force a giant allocation."""
    decoder = FrameDecoder(max_frame=1024)
    decoder.feed(HEADER.pack(MAGIC, FRAME_SUBMIT, 0, 1 << 30))
    with pytest.raises(OversizedFrame):
        decoder.next_frame()
    with pytest.raises(OversizedFrame):
        encode_frame(Frame(FRAME_SUBMIT, b"x" * 2048), max_frame=1024)


def test_mid_frame_eof_is_a_typed_error():
    full = encode_frame(Frame(FRAME_SUBMIT, pack_channel(1, b"payload")))
    for cut in (1, HEADER.size, len(full) - 1):
        decoder = FrameDecoder()
        decoder.feed(full[:cut])
        assert decoder.next_frame() is None
        with pytest.raises(TruncatedFrame):
            decoder.eof()


def test_control_payloads_are_canonical_and_validated():
    assert control_payload({"b": 1, "a": 2}) == b'{"a":2,"b":1}'
    assert parse_control(b'{"x": 3}') == {"x": 3}
    with pytest.raises(NetError):
        parse_control(b"not json")
    with pytest.raises(NetError):
        parse_control(b"[1,2,3]")  # must be an object


def test_channel_prefix_roundtrip_and_truncation():
    channel, envelope = unpack_channel(pack_channel(41, b"abc"))
    assert (channel, envelope) == (41, b"abc")
    with pytest.raises(TruncatedFrame):
        unpack_channel(b"\x00\x01")  # shorter than the u32 prefix


# -- version negotiation (factory) -------------------------------------------


def test_factory_registry_and_version_choice():
    assert SUPPORTED_VERSIONS == tuple(sorted(PROTOCOLS))
    assert protocol_for_version(LATEST.version) is LATEST
    # default: highest mutual version wins
    assert choose_version([0, 1]) == 1
    # a v0-only server downgrades a latest client transparently
    assert choose_version([0]) == 0
    # unknown advertised versions are ignored, not fatal
    assert choose_version([0, 99]) == 0
    # an explicit pin must be mutual
    assert choose_version([0, 1], requested=0) == 0
    with pytest.raises(HandshakeError):
        choose_version([99])
    with pytest.raises(HandshakeError):
        choose_version([0, 1], requested=99)
    with pytest.raises(HandshakeError):
        protocol_for_version(99)


def test_protocol_versions_are_nested_dialects():
    """v1 is a superset of v0: every v0 frame type stays legal, and only
    v1 relaxes summary ordering."""
    v0, v1 = PROTOCOLS[0], PROTOCOLS[1]
    assert v0.frame_types < v1.frame_types
    assert v0.ordered_summaries and not v1.ordered_summaries
    assert not v0.supports(FRAME_DRAIN) and v1.supports(FRAME_DRAIN)


# -- raw-socket protocol violations: typed errors, never hangs ---------------


def _read_frame(sock, decoder):
    while True:
        frame = decoder.next_frame()
        if frame is not None:
            return frame
        data = sock.recv(65536)
        if not data:
            decoder.eof()
            raise AssertionError("peer closed without the expected frame")
        decoder.feed(data)


def _expect_error_then_goodbye(sock, decoder, code):
    frame = _read_frame(sock, decoder)
    assert frame.type == FRAME_ERROR, frame.name
    doc = parse_control(frame.payload)
    assert doc["code"] == code, doc
    assert frame.type == FRAME_ERROR
    bye = _read_frame(sock, decoder)
    assert bye.type == FRAME_GOODBYE


@pytest.fixture(scope="module")
def loopback_server():
    """One shared small server for the raw-socket violation tests."""
    with ServerThread(workers=2, max_frame=65536, session_quota=8) as st:
        yield st


def _dial(st):
    sock = socket.create_connection((st.host, st.port), timeout=10)
    sock.settimeout(10)
    decoder = FrameDecoder()
    hello = _read_frame(sock, decoder)
    assert hello.type == FRAME_HELLO
    return sock, decoder, parse_control(hello.payload)


def test_server_hello_advertises_info(loopback_server):
    sock, decoder, hello = _dial(loopback_server)
    try:
        assert hello["server"] == "repro.service.net"
        assert hello["versions"] == list(SUPPORTED_VERSIONS)
        assert hello["max_frame"] == 65536
        assert hello["quota"] == 8
    finally:
        sock.close()


def test_garbage_bytes_get_typed_error_and_goodbye(loopback_server):
    sock, decoder, _ = _dial(loopback_server)
    try:
        sock.sendall(b"\x00garbage that is definitely not a frame\x00")
        _expect_error_then_goodbye(sock, decoder, "bad-magic")
    finally:
        sock.close()


def test_oversized_announcement_gets_typed_error(loopback_server):
    sock, decoder, _ = _dial(loopback_server)
    try:
        sock.sendall(HEADER.pack(MAGIC, FRAME_NEGOTIATE, 0, 1 << 30))
        _expect_error_then_goodbye(sock, decoder, "oversized-frame")
    finally:
        sock.close()


def test_unknown_version_gets_typed_error(loopback_server):
    sock, decoder, _ = _dial(loopback_server)
    try:
        sock.sendall(
            encode_frame(
                Frame(FRAME_NEGOTIATE, control_payload({"version": 99}))
            )
        )
        _expect_error_then_goodbye(sock, decoder, "handshake")
    finally:
        sock.close()


def test_data_frame_before_handshake_gets_typed_error(loopback_server):
    sock, decoder, _ = _dial(loopback_server)
    try:
        sock.sendall(encode_frame(Frame(FRAME_SUBMIT, pack_channel(1, b"x"))))
        _expect_error_then_goodbye(sock, decoder, "handshake")
    finally:
        sock.close()


def test_mid_frame_disconnect_leaves_server_serving(loopback_server):
    """A peer that dies mid-frame must not wedge the server: the next
    connection gets a normal HELLO and a working session."""
    sock, decoder, _ = _dial(loopback_server)
    frame = encode_frame(Frame(FRAME_NEGOTIATE, control_payload({"version": 1})))
    sock.sendall(frame[: len(frame) - 3])  # cut the frame short
    sock.close()
    # the server carries on: a fresh client completes a full exchange
    with Client(
        loopback_server.host, loopback_server.port, timeout=10
    ) as client:
        summaries = client.run(_requests(4), chunk=2)
    assert len(summaries) == 4 and all(s.ok for s in summaries)


def test_v0_session_rejects_v1_frames(loopback_server):
    """DRAIN is a v1 frame; a v0 session sending it gets the typed
    ``unsupported-frame`` error, server-side."""
    sock, decoder, _ = _dial(loopback_server)
    try:
        sock.sendall(
            encode_frame(
                Frame(FRAME_NEGOTIATE, control_payload({"version": 0}))
            )
        )
        accept = _read_frame(sock, decoder)
        assert parse_control(accept.payload)["version"] == 0
        sock.sendall(encode_frame(Frame(FRAME_DRAIN, control_payload({}))))
        _expect_error_then_goodbye(sock, decoder, "unsupported-frame")
    finally:
        sock.close()


def test_client_never_hangs_on_a_silent_server():
    """A listener that accepts and says nothing: every client operation
    surfaces a typed NetTimeout within its deadline."""
    listener = socket.socket()
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    host, port = listener.getsockname()
    client = Client(host, port, timeout=0.3)
    t0 = time.monotonic()
    with pytest.raises(NetTimeout):
        client.connect()
    assert time.monotonic() - t0 < 5.0
    listener.close()


# -- negotiated sessions over real sockets -----------------------------------


def test_v0_client_downgrades_cleanly_against_latest_server():
    """The headline negotiation satellite: a client pinned to the v0
    dialect completes a full batch against a latest server, and the v1
    frames stay client-side-gated."""
    requests = _requests(12)
    with ServerThread(workers=2) as st:
        with Client(st.host, st.port, protocol=0, timeout=30) as client:
            assert client.protocol_version == 0
            assert client.session_id >= 1
            summaries = client.run(requests, chunk=4)
            with pytest.raises(UnsupportedFrame):
                client.drain()
            with pytest.raises(UnsupportedFrame):
                client.metrics()
    assert summaries_digest(summaries) == summaries_digest(
        BatchService(workers=0).run_batch(requests).summaries
    )


def test_v1_session_metrics_and_drain():
    requests = _requests(6)
    with ServerThread(workers=2) as st:
        with Client(st.host, st.port, timeout=30) as client:
            assert client.protocol_version == LATEST.version
            channel = client.submit(requests)
            flushed = client.drain()
            assert flushed >= 0
            doc = client.metrics()
            assert doc["engine"] == "fast"
            assert doc["sessions"] == 1
            gateway = doc["gateway"]
            assert gateway["offered"] == len(requests)
            summaries = client.collect(channel)
    assert all(s.ok for s in summaries)


def test_session_quota_is_enforced_and_survivable():
    """An envelope above the session quota gets a channel-tagged
    ``quota-exceeded`` error; the session stays usable afterwards."""
    requests = _requests(8)
    with ServerThread(workers=2, session_quota=4) as st:
        with Client(st.host, st.port, timeout=30) as client:
            assert client.session_quota == 4
            channel = client.submit(requests)  # 8 > quota of 4
            with pytest.raises(ServerError) as excinfo:
                client.collect(channel)
            assert excinfo.value.code == "quota-exceeded"
            assert excinfo.value.channel == channel
            # the same session still serves within-quota envelopes
            ok_channel = client.submit(requests[:3])
            summaries = client.collect(ok_channel)
            assert len(summaries) == 3 and all(s.ok for s in summaries)
            # and run() windows itself under the quota automatically
            summaries = client.run(requests, chunk=8)
            assert len(summaries) == 8 and all(s.ok for s in summaries)


def test_sessions_get_distinct_ids():
    with ServerThread(workers=2) as st:
        with Client(st.host, st.port, timeout=30) as a:
            with Client(st.host, st.port, timeout=30) as b:
                assert a.session_id != b.session_id


@pytest.fixture
def sleepy_algorithm():
    """A routing algorithm that sleeps before delegating to ``naive`` —
    guarantees tickets are genuinely in flight when shutdown starts."""
    name = "test-net-sleepy"
    naive = ALGORITHMS[("routing", "naive")]

    def run(inst, engine, seed):
        time.sleep(0.05)
        return naive.run(inst, engine, seed)

    register_algorithm(AlgorithmSpec(kind="routing", name=name, run=run))
    yield name
    del ALGORITHMS[("routing", name)]


def test_graceful_shutdown_resolves_inflight_tickets(sleepy_algorithm):
    """The drain satellite: closing the server with tickets in flight
    flushes every SUMMARY before GOODBYE — no future is dropped."""
    scenarios = mixed_batch(6, mix="routing/balanced:1", seed0=77, **SMALL_SIZES)
    requests = requests_from_scenarios(
        scenarios, engine="fast", algorithm=sleepy_algorithm
    )
    st = ServerThread(workers=2)
    st.start()
    try:
        client = Client(st.host, st.port, timeout=30).connect()
        first = client.submit(requests[:3])
        second = client.submit(requests[3:])
        # the metrics round-trip is the acceptance barrier: the read loop
        # answers it only after both SUBMITs, so their tickets are now
        # genuinely in the gateway (and still running — each request
        # sleeps 50ms) when shutdown starts.
        doc = client.metrics()
        assert doc["inflight"] > 0 or doc["gateway"]["offered"] == 6
        st.close()
        summaries = client.collect(first) + client.collect(second)
        assert len(summaries) == len(requests)
        assert all(s.ok for s in summaries), [s.error for s in summaries]
        # after the flush the server is gone: the next exchange says so
        with pytest.raises((SessionClosed, NetError, OSError)):
            client.submit(requests[:1])
            client.collect(3)
        client.close()
    finally:
        st.close()


def test_draining_server_refuses_new_submits():
    """A SUBMIT that lands in the shutdown window gets the typed
    ``draining`` refusal plus GOODBYE rather than silently vanishing."""
    import asyncio

    requests = _requests(1)

    async def _read_frame(reader, decoder):
        while True:
            frame = decoder.next_frame()
            if frame is not None:
                return frame
            data = await reader.read(65536)
            assert data, "server closed before the expected frame"
            decoder.feed(data)

    async def _run():
        server = NetServer(workers=2)
        await server.start()
        assert not server.draining
        reader, writer = await asyncio.open_connection(
            server.host, server.port
        )
        decoder = FrameDecoder()
        hello = await _read_frame(reader, decoder)
        assert hello.type == FRAME_HELLO
        writer.write(
            encode_frame(
                Frame(FRAME_NEGOTIATE, control_payload({"version": 1}))
            )
        )
        await writer.drain()
        accept = await _read_frame(reader, decoder)
        assert parse_control(accept.payload)["version"] == 1
        # freeze the shutdown window: draining flag up, socket still open
        server._draining = True
        writer.write(
            encode_frame(ProtocolV0.encode_submit(1, requests))
        )
        await writer.drain()
        err = await _read_frame(reader, decoder)
        assert err.type == FRAME_ERROR
        assert parse_control(err.payload)["code"] == "draining"
        bye = await _read_frame(reader, decoder)
        assert bye.type == FRAME_GOODBYE
        writer.close()
        await server.close()
        assert server.sessions == 0

    asyncio.run(_run())


# -- the 256-instance digest-parity differential -----------------------------


def test_256_instance_differential_remote_mock_gateway_sequential():
    """The headline acceptance gate: one 256-instance full-taxonomy
    batch executed four ways — remote Client over loopback TCP,
    MockClient in memory, in-process StreamGateway, sequential
    baseline — must produce byte-identical digests."""
    requests = requests_from_scenarios(
        remote_selfcheck_batch(256, seed0=0), engine="fast"
    )

    sequential = BatchService(workers=0).run_batch(requests)
    assert sequential.ok, sequential.failures
    expected = sequential.batch_digest()

    mock = MockClient().connect()
    mock_digest = summaries_digest(mock.run(requests))
    mock.close()
    assert mock_digest == expected

    gateway_report = serve(
        requests,
        [0.0] * len(requests),
        workers=4,
        backend="thread",
        policy="block",
        queue_cap=64,
    )
    assert gateway_report.ok, gateway_report.failures
    assert summaries_digest(gateway_report.summaries) == expected

    with ServerThread(workers=4, queue_cap=64) as st:
        with Client(st.host, st.port, timeout=120) as client:
            remote = client.run(requests, chunk=32)
    assert len(remote) == len(requests)
    assert all(s.ok for s in remote), [s.error for s in remote if not s.ok]
    assert summaries_digest(remote) == expected


def test_mock_client_mirrors_the_client_surface():
    requests = _requests(5)
    mock = MockClient(engine="fast")
    with pytest.raises(SessionClosed):
        mock.submit(requests)
    with mock as client:
        assert client.protocol_version == LATEST.version
        assert client.server_info["server"] == MockClient.SERVER
        channel = client.submit(requests)
        summaries = client.collect(channel)
        assert len(summaries) == 5 and all(s.ok for s in summaries)
        with pytest.raises(NetError):
            client.collect(channel)  # each channel collects exactly once
        assert client.drain() == 0
        assert client.metrics()["engine"] == "fast"
    with pytest.raises(SessionClosed):
        mock.drain()


# -- CLI ---------------------------------------------------------------------


def test_cli_selfcheck_and_bench(capsys):
    from repro.service.net.__main__ import main as net_main

    assert net_main(["selfcheck", "--batch", "10", "--workers", "2"]) == 0
    out = capsys.readouterr().out
    assert "selfcheck: sequential digest -> match" in out

    assert net_main(
        ["bench", "--batch", "8", "--chunk", "4", "--workers", "2"]
    ) == 0
    out = capsys.readouterr().out
    assert "envelope round-trip ms" in out and "wire bytes" in out


def test_remote_selfcheck_mix_covers_the_full_taxonomy():
    """The selfcheck differential's value is coverage: its mix must name
    every family the scenario taxonomy registers."""
    from repro.scenarios.generators import _BUILDERS, parse_mix

    covered = {(k, f) for k, f, _ in parse_mix(REMOTE_SELFCHECK_MIX)}
    assert covered == set(_BUILDERS)
    batch = remote_selfcheck_batch(64, seed0=3)
    assert len(batch) == 64
    assert {(s.kind, s.family) for s in batch} == set(_BUILDERS)


# -- docstring pass over the public client API -------------------------------


def test_public_client_api_is_documented():
    """The docs satellite's enforcement clause: every public class and
    method of the client library carries a docstring."""
    import inspect

    for cls in (CommonClient, Client, MockClient):
        assert inspect.getdoc(cls), f"{cls.__name__} lacks a docstring"
        for name, member in vars(cls).items():
            if name.startswith("_") or not callable(member):
                continue
            assert inspect.getdoc(member), (
                f"{cls.__name__}.{name} lacks a docstring"
            )
        for name, member in vars(cls).items():
            if isinstance(member, property) and not name.startswith("_"):
                assert member.__doc__, (
                    f"property {cls.__name__}.{name} lacks a docstring"
                )
