"""Failure injection: the simulator must catch protocol and model bugs."""

import pytest

from repro.core import (
    CapacityExceeded,
    CongestedClique,
    EdgeConflict,
    Packet,
    ProtocolError,
    packet,
    run_protocol,
)
from repro.routing.primitives import route_known, route_unknown


def test_oversized_packet_caught():
    def prog(ctx):
        yield {0: Packet(tuple(range(20)))}

    with pytest.raises(CapacityExceeded):
        run_protocol(4, prog, capacity=8)


def test_item_demand_disagreement_caught():
    """A member whose items disagree with the commonly known demand matrix
    is rejected before anything is sent."""
    groups = ((0, 1),)

    def prog(ctx):
        demand = ((0, 2), (0, 0))
        if ctx.node_id == 0:
            # demand says 2 items to rank 1, node holds only 1.
            yield from route_known(
                ctx, groups, 0, 0, [(1, (7,))], demand, "f"
            )
        elif ctx.node_id == 1:
            yield from route_known(ctx, groups, 0, 1, [], demand, "f")
        else:
            yield from route_known(ctx, groups, None, None, [], None, "f")
        return None

    with pytest.raises(ProtocolError):
        run_protocol(4, prog)


def test_non_relaying_node_breaks_primitive():
    """If a node skips its relay duty, deliveries are lost and the caller's
    accounting notices (here: the receiving member gets too few items)."""
    groups = ((0, 1, 2),)

    def prog(ctx):
        if ctx.node_id < 3:
            items = [(b, (ctx.node_id,)) for b in range(3)]
            demand = tuple(tuple(1 for _ in range(3)) for _ in range(3))
            got = yield from route_known(
                ctx, groups, 0, ctx.node_id, items, demand, "f",
                item_width=1,
            )
            return len(got)
        # node 3+ idles instead of relaying — packets to it would error,
        # but the schedule may not use it at all; just idle forever is
        # detected as a protocol error if addressed.
        yield {}
        yield {}
        return None

    res = run_protocol(8, prog)
    # colors 0..2 relay through nodes 0..2, which do their duty: intact.
    assert res.outputs[0] == 3


def test_duplicate_seq_detected_in_unknown_route():
    """route_unknown items may repeat content, but the engine still audits
    edges; flooding one destination beyond capacity raises."""
    groups = ((0, 1),)

    def prog(ctx):
        if ctx.node_id < 2:
            # 9 single-word items to rank 0: degree 18 > n=4 -> lanes; but
            # without item_width the primitive must refuse.
            items = [(0, (k,)) for k in range(9)]
            yield from route_unknown(ctx, groups, 0, ctx.node_id, items, "f")
        else:
            yield from route_unknown(ctx, groups, None, None, [], "f")
        return None

    from repro.core import ModelViolation

    with pytest.raises(ModelViolation):
        run_protocol(4, prog)


def test_edge_conflict_detection_direct():
    def prog(ctx):
        # two generators cannot share an edge, but a single node can also
        # not send two packets to one destination: the dict outbox makes
        # that impossible by construction, so emulate a conflicting merge.
        if ctx.node_id == 0:
            yield {1: packet(1)}
        elif ctx.node_id == 2:
            yield {1: packet(2)}
        else:
            yield {}
        return None

    # distinct sources to one destination is NOT a conflict (different
    # edges) — must succeed.
    res = run_protocol(3, prog)
    assert res.rounds == 1


def test_max_rounds_catches_livelock():
    def prog(ctx):
        while True:
            yield {(ctx.node_id + 1) % ctx.n: packet(1)}

    with pytest.raises(ProtocolError):
        CongestedClique(3, max_rounds=10).run(prog)
