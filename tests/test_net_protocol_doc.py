"""docs/PROTOCOL.md is normative — pin it to the reference codec.

The spec's worked hex examples (between the ``example-begin`` /
``example-end`` and ``example-v2-begin`` / ``example-v2-end`` markers)
are parsed out of the document and driven through the real frame
decoder and protocol classes: the documented bytes must decode to
exactly the handshake documents, request, and summary the prose
describes — and re-encoding those objects must reproduce the
documented bytes. If either direction breaks, the document has drifted
from the implementation (or vice versa) and this test is the tripwire.
"""

import pathlib
import re

from repro.core.engine import RunRequest, RunSummary
from repro.service.net._latest import ProtocolV1
from repro.service.net._v2 import FLAG_CACHED, ProtocolV2
from repro.service.net.framing import (
    FRAME_ACCEPT,
    FRAME_HELLO,
    FRAME_NEGOTIATE,
    FRAME_RESUME,
    FRAME_RESUMED,
    FRAME_SUBMIT,
    FRAME_SUMMARY,
    FrameDecoder,
    control_payload,
    encode_frame,
    Frame,
    parse_control,
)

DOC = pathlib.Path(__file__).resolve().parent.parent / "docs" / "PROTOCOL.md"

#: the exact objects the spec's section 9/10 prose declares.
EXAMPLE_REQUEST = RunRequest(
    kind="routing", family="balanced", n=16, seed=7, engine="fast"
)
EXAMPLE_SUMMARY = RunSummary(
    request=EXAMPLE_REQUEST,
    ok=True,
    engine="fast",
    rounds=16,
    total_packets=240,
    total_words=240,
    max_edge_words=1,
    digest="a3f1c2d4e5b60718",
    wall_s=0.25,
    shared_cache_hits=3,
    shared_cache_misses=1,
    status="completed",
    queue_s=0.125,
    latency_s=0.375,
)

#: the v2 example's lineage and idempotency key (section 10 prose).
EXAMPLE_LINEAGE = "lin-demo"
EXAMPLE_KEY = "k-demo-001"


def _documented_frames(begin="example-begin", end="example-end", count=5):
    """The hex blocks of a worked example, as raw frame bytes."""
    text = DOC.read_text()
    match = re.search(
        rf"<!-- {begin} -->(.*?)<!-- {end} -->", text, re.S
    )
    assert match, f"PROTOCOL.md lost its {begin} markers"
    blocks = re.findall(r"```text\n(.*?)```", match.group(1), re.S)
    assert len(blocks) == count, f"expected {count} frames, found {len(blocks)}"
    return [bytes.fromhex("".join(block.split())) for block in blocks]


def _decode_stream(wire):
    decoder = FrameDecoder()
    decoder.feed(b"".join(wire))
    frames = []
    while True:
        frame = decoder.next_frame()
        if frame is None:
            break
        frames.append(frame)
    decoder.eof()
    return frames


def test_documented_hex_decodes_to_the_described_exchange():
    frames = _decode_stream(_documented_frames())
    assert [f.type for f in frames] == [
        FRAME_HELLO,
        FRAME_NEGOTIATE,
        FRAME_ACCEPT,
        FRAME_SUBMIT,
        FRAME_SUMMARY,
    ]
    hello, negotiate, accept, submit, summary = frames

    doc = parse_control(hello.payload)
    assert doc == {
        "engine": "fast",
        "max_frame": 8388608,
        "quota": 64,
        "server": "repro.service.net",
        "versions": [0, 1, 2],
    }
    assert parse_control(negotiate.payload) == {"version": 1}
    assert parse_control(accept.payload) == {
        "quota": 64,
        "session": 1,
        "version": 1,
    }

    channel, requests = ProtocolV1.decode_submit(submit)
    assert channel == 1
    assert requests == [EXAMPLE_REQUEST]

    assert ProtocolV1.summary_channel(summary) == 1
    decoded = ProtocolV1.decode_summary(summary, requests)
    assert decoded == [EXAMPLE_SUMMARY]


def test_described_exchange_reencodes_to_the_documented_hex():
    """The reverse direction: encoding the prose's objects through the
    reference codec must reproduce the documented bytes exactly —
    canonical JSON and columnar determinism are what make the example
    byte-stable."""
    wire = _documented_frames()
    hello = encode_frame(
        Frame(
            FRAME_HELLO,
            control_payload(
                {
                    "engine": "fast",
                    "max_frame": 8388608,
                    "quota": 64,
                    "server": "repro.service.net",
                    "versions": [0, 1, 2],
                }
            ),
        )
    )
    negotiate = encode_frame(
        Frame(FRAME_NEGOTIATE, control_payload({"version": 1}))
    )
    accept = encode_frame(
        Frame(
            FRAME_ACCEPT,
            control_payload({"quota": 64, "session": 1, "version": 1}),
        )
    )
    submit = encode_frame(ProtocolV1.encode_submit(1, [EXAMPLE_REQUEST]))
    summary = encode_frame(
        ProtocolV1.encode_summary(1, [EXAMPLE_SUMMARY])
    )
    assert [hello, negotiate, accept, submit, summary] == wire


def test_documented_v2_hex_decodes_to_the_described_exchange():
    """Section 10: RESUME/RESUMED, a keyed SUBMIT, a cached SUMMARY."""
    frames = _decode_stream(
        _documented_frames("example-v2-begin", "example-v2-end", count=4)
    )
    assert [f.type for f in frames] == [
        FRAME_RESUME,
        FRAME_RESUMED,
        FRAME_SUBMIT,
        FRAME_SUMMARY,
    ]
    resume, resumed, submit, summary = frames

    assert parse_control(resume.payload) == {"lineage": EXAMPLE_LINEAGE}
    assert parse_control(resumed.payload) == {
        "cached": [EXAMPLE_KEY],
        "lineage": EXAMPLE_LINEAGE,
        "resumed": True,
        "session": 2,
    }

    channel, key, requests = ProtocolV2.decode_submit_ex(submit)
    assert channel == 1
    assert key == EXAMPLE_KEY
    assert requests == [EXAMPLE_REQUEST]

    assert ProtocolV2.summary_channel(summary) == 1
    assert summary.flags == FLAG_CACHED
    assert ProtocolV2.summary_cached(summary)
    decoded = ProtocolV2.decode_summary(summary, requests)
    assert decoded == [EXAMPLE_SUMMARY]


def test_described_v2_exchange_reencodes_to_the_documented_hex():
    wire = _documented_frames(
        "example-v2-begin", "example-v2-end", count=4
    )
    resume = encode_frame(
        Frame(FRAME_RESUME, control_payload({"lineage": EXAMPLE_LINEAGE}))
    )
    resumed = encode_frame(
        Frame(
            FRAME_RESUMED,
            control_payload(
                {
                    "cached": [EXAMPLE_KEY],
                    "lineage": EXAMPLE_LINEAGE,
                    "resumed": True,
                    "session": 2,
                }
            ),
        )
    )
    submit = encode_frame(
        ProtocolV2.encode_submit(1, [EXAMPLE_REQUEST], EXAMPLE_KEY)
    )
    # a cached answer re-frames the original envelope bytes: encoding
    # the summary and wrapping it cached=True must match the doc.
    envelope = ProtocolV2.summary_envelope([EXAMPLE_SUMMARY])
    summary = encode_frame(ProtocolV2.wrap_summary(1, envelope, cached=True))
    assert [resume, resumed, submit, summary] == wire


def test_spec_constants_match_the_implementation():
    """Spot-check the prose tables against the code's constants: frame
    type values, magic, and the header size named in section 2."""
    from repro.service.net import framing

    text = DOC.read_text()
    for name, value in framing.FRAME_NAMES.items():
        assert re.search(
            rf"\| 0x{name:02x} \| {value}\b", text, re.I
        ), f"frame table is missing {value} (0x{name:02x})"
    assert 'b"RN"' in text
    assert framing.MAGIC == b"RN"
    assert framing.HEADER_BYTES == 8
