"""docs/PROTOCOL.md is normative — pin it to the reference codec.

The spec's worked hex example (between the ``example-begin`` /
``example-end`` markers) is parsed out of the document and driven
through the real frame decoder and protocol classes: the documented
bytes must decode to exactly the handshake documents, request, and
summary the prose describes — and re-encoding those objects must
reproduce the documented bytes. If either direction breaks, the
document has drifted from the implementation (or vice versa) and this
test is the tripwire.
"""

import pathlib
import re

from repro.core.engine import RunRequest, RunSummary
from repro.service.net._latest import ProtocolLatest
from repro.service.net.framing import (
    FRAME_ACCEPT,
    FRAME_HELLO,
    FRAME_NEGOTIATE,
    FRAME_SUBMIT,
    FRAME_SUMMARY,
    FrameDecoder,
    control_payload,
    encode_frame,
    Frame,
    parse_control,
)

DOC = pathlib.Path(__file__).resolve().parent.parent / "docs" / "PROTOCOL.md"

#: the exact objects the spec's section 9 prose declares.
EXAMPLE_REQUEST = RunRequest(
    kind="routing", family="balanced", n=16, seed=7, engine="fast"
)
EXAMPLE_SUMMARY = RunSummary(
    request=EXAMPLE_REQUEST,
    ok=True,
    engine="fast",
    rounds=16,
    total_packets=240,
    total_words=240,
    max_edge_words=1,
    digest="a3f1c2d4e5b60718",
    wall_s=0.25,
    shared_cache_hits=3,
    shared_cache_misses=1,
    status="completed",
    queue_s=0.125,
    latency_s=0.375,
)


def _documented_frames():
    """The hex blocks of the worked example, as raw frame bytes."""
    text = DOC.read_text()
    match = re.search(
        r"<!-- example-begin -->(.*?)<!-- example-end -->", text, re.S
    )
    assert match, "PROTOCOL.md lost its example markers"
    blocks = re.findall(r"```text\n(.*?)```", match.group(1), re.S)
    assert len(blocks) == 5, f"expected 5 frames, found {len(blocks)}"
    return [bytes.fromhex("".join(block.split())) for block in blocks]


def test_documented_hex_decodes_to_the_described_exchange():
    wire = _documented_frames()
    decoder = FrameDecoder()
    decoder.feed(b"".join(wire))
    frames = []
    while True:
        frame = decoder.next_frame()
        if frame is None:
            break
        frames.append(frame)
    decoder.eof()
    assert [f.type for f in frames] == [
        FRAME_HELLO,
        FRAME_NEGOTIATE,
        FRAME_ACCEPT,
        FRAME_SUBMIT,
        FRAME_SUMMARY,
    ]
    hello, negotiate, accept, submit, summary = frames

    doc = parse_control(hello.payload)
    assert doc == {
        "engine": "fast",
        "max_frame": 8388608,
        "quota": 64,
        "server": "repro.service.net",
        "versions": [0, 1],
    }
    assert parse_control(negotiate.payload) == {"version": 1}
    assert parse_control(accept.payload) == {
        "quota": 64,
        "session": 1,
        "version": 1,
    }

    channel, requests = ProtocolLatest.decode_submit(submit)
    assert channel == 1
    assert requests == [EXAMPLE_REQUEST]

    assert ProtocolLatest.summary_channel(summary) == 1
    decoded = ProtocolLatest.decode_summary(summary, requests)
    assert decoded == [EXAMPLE_SUMMARY]


def test_described_exchange_reencodes_to_the_documented_hex():
    """The reverse direction: encoding the prose's objects through the
    reference codec must reproduce the documented bytes exactly —
    canonical JSON and columnar determinism are what make the example
    byte-stable."""
    wire = _documented_frames()
    hello = encode_frame(
        Frame(
            FRAME_HELLO,
            control_payload(
                {
                    "engine": "fast",
                    "max_frame": 8388608,
                    "quota": 64,
                    "server": "repro.service.net",
                    "versions": [0, 1],
                }
            ),
        )
    )
    negotiate = encode_frame(
        Frame(FRAME_NEGOTIATE, control_payload({"version": 1}))
    )
    accept = encode_frame(
        Frame(
            FRAME_ACCEPT,
            control_payload({"quota": 64, "session": 1, "version": 1}),
        )
    )
    submit = encode_frame(ProtocolLatest.encode_submit(1, [EXAMPLE_REQUEST]))
    summary = encode_frame(
        ProtocolLatest.encode_summary(1, [EXAMPLE_SUMMARY])
    )
    assert [hello, negotiate, accept, submit, summary] == wire


def test_spec_constants_match_the_implementation():
    """Spot-check the prose tables against the code's constants: frame
    type values, magic, and the header size named in section 2."""
    from repro.service.net import framing

    text = DOC.read_text()
    for name, value in framing.FRAME_NAMES.items():
        assert re.search(
            rf"\| 0x{name:02x} \| {value}\b", text, re.I
        ), f"frame table is missing {value} (0x{name:02x})"
    assert 'b"RN"' in text
    assert framing.MAGIC == b"RN"
    assert framing.HEADER_BYTES == 8
