"""Unit tests for Algorithm 1+2 helper functions and wire encoding."""

from repro.core.message import unpack_triple
from repro.routing.lenzen import (
    _color_pairs,
    _mod_s_demand,
    _recv_bundled,
    _send_bundled,
    _step4_demand,
    _unwire,
    _wire,
    header_base,
)
from repro.routing.problem import Message
from repro.core.message import Packet


def test_wire_roundtrip():
    base = header_base(16, 16)
    m = Message(source=3, dest=11, seq=7, payload=123)
    assert _unwire(_wire(m, base), base) == m


def test_wire_roundtrip_relaxed_seq():
    base = header_base(16, 32)  # seq up to 31
    m = Message(source=15, dest=0, seq=31, payload=9)
    assert _unwire(_wire(m, base), base) == m


def test_color_pairs_covers_demand():
    demand = ((2, 1), (1, 2))
    pairs = _color_pairs(demand)
    assert len(pairs[(0, 0)]) == 2
    assert len(pairs[(0, 1)]) == 1
    # proper: colors at a left vertex are distinct
    for a in range(2):
        seen = []
        for b in range(2):
            seen.extend(pairs.get((a, b), []))
        assert len(seen) == len(set(seen))


def test_mod_s_demand_row_sums():
    pairs = _color_pairs(((3, 1), (1, 3)))
    demand = _mod_s_demand(pairs, 2)
    # every message lands somewhere; rows sum to each sender's holdings
    assert sum(demand[0]) == 4
    assert sum(demand[1]) == 4


def test_step4_demand_counts_all_messages():
    s = 2
    counts = [[2, 2], [2, 2]]  # group totals = ((4, 4)) per dest group
    totals = ((4, 4), (4, 4))
    colors = _color_pairs(totals)
    d = _step4_demand(s, counts, colors, g=0)
    assert sum(sum(row) for row in d) == 8  # all of group 0's messages


def test_send_recv_bundled_roundtrip():
    segs = {3: [(1, 2), (3, 4)], 5: [(7, 8)]}
    outbox = _send_bundled(segs, 2, capacity=8)
    assert set(outbox) == {3, 5}
    assert outbox[3].words == (1, 2, 3, 4)
    inbox = {0: outbox[3], 1: outbox[5]}
    msgs = _recv_bundled(inbox, 2)
    assert sorted(msgs) == [(1, 2), (3, 4), (7, 8)]


def test_send_bundled_capacity_guard():
    import pytest

    from repro.core import ModelViolation

    segs = {0: [(i, i) for i in range(5)]}
    with pytest.raises(ModelViolation):
        _send_bundled(segs, 2, capacity=8)


def test_recv_bundled_rejects_ragged():
    import pytest

    from repro.core import ProtocolError

    with pytest.raises(ProtocolError):
        _recv_bundled({0: Packet((1, 2, 3))}, 2)


def test_header_base_covers_seq():
    assert header_base(16, 16) == 16
    assert header_base(16, 40) == 40
    base = header_base(9, 18)
    w = _wire(Message(8, 8, 17, 5), base)
    assert unpack_triple(w[0], base) == (8, 8, 17)
