"""Metrics: round stats, phase spans, operation meters."""

import math

from repro.core.metrics import (
    MeterReport,
    OperationMeter,
    RoundStats,
    RunStats,
    collect_meters,
)


def test_round_stats_accumulate():
    rs = RoundStats(0)
    rs.record_packet(3)
    rs.record_packet(5)
    rs.record_packet(2)
    assert rs.packets == 3
    assert rs.words == 10
    assert rs.max_words_on_edge == 5


def test_run_stats_commit():
    stats = RunStats(n=4)
    r = stats.begin_round(0)
    r.record_packet(2)
    stats.commit_round(r)
    r = stats.begin_round(1)
    stats.commit_round(r)
    assert stats.rounds == 2
    assert stats.total_packets == 1
    assert stats.total_words == 2
    assert len(stats.per_round) == 2


def test_meter_charges():
    m = OperationMeter()
    m.charge(5)
    m.charge()
    assert m.steps == 6
    m.observe_live_words(10)
    m.observe_live_words(4)
    assert m.peak_live_words == 10


def test_meter_charge_sort():
    m = OperationMeter()
    m.charge_sort(1)
    assert m.steps == 1
    m2 = OperationMeter()
    m2.charge_sort(16)
    assert m2.steps == int(16 * math.log2(16)) + 16


def test_collect_meters_with_none():
    a = OperationMeter()
    a.charge(10)
    a.observe_live_words(7)
    report = collect_meters([a, None])
    assert report.steps_per_node == [10, 0]
    assert report.max_steps == 10
    assert report.max_peak_words == 7


def test_report_normalizations():
    report = MeterReport(steps_per_node=[160], peak_words_per_node=[32])
    n = 16
    assert report.normalized_steps(n) == 160 / (16 * 4)
    assert report.normalized_words(n) == 2.0
    tiny = MeterReport([3], [0])
    assert tiny.normalized_steps(1) == 3.0


def test_empty_report():
    report = collect_meters([])
    assert report.max_steps == 0
    assert report.max_peak_words == 0
