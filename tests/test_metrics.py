"""Metrics: round stats, phase spans, operation meters."""

import math

from repro.core.metrics import (
    MeterReport,
    OperationMeter,
    RoundStats,
    RunStats,
    collect_meters,
)


def test_round_stats_accumulate():
    rs = RoundStats(0)
    rs.record_packet(3)
    rs.record_packet(5)
    rs.record_packet(2)
    assert rs.packets == 3
    assert rs.words == 10
    assert rs.max_words_on_edge == 5


def test_run_stats_commit():
    stats = RunStats(n=4)
    r = stats.begin_round(0)
    r.record_packet(2)
    stats.commit_round(r)
    r = stats.begin_round(1)
    stats.commit_round(r)
    assert stats.rounds == 2
    assert stats.total_packets == 1
    assert stats.total_words == 2
    assert len(stats.per_round) == 2


def test_meter_charges():
    m = OperationMeter()
    m.charge(5)
    m.charge()
    assert m.steps == 6
    m.observe_live_words(10)
    m.observe_live_words(4)
    assert m.peak_live_words == 10


def test_meter_charge_sort():
    m = OperationMeter()
    m.charge_sort(1)
    assert m.steps == 1
    m2 = OperationMeter()
    m2.charge_sort(16)
    assert m2.steps == int(16 * math.log2(16)) + 16


def test_collect_meters_with_none():
    a = OperationMeter()
    a.charge(10)
    a.observe_live_words(7)
    report = collect_meters([a, None])
    assert report.steps_per_node == [10, 0]
    assert report.max_steps == 10
    assert report.max_peak_words == 7


def test_report_normalizations():
    report = MeterReport(steps_per_node=[160], peak_words_per_node=[32])
    n = 16
    assert report.normalized_steps(n) == 160 / (16 * 4)
    assert report.normalized_words(n) == 2.0
    tiny = MeterReport([3], [0])
    assert tiny.normalized_steps(1) == 3.0


def test_empty_report():
    report = collect_meters([])
    assert report.max_steps == 0
    assert report.max_peak_words == 0


# -- latency histogram (the streaming gateway's metrics core) ----------------


def test_latency_histogram_percentiles_track_known_distribution():
    from repro.core.metrics import LatencyHistogram

    h = LatencyHistogram()
    # 1..1000 ms, uniformly: p50 ~ 500ms, p95 ~ 950ms, p99 ~ 990ms.
    for i in range(1, 1001):
        h.record(i / 1000.0)
    assert h.count == 1000
    assert abs(h.mean_s - 0.5005) < 1e-9
    # Geometric buckets grow ~19% per step: accept one bucket of error.
    assert 0.42 <= h.percentile(50) <= 0.60
    assert 0.80 <= h.percentile(95) <= 1.0
    assert 0.85 <= h.percentile(99) <= 1.0
    assert h.percentile(0) == h.min_s
    assert h.percentile(100) == h.max_s == 1.0


def test_latency_histogram_merge_and_clamping():
    from repro.core.metrics import LatencyHistogram

    a = LatencyHistogram()
    b = LatencyHistogram()
    for _ in range(10):
        a.record(0.010)
        b.record(0.100)
    a.merge(b)
    assert a.count == 20
    assert a.min_s == 0.010 and a.max_s == 0.100
    assert 0.005 <= a.percentile(50) <= 0.05
    # Out-of-span samples clamp instead of raising.
    a.record(-1.0)
    a.record(10_000.0)
    assert a.count == 22
    assert a.min_s == 0.0
    assert a.max_s == 10_000.0


def test_latency_histogram_empty_and_errors():
    import pytest

    from repro.core.metrics import LatencyHistogram

    h = LatencyHistogram()
    assert h.count == 0
    assert h.percentile(50) == 0.0
    assert h.mean_s == 0.0
    summary = h.summary()
    assert summary["count"] == 0
    assert summary["p99_ms"] == 0.0
    with pytest.raises(ValueError):
        h.percentile(101)
    with pytest.raises(ValueError):
        LatencyHistogram(low_s=1.0, high_s=0.5)
    with pytest.raises(ValueError):
        LatencyHistogram(growth=1.0)
    other = LatencyHistogram(low_s=1e-3)
    with pytest.raises(ValueError, match="different buckets"):
        h.merge(other)


def test_latency_histogram_summary_shape():
    from repro.core.metrics import LatencyHistogram

    h = LatencyHistogram()
    for ms in (1, 2, 5, 40):
        h.record(ms / 1000.0)
    s = h.summary()
    assert set(s) == {
        "count", "mean_ms", "min_ms", "p50_ms", "p95_ms", "p99_ms", "max_ms"
    }
    assert s["count"] == 4
    assert s["min_ms"] <= s["p50_ms"] <= s["p95_ms"] <= s["p99_ms"] <= s["max_ms"]
