"""Engine error paths, exercised on every registered engine.

The model violations the reference engine audits loudly must not turn into
silent corruption or foreign exceptions on the fast path: duplicate sends
(`EdgeConflict` via outbox merging and idle-round auditing), packets to
finished nodes (`ProtocolError`), livelock (`max_rounds` abort), invalid
destinations and malformed outboxes (`ModelViolation`), and capacity /
word-size violations when validation is on.
"""

import pytest

from repro.core import (
    CapacityExceeded,
    CongestedClique,
    EdgeConflict,
    FastEngine,
    ModelViolation,
    Packet,
    ProtocolError,
    WordSizeViolation,
    idle,
    merge_outboxes,
    packet,
    run_protocol,
)

#: engines whose error behavior must match; "fast-audit" validates every
#: packet, plain "fast" samples (stride 1 in these tests would be identical).
ENGINES = ["reference", "fast", "fast-audit"]

#: engines that audit every packet (capacity/word-size tests need this).
AUDITING_ENGINES = ["reference", "fast-audit"]


@pytest.mark.parametrize("engine", ENGINES)
def test_max_rounds_abort(engine):
    def prog(ctx):
        while True:
            yield {}

    with pytest.raises(ProtocolError, match="max_rounds"):
        CongestedClique(3, max_rounds=7, engine=engine).run(prog)


@pytest.mark.parametrize("engine", ENGINES)
def test_max_rounds_boundary_passes(engine):
    def prog(ctx):
        for _ in range(7):
            yield {}
        return "done"

    res = CongestedClique(2, max_rounds=7, engine=engine).run(prog)
    assert res.outputs == ["done", "done"]
    assert res.rounds == 7


@pytest.mark.parametrize("engine", ENGINES)
def test_packet_to_finished_node(engine):
    def prog(ctx):
        if ctx.node_id == 1:
            return "early"
        yield {}  # round 1: node 1 is already finished
        yield {1: packet(9)}  # round 2: delivery to a finished node
        return "late"

    with pytest.raises(ProtocolError, match="finished node 1"):
        run_protocol(3, prog, engine=engine)


@pytest.mark.parametrize("engine", ENGINES)
def test_packet_to_node_finishing_same_round_is_fine(engine):
    def prog(ctx):
        if ctx.node_id == 1:
            inbox = yield {}
            return sorted(p.words[0] for p in inbox.values())
        yield {1: packet(ctx.node_id)}
        return None

    res = run_protocol(3, prog, engine=engine)
    assert res.outputs[1] == [0, 2]


@pytest.mark.parametrize("engine", ENGINES)
def test_invalid_destination(engine):
    def prog(ctx):
        yield {ctx.n + 7: packet(1)}

    with pytest.raises(ModelViolation, match="invalid destination"):
        run_protocol(3, prog, engine=engine)


@pytest.mark.parametrize("engine", ENGINES + ["fast-unchecked"])
def test_float_destination_rejected_even_when_it_hashes_like_a_node(engine):
    # Regression: 1.0 == 1 hashes equal to a live node id; a set-membership
    # check alone would deliver it silently on the fast path.
    def prog(ctx):
        yield {1.0: packet(7)}
        yield {}

    with pytest.raises(ModelViolation, match="invalid destination"):
        run_protocol(2, prog, engine=engine)


@pytest.mark.parametrize("engine", AUDITING_ENGINES)
def test_duck_typed_packet_rejected_by_full_audit(engine):
    # An object that merely *looks* like a Packet (has .words) must not pass
    # the full audit.
    class FakePacket:
        words = (1, 2)

    def prog(ctx):
        yield {0: FakePacket()}
        yield {}

    with pytest.raises(ModelViolation, match="non-packet"):
        run_protocol(2, prog, engine=engine)


@pytest.mark.parametrize("engine", ENGINES)
def test_non_dict_outbox(engine):
    def prog(ctx):
        yield [packet(1)]

    with pytest.raises(ModelViolation):
        run_protocol(2, prog, engine=engine)


@pytest.mark.parametrize("engine", ENGINES)
def test_non_packet_value(engine):
    def prog(ctx):
        yield {0: "hello"}

    with pytest.raises(ModelViolation, match="non-packet"):
        run_protocol(2, prog, engine=engine)


@pytest.mark.parametrize("engine", ENGINES)
def test_tuple_payload_coerced_to_packet(engine):
    def prog(ctx):
        inbox = yield {ctx.node_id: (4, 5)}
        return inbox[ctx.node_id].words

    res = run_protocol(2, prog, engine=engine)
    assert res.outputs == [(4, 5), (4, 5)]


@pytest.mark.parametrize("engine", AUDITING_ENGINES)
def test_capacity_exceeded(engine):
    def prog(ctx):
        yield {0: Packet(tuple(range(ctx.capacity + 1)))}

    with pytest.raises(CapacityExceeded):
        run_protocol(2, prog, capacity=4, engine=engine)


@pytest.mark.parametrize("engine", AUDITING_ENGINES)
def test_word_size_violation(engine):
    def prog(ctx):
        yield {0: packet(10 ** 60)}

    with pytest.raises(WordSizeViolation):
        run_protocol(2, prog, engine=engine)


def test_sampled_validation_still_audits_first_packet():
    # The sampling stride starts at packet 0, so the very first model
    # violation in a run is always caught even in sampled mode.
    def prog(ctx):
        yield {0: packet(10 ** 60)}

    with pytest.raises(WordSizeViolation):
        run_protocol(2, prog, engine=FastEngine(validation="sampled"))


def test_unchecked_engine_skips_the_audit():
    # Documented trade-off: "fast-unchecked" lets oversize words through.
    def prog(ctx):
        inbox = yield {0: packet(10 ** 60)}
        return len(inbox)

    res = run_protocol(2, prog, engine="fast-unchecked")
    assert res.outputs[0] == 2


@pytest.mark.parametrize("engine", ENGINES)
def test_duplicate_sends_rejected_by_merge(engine):
    # One generator cannot put two packets on an edge (outboxes are keyed by
    # destination), so duplicate sends arise when merging edge-disjoint
    # activities that turn out not to be disjoint.  The engine runs the
    # protocol; merge_outboxes raises inside it.
    def prog(ctx):
        parts = [{0: packet(1)}, {0: packet(2)}]
        yield merge_outboxes(parts)

    with pytest.raises(EdgeConflict, match="not edge-disjoint"):
        run_protocol(2, prog, engine=engine)


def test_merge_outboxes_conflict_detection_unit():
    assert merge_outboxes([{0: packet(1)}, {1: packet(2)}]) == {
        0: packet(1),
        1: packet(2),
    }
    with pytest.raises(EdgeConflict):
        merge_outboxes([{2: packet(1)}, {2: packet(1)}])


@pytest.mark.parametrize("engine", ENGINES)
def test_idle_node_receiving_traffic_is_a_conflict(engine):
    def prog(ctx):
        if ctx.node_id == 0:
            yield from idle(2)
        else:
            yield {}
            yield {0: packet(3)}

    with pytest.raises(EdgeConflict, match="while idle"):
        run_protocol(2, prog, engine=engine)
