"""Chaos harness: fault transport, containment, recovery, digest parity.

The ISSUE 6 gates in test form: poison requests resolve as failed (never
completed), a SIGKILLed pool worker breaks neither the gateway nor the
batch service (pool replaced, judged summaries still reported), and the
digests over surviving runs stay byte-identical to a sequential
re-execution.
"""

import time

import pytest

from repro.core import RunRequest
from repro.core.engine import STATUS_COMPLETED, STATUS_FAILED
from repro.scenarios import mixed_batch
from repro.service import (
    CHAOS_TAG_PREFIX,
    BatchService,
    ChaosFault,
    ChaosPlan,
    apply_fault,
    build_chaos_plan,
    inject,
    requests_from_scenarios,
    run_chaos,
    serve,
)
from repro.service.chaos import main as chaos_main
from repro.service.stream import structural_warmup
from repro.service.transport import ShmArena

SMALL_SIZES = dict(
    routing_sizes=(16,), sorting_sizes=(16,), multiplex_sizes=(16,)
)


def _requests(batch, engine="fast", seed0=900):
    return requests_from_scenarios(
        mixed_batch(batch, seed0=seed0, **SMALL_SIZES), engine=engine
    )


# -- fault transport ----------------------------------------------------------


def test_inject_arms_the_envelope_tag():
    req = _requests(1)[0]
    assert inject(req, "poison").tag == f"{CHAOS_TAG_PREFIX}poison"
    assert inject(req, "slow:25").tag == f"{CHAOS_TAG_PREFIX}slow:25"
    # The armed request is a new envelope; the original is untouched.
    assert req.tag == ""


def test_apply_fault_semantics():
    with pytest.raises(ChaosFault, match="poison"):
        apply_fault(f"{CHAOS_TAG_PREFIX}poison")
    with pytest.raises(ChaosFault, match="unknown chaos fault"):
        apply_fault(f"{CHAOS_TAG_PREFIX}meteor")
    with pytest.raises(ChaosFault, match="malformed slow"):
        apply_fault(f"{CHAOS_TAG_PREFIX}slow:soon")
    t0 = time.perf_counter()
    apply_fault(f"{CHAOS_TAG_PREFIX}slow:30")  # sleeps, then returns
    assert time.perf_counter() - t0 >= 0.030


def test_slow_fault_completes_with_correct_digest():
    """A straggler is delayed, not corrupted: same digest as its clean
    twin, just later."""
    req = _requests(1)[0]
    report = serve(
        [inject(req, "slow:40")], [0.0], workers=1, backend="thread",
        warmup=False,
    )
    (slowed,) = report.summaries
    assert slowed.status == STATUS_COMPLETED and slowed.ok
    assert slowed.latency_s >= 0.040
    baseline = BatchService(workers=0).run_batch([req])
    assert slowed.digest == baseline.summaries[0].digest


def test_warmup_passes_skip_chaos_requests():
    """Warmup/prefetch execute in the parent process — a chaos:kill there
    would take down the gateway itself, so armed requests never warm."""
    requests = [inject(r, "poison") for r in _requests(4)]
    assert structural_warmup(requests) == []
    service = BatchService(workers=2)
    assert service._prefetch_indices(requests) == []


# -- containment in the gateway ----------------------------------------------


def test_poison_request_fails_cleanly_in_gateway():
    requests = _requests(4)
    requests[1] = inject(requests[1], "poison")
    report = serve(
        requests, [0.0] * 4, workers=2, backend="thread", policy="block",
        warmup=False,
    )
    poisoned = report.summaries[1]
    assert poisoned.status == STATUS_FAILED
    assert not poisoned.ok and not poisoned.resolved
    assert "ChaosFault" in poisoned.error
    assert len(report.completed) == 3
    assert report.metrics["failed"] == 1
    assert report.metrics["latency"]["count"] == 3  # success p99 untouched
    baseline = BatchService(workers=0).run_batch(
        [s.request for s in report.completed]
    )
    assert report.stream_digest() == baseline.batch_digest()


# -- pool death mid-batch (satellite regression) ------------------------------


def test_pool_death_mid_batch_reports_judged_summaries():
    """Regression: a worker dying mid-batch used to surface as a raw
    ``BrokenProcessPool`` out of ``BatchService.execute`` — already-judged
    summaries were lost with it.  Now every request resolves, the pool is
    replaced, the batch digest covers exactly the resolved runs, and those
    runs match a sequential re-execution byte for byte."""
    requests = _requests(8)
    requests[4] = inject(requests[4], "kill")
    service = BatchService(workers=2, warmup=False, chunk=2)
    report = service.run_batch(requests)

    assert len(report.summaries) == len(requests)  # nothing lost
    assert not report.ok
    killed = report.summaries[4]
    assert killed.status == STATUS_FAILED and not killed.resolved
    assert "pool died mid-batch" in killed.error
    assert report.pool_replacements >= 1
    assert report.unresolved  # the dead chunk(s)
    resolved = [s for s in report.summaries if s.resolved]
    assert resolved  # chunks judged before the kill are still reported
    assert all(s.status == STATUS_COMPLETED for s in resolved)

    baseline = BatchService(workers=0).run_batch(
        [s.request for s in resolved]
    )
    assert baseline.ok
    assert baseline.batch_digest() == report.batch_digest()
    assert report.to_dict()["pool_replacements"] >= 1


# -- the harness --------------------------------------------------------------


def test_build_chaos_plan_layout():
    plan = build_chaos_plan(
        12, kills=1, poisons=2, straggler_frac=0.25, seed=5
    )
    assert len(plan.requests) == 12
    assert plan.kill_indices == [4]
    assert len(plan.poison_indices) == 2
    assert plan.straggler_indices  # 25% of the 9 clean ones
    untouched = (
        set(range(12))
        - set(plan.fault_indices)
        - set(plan.straggler_indices)
    )
    for i in untouched:
        assert plan.requests[i] == plan.clean[i]
    for i in plan.kill_indices:
        assert plan.requests[i].tag == f"{CHAOS_TAG_PREFIX}kill"
    with pytest.raises(ValueError, match="at least"):
        build_chaos_plan(3, kills=2, poisons=1)


def test_run_chaos_rejects_kills_on_thread_backend():
    with pytest.raises(ValueError, match="process backend"):
        run_chaos(count=8, kills=1, backend="thread", compare_clean=False)


def test_run_chaos_gates_pass_with_worker_kill():
    """The headline gate: a live gateway survives a SIGKILLed pool worker
    — pool replaced, later requests complete, surviving digests correct."""
    requests = _requests(10, seed0=77)
    armed = list(requests)
    armed[3] = inject(armed[3], "kill")
    armed[6] = inject(armed[6], "poison")
    plan = ChaosPlan(
        requests=armed,
        clean=requests,
        kill_indices=[3],
        poison_indices=[6],
    )
    report = run_chaos(plan, workers=2, compare_clean=False)
    assert report.ok, report.gates
    assert report.pool_replacements >= 1
    assert report.counts["post_kill_completed"] >= 1
    assert report.chaos_digest == report.baseline_digest
    doc = report.to_dict()
    assert doc["ok"] is True
    assert set(doc["gates"]) == {
        "recovered", "faults_contained", "digests_correct", "p99_bounded",
        "shm_leak_free",
    }
    assert doc["gates"]["shm_leak_free"] is True


def test_worker_kill_leaks_no_shm_segments():
    """A SIGKILLed worker must not strand shared-memory segments: slots are
    parent-owned, so the dead child can at worst leave a slot marked in-use
    until the envelope is abandoned — never an unlinked-but-live segment."""
    before = set(ShmArena.live_segments())
    requests = _requests(8, seed0=31)
    requests[2] = inject(requests[2], "kill")
    service = BatchService(workers=2, warmup=False, chunk=2, transport="shm")
    report = service.run_batch(requests)
    assert report.pool_replacements >= 1  # the kill actually landed
    after = set(ShmArena.live_segments())
    assert after <= before, f"leaked shm segments: {sorted(after - before)}"


# -- CLI ----------------------------------------------------------------------


def test_chaos_cli_rejects_impossible_plan(capsys):
    with pytest.raises(SystemExit) as exc:
        chaos_main(["--requests", "3", "--kills", "2", "--poisons", "1"])
    assert exc.value.code == 2
    assert "at least" in capsys.readouterr().err
