"""Corollary 4.6, selection/median/mode, and Section 6 extensions."""

from collections import Counter

import pytest

from repro.core import InvalidInstance
from repro.extensions import (
    ROUNDS_SMALL_KEYS,
    SmallKeyLayout,
    WideMessage,
    route_wide_messages,
    sort_small_keys,
)
from repro.routing import uniform_instance
from repro.sorting import (
    ROUNDS_INDEXING,
    duplicate_heavy_instance,
    index_keys,
    median,
    mode,
    select_kth,
    uniform_sort_instance,
    verify_indices,
)


# ----------------------------------------------------- Corollary 4.6 ----
def test_indexing_rounds_and_correctness():
    inst = duplicate_heavy_instance(16, distinct=5, seed=2)
    res = index_keys(inst)
    verify_indices(inst, res.outputs)
    assert res.rounds == ROUNDS_INDEXING


def test_indexing_distinct_keys():
    inst = uniform_sort_instance(16, seed=9)
    res = index_keys(inst)
    verify_indices(inst, res.outputs)


def test_indexing_single_value():
    from repro.sorting import SortInstance

    inst = SortInstance(9, [[2] * 9 for _ in range(9)], key_universe=4)
    res = index_keys(inst)
    verify_indices(inst, res.outputs)  # every key has dedup index 0


# ------------------------------------------------- selection / mode ----
def test_selection_all_ranks_sampled():
    inst = uniform_sort_instance(9, seed=4)
    ordered = sorted(k for ks in inst.keys_by_node for k in ks)
    for k in (0, 40, 80):
        res = select_kth(inst, k)
        assert all(o == ordered[k] for o in res.outputs)


def test_selection_rejects_bad_rank():
    inst = uniform_sort_instance(9, seed=4)
    with pytest.raises(ValueError):
        select_kth(inst, 81)


def test_median():
    inst = uniform_sort_instance(9, seed=6)
    ordered = sorted(k for ks in inst.keys_by_node for k in ks)
    res = median(inst)
    assert all(o == ordered[len(ordered) // 2] for o in res.outputs)


def test_mode_duplicates():
    inst = duplicate_heavy_instance(16, distinct=4, seed=7)
    counts = Counter(k for ks in inst.keys_by_node for k in ks)
    best = max(counts.items(), key=lambda kv: (kv[1], -kv[0]))
    res = mode(inst)
    assert all(o == best for o in res.outputs)


# ------------------------------------------------------ Section 6.3 ----
def test_small_keys_two_rounds_and_counts():
    import random

    n, K, maxc = 100, 4, 7
    rng = random.Random(1)
    counts = [[rng.randint(0, maxc) for _ in range(K)] for _ in range(n)]
    res = sort_small_keys(n, counts, K, maxc)
    assert res.rounds == ROUNDS_SMALL_KEYS
    totals = [sum(counts[v][k] for v in range(n)) for k in range(K)]
    for v in range(n):
        assert res.outputs[v]["totals"] == totals


def test_small_keys_ranks_form_permutation():
    import random

    n, K, maxc = 64, 2, 3
    rng = random.Random(2)
    counts = [[rng.randint(0, maxc) for _ in range(K)] for _ in range(n)]
    res = sort_small_keys(n, counts, K, maxc)
    ranks = []
    for v in range(n):
        for k, rr in res.outputs[v]["ranks"].items():
            ranks.extend((r, k, v) for r in rr)
    ranks.sort()
    assert [r for r, _, _ in ranks] == list(range(len(ranks)))
    # ordered by key first, then node id
    assert [k for _, k, _ in ranks] == sorted(k for _, k, _ in ranks)


def test_small_keys_layout_guard():
    with pytest.raises(InvalidInstance):
        SmallKeyLayout(n=10, num_keys=4, max_count=7)


def test_small_keys_layout_roundtrip():
    layout = SmallKeyLayout(n=100, num_keys=3, max_count=7)
    for key in range(3):
        for bit in range(layout.count_bits):
            for copy in range(layout.sum_bits):
                node = layout.handler(key, bit, copy)
                assert layout.decode(node) == (key, bit, copy)
    assert layout.decode(99) is None


# ------------------------------------------------------ Section 6.1 ----
@pytest.mark.parametrize("sequential", [False, True])
def test_wide_messages(sequential):
    n = 9
    base = uniform_instance(n, seed=8)
    wide = [
        [
            WideMessage(m.source, m.dest, m.seq, [m.payload, 7, m.seq])
            for m in row
        ]
        for row in base.messages_by_source
    ]
    out, rounds = route_wide_messages(n, wide, 3, sequential=sequential)
    if sequential:
        assert rounds == 3 * 16
    else:
        assert rounds == 16
    for k in range(n):
        got = sorted((w.source, w.seq, w.payload) for w in out[k])
        exp = sorted(
            (m.source, m.seq, (m.payload, 7, m.seq))
            for row in base.messages_by_source
            for m in row
            if m.dest == k
        )
        assert got == exp


def test_wide_messages_width_mismatch():
    with pytest.raises(InvalidInstance):
        route_wide_messages(
            4,
            [[WideMessage(0, 1, 0, [1, 2])], [], [], []],
            payload_words=3,
        )
