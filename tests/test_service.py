"""The batch-execution service: backends agree with each other and with
direct engine execution, envelopes are picklable, the CLI smoke-tests.

The heavyweight differential here is the ISSUE 3 satellite: a >= 256
instance mixed batch must produce byte-identical output digests and
per-run statistics across the sequential backend, the process-pool
backend, and plain ``engine.execute`` runs.
"""

import json
import pickle

import pytest

from repro.core import RunRequest, RunSummary
from repro.scenarios import Scenario, mixed_batch, output_digest, parse_mix
from repro.scenarios.generators import DEFAULT_MIX
from repro.scenarios.runner import ALGORITHMS, default_algorithm
from repro.service import (
    BatchService,
    ProcessPoolBackend,
    execute_request,
    requests_from_scenarios,
)
from repro.service.__main__ import main as service_main

BATCH = 256
SMALL_SIZES = dict(
    routing_sizes=(16,), sorting_sizes=(16,), multiplex_sizes=(16,)
)


def _requests(batch=BATCH, engine="fast"):
    scenarios = mixed_batch(batch, seed0=100, **SMALL_SIZES)
    return requests_from_scenarios(scenarios, engine=engine)


def _stat_rows(report):
    """The per-run record the backends must agree on, in request order."""
    return [
        (
            s.request.name,
            s.ok,
            s.engine,
            s.rounds,
            s.total_packets,
            s.total_words,
            s.max_edge_words,
            s.digest,
            s.shared_cache_hits,
            s.shared_cache_misses,
        )
        for s in report.summaries
    ]


def _direct_digests(requests):
    """Bypass the service entirely: resolve and run via the algorithm
    registry (plain ``engine.execute`` under the hood), digest outputs.
    """
    rows = []
    for req in requests:
        scenario = Scenario(req.kind, req.family, req.n, req.seed)
        spec = ALGORITHMS[
            (req.kind, req.algorithm or default_algorithm(req.kind))
        ]
        result = spec.run(scenario.build(), req.engine, req.seed)
        rows.append(
            (
                req.name,
                result.rounds,
                result.stats.total_packets,
                result.stats.total_words,
                output_digest(req.kind, result.outputs),
            )
        )
    return rows


def test_service_vs_direct_differential_256():
    requests = _requests(BATCH)
    sequential = BatchService(workers=0).run_batch(requests)
    pooled = BatchService(workers=2).run_batch(requests)

    assert sequential.ok, sequential.failures
    assert pooled.ok, pooled.failures
    assert len(sequential.summaries) == BATCH
    assert _stat_rows(sequential) == _stat_rows(pooled)
    assert sequential.batch_digest() == pooled.batch_digest()

    # Direct engine.execute runs, no service layer at all.
    direct = _direct_digests(requests)
    service_rows = [
        (s.request.name, s.rounds, s.total_packets, s.total_words, s.digest)
        for s in sequential.summaries
    ]
    assert service_rows == direct

    # The pool really warmed its workers from a structural prefetch pass.
    assert pooled.prefetch_runs > 0
    assert pooled.warmed_plans > 0


def test_streaming_order_matches_request_order():
    requests = _requests(24)
    service = BatchService(workers=2)
    streamed = list(service.execute(requests))
    assert [req for req, _ in streamed] == requests
    assert all(s.request == req for req, s in streamed)


def test_sequential_backend_is_deterministic_across_runs():
    requests = _requests(12)
    a = BatchService(workers=0).run_batch(requests)
    b = BatchService(workers=0).run_batch(requests)
    assert _stat_rows(a) == _stat_rows(b)
    assert a.batch_digest() == b.batch_digest()


def test_envelopes_are_picklable():
    req = RunRequest(
        kind="routing", family="balanced", n=16, seed=3, engine="fast",
        tag="t-1",
    )
    summary = execute_request(req)
    assert isinstance(summary, RunSummary) and summary.ok
    clone = pickle.loads(pickle.dumps(summary))
    assert clone == summary
    assert clone.request is not req and clone.request == req


def test_bad_requests_are_reported_not_raised():
    requests = [
        RunRequest(kind="routing", family="balanced", n=16, engine="fast"),
        RunRequest(kind="routing", family="no-such-family", n=16),
        RunRequest(
            kind="routing", family="balanced", n=16, algorithm="bogus"
        ),
        RunRequest(kind="routing", family="balanced", n=16, engine="bogus"),
    ]
    report = BatchService(workers=0).run_batch(requests)
    assert not report.ok
    oks = [s.ok for s in report.summaries]
    assert oks == [True, False, False, False]
    assert all(s.error for s in report.failures)
    assert len(report.failures) == 3


def test_service_engine_stamping():
    requests = [
        RunRequest(kind="routing", family="balanced", n=16),
        RunRequest(kind="routing", family="balanced", n=16, engine="reference"),
    ]
    report = BatchService(workers=0, engine="fast").run_batch(requests)
    assert [s.engine for s in report.summaries] == ["fast", "reference"]
    with pytest.raises(ValueError, match="unknown engine"):
        BatchService(engine="warp")


def test_prefetch_pass_is_capped():
    """A structurally diverse batch must not serialize into the parent:
    at most ``max_prefetch`` representatives run up front.
    """
    requests = _requests(12)
    report = BatchService(workers=2, max_prefetch=2).run_batch(requests)
    assert report.ok
    assert report.prefetch_runs == 2
    baseline = BatchService(workers=0).run_batch(requests)
    assert report.batch_digest() == baseline.batch_digest()


def test_process_pool_backend_rejects_zero_workers():
    with pytest.raises(ValueError):
        ProcessPoolBackend(0)


# -- workload mix feed -------------------------------------------------------


def test_mixed_batch_is_deterministic_and_weighted():
    a = mixed_batch(32, seed0=7, **SMALL_SIZES)
    b = mixed_batch(32, seed0=7, **SMALL_SIZES)
    assert a == b
    assert len(a) == 32
    assert len({sc.seed for sc in a}) == 32  # distinct seeds
    weights = {
        (kind, family): w for kind, family, w in parse_mix(DEFAULT_MIX)
    }
    counts = {}
    for sc in a:
        counts[(sc.kind, sc.family)] = counts.get((sc.kind, sc.family), 0) + 1
    # Weighted round-robin: family counts track mix weights (+-1 cycle).
    total_weight = sum(weights.values())
    for coord, weight in weights.items():
        expected = 32 * weight / total_weight
        assert abs(counts.get(coord, 0) - expected) <= weight
    single = mixed_batch(5, mix="routing/balanced", **SMALL_SIZES)
    assert single == [
        Scenario("routing", "balanced", 16, seed=i) for i in range(5)
    ]


def test_parse_mix_and_mixed_batch_errors():
    assert parse_mix("routing/balanced") == [("routing", "balanced", 1)]
    assert parse_mix(" routing/skewed : 4 ,sorting/uniform") == [
        ("routing", "skewed", 4),
        ("sorting", "uniform", 1),
    ]
    for bad in (
        "", "balanced", "routing/x:1", "routing/balanced:0",
        "routing/balanced:-2", "routing/balanced:x", "routing/nope",
    ):
        with pytest.raises(ValueError):
            parse_mix(bad)
    with pytest.raises(ValueError, match="perfect squares"):
        mixed_batch(4, sorting_sizes=(15,))
    with pytest.raises(ValueError):
        mixed_batch(0)


# -- CLI ---------------------------------------------------------------------


def test_cli_json_sequential(capsys):
    code = service_main(
        ["--batch", "8", "--workers", "0", "--engine", "fast", "--json"]
    )
    out = capsys.readouterr().out
    doc = json.loads(out)
    assert code == 0
    assert doc["ok"] is True
    assert doc["requests"] == 8
    assert doc["backend"] == "sequential"
    assert doc["batch_digest"]


def test_cli_selfcheck_pooled(capsys):
    code = service_main(
        [
            "--batch", "6", "--workers", "2", "--engine", "fast",
            "--selfcheck", "--json",
        ]
    )
    out = capsys.readouterr().out
    doc = json.loads(out)
    assert code == 0
    assert doc["backend"] == "process-pool"
    assert doc["selfcheck"]["match"] is True
    assert doc["selfcheck"]["sequential_digest"] == doc["batch_digest"]


def test_cli_rejects_bad_mix(capsys):
    with pytest.raises(SystemExit):
        service_main(["--scenario-mix", "routing/never"])
