"""Problem 4.1: Algorithm 3, Algorithm 4, and the sample-sort baseline."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    SORTING_ROUNDS,
    SUBSET_SORT_ROUNDS,
    subset_sort_bucket_bound,
)
from repro.core import InvalidInstance, run_protocol
from repro.sorting import (
    KeyCodec,
    SortInstance,
    duplicate_heavy_instance,
    presorted_instance,
    reversed_instance,
    sample_sort,
    sort_lenzen,
    subset_sort,
    uniform_sort_instance,
    verify_sorted_batches,
)


# ---------------------------------------------------------------- codec ----
def test_codec_tag_roundtrip():
    codec = KeyCodec(n=8, max_keys_per_node=8, key_universe=64)
    for key in (0, 7, 63):
        for src in (0, 7):
            for seq in (0, 5):
                t = codec.tag(key, src, seq)
                assert codec.untag(t) == (key, src, seq)
                assert codec.raw(t) == key


def test_codec_order_is_footnote5_lexicographic():
    codec = KeyCodec(n=4, max_keys_per_node=4, key_universe=16)
    t1 = codec.tag(5, 0, 3)
    t2 = codec.tag(5, 1, 0)
    t3 = codec.tag(6, 0, 0)
    assert t1 < t2 < t3


def test_codec_rejects_oversized_universe():
    with pytest.raises(InvalidInstance):
        KeyCodec(n=4, max_keys_per_node=4, key_universe=4 ** 3 + 2)


def test_codec_pack2_roundtrip():
    codec = KeyCodec(n=4, max_keys_per_node=4, key_universe=16)
    a, b = codec.tag(3, 1, 2), codec.sentinel
    assert codec.unpack2(codec.pack2(a, b)) == (a, b)


# ----------------------------------------------------------- instances ----
def test_sort_instance_validation():
    with pytest.raises(InvalidInstance):
        SortInstance(3, [[1, 2, 3], [4, 5, 6]])
    with pytest.raises(InvalidInstance):
        SortInstance(2, [[1, 2], [3]])  # exact
    with pytest.raises(InvalidInstance):
        SortInstance(2, [[1, 99], [0, 1]], key_universe=4)


def test_expected_batches_cover_all_keys():
    inst = uniform_sort_instance(9, seed=1)
    batches = inst.expected_batches()
    assert sum(len(b) for b in batches) == 81
    flat = [k for b in batches for k in b]
    assert flat == sorted(flat)


# -------------------------------------------------------- Algorithm 3 ----
def run_subset_sort(n, w, keys_per, seed=0, redistribute=True):
    groups = (tuple(range(w)),)
    rng = random.Random(seed)
    pool = rng.sample(range(10 ** 5), w * keys_per)
    lists = [
        sorted(pool[i * keys_per : (i + 1) * keys_per]) for i in range(w)
    ]

    def prog(ctx):
        if ctx.node_id < w:
            res = yield from subset_sort(
                ctx, groups, 0, ctx.node_id, lists[ctx.node_id],
                keys_per, "t", redistribute=redistribute,
            )
        else:
            res = yield from subset_sort(
                ctx, groups, None, None, [], keys_per, "t",
                redistribute=redistribute,
            )
        return res

    return run_protocol(n, prog, capacity=16), pool


def test_subset_sort_ten_rounds_and_order():
    res, pool = run_subset_sort(16, 4, 32)
    assert res.rounds == SUBSET_SORT_ROUNDS
    out = []
    for i in range(4):
        r = res.outputs[i]
        assert r.run_offset == len(out)
        out.extend(r.run)
    assert out == sorted(pool)


def test_subset_sort_skip_redistribution():
    res, pool = run_subset_sort(16, 4, 32, redistribute=False)
    assert res.rounds == SUBSET_SORT_ROUNDS - 2
    out = []
    for i in range(4):
        out.extend(res.outputs[i].run)
    assert sorted(out) == sorted(pool)


def test_subset_sort_bucket_balance_lemma43():
    res, _ = run_subset_sort(25, 5, 50, seed=3, redistribute=False)
    bound = subset_sort_bucket_bound(50, 5)
    for size in res.outputs[0].bucket_sizes:
        assert size < bound


def test_subset_sort_ragged_loads():
    groups = ((0, 1, 2),)
    lists = [[5, 1], [], [9, 3, 7, 2, 8, 4]]

    def prog(ctx):
        if ctx.node_id < 3:
            res = yield from subset_sort(
                ctx, groups, 0, ctx.node_id, lists[ctx.node_id], 6, "t"
            )
        else:
            res = yield from subset_sort(ctx, groups, None, None, [], 6, "t")
        return res

    res = run_protocol(9, prog, capacity=16)
    merged = []
    for i in range(3):
        merged.extend(res.outputs[i].run)
    assert merged == sorted([5, 1, 9, 3, 7, 2, 8, 4])


# -------------------------------------------------------- Algorithm 4 ----
@pytest.mark.parametrize("n", [4, 9, 16, 25])
def test_sort_lenzen_37_rounds(n):
    inst = uniform_sort_instance(n, seed=n)
    res = sort_lenzen(inst)
    verify_sorted_batches(inst, res.outputs)
    assert res.rounds == SORTING_ROUNDS


@pytest.mark.parametrize(
    "maker",
    [presorted_instance, reversed_instance],
)
def test_sort_adversarial_placements(maker):
    inst = maker(16)
    res = sort_lenzen(inst)
    verify_sorted_batches(inst, res.outputs)
    assert res.rounds == SORTING_ROUNDS


def test_sort_duplicate_keys_footnote5():
    inst = duplicate_heavy_instance(16, distinct=2, seed=5)
    res = sort_lenzen(inst)
    verify_sorted_batches(inst, res.outputs)


def test_sort_all_equal_keys():
    inst = SortInstance(9, [[1] * 9 for _ in range(9)], key_universe=4)
    res = sort_lenzen(inst)
    verify_sorted_batches(inst, res.outputs)


def test_sort_shared_determinism_audit():
    inst = uniform_sort_instance(16, seed=11)
    res = sort_lenzen(inst, verify_shared=True)
    verify_sorted_batches(inst, res.outputs)


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_sort_property_random(seed):
    inst = uniform_sort_instance(16, seed=seed)
    res = sort_lenzen(inst)
    verify_sorted_batches(inst, res.outputs)
    assert res.rounds == SORTING_ROUNDS


# ------------------------------------------------------------ baseline ----
@pytest.mark.parametrize("seed", [0, 1])
def test_sample_sort_correct_and_faster(seed):
    inst = uniform_sort_instance(16, seed=seed)
    res = sample_sort(inst, seed=seed)
    verify_sorted_batches(inst, res.outputs)
    assert res.rounds < SORTING_ROUNDS


def test_sample_sort_reproducible():
    inst = uniform_sort_instance(16, seed=2)
    assert (
        sample_sort(inst, seed=5).outputs
        == sample_sort(inst, seed=5).outputs
    )
