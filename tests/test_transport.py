"""Zero-copy transport: envelope codec properties, shm arena, autoscaler.

The ISSUE 7 satellites in test form: a hypothesis property suite over the
columnar envelope round trip (chaos tags, unset deadlines, failed and
digestless summaries included), digest parity between the shm transport,
the pickle transport and the in-process sequential backend on a
256-instance mixed batch, the slot-arena lifecycle, the pure autoscaler
decision rule, the PlanCache snapshot pickled-once regression, and
capture parity across transports.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import RunRequest, RunSummary
from repro.core.engine import (
    STATUS_CANCELLED,
    STATUS_COMPLETED,
    STATUS_FAILED,
    STATUS_REJECTED,
)
from repro.scenarios import mixed_batch
from repro.service import BatchService, inject, requests_from_scenarios
from repro.service import batch as batch_mod
from repro.service.recording import Recorder, load_capture
from repro.service.transport import (
    AutoscalePolicy,
    PickleTransport,
    ShmArena,
    decode_requests,
    decode_summaries,
    encode_requests,
    encode_summaries,
    make_transport,
)

SMALL_SIZES = dict(
    routing_sizes=(16,), sorting_sizes=(16,), multiplex_sizes=(16,)
)


def _requests(batch, engine="fast", seed0=400):
    return requests_from_scenarios(
        mixed_batch(batch, seed0=seed0, **SMALL_SIZES), engine=engine
    )


# -- codec property suite -----------------------------------------------------

_I64 = st.integers(min_value=-(2 ** 63), max_value=2 ** 63 - 1)
_F64 = st.floats(allow_nan=False, width=64)
_TEXT = st.text(max_size=16)
_OPT_TEXT = st.one_of(st.none(), _TEXT)
_TAG = st.one_of(
    _TEXT,
    st.sampled_from(["chaos:kill", "chaos:poison", "chaos:slow:25"]),
)
_STATUS = st.one_of(
    _TEXT,
    st.sampled_from([
        STATUS_COMPLETED, STATUS_FAILED, STATUS_REJECTED, STATUS_CANCELLED,
    ]),
)

_REQUEST = st.builds(
    RunRequest,
    kind=_TEXT,
    family=_TEXT,
    n=_I64,
    seed=_I64,
    algorithm=_OPT_TEXT,
    engine=_OPT_TEXT,
    tag=_TAG,
    deadline_ms=st.one_of(st.none(), _F64),
)


def _summary(request, **kw):
    return st.builds(
        RunSummary,
        request=st.just(request),
        ok=st.booleans(),
        engine=_TEXT,
        rounds=_I64,
        total_packets=_I64,
        total_words=_I64,
        max_edge_words=_I64,
        digest=_TEXT,  # "" = never resolved, e.g. STATUS_FAILED rows
        wall_s=_F64,
        shared_cache_hits=_I64,
        shared_cache_misses=_I64,
        error=_TEXT,
        status=_STATUS,
        queue_s=_F64,
        latency_s=_F64,
        **kw,
    )


@settings(max_examples=200)
@given(st.lists(_REQUEST, min_size=1, max_size=20))
def test_request_envelope_round_trips(requests):
    assert decode_requests(encode_requests(requests)) == requests


@settings(max_examples=200)
@given(
    st.lists(_REQUEST, min_size=1, max_size=12).flatmap(
        lambda reqs: st.tuples(
            st.just(reqs),
            st.tuples(*[_summary(r) for r in reqs]),
        )
    )
)
def test_summary_envelope_round_trips(batch):
    requests, summaries = batch
    buf = encode_summaries(list(summaries))
    assert decode_summaries(buf, requests) == list(summaries)


def test_codec_rejects_malformed_envelopes():
    with pytest.raises(ValueError, match="empty"):
        encode_requests([])
    with pytest.raises(ValueError, match="empty"):
        encode_summaries([])
    requests = _requests(2)
    buf = encode_requests(requests)
    with pytest.raises(ValueError, match="magic"):
        decode_requests(b"XXXX" + bytes(buf[4:]))
    with pytest.raises(ValueError, match="kind"):
        decode_summaries(buf, requests)
    summaries = [batch_mod.execute_request(r) for r in requests]
    with pytest.raises(ValueError, match="2 rows"):
        decode_summaries(encode_summaries(summaries), requests[:1])


def test_failed_digestless_summaries_round_trip():
    requests = _requests(3)
    summaries = [
        RunSummary(
            request=r,
            ok=False,
            status=STATUS_FAILED,
            error="worker pool died mid-batch: BrokenProcessPool: dead",
        )
        for r in requests
    ]
    decoded = decode_summaries(encode_summaries(summaries), requests)
    assert decoded == summaries
    assert all(not s.resolved for s in decoded)


# -- transport digest parity (the acceptance batch) ---------------------------


def test_shm_pickle_and_inprocess_digests_match_on_256_mixed():
    """The headline parity gate: the same 256-instance mixed batch must
    produce byte-identical digests through the shm transport, the pickle
    transport and the in-process sequential backend."""
    requests = _requests(256, seed0=0)
    sequential = BatchService(workers=0).run_batch(requests)
    assert sequential.ok

    reports = {}
    for transport in ("shm", "pickle"):
        report = BatchService(
            workers=2, warmup=False, transport=transport
        ).run_batch(requests)
        assert report.ok, report.failures[:3]
        assert report.transport == transport
        reports[transport] = report

    assert (
        reports["shm"].batch_digest()
        == reports["pickle"].batch_digest()
        == sequential.batch_digest()
    )
    seq_digests = [s.digest for s in sequential.summaries]
    for report in reports.values():
        assert [s.digest for s in report.summaries] == seq_digests


# -- shm arena lifecycle ------------------------------------------------------


def test_arena_slot_lifecycle_and_leak_accounting():
    before = set(ShmArena.live_segments())
    arena = ShmArena(slots=2, slot_bytes=4096)
    try:
        created = set(ShmArena.live_segments()) - before
        assert len(created) == 2

        a = arena.acquire(1024)
        b = arena.acquire(1024)
        assert a is not None and b is not None
        assert arena.acquire(1024) is None  # exhausted -> caller falls back
        arena.release(a)
        c = arena.acquire(1024)
        assert c is not None  # released slots are reusable
        arena.release(b)
        arena.release(c)
        arena.release(c)  # release is idempotent

        assert arena.acquire(len(a.shm.buf) + 1) is None  # oversized payload
    finally:
        arena.close()
    assert set(ShmArena.live_segments()) == before
    arena.close()  # close is idempotent


def test_make_transport_names_and_validation():
    shm = make_transport("shm", slots=2, slot_bytes=4096)
    try:
        assert shm.name in ("shm", "pickle")  # pickle iff shm unavailable
        if shm.name == "pickle":
            assert "shared memory unavailable" in shm.fallback_reason
    finally:
        shm.close()
    pkl = make_transport("pickle")
    assert isinstance(pkl, PickleTransport)
    pkl.close()
    with pytest.raises(ValueError, match="unknown transport"):
        make_transport("carrier-pigeon")


# -- autoscaler policy --------------------------------------------------------


def test_autoscale_policy_sustain_and_cooldown():
    p = AutoscalePolicy(
        min_workers=1, max_workers=3, high_depth=4, low_depth=0,
        sustain_s=0.1, cooldown_s=1.0,
    )
    assert p.workers == 1
    assert p.observe(8, 0.00) == 0  # high, but not sustained yet
    assert p.observe(8, 0.05) == 0
    assert p.observe(8, 0.11) == 1  # sustained past sustain_s
    assert p.workers == 2
    assert p.observe(8, 0.20) == 0  # cooldown swallows the next decision
    assert p.observe(8, 1.20) == 0  # cooldown over; sustain restarts
    assert p.observe(8, 1.35) == 1
    assert p.workers == 3
    assert p.observe(9, 2.40) == 0  # at max_workers: never exceeds
    assert p.observe(9, 2.60) == 0

    assert p.observe(0, 3.00) == 0  # idle, but not sustained yet
    assert p.observe(0, 3.11) == -1
    assert p.workers == 2
    assert p.observe(0, 4.20) == 0
    assert p.observe(0, 4.35) == -1
    assert p.workers == 1
    assert p.observe(0, 6.00) == 0  # at min_workers: never drops below
    assert p.observe(0, 7.00) == 0


def test_autoscale_policy_interruption_resets_sustain():
    p = AutoscalePolicy(
        min_workers=1, max_workers=2, high_depth=4, low_depth=0,
        sustain_s=0.1, cooldown_s=0.1,
    )
    assert p.observe(8, 0.00) == 0
    assert p.observe(2, 0.05) == 0  # dip below high_depth resets the clock
    assert p.observe(8, 0.08) == 0
    assert p.observe(8, 0.15) == 0  # only 0.07s sustained since the dip
    assert p.observe(8, 0.19) == 1
    assert p.workers == 2


def test_autoscale_policy_validation():
    with pytest.raises(ValueError, match="min_workers"):
        AutoscalePolicy(min_workers=0)
    with pytest.raises(ValueError, match="min_workers"):
        AutoscalePolicy(min_workers=3, max_workers=2)
    with pytest.raises(ValueError, match="low_depth"):
        AutoscalePolicy(low_depth=9, high_depth=8)


# -- PlanCache snapshot pickled once (satellite regression) -------------------


def test_plan_snapshot_pickled_once_across_pool_respawns(monkeypatch):
    """Regression: the warm-plan snapshot used to be re-pickled for every
    pool (re)build; two mid-batch worker kills now reuse the one blob."""
    calls = []
    real = batch_mod._pickle_plans

    def counting(plans):
        calls.append(len(plans))
        return real(plans)

    monkeypatch.setattr(batch_mod, "_pickle_plans", counting)
    requests = _requests(10, seed0=70)
    requests[1] = inject(requests[1], "kill")
    requests[9] = inject(requests[9], "kill")
    report = BatchService(workers=2, warmup=False, chunk=2).run_batch(
        requests
    )
    assert report.pool_replacements >= 2
    assert len(calls) == 1, (
        f"plan snapshot pickled {len(calls)} times for "
        f"{report.pool_replacements} pool replacements"
    )


# -- capture parity across transports -----------------------------------------


def test_captures_identical_across_transports(tmp_path):
    requests = _requests(8, seed0=55)
    captures = {}
    for transport in ("shm", "pickle"):
        path = str(tmp_path / f"capture-{transport}.jsonl")
        service = BatchService(workers=2, warmup=False, transport=transport)
        with Recorder(path, meta={"transport": transport}) as recorder:
            report = recorder.record_batch(service, requests)
        assert report.ok
        captures[transport] = load_capture(path)

    shm, pkl = captures["shm"], captures["pickle"]
    assert shm.requests == pkl.requests == requests
    assert shm.statuses() == pkl.statuses()
    assert shm.capture_digest() == pkl.capture_digest()
    assert [s.digest for s in shm.resolved_summaries()] == [
        s.digest for s in pkl.resolved_summaries()
    ]
