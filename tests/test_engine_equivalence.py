"""Engine equivalence: ReferenceEngine and FastEngine agree byte-for-byte.

Every routing/sorting workload the tier-1 suite exercises must produce
identical outputs, round counts, phase tables, per-round traffic statistics
and shared-cache behavior on both engines — the fast path may only change
*how fast* the simulation runs, never *what* it computes.
"""

import pytest

from repro.core import (
    CongestedClique,
    FastEngine,
    Packet,
    available_engines,
    get_engine,
    run_protocol,
)
from repro.routing import (
    block_skew_instance,
    bursty_instance,
    permutation_instance,
    route_lenzen,
    route_naive,
    route_optimized,
    route_valiant,
    transpose_instance,
    uniform_instance,
    verify_delivery,
)
from repro.sorting import (
    duplicate_heavy_instance,
    presorted_instance,
    sample_sort,
    sort_lenzen,
    uniform_sort_instance,
    verify_sorted_batches,
)

FAST_ENGINES = ["fast", "fast-audit", "fast-unchecked"]


def assert_equivalent(run):
    """Run ``run(engine)`` on every engine and compare everything."""
    ref = run("reference")
    for name in FAST_ENGINES:
        fast = run(name)
        assert fast.outputs == ref.outputs, name
        assert fast.rounds == ref.rounds, name
        assert fast.stats.total_packets == ref.stats.total_packets, name
        assert fast.stats.total_words == ref.stats.total_words, name
        assert fast.phase_table() == ref.phase_table(), name
        assert [
            (r.round_index, r.packets, r.words, r.max_words_on_edge)
            for r in fast.stats.per_round
        ] == [
            (r.round_index, r.packets, r.words, r.max_words_on_edge)
            for r in ref.stats.per_round
        ], name
        assert fast.shared_cache_hits == ref.shared_cache_hits, name
        assert fast.shared_cache_misses == ref.shared_cache_misses, name
    return ref


ROUTING_WORKLOADS = {
    "uniform": lambda n: uniform_instance(n, seed=n),
    "hotspot": lambda n: permutation_instance(n),
    "transpose": transpose_instance,
    "block-skew": lambda n: block_skew_instance(n, seed=n),
    "bursty": lambda n: bursty_instance(n, seed=n),
}


@pytest.mark.parametrize("workload", sorted(ROUTING_WORKLOADS))
@pytest.mark.parametrize("n", [16, 20, 25])
def test_lenzen_routing_equivalence(workload, n):
    inst = ROUTING_WORKLOADS[workload](n)
    ref = assert_equivalent(lambda engine: route_lenzen(inst, engine=engine))
    verify_delivery(inst, ref.outputs)


@pytest.mark.parametrize("n", [16, 25])
def test_optimized_routing_equivalence(n):
    inst = uniform_instance(n, seed=3)
    ref = assert_equivalent(
        lambda engine: route_optimized(inst, engine=engine)
    )
    verify_delivery(inst, ref.outputs)


@pytest.mark.parametrize("n", [19, 25])
def test_baseline_routing_equivalence(n):
    inst = permutation_instance(n)
    assert_equivalent(lambda engine: route_naive(inst, engine=engine))
    assert_equivalent(
        lambda engine: route_valiant(inst, seed=5, engine=engine)
    )


@pytest.mark.parametrize(
    "maker",
    [
        lambda n: uniform_sort_instance(n, seed=2),
        lambda n: duplicate_heavy_instance(n, seed=2),
        presorted_instance,
    ],
    ids=["uniform", "duplicates", "presorted"],
)
def test_sorting_equivalence(maker):
    inst = maker(16)
    ref = assert_equivalent(lambda engine: sort_lenzen(inst, engine=engine))
    verify_sorted_batches(inst, ref.outputs)
    assert_equivalent(lambda engine: sample_sort(inst, seed=4, engine=engine))


def _shared_outbox_program():
    """A program whose nodes all yield the *same* dict object.

    Each node clears the shared dict and inserts its own packet to its
    successor right before yielding, so by the time the engine delivers,
    later nodes have already clobbered earlier nodes' entries.  The
    reference engine snapshots every outbox at yield time; regression: the
    fast path used to keep the yielded dict aliased, so every node
    "sent" whatever the last writer left in it.
    """
    shared_outbox = {}

    def program(ctx):
        def gen():
            n = ctx.n
            me = ctx.node_id
            shared_outbox.clear()
            shared_outbox[(me + 1) % n] = Packet((me,))
            inbox = yield shared_outbox
            return sorted((src, pkt.words) for src, pkt in inbox.items())

        return gen()

    return program


@pytest.mark.parametrize("engine", FAST_ENGINES)
def test_outbox_aliasing_regression(engine):
    """Differential: a dict-reusing protocol on both engines (ISSUE 3)."""
    n = 8
    ref = run_protocol(n, _shared_outbox_program(), capacity=2)
    fast = run_protocol(n, _shared_outbox_program(), capacity=2, engine=engine)
    # Ground truth: node j hears exactly from its predecessor.
    assert ref.outputs == [
        [((j - 1) % n, ((j - 1) % n,))] for j in range(n)
    ]
    assert fast.outputs == ref.outputs, engine
    assert fast.rounds == ref.rounds
    assert fast.stats.total_packets == ref.stats.total_packets
    assert fast.stats.total_words == ref.stats.total_words


def _shared_outbox_multiround_program(rounds):
    """Like :func:`_shared_outbox_program`, but re-yielding the shared dict
    every round — so the aliasing hazard hits the engine's *send-loop*
    coercion (rounds >= 2), not just the prime-time path.
    """
    shared_outbox = {}

    def program(ctx):
        def gen():
            n = ctx.n
            me = ctx.node_id
            heard = []
            for r in range(rounds):
                shared_outbox.clear()
                shared_outbox[(me + 1) % n] = Packet((r * n + me,))
                inbox = yield shared_outbox
                heard.extend(
                    (r, src, pkt.words)
                    for src, pkt in sorted(inbox.items())
                )
            return heard

        return gen()

    return program


@pytest.mark.parametrize("engine", FAST_ENGINES)
def test_outbox_reuse_across_rounds_regression(engine):
    """The snapshot-at-yield copy must also cover outboxes collected in the
    steady-state send loop, where later nodes' resumes used to clobber
    earlier nodes' still-undelivered aliased dicts.
    """
    n, rounds = 6, 3
    ref = run_protocol(
        n, _shared_outbox_multiround_program(rounds), capacity=2
    )
    fast = run_protocol(
        n,
        _shared_outbox_multiround_program(rounds),
        capacity=2,
        engine=engine,
    )
    pred = lambda j: (j - 1) % n
    assert ref.outputs == [
        [(r, pred(j), (r * n + pred(j),)) for r in range(rounds)]
        for j in range(n)
    ]
    assert fast.outputs == ref.outputs, engine
    assert fast.rounds == ref.rounds
    assert fast.stats.total_packets == ref.stats.total_packets


def test_meters_equivalent():
    inst = uniform_instance(16, seed=1)
    ref = route_lenzen(inst, meter=True)
    fast = route_lenzen(inst, meter=True, engine="fast")
    assert fast.meters.steps_per_node == ref.meters.steps_per_node
    assert fast.meters.peak_words_per_node == ref.meters.peak_words_per_node


def test_engine_instance_and_registry():
    inst = uniform_instance(16, seed=0)
    custom = FastEngine(validation="full", sample_stride=1)
    res = route_lenzen(inst, engine=custom)
    assert res.engine == "fast"
    assert res.rounds == route_lenzen(inst).rounds
    for name in ("reference", "fast", "fast-audit", "fast-unchecked"):
        assert name in available_engines()
        assert get_engine(name).execute is not None
    with pytest.raises(ValueError):
        get_engine("no-such-engine")
    with pytest.raises(TypeError):
        get_engine(42)
    with pytest.raises(ValueError):
        FastEngine(validation="half")


def test_result_is_stamped_with_engine_name():
    inst = uniform_instance(16, seed=0)
    assert route_lenzen(inst).engine == "reference"
    assert route_lenzen(inst, engine="fast").engine == "fast"
    clique = CongestedClique(16, engine="fast")
    assert clique.engine.name == "fast"
