"""The streaming gateway: backpressure, deadlines, digest parity.

The ISSUE 4 satellites: queue-full rejection under the ``reject`` policy,
deadline cancellation (both in-queue expiry and mid-run abandonment), and
the differential digest pinning streaming == batch == sequential on a
fixed scenario mix.
"""

import asyncio
import json
import time

import pytest

from repro.core import RunRequest
from repro.scenarios import mixed_batch
from repro.scenarios.runner import ALGORITHMS, AlgorithmSpec, register_algorithm
from repro.service import (
    STATUS_CANCELLED,
    STATUS_COMPLETED,
    STATUS_FAILED,
    STATUS_REJECTED,
    BatchService,
    StreamGateway,
    requests_from_scenarios,
    serve,
    summaries_digest,
)
from repro.service.stream import main as stream_main
from repro.service.stream import replay, structural_warmup

SMALL_SIZES = dict(
    routing_sizes=(16,), sorting_sizes=(16,), multiplex_sizes=(16,)
)


def _requests(batch, engine="fast", seed0=500):
    return requests_from_scenarios(
        mixed_batch(batch, seed0=seed0, **SMALL_SIZES), engine=engine
    )


@pytest.fixture
def sleepy_algorithm():
    """A routing algorithm that sleeps before delegating to ``naive``.

    Registered process-wide, so the thread backend's workers see it —
    which is what makes mid-run deadline behavior deterministic to test.
    """
    name = "test-sleepy"
    naive = ALGORITHMS[("routing", "naive")]

    def run(inst, engine, seed):
        time.sleep(0.1)
        return naive.run(inst, engine, seed)

    register_algorithm(AlgorithmSpec(kind="routing", name=name, run=run))
    yield name
    del ALGORITHMS[("routing", name)]


# -- differential digest: streaming == batch == sequential -------------------


def test_stream_matches_batch_and_sequential_digests():
    """A loss-free stream over a fixed mix must reproduce the batch
    service's digests exactly — sequential, pooled, and streamed are three
    schedules of the same work.
    """
    requests = _requests(18)
    report = serve(
        requests,
        [0.0] * len(requests),
        workers=2,
        backend="thread",
        policy="block",
        queue_cap=4,
    )
    assert report.ok, report.failures
    assert len(report.completed) == len(requests)
    assert not report.rejected and not report.cancelled

    sequential = BatchService(workers=0).run_batch(requests)
    pooled = BatchService(workers=2).run_batch(requests)
    assert sequential.ok and pooled.ok
    assert report.stream_digest() == sequential.batch_digest()
    assert report.stream_digest() == pooled.batch_digest()

    # Same per-run digests, not just the same fold.
    stream_rows = sorted(
        (s.request.name, s.digest, s.rounds) for s in report.completed
    )
    batch_rows = sorted(
        (s.request.name, s.digest, s.rounds) for s in sequential.summaries
    )
    assert stream_rows == batch_rows


def test_stream_process_backend_matches_sequential():
    requests = _requests(6)
    report = serve(
        requests,
        [0.0] * len(requests),
        workers=2,
        backend="process",
        policy="block",
    )
    assert report.ok, report.failures
    assert len(report.completed) == len(requests)
    baseline = BatchService(workers=0).run_batch(requests)
    assert report.stream_digest() == baseline.batch_digest()


# -- backpressure ------------------------------------------------------------


def test_queue_full_rejection():
    """Under the reject policy, submissions beyond the queue bound resolve
    immediately as rejected instead of blocking the submitter.

    The submit loop never awaits, so the single worker task cannot drain
    the queue between submissions — the overflow pattern is deterministic.
    """
    requests = _requests(6)

    async def main():
        gateway = StreamGateway(
            workers=1, backend="thread", queue_cap=2, policy="reject"
        )
        async with gateway:
            futures = [await gateway.submit(r) for r in requests]
            await gateway.drain()
            return [await f for f in futures], gateway.metrics

    summaries, metrics = asyncio.run(main())
    statuses = [s.status for s in summaries]
    assert statuses.count(STATUS_REJECTED) == len(requests) - 2
    assert statuses.count(STATUS_COMPLETED) == 2
    for s in summaries:
        if s.status == STATUS_REJECTED:
            assert not s.ok
            assert "queue full" in s.error
        else:
            assert s.ok
    assert metrics.offered == len(requests)
    assert metrics.rejected == len(requests) - 2
    assert metrics.completed == 2


def test_block_policy_never_rejects():
    requests = _requests(10)
    report = serve(
        requests,
        [0.0] * len(requests),
        workers=2,
        backend="thread",
        policy="block",
        queue_cap=1,
    )
    assert len(report.completed) == len(requests)
    assert not report.rejected
    assert report.metrics["queue_depth_max"] <= 1


# -- deadlines ---------------------------------------------------------------


def test_deadline_expires_in_queue(sleepy_algorithm):
    """Requests queued behind a slow run past their deadline are cancelled
    without ever executing."""
    slow = RunRequest(
        kind="routing", family="balanced", n=16, seed=1,
        algorithm=sleepy_algorithm, engine="fast",
    )
    quick = [
        RunRequest(
            kind="routing", family="balanced", n=16, seed=2 + i,
            engine="fast", deadline_ms=20.0,
        )
        for i in range(3)
    ]
    report = serve(
        [slow] + quick,
        [0.0] * 4,
        workers=1,
        backend="thread",
        policy="block",
        warmup=False,
    )
    first, rest = report.summaries[0], report.summaries[1:]
    assert first.status == STATUS_COMPLETED and first.ok
    for s in rest:
        assert s.status == STATUS_CANCELLED
        assert not s.ok
        assert "deadline" in s.error and "in queue" in s.error
        assert s.queue_s >= 0.020
        assert s.latency_s >= s.queue_s
    assert report.metrics["cancelled"] == 3


def test_deadline_exceeded_mid_run(sleepy_algorithm):
    """A dispatched run that overruns its remaining budget is abandoned."""
    req = RunRequest(
        kind="routing", family="balanced", n=16, seed=9,
        algorithm=sleepy_algorithm, engine="fast", deadline_ms=40.0,
    )
    report = serve(
        [req], [0.0], workers=1, backend="thread", warmup=False
    )
    (summary,) = report.summaries
    assert summary.status == STATUS_CANCELLED
    assert "mid-run" in summary.error and "abandoned" in summary.error
    # The deadline bounded the observed latency (plus scheduling slack).
    assert summary.latency_s >= 0.040


def test_gateway_default_deadline_applies_to_unset_requests(sleepy_algorithm):
    slow = RunRequest(
        kind="routing", family="balanced", n=16, seed=1,
        algorithm=sleepy_algorithm, engine="fast",
    )
    # Gateway default cancels the queued request; its own deadline is unset.
    queued = RunRequest(
        kind="routing", family="balanced", n=16, seed=3, engine="fast"
    )
    report = serve(
        [slow, queued],
        [0.0, 0.0],
        workers=1,
        backend="thread",
        policy="block",
        deadline_ms=25.0,
        warmup=False,
    )
    first, second = report.summaries
    # The slow request itself overran the default budget mid-run...
    assert first.status == STATUS_CANCELLED
    # ...and the queued one was cancelled by the same default budget.
    # Abandoning the slow run frees the dispatcher at almost exactly the
    # queued request's own expiry, so whether it dies in queue or is
    # dispatched with sub-millisecond budget and abandoned mid-run is a
    # scheduling race; the default deadline applying at all is the
    # contract.
    assert second.status == STATUS_CANCELLED
    assert "deadline" in second.error


# -- gateway mechanics -------------------------------------------------------


def test_engine_stamping_and_validation():
    with pytest.raises(ValueError, match="unknown engine"):
        StreamGateway(engine="warp")
    with pytest.raises(ValueError, match="unknown backend"):
        StreamGateway(backend="fiber")
    with pytest.raises(ValueError, match="unknown policy"):
        StreamGateway(policy="drop-newest")
    with pytest.raises(ValueError):
        StreamGateway(workers=0)
    with pytest.raises(ValueError):
        StreamGateway(queue_cap=0)

    unset = RunRequest(kind="routing", family="balanced", n=16, seed=4)
    pinned = RunRequest(
        kind="routing", family="balanced", n=16, seed=4, engine="reference"
    )
    report = serve(
        [unset, pinned], [0.0, 0.0], workers=1, engine="fast",
        backend="thread", warmup=False,
    )
    assert [s.engine for s in report.summaries] == ["fast", "reference"]


def test_submit_after_close_raises():
    async def main():
        gateway = StreamGateway(workers=1, backend="thread")
        async with gateway:
            pass
        with pytest.raises(RuntimeError, match="not running"):
            await gateway.submit(
                RunRequest(kind="routing", family="balanced", n=16)
            )
        # One gateway, one lifecycle: restarting a closed gateway would
        # spawn a pool no submission can ever reach.
        with pytest.raises(RuntimeError, match="closed"):
            await gateway.start()

    asyncio.run(main())


def test_close_resolves_submitter_blocked_in_full_queue(sleepy_algorithm):
    """Regression: a submitter suspended in ``put`` under the ``block``
    policy could enqueue its ticket *after* ``drain()`` completed and the
    workers were cancelled, leaving the future unresolved forever.

    ``asyncio.Queue.join`` waits once on its "all done" event without
    re-checking, so the interleaving is: the worker dequeues the last
    ticket (waking the blocked putter), resolves it synchronously (the
    expired-deadline path never awaits, so ``task_done`` fires in the
    same step), and the putter — scheduled before the join waiter — slips
    its ticket into the queue no worker will ever read.  On the old code
    this test hangs at ``fut_late`` (bounded by the wait_for timeouts);
    the post-put ``_closed`` re-check resolves the ticket instead.
    """
    slow = RunRequest(
        kind="routing", family="balanced", n=16, seed=1,
        algorithm=sleepy_algorithm, engine="fast",
    )
    expired = RunRequest(
        kind="routing", family="balanced", n=16, seed=2, engine="fast",
        deadline_ms=1e-6,
    )
    late = RunRequest(
        kind="routing", family="balanced", n=16, seed=3, engine="fast"
    )

    async def main():
        gateway = StreamGateway(
            workers=1, backend="thread", queue_cap=1, policy="block"
        )
        await gateway.start()
        fut_slow = await gateway.submit(slow)
        await asyncio.sleep(0.01)  # worker dequeues `slow`, starts running
        fut_expired = await gateway.submit(expired)  # fills the queue
        submit_task = asyncio.create_task(gateway.submit(late))
        await asyncio.sleep(0.01)  # submitter suspends in _queue.put
        assert not submit_task.done()
        await asyncio.wait_for(gateway.close(), timeout=10)
        fut_late = await asyncio.wait_for(submit_task, timeout=5)
        late_summary = await asyncio.wait_for(fut_late, timeout=5)
        return await fut_slow, await fut_expired, late_summary

    s_slow, s_expired, s_late = asyncio.run(
        asyncio.wait_for(main(), timeout=30)
    )
    assert s_slow.status == STATUS_COMPLETED and s_slow.ok
    assert s_expired.status == STATUS_CANCELLED
    assert s_late.status == STATUS_CANCELLED
    assert not s_late.ok
    assert "closed" in s_late.error


def test_executor_failure_resolves_ticket_instead_of_deadlocking(monkeypatch):
    """An exception escaping the executor (e.g. BrokenProcessPool after an
    OOM-killed pool child) must resolve the ticket as a failed run — an
    unresolved future would hang serve() forever — and leave the worker
    alive for subsequent requests.
    """
    import repro.service.stream as stream_mod

    real = stream_mod.execute_request
    calls = {"n": 0}

    def flaky(req):
        calls["n"] += 1
        if calls["n"] == 1:
            raise RuntimeError("simulated pool crash")
        return real(req)

    monkeypatch.setattr(stream_mod, "execute_request", flaky)
    requests = _requests(2)
    report = serve(
        requests, [0.0, 0.0], workers=1, backend="thread", warmup=False
    )
    first, second = report.summaries
    assert not first.ok
    # The crashed run is FAILED, not completed: it produced no judged
    # result, and labeling it completed would poison digests/percentiles.
    assert first.status == STATUS_FAILED
    assert not first.resolved
    assert "executor failure" in first.error
    assert "simulated pool crash" in first.error
    assert second.ok and second.status == STATUS_COMPLETED
    assert not report.ok  # the infra failure surfaces in the report
    assert report.metrics["failed"] == 1
    # Failed runs stay out of the success percentiles (they'd otherwise
    # *improve* p50 exactly when the service is sickest) ...
    assert report.metrics["latency"]["count"] == 1
    # ... and out of the digest fold.
    assert report.stream_digest() == summaries_digest([second])
    assert report.failed == [first]


def test_failed_runs_excluded_from_success_latency(monkeypatch):
    """Fast crashes must not drag success percentiles down: failure
    latency is tracked in its own histogram."""
    import repro.service.stream as stream_mod

    real = stream_mod.execute_request

    def crash_odd(req):
        if req.seed % 2:
            raise RuntimeError("boom")
        return real(req)

    monkeypatch.setattr(stream_mod, "execute_request", crash_odd)
    requests = _requests(6)  # seeds 500..505 -> 3 crashes
    report = serve(
        requests, [0.0] * 6, workers=1, backend="thread", warmup=False
    )
    assert len(report.failed) == 3
    assert len(report.completed) == 3
    assert report.metrics["latency"]["count"] == 3
    assert report.metrics["failure_latency"]["count"] == 3
    assert report.metrics["failed"] == 3


def test_replay_rejects_mismatched_lengths():
    async def main():
        gateway = StreamGateway(workers=1, backend="thread")
        async with gateway:
            with pytest.raises(ValueError, match="arrival times"):
                await replay(gateway, _requests(3), [0.0, 0.0])

    asyncio.run(main())


def test_replay_paces_arrivals():
    """Arrival offsets are honored: the replay clock, not completion,
    decides submission times."""
    requests = _requests(3)
    t0 = time.perf_counter()
    report = serve(
        requests,
        [0.0, 0.05, 0.10],
        workers=2,
        backend="thread",
        warmup=False,
    )
    assert time.perf_counter() - t0 >= 0.10
    assert len(report.completed) == 3


def test_structural_warmup_dedupes_and_caps():
    requests = _requests(12)
    warmed = structural_warmup(requests, max_runs=3)
    assert len(warmed) == 3
    assert all(s.ok for s in warmed)
    groups = {
        (s.request.kind, s.request.family, s.request.n) for s in warmed
    }
    assert len(groups) == 3  # distinct structural groups, not repeats


def test_report_roundtrips_to_json():
    requests = _requests(4)
    report = serve(
        requests, [0.0] * 4, workers=1, backend="thread", warmup=False
    )
    doc = json.loads(json.dumps(report.to_dict()))
    assert doc["offered"] == 4
    assert doc["completed"] + doc["rejected"] + doc["cancelled"] == 4
    assert doc["metrics"]["latency"]["count"] >= doc["completed"]
    assert doc["stream_digest"] == summaries_digest(report.completed)


# -- CLI ---------------------------------------------------------------------


def test_cli_saturated_selfcheck_json(capsys):
    code = stream_main([
        "--rate", "0", "--requests", "8", "--workers", "2",
        "--backend", "thread", "--policy", "block", "--selfcheck", "--json",
    ])
    doc = json.loads(capsys.readouterr().out)
    assert code == 0
    assert doc["completed"] == 8
    assert doc["selfcheck"]["match"] is True
    assert doc["selfcheck"]["sequential_digest"] == doc["stream_digest"]
    assert doc["metrics"]["latency"]["p99_ms"] >= doc["metrics"]["latency"][
        "p50_ms"
    ]


def test_cli_poisson_table_output(capsys):
    code = stream_main([
        "--rate", "40", "--duration", "0.2", "--workers", "1",
        "--backend", "thread",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "stream gateway" in out
    assert "p99 ms" in out
    assert "poisson" in out


def test_cli_rejects_bad_mix():
    with pytest.raises(SystemExit):
        stream_main(["--scenario-mix", "routing/never"])


def test_cli_saturated_mode_requires_explicit_request_count(capsys):
    # --rate 0 has no arrival clock to derive a count from; silently
    # running a single request would print a meaningless 1-sample report.
    with pytest.raises(SystemExit) as exc:
        stream_main(["--rate", "0"])
    assert exc.value.code == 2
    assert "--requests" in capsys.readouterr().err
