"""PlanCache semantics: scoped verify bypass, FIFO eviction, snapshots.

The regression tests here pin the two properties ISSUE 3 fixed:

* ``SharedCache.verify_mode`` must not mutate the *global* plan-cache
  ``enabled`` flag — the bypass has to be scoped to the verifying
  computation, or interleaved/concurrent runs observe (and clobber) each
  other's toggle;
* the cache's bounded store evicts strictly FIFO, with hit/miss/eviction
  counters that a model-based property test can predict exactly.
"""

import threading
from collections import OrderedDict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PlanCache, SharedCache, plan_cache, planned
from repro.core.errors import ProtocolError


@pytest.fixture
def clean_plan_cache():
    """The process-wide cache, emptied, with counters rebased afterwards."""
    pc = plan_cache()
    pc.clear()
    yield pc
    pc.clear()


# -- scoped verify bypass ----------------------------------------------------


def test_verify_bypass_does_not_clobber_global_toggle(clean_plan_cache):
    """Regression: the verify-mode recompute used to flip
    ``plan_cache().enabled`` for its duration, so *any* concurrent run --
    engines interleaved on threads, a batch service shard, a nested
    computation -- saw the process-wide cache silently disabled (or had its
    own disable re-enabled underneath it).  The bypass must be invisible
    outside the verifying computation itself.
    """
    pc = clean_plan_cache
    shared = SharedCache(verify_mode=True)
    shared.compute("key", lambda: 7)  # prime: stores 7

    in_recompute = threading.Event()
    release = threading.Event()
    errors = []

    def slow_recompute():
        in_recompute.set()
        if not release.wait(10):
            errors.append("probe thread never released")
        return 7

    def verifying_run():
        try:
            assert shared.compute("key", slow_recompute) == 7
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(repr(exc))

    thread = threading.Thread(target=verifying_run)
    thread.start()
    try:
        assert in_recompute.wait(10), "verify recompute never started"
        # While the other run's determinism audit is mid-recompute, this
        # run's view of the process-wide cache must be untouched: still
        # enabled, still serving hits, still counting.
        assert pc.enabled
        assert pc.compute("probe", lambda: "fresh") == "fresh"
        hits_before = pc.hits
        assert pc.compute("probe", lambda: "stale") == "fresh"
        assert pc.hits == hits_before + 1
    finally:
        release.set()
        thread.join(10)
    assert not errors, errors
    assert pc.enabled


def test_verify_bypass_is_reentrant(clean_plan_cache):
    pc = clean_plan_cache
    pc.compute("k", lambda: "cached")
    with pc.bypassed():
        with pc.bypassed():
            assert pc.compute("k", lambda: "inner") == "inner"
        # Still bypassed after the inner scope exits.
        assert pc.compute("k", lambda: "outer") == "outer"
    # Fully restored: the stored plan is served again.
    assert pc.compute("k", lambda: "post") == "cached"


def test_bypassed_scope_leaves_counters_untouched(clean_plan_cache):
    pc = clean_plan_cache
    pc.compute("k", lambda: 1)
    stats_before = (pc.hits, pc.misses, pc.evictions)
    with pc.bypassed():
        pc.compute("k", lambda: 2)
        pc.compute("other", lambda: 3)
    assert (pc.hits, pc.misses, pc.evictions) == stats_before
    assert "other" not in pc._store


def test_bypassed_is_per_cache_instance(clean_plan_cache):
    """Bypassing one cache must not switch off other PlanCache instances
    that happen to compute within the bypass scope.
    """
    other = PlanCache()
    other.compute("k", lambda: "cached")
    with clean_plan_cache.bypassed():
        assert other.compute("k", lambda: "fresh") == "cached"
        assert other.hits == 1


def test_verify_mode_recompute_is_genuine(clean_plan_cache):
    """The audit must re-run the underlying plan computation, not read the
    warm plan back -- otherwise it compares a cached value to itself and
    can never catch nondeterminism.
    """
    calls = []

    def build():
        calls.append(1)
        return len(calls)  # nondeterministic on purpose

    shared = SharedCache(verify_mode=True)
    assert shared.compute("s", lambda: planned("plan", build)) == 1
    with pytest.raises(ProtocolError, match="not .*deterministic"):
        shared.compute("s", lambda: planned("plan", build))
    assert len(calls) == 2, "verify hit must have recomputed the plan"


def test_verify_mode_still_passes_for_deterministic_plans(clean_plan_cache):
    shared = SharedCache(verify_mode=True)
    fn = lambda: planned("stable", lambda: (1, 2, 3))
    assert shared.compute("s", fn) == (1, 2, 3)
    assert shared.compute("s", fn) == (1, 2, 3)
    assert shared.hits == 1 and shared.misses == 1


# -- FIFO eviction / counters ------------------------------------------------


@settings(max_examples=200, deadline=None)
@given(
    maxsize=st.integers(min_value=1, max_value=8),
    accesses=st.lists(st.integers(min_value=0, max_value=15), max_size=60),
)
def test_fifo_eviction_model(maxsize, accesses):
    """Model-based check: store contents, insertion order, and the
    hit/miss/eviction counters all match an OrderedDict FIFO oracle.
    """
    cache = PlanCache(maxsize=maxsize)
    model = OrderedDict()
    hits = misses = evictions = 0
    for key in accesses:
        if key in model:
            hits += 1
            got = cache.compute(key, lambda: "WRONG: fn ran on a hit")
            assert got == model[key]
        else:
            misses += 1
            value = f"plan-{key}"
            assert cache.compute(key, lambda v=value: v) == value
            if len(model) >= maxsize:
                model.popitem(last=False)
                evictions += 1
            model[key] = value
        assert list(cache._store) == list(model)
    assert cache.hits == hits
    assert cache.misses == misses
    assert cache.evictions == evictions
    assert cache.stats() == (hits, misses, len(model))
    assert len(cache) == len(model)


def test_eviction_order_is_insertion_not_recency():
    """FIFO, not LRU: re-hitting the oldest plan does not save it."""
    cache = PlanCache(maxsize=2)
    cache.compute("a", lambda: 1)
    cache.compute("b", lambda: 2)
    cache.compute("a", lambda: 0)  # hit; must not refresh a's age
    cache.compute("c", lambda: 3)  # evicts a (oldest inserted)
    assert list(cache._store) == ["b", "c"]
    assert cache.evictions == 1


def test_concurrent_eviction_never_raises():
    """Regression (found by the network service's 256-instance
    differential): thread-backend workers share the process plan cache,
    and two threads evicting at once used to race ``pop(next(iter))`` to
    the same oldest key — the loser crashed its run with a bare KeyError
    deep inside an algorithm's plan computation.  Eviction must treat
    "someone else already evicted it" as success.
    """
    cache = PlanCache(maxsize=8)
    errors = []
    barrier = threading.Barrier(4)

    def hammer(worker):
        try:
            barrier.wait()
            for i in range(2000):
                cache.compute((worker, i), lambda: i)
        except BaseException as exc:  # pragma: no cover - the regression
            errors.append(exc)
            raise

    threads = [
        threading.Thread(target=hammer, args=(w,)) for w in range(4)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors
    # concurrent insert/evict pairs can overshoot transiently, but the
    # bound stays within one entry per racing thread
    assert len(cache) <= 8 + 4


# -- snapshots / warmup ------------------------------------------------------


def test_snapshot_filters_unpicklable_plans():
    cache = PlanCache()
    cache.compute("good", lambda: (1, 2))
    cache.compute("bad", lambda: (lambda: None))  # lambdas do not pickle
    snap = cache.snapshot()
    assert snap == {"good": (1, 2)}


def test_warm_respects_existing_entries_maxsize_and_counters():
    cache = PlanCache(maxsize=3)
    cache.compute("a", lambda: "mine")
    counters_before = (cache.hits, cache.misses, cache.evictions)
    adopted = cache.warm({"a": "theirs", "b": 2, "c": 3, "d": 4})
    assert adopted == 2  # b and c; a exists, d over maxsize
    assert cache._store["a"] == "mine"
    assert len(cache) == 3
    assert (cache.hits, cache.misses, cache.evictions) == counters_before
    # Warmed entries are served as hits afterwards.
    assert cache.compute("b", lambda: "recomputed") == 2


def test_disable_enable_roundtrip():
    cache = PlanCache()
    cache.disable()
    assert cache.compute("k", lambda: 1) == 1
    assert len(cache) == 0 and cache.misses == 0
    cache.enable()
    assert cache.compute("k", lambda: 1) == 1
    assert len(cache) == 1 and cache.misses == 1
