"""Corollary 3.3 / 3.4 primitives: round counts, delivery, concurrency."""

import pytest

from repro.core import ModelViolation, run_protocol
from repro.routing.primitives import (
    ROUNDS_KNOWN,
    ROUNDS_UNKNOWN,
    announce_within_group,
    broadcast_word,
    route_known,
    route_unknown,
)


def run_groups(n, groups, items_fn, mode, capacity=8, item_width=None):
    """Drive one primitive invocation at every node; returns RunResult."""
    membership = {}
    for gi, members in enumerate(groups):
        for rank, node in enumerate(members):
            membership[node] = (gi, rank)

    def prog(ctx):
        gi_rank = membership.get(ctx.node_id)
        if gi_rank is None:
            g = r = None
            items = []
        else:
            g, r = gi_rank
            items = items_fn(ctx.node_id, g, r)
        if mode == "unknown":
            got = yield from route_unknown(
                ctx, groups, g, r, items, "t", item_width=item_width
            )
        else:
            demand = None
            if g is not None:
                w = len(groups[g])
                demand = tuple(
                    tuple(
                        sum(
                            1
                            for node in groups[g]
                            for b2, _ in items_fn(
                                node, g, groups[g].index(node)
                            )
                            if b2 == b and groups[g].index(node) == a
                        )
                        for b in range(w)
                    )
                    for a in range(w)
                )
            got = yield from route_known(
                ctx, groups, g, r, items, demand, "t", item_width=item_width
            )
        return sorted(got)

    return run_protocol(n, prog, capacity=capacity)


def test_known_pattern_two_rounds_and_delivery():
    groups = ((0, 1, 2, 3),)

    def items(node, g, r):
        return [(b, (node * 10 + b,)) for b in range(4)]

    res = run_groups(16, groups, items, "known", item_width=1)
    assert res.rounds == ROUNDS_KNOWN
    for rank, node in enumerate(groups[0]):
        got = [it[0] for it in res.outputs[node]]
        assert sorted(got) == sorted(u * 10 + rank for u in groups[0])


def test_unknown_pattern_four_rounds():
    groups = ((0, 1, 2), (3, 4, 5))

    def items(node, g, r):
        # ragged demands, unknown to peers
        return [(0, (node, 7))] * (r + 1)

    res = run_groups(9, groups, items, "unknown", item_width=2)
    assert res.rounds == ROUNDS_UNKNOWN
    # rank-0 member of each group receives 1+2+3 items
    assert len(res.outputs[0]) == 6
    assert len(res.outputs[3]) == 6
    assert res.outputs[1] == []


def test_concurrent_groups_disjoint():
    groups = ((0, 1), (2, 3), (4, 5))

    def items(node, g, r):
        return [(1 - r, (node,))]

    res = run_groups(6, groups, items, "unknown", item_width=1)
    assert res.rounds == ROUNDS_UNKNOWN
    assert res.outputs[0] == [(1,)]
    assert res.outputs[5] == [(4,)]


def test_route_known_rejects_demand_item_mismatch():
    groups = ((0, 1),)

    def prog(ctx):
        if ctx.node_id < 2:
            # claim demand 1 but send nothing
            demand = ((1, 0), (0, 1))
            yield from route_known(
                ctx, groups, 0, ctx.node_id, [], demand, "t"
            )
        else:
            yield from route_known(
                ctx, groups, None, None, [], None, "t"
            )
        return None

    from repro.core import ProtocolError

    with pytest.raises(ProtocolError):
        run_protocol(4, prog)


def test_route_known_lane_overflow_guard():
    # degree > n without item_width must be rejected
    groups = ((0, 1),)

    def prog(ctx):
        if ctx.node_id < 2:
            items = [(0, (1, 1)) for _ in range(5)]
            demand = ((5, 0), (5, 0)) if ctx.node_id == 0 else ((5, 0), (5, 0))
            yield from route_known(ctx, groups, 0, ctx.node_id, items, demand, "t")
        else:
            yield from route_known(ctx, groups, None, None, [], None, "t")
        return None

    with pytest.raises(ModelViolation):
        run_protocol(3, prog)


def test_lanes_bundle_when_degree_exceeds_n():
    # group of 2 inside n=2: each member sends 2 items to each rank =>
    # degree 4 > n = 2 => two lanes of (1+2)-word segments.
    groups = ((0, 1),)

    def prog(ctx):
        if ctx.node_id < 2:
            items = [(b, (ctx.node_id, k)) for b in range(2) for k in range(2)]
            demand = ((2, 2), (2, 2))
            got = yield from route_known(
                ctx, groups, 0, ctx.node_id, items, demand, "t", item_width=2
            )
        else:
            got = yield from route_known(
                ctx, groups, None, None, [], None, "t", item_width=2
            )
        return sorted(got)

    res = run_protocol(2, prog, capacity=8)
    assert res.rounds == 2
    assert len(res.outputs[0]) == 4
    assert len(res.outputs[1]) == 4


def test_announce_within_group():
    groups = ((0, 1, 2),)

    def prog(ctx):
        if ctx.node_id < 3:
            vec = [ctx.node_id * 100 + i for i in range(7)]
            mat = yield from announce_within_group(
                ctx, groups, 0, ctx.node_id, vec, "t"
            )
        else:
            mat = yield from announce_within_group(
                ctx, groups, None, None, [], "t"
            )
        return mat

    res = run_protocol(9, prog)
    assert res.rounds == 2
    for node in range(3):
        mat = res.outputs[node]
        assert mat[1] == [100 + i for i in range(7)]
    assert res.outputs[4] == []
    assert res.outputs[8] == []


def test_broadcast_word():
    def prog(ctx):
        vals = yield from broadcast_word(ctx, ctx.node_id * 3)
        return vals

    res = run_protocol(5, prog)
    assert res.rounds == 1
    assert res.outputs[2] == [0, 3, 6, 9, 12]
