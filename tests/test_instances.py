"""Instance generators: balance invariants and reproducibility."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.routing import (
    block_skew_instance,
    from_demand,
    permutation_instance,
    transpose_instance,
    uniform_instance,
)
from repro.sorting import (
    duplicate_heavy_instance,
    presorted_instance,
    reversed_instance,
    uniform_sort_instance,
)


def _check_balanced(inst):
    n = inst.n
    demand = inst.demand_matrix()
    assert all(sum(row) == n for row in demand)
    assert all(sum(col) == n for col in zip(*demand))


@settings(max_examples=15, deadline=None)
@given(n=st.integers(2, 20), seed=st.integers(0, 500))
def test_uniform_instance_always_balanced(n, seed):
    _check_balanced(uniform_instance(n, seed=seed))


def test_uniform_reproducible():
    a = uniform_instance(10, seed=3)
    b = uniform_instance(10, seed=3)
    assert a.messages_by_source == b.messages_by_source
    c = uniform_instance(10, seed=4)
    assert a.messages_by_source != c.messages_by_source


def test_permutation_instance_hotspot_shape():
    inst = permutation_instance(8, shift=2)
    demand = inst.demand_matrix()
    for i in range(8):
        assert demand[i][(i + 2) % 8] == 8
        assert sum(demand[i]) == 8


def test_transpose_instance_flat_demand():
    inst = transpose_instance(6)
    demand = inst.demand_matrix()
    assert all(all(c == 1 for c in row) for row in demand)


@settings(max_examples=10, deadline=None)
@given(n=st.integers(4, 16), seed=st.integers(0, 100))
def test_block_skew_balanced(n, seed):
    _check_balanced(block_skew_instance(n, seed=seed))


def test_block_skew_is_actually_skewed():
    inst = block_skew_instance(16, seed=1)
    demand = inst.demand_matrix()
    flat = [demand[i][j] for i in range(16) for j in range(16)]
    assert max(flat) > 2  # heavier than the uniform expectation of 1


def test_from_demand_matches():
    demand = [[2, 1, 0], [1, 1, 1], [0, 1, 2]]
    inst = from_demand(3, demand, seed=1)
    assert inst.demand_matrix() == demand


def test_sort_instance_generators_shapes():
    for inst in (
        uniform_sort_instance(9, seed=0),
        duplicate_heavy_instance(9, distinct=3, seed=0),
        presorted_instance(9),
        reversed_instance(9),
    ):
        assert len(inst.keys_by_node) == 9
        assert all(len(ks) == 9 for ks in inst.keys_by_node)


def test_presorted_and_reversed_cover_same_keys():
    a = presorted_instance(6)
    b = reversed_instance(6)
    flat_a = sorted(k for ks in a.keys_by_node for k in ks)
    flat_b = sorted(k for ks in b.keys_by_node for k in ks)
    assert flat_a == flat_b == list(range(36))


def test_duplicate_heavy_universe():
    inst = duplicate_heavy_instance(9, distinct=3, seed=2)
    assert all(
        0 <= k < 3 for ks in inst.keys_by_node for k in ks
    )
