"""Baselines (naive, Valiant) and the Section 5 optimized router."""

import pytest

from repro.analysis import ROUTING_OPTIMIZED_ROUNDS, ROUTING_ROUNDS
from repro.routing import (
    block_skew_instance,
    naive_round_bound,
    permutation_instance,
    route_naive,
    route_optimized,
    route_valiant,
    transpose_instance,
    uniform_instance,
    verify_delivery,
)


def test_naive_delivers_and_matches_bound():
    inst = uniform_instance(16, seed=4)
    res = route_naive(inst)
    verify_delivery(inst, res.outputs)
    assert res.rounds == naive_round_bound(inst)


def test_naive_hotspot_needs_n_rounds():
    n = 16
    inst = permutation_instance(n)
    res = route_naive(inst)
    verify_delivery(inst, res.outputs)
    assert res.rounds == n  # linear in n — the motivation for the paper


def test_naive_transpose_one_round():
    inst = transpose_instance(9)
    res = route_naive(inst)
    verify_delivery(inst, res.outputs)
    assert res.rounds == 1


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_valiant_delivers(seed):
    inst = uniform_instance(16, seed=seed)
    res = route_valiant(inst, seed=seed)
    verify_delivery(inst, res.outputs)
    # constant-ish w.h.p.; generous guard against regressions
    assert res.rounds <= 20


def test_valiant_reproducible():
    inst = uniform_instance(16, seed=3)
    r1 = route_valiant(inst, seed=9)
    r2 = route_valiant(inst, seed=9)
    assert r1.rounds == r2.rounds
    assert r1.outputs == r2.outputs


def test_valiant_beats_naive_on_hotspot():
    inst = permutation_instance(25)
    naive = route_naive(inst)
    valiant = route_valiant(inst, seed=1)
    verify_delivery(inst, valiant.outputs)
    assert valiant.rounds < naive.rounds


@pytest.mark.parametrize("n", [16, 25, 36])
def test_optimized_twelve_rounds(n):
    inst = uniform_instance(n, seed=n)
    res = route_optimized(inst)
    verify_delivery(inst, res.outputs)
    assert res.rounds == ROUTING_OPTIMIZED_ROUNDS
    assert res.rounds < ROUTING_ROUNDS


@pytest.mark.parametrize(
    "maker", [permutation_instance, transpose_instance, block_skew_instance]
)
def test_optimized_adversarial(maker):
    inst = maker(25)
    res = route_optimized(inst)
    verify_delivery(inst, res.outputs)
    assert res.rounds == ROUTING_OPTIMIZED_ROUNDS


def test_optimized_local_work_scaling():
    """Theorem 5.4: local steps stay O(n log n) — the normalized ratio
    max_steps / (n log2 n) must not grow with n."""
    ratios = []
    for n in (16, 36, 64):
        inst = uniform_instance(n, seed=1)
        res = route_optimized(inst, meter=True)
        verify_delivery(inst, res.outputs)
        ratios.append(res.meters.normalized_steps(n))
    assert ratios[-1] <= ratios[0] * 1.5  # flat-ish, not growing


def test_optimized_memory_scaling():
    for n in (16, 36):
        inst = uniform_instance(n, seed=2)
        res = route_optimized(inst, meter=True)
        # peak live words per node should be O(n): a few n words
        assert res.meters.max_peak_words <= 8 * n
