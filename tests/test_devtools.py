"""Tests for the repro.devtools static-analysis pass.

Every stable rule is exercised against its fixture pair under
``tests/fixtures/lint/``: the *bad* file is the minimized historical bug
the rule encodes (true positive) and the *good* file is the fixed form
(true negative).  The meta-test at the bottom is the PR gate itself:
``python -m repro.devtools.lint src/ benchmarks/`` must exit 0 on the
shipped tree.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.devtools.lint import (
    JSON_SCHEMA_VERSION,
    PARSE_ERROR_ID,
    Finding,
    LintConfig,
    all_rules,
    lint_paths,
    lint_source,
)
from repro.devtools.rules import EXPERIMENTAL_RULE_IDS, STABLE_RULE_IDS

REPO = Path(__file__).resolve().parent.parent
FIXTURES = REPO / "tests" / "fixtures" / "lint"


def _rule_ids(path, **cfg):
    findings, scanned = lint_paths([str(path)], LintConfig(**cfg))
    assert scanned == 1, f"expected to scan exactly {path}"
    return [f.rule for f in findings]


def _run_cli(*args):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.devtools.lint", *args],
        capture_output=True,
        text=True,
        cwd=REPO,
        env=env,
    )


# -- rule framework -----------------------------------------------------------


def test_registry_stable_rule_set():
    assert tuple(r.id for r in all_rules()) == STABLE_RULE_IDS


def test_registry_experimental_rules_opt_in():
    ids = tuple(r.id for r in all_rules(experimental=True))
    assert ids == tuple(sorted(STABLE_RULE_IDS + EXPERIMENTAL_RULE_IDS))
    assert not any(r.experimental for r in all_rules())


def test_select_filters_rules():
    config = LintConfig(select=frozenset({"RPR001", "RPR102"}))
    assert [r.id for r in config.active_rules()] == ["RPR001", "RPR102"]


def test_parse_error_is_reported_not_raised():
    findings = lint_source("def broken(:\n", "x.py")
    assert [f.rule for f in findings] == [PARSE_ERROR_ID]


def test_finding_render_is_grep_friendly():
    f = Finding("RPR001", "a/b.py", 3, 7, "msg")
    assert f.render() == "a/b.py:3:7: RPR001 msg"
    assert f.to_dict() == {
        "rule": "RPR001",
        "path": "a/b.py",
        "line": 3,
        "col": 7,
        "message": "msg",
    }


# -- fixture corpus: one TP + one TN per stable rule --------------------------

# (rule, bad fixture, good fixture, findings expected in the bad file)
FIXTURE_CASES = [
    ("RPR001", "rpr001_bad.py", "rpr001_good.py", 2),
    ("RPR002", "rpr002_bad.py", "rpr002_good.py", 1),
    ("RPR003", "service/rpr003_bad.py", "service/rpr003_good.py", 1),
    ("RPR004", "service/rpr004_bad.py", "service/rpr004_good.py", 1),
    ("RPR005", "rpr005_bad.py", "rpr005_good.py", 2),
    ("RPR006", "rpr006_bad.py", "rpr006_good.py", 1),
    ("RPR007", "rpr007_bad.py", "rpr007_good.py", 2),
    ("RPR008", "bench_rpr008_bad.py", "bench_rpr008_good.py", 1),
]


@pytest.mark.parametrize(
    "rule,bad,good,expected",
    FIXTURE_CASES,
    ids=[c[0] for c in FIXTURE_CASES],
)
def test_rule_true_positive_and_negative(rule, bad, good, expected):
    got = _rule_ids(FIXTURES / bad)
    assert got == [rule] * expected, (
        f"{bad} must trip {rule} exactly {expected}x, got {got}"
    )
    assert _rule_ids(FIXTURES / good) == [], f"{good} must lint clean"


def test_whole_corpus_bad_files_trip_only_their_rule():
    for rule, bad, _good, expected in FIXTURE_CASES:
        findings, _ = lint_paths([str(FIXTURES / bad)], LintConfig())
        assert {f.rule for f in findings} == {rule}


# -- the four historical bugs, as minimized source ----------------------------


def test_catches_pr3_plan_cache_flip():
    source = (
        "def compute(self, key, fn):\n"
        "    cache = plan_cache()\n"
        "    cache.enabled = False\n"
        "    try:\n"
        "        return fn()\n"
        "    finally:\n"
        "        cache.enabled = True\n"
    )
    assert [f.rule for f in lint_source(source, "core/x.py")] == [
        "RPR001",
        "RPR001",
    ]


def test_catches_pr3_outbox_aliasing():
    source = (
        "def step(gens, pending, i, inbox):\n"
        "    raw = gens[i].send(inbox)\n"
        "    pending[i] = raw\n"
    )
    assert [f.rule for f in lint_source(source, "core/x.py")] == ["RPR002"]


def test_catches_pr6_put_after_close():
    source = (
        "async def submit(self, request):\n"
        "    ticket = make_ticket(request)\n"
        "    await self._queue.put(ticket)\n"
        "    return ticket.future\n"
    )
    assert [f.rule for f in lint_source(source, "repro/service/x.py")] == [
        "RPR004"
    ]


def test_pr6_fix_form_is_clean():
    source = (
        "async def submit(self, request):\n"
        "    ticket = make_ticket(request)\n"
        "    await self._queue.put(ticket)\n"
        "    if self._closed:\n"
        "        self._resolve_stragglers()\n"
        "    return ticket.future\n"
    )
    assert lint_source(source, "repro/service/x.py") == []


def test_catches_pr7_tracker_unregister():
    source = (
        "def detach(seg):\n"
        "    resource_tracker.unregister(seg._name, 'shared_memory')\n"
    )
    assert [f.rule for f in lint_source(source, "service/x.py")] == ["RPR005"]


# -- suppressions -------------------------------------------------------------


def test_suppressed_fixture_lints_clean():
    assert _rule_ids(FIXTURES / "suppressed.py") == []


def test_file_wide_suppression():
    assert _rule_ids(FIXTURES / "suppressed_file.py") == []


def test_trailing_suppression_is_rule_specific():
    source = "cache.enabled = False  # repro: ignore[RPR006]\n"
    # The directive names a different rule, so RPR001 still fires.
    assert [f.rule for f in lint_source(source, "x.py")] == ["RPR001"]


def test_standalone_suppression_spans_comment_block():
    source = (
        "# repro: ignore[RPR001] -- reason line one\n"
        "# continues on a second comment line\n"
        "cache.enabled = False\n"
    )
    assert lint_source(source, "x.py") == []


def test_parse_error_is_not_suppressible():
    source = "# repro: ignore-file\ndef broken(:\n"
    assert [f.rule for f in lint_source(source, "x.py")] == [PARSE_ERROR_ID]


# -- experimental rules -------------------------------------------------------


def test_experimental_rules_off_by_default():
    assert _rule_ids(FIXTURES / "rpr101_bad.py") == []


def test_experimental_todo_rule():
    assert _rule_ids(FIXTURES / "rpr101_bad.py", experimental=True) == [
        "RPR101"
    ]


def test_experimental_broad_except_superset():
    got = _rule_ids(FIXTURES / "rpr006_bad.py", experimental=True)
    assert got == ["RPR006", "RPR102"]


# -- rule scoping -------------------------------------------------------------


def test_service_rules_do_not_fire_outside_service():
    bad = (FIXTURES / "service" / "rpr004_bad.py").read_text(encoding="utf-8")
    assert lint_source(bad, "repro/core/x.py") == []


def test_bench_rule_only_fires_in_bench_files():
    bad = (FIXTURES / "bench_rpr008_bad.py").read_text(encoding="utf-8")
    assert lint_source(bad, "repro/core/x.py") == []


# -- CLI ----------------------------------------------------------------------


def test_cli_shipped_tree_is_clean():
    """The PR gate: the linter exits 0 over src/ and benchmarks/."""
    proc = _run_cli("src", "benchmarks")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "0 findings" in proc.stdout


def test_cli_exits_nonzero_on_findings():
    proc = _run_cli(str(FIXTURES / "rpr006_bad.py"))
    assert proc.returncode == 1
    assert "RPR006" in proc.stdout


def test_cli_exit_zero_flag():
    proc = _run_cli("--exit-zero", str(FIXTURES / "rpr006_bad.py"))
    assert proc.returncode == 0
    assert "RPR006" in proc.stdout


def test_cli_select_narrows_the_run():
    proc = _run_cli("--select", "RPR001", str(FIXTURES / "rpr006_bad.py"))
    assert proc.returncode == 0
    assert "0 findings" in proc.stdout


def test_cli_json_report_schema():
    proc = _run_cli("--json", str(FIXTURES / "rpr001_bad.py"))
    assert proc.returncode == 1
    doc = json.loads(proc.stdout)
    assert set(doc) == {"schema", "files_scanned", "rules", "findings"}
    assert doc["schema"] == JSON_SCHEMA_VERSION
    assert doc["files_scanned"] == 1
    assert set(doc["rules"]) >= set(STABLE_RULE_IDS)
    assert len(doc["findings"]) == 2
    for finding in doc["findings"]:
        assert set(finding) == {"rule", "path", "line", "col", "message"}
        assert finding["rule"] == "RPR001"


def test_cli_experimental_flag_reaches_experimental_rules():
    proc = _run_cli("--experimental", str(FIXTURES / "rpr101_bad.py"))
    assert proc.returncode == 1
    assert "RPR101" in proc.stdout


def test_cli_list_rules_names_every_rule():
    proc = _run_cli("--list-rules")
    assert proc.returncode == 0
    for rule_id in STABLE_RULE_IDS + EXPERIMENTAL_RULE_IDS:
        assert rule_id in proc.stdout
