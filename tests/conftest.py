"""Shared test configuration: hypothesis profiles for CI depth tiers.

The tier-1 suite runs hypothesis at its default example counts; the
nightly deep CI job exports ``HYPOTHESIS_PROFILE=nightly`` to widen the
search (more examples, no per-example deadline — CI runners are noisy
enough that deadline flakes would drown real signal).
"""

import os

try:
    from hypothesis import settings
except ImportError:  # pragma: no cover - hypothesis is a test dependency
    settings = None

if settings is not None:
    settings.register_profile("default", settings())
    settings.register_profile(
        "nightly", max_examples=500, deadline=None, print_blob=True
    )
    settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))
