"""Theorem 3.7's non-square overlay: channel split, cross detour, fallback."""

import pytest

from repro.analysis import ROUTING_ROUNDS
from repro.routing import (
    Message,
    RoutingInstance,
    permutation_instance,
    route_lenzen,
    uniform_instance,
    verify_delivery,
)
from repro.routing.general import ENGINE_CAPACITY, lenzen_general_program
from repro.core import CongestedClique


def test_tiny_n_fallback():
    for n in (2, 3):
        inst = uniform_instance(n, seed=n)
        res = route_lenzen(inst)
        verify_delivery(inst, res.outputs)
        assert res.rounds <= ROUTING_ROUNDS


@pytest.mark.parametrize("n", [5, 6, 8, 13, 24])
def test_overlay_sizes(n):
    inst = uniform_instance(n, seed=n + 1)
    res = route_lenzen(inst)
    verify_delivery(inst, res.outputs)
    assert res.rounds <= ROUTING_ROUNDS


def test_cross_only_traffic():
    """All traffic between the fringes — the worst case for the detour."""
    n = 12  # m = 9: low fringe {0,1,2}, high fringe {9,10,11}
    msgs = [[] for _ in range(n)]
    # each low-fringe node sends to high-fringe nodes and vice versa;
    # other nodes route among themselves inside V1.
    for i in range(3):
        for j in range(n):
            msgs[i].append(Message(i, 9 + (i + j) % 3, j, i * n + j))
            msgs[9 + i].append(Message(9 + i, (i + j) % 3, j, j))
    for i in range(3, 9):
        for j in range(n):
            msgs[i].append(Message(i, 3 + (i + j) % 6, j, j))
    inst = RoutingInstance(n, msgs, exact=False)
    res = route_lenzen(inst)
    verify_delivery(inst, res.outputs)
    assert res.rounds <= ROUTING_ROUNDS


def test_core_pair_messages_assigned_once():
    """Messages between core nodes must be delivered exactly once (they are
    eligible for both windows; the paper deletes them from one)."""
    n = 12  # core = {3..8}
    msgs = [[] for _ in range(n)]
    for i in range(3, 9):
        for j in range(n):
            msgs[i].append(Message(i, 3 + (j % 6), j, i * 100 + j))
    inst = RoutingInstance(n, msgs, exact=False)
    res = route_lenzen(inst)
    verify_delivery(inst, res.outputs)


def test_general_program_direct():
    inst = permutation_instance(10, shift=7)
    clique = CongestedClique(10, capacity=ENGINE_CAPACITY)
    res = clique.run(lenzen_general_program(inst))
    verify_delivery(inst, res.outputs)
    assert res.rounds <= ROUTING_ROUNDS


def test_overlay_relaxed_loads():
    """Sub-instances see up to n messages per node on m < n nodes — the
    lanes machinery must absorb the overflow."""
    n = 8  # m = 4: V1={0..3}, V2={4..7}
    msgs = [[] for _ in range(n)]
    # all of V1's traffic stays inside V1: 8 messages per node on a
    # 4-node window = 2 lanes.
    for i in range(4):
        for j in range(n):
            msgs[i].append(Message(i, j % 4, j, j))
    for i in range(4, 8):
        for j in range(n):
            msgs[i].append(Message(i, 4 + j % 4, j, j))
    inst = RoutingInstance(n, msgs, exact=False)
    res = route_lenzen(inst)
    verify_delivery(inst, res.outputs)
    assert res.rounds <= ROUTING_ROUNDS
