"""The CI bench-regression gate (benchmarks/check_regression.py)."""

import copy
import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))

from check_regression import check, main  # noqa: E402

BASELINE = {
    "schema": 1,
    "engines": {
        "rows": [
            {"workload": "skewed/naive", "n": 64, "bar": ">= 1.8",
             "speedup": 2.4},
            {"workload": "skewed/naive", "n": 128, "bar": ">= 2.5",
             "speedup": 3.3},
            {"workload": "balanced/lenzen", "n": 64, "bar": "(context)",
             "speedup": 1.0},
        ],
    },
    "data_plane": {
        "warm_speedup_target": 2.0,
        "rows": [
            {"workload": "lenzen/uniform/reference", "n": 64, "speedup": 1.9,
             "gated": False},
            {"workload": "lenzen/uniform/fast", "n": 64, "speedup": 2.2,
             "gated": True},
        ],
    },
    "service": {
        "speedup_target": 2.0,
        "rows": [
            {"backend": "sequential", "speedup": 1.0},
            {"backend": "process-pool", "speedup": 2.4},
        ],
    },
    "stream": {
        "speedup_target": 2.0,
        "rows": [
            {"config": "sequential-batch", "speedup": 1.0},
            {"config": "stream-saturated", "speedup": 2.3},
            {"config": "stream-poisson@40/s", "speedup": None},
        ],
    },
}


def fresh_like_baseline():
    doc = copy.deepcopy(BASELINE)
    doc["service"]["speedup_gate_enforced"] = True
    doc["stream"]["speedup_gate_enforced"] = True
    return doc


def test_identical_results_pass():
    assert check(BASELINE, fresh_like_baseline()) == []


def test_engine_bar_regression_fails():
    fresh = fresh_like_baseline()
    fresh["engines"]["rows"][1]["speedup"] = 2.1  # bar is >= 2.5
    (failure,) = check(BASELINE, fresh)
    assert "engines" in failure and "2.1" in failure and "2.5" in failure


def test_context_rows_are_not_gated():
    fresh = fresh_like_baseline()
    fresh["engines"]["rows"][2]["speedup"] = 0.5  # "(context)" row
    assert check(BASELINE, fresh) == []


def test_missing_gated_row_fails():
    fresh = fresh_like_baseline()
    del fresh["engines"]["rows"][0]
    (failure,) = check(BASELINE, fresh)
    assert "missing" in failure


def test_data_plane_regression_fails():
    fresh = fresh_like_baseline()
    fresh["data_plane"]["rows"][1]["speedup"] = 1.4
    (failure,) = check(BASELINE, fresh)
    assert "data_plane" in failure and "1.4" in failure


def test_data_plane_ungated_rows_are_context():
    # The reference-engine row routinely sits below the fast-engine target;
    # only rows the bench marks "gated" are judged.
    fresh = fresh_like_baseline()
    fresh["data_plane"]["rows"][0]["speedup"] = 1.2
    assert check(BASELINE, fresh) == []


def test_throughput_sections_gate_on_best_row():
    # The sequential row's speedup of 1.0 must not trip the gate: only the
    # best (parallel) row is judged against the target.
    fresh = fresh_like_baseline()
    assert check(BASELINE, fresh) == []
    fresh["stream"]["rows"][1]["speedup"] = 1.5
    (failure,) = check(BASELINE, fresh)
    assert "stream" in failure and "1.5" in failure


def test_unenforced_gate_is_skipped():
    # On < 4 CPUs the bench records speedup_gate_enforced=false; a low
    # number there is a measurement artifact, not a regression.
    fresh = fresh_like_baseline()
    fresh["service"]["speedup_gate_enforced"] = False
    fresh["service"]["rows"][1]["speedup"] = 0.9
    assert check(BASELINE, fresh) == []


def test_missing_gated_section_fails():
    fresh = fresh_like_baseline()
    del fresh["stream"]
    (failure,) = check(BASELINE, fresh)
    assert "stream" in failure and "missing" in failure


def test_baseline_without_targets_passes_anything():
    assert check({"schema": 1}, {"schema": 1}) == []
    assert check({"notes": "hi"}, {}) == []


def test_main_cli_roundtrip(tmp_path, capsys):
    base_path = tmp_path / "base.json"
    fresh_path = tmp_path / "fresh.json"
    base_path.write_text(json.dumps(BASELINE))
    fresh_path.write_text(json.dumps(fresh_like_baseline()))
    code = main(["--baseline", str(base_path), "--fresh", str(fresh_path)])
    assert code == 0
    assert "passed" in capsys.readouterr().out

    bad = fresh_like_baseline()
    bad["data_plane"]["rows"][1]["speedup"] = 0.5
    fresh_path.write_text(json.dumps(bad))
    code = main(["--baseline", str(base_path), "--fresh", str(fresh_path)])
    assert code == 1
    assert "FAILED" in capsys.readouterr().err


def test_against_the_committed_file():
    # The committed BENCH_engines.json must be self-consistent: checked
    # against itself as both baseline and fresh, no gate may fail.
    committed = json.loads(
        (Path(__file__).resolve().parent.parent / "BENCH_engines.json")
        .read_text()
    )
    assert check(committed, committed) == []


def test_load_rejects_non_object(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("[1, 2]")
    with pytest.raises(ValueError, match="JSON object"):
        main(["--baseline", str(path), "--fresh", str(path)])
