"""Node-set partition arithmetic (groups and the Theorem 3.7 overlay)."""

import pytest

from repro.core import (
    GroupPartition,
    OverlayDecomposition,
    contiguous_ranges,
    is_perfect_square,
    isqrt_exact,
    split_evenly,
    square_partition,
)


def test_isqrt_exact():
    assert isqrt_exact(49) == 7
    with pytest.raises(ValueError):
        isqrt_exact(50)


def test_is_perfect_square():
    squares = {i * i for i in range(1, 20)}
    for n in range(1, 200):
        assert is_perfect_square(n) == (n in squares)


def test_square_partition_layout():
    part = square_partition(16)
    assert part.num_groups == 4
    assert list(part.members(2)) == [8, 9, 10, 11]
    assert part.group_of(9) == 2
    assert part.rank_in_group(9) == 1
    assert part.member(2, 1) == 9


def test_partition_bounds_checked():
    part = GroupPartition(12, 3)
    with pytest.raises(ValueError):
        part.group_of(12)
    with pytest.raises(ValueError):
        part.members(4)
    with pytest.raises(ValueError):
        part.member(0, 3)
    with pytest.raises(ValueError):
        GroupPartition(10, 3)


def test_overlay_windows_cover_everything():
    for n in (5, 7, 10, 12, 20, 99):
        ov = OverlayDecomposition(n)
        assert len(ov.v1) == ov.m
        assert len(ov.v2) == ov.m
        assert set(ov.v1) | set(ov.v2) == set(range(n))
        assert len(ov.low_fringe) == len(ov.high_fringe) == n - ov.m


def test_overlay_classification():
    ov = OverlayDecomposition(12)  # m = 9, fringes size 3
    assert ov.classify_pair(0, 5) == "v1"
    assert ov.classify_pair(10, 11) == "v2"
    assert ov.classify_pair(1, 10) == "cross"
    assert ov.classify_pair(10, 1) == "cross"
    # core pairs go canonically to v1
    assert ov.classify_pair(5, 6) == "v1"


def test_overlay_cross_only_between_fringes():
    for n in (6, 13, 27):
        ov = OverlayDecomposition(n)
        low, high = set(ov.low_fringe), set(ov.high_fringe)
        for a in range(n):
            for b in range(n):
                if ov.classify_pair(a, b) == "cross":
                    assert (a in low and b in high) or (
                        a in high and b in low
                    )


def test_split_evenly():
    assert split_evenly(10, 3) == [4, 3, 3]
    assert split_evenly(9, 3) == [3, 3, 3]
    assert sum(split_evenly(17, 5)) == 17
    with pytest.raises(ValueError):
        split_evenly(5, 0)


def test_contiguous_ranges():
    assert contiguous_ranges([2, 0, 3]) == [(0, 2), (2, 2), (2, 5)]
