"""Algorithm 4 and derived-problem edge cases."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import InvalidInstance
from repro.sorting import (
    SortInstance,
    sort_lenzen,
    uniform_sort_instance,
    verify_sorted_batches,
)
from repro.sorting.lenzen_sort import lenzen_sort_program


def test_sort_requires_square_n():
    inst = uniform_sort_instance(9, seed=1)
    # build a non-square instance manually
    bad = SortInstance(5, [[1, 2, 3, 4, 5] for _ in range(5)], key_universe=25)
    with pytest.raises(InvalidInstance):
        lenzen_sort_program(bad)
    # square works
    sort_lenzen(inst)


def test_sort_smallest_square():
    inst = uniform_sort_instance(4, seed=2)
    res = sort_lenzen(inst)
    verify_sorted_batches(inst, res.outputs)
    assert res.rounds == 37


def test_sort_max_key_universe():
    n = 9
    universe = n ** 3  # the codec's ceiling
    keys = [[(i * 97 + j * 13) % universe for j in range(n)] for i in range(n)]
    inst = SortInstance(n, keys, key_universe=universe)
    res = sort_lenzen(inst)
    verify_sorted_batches(inst, res.outputs)


def test_sort_binary_keys():
    inst = SortInstance(
        16, [[(i + j) % 2 for j in range(16)] for i in range(16)],
        key_universe=4,
    )
    res = sort_lenzen(inst)
    verify_sorted_batches(inst, res.outputs)


def test_sort_one_node_holds_extremes():
    n = 16
    keys = [[8] * n for _ in range(n)]
    keys[5] = [0] * (n // 2) + [15] * (n // 2)  # only node 5 has extremes
    inst = SortInstance(n, keys, key_universe=16)
    res = sort_lenzen(inst)
    verify_sorted_batches(inst, res.outputs)
    codec = inst.codec
    assert codec.raw(res.outputs[0][0]) == 0
    assert codec.raw(res.outputs[n - 1][-1]) == 15


def test_batches_are_internally_sorted():
    inst = uniform_sort_instance(16, seed=13)
    res = sort_lenzen(inst)
    for batch in res.outputs:
        assert list(batch) == sorted(batch)
        assert len(batch) == 16


def test_batch_boundaries_are_monotone():
    inst = uniform_sort_instance(16, seed=14)
    res = sort_lenzen(inst)
    for i in range(15):
        if res.outputs[i] and res.outputs[i + 1]:
            assert res.outputs[i][-1] < res.outputs[i + 1][0]


@settings(max_examples=5, deadline=None)
@given(
    distinct=st.integers(1, 6),
    seed=st.integers(0, 1000),
)
def test_sort_property_duplicates(distinct, seed):
    from repro.sorting import duplicate_heavy_instance

    inst = duplicate_heavy_instance(9, distinct=distinct, seed=seed)
    res = sort_lenzen(inst)
    verify_sorted_batches(inst, res.outputs)
