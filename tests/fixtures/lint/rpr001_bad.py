"""TP: the PR-3 verify_mode bug — flipping the global PlanCache flag."""


def audit(plan_cache, recompute):
    plan_cache.enabled = False
    try:
        return recompute()
    finally:
        plan_cache.enabled = True
