"""TP: the PR-6 mislabeling bug — a broad except swallowing the failure."""


def settle(futures):
    done = []
    for fut in futures:
        try:
            done.append(fut.result())
        except Exception:
            pass
    return done
