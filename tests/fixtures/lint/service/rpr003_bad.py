"""TP: a blocking call directly inside an async gateway body."""

import time


async def worker(queue, results):
    while True:
        item = await queue.get()
        time.sleep(0.01)
        results.append(item)
