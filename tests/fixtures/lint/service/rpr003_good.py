"""TN: the loop-friendly form — await asyncio.sleep, and blocking work
confined to a nested callback that runs off-loop."""

import asyncio


async def worker(queue, results):
    while True:
        item = await queue.get()
        await asyncio.sleep(0.01)

        def on_done(fut):
            results.append(fut.result())

        item.add_done_callback(on_done)
