"""TP: the PR-6 stranded-future race — put() with no closed re-check."""


async def submit(gateway, ticket):
    await gateway.queue.put(ticket)
    return ticket.future
