"""TN: the PR-6 fix — re-check the closed flag after resuming from put()."""


async def submit(gateway, ticket):
    await gateway.queue.put(ticket)
    if gateway.closed:
        gateway.resolve_stragglers()
    return ticket.future
