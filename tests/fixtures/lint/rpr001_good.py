"""TN: the PR-3 fix — a contextvar-scoped bypass instead of the flag."""


def audit(plan_cache, recompute):
    with plan_cache.bypassed():
        return recompute()
