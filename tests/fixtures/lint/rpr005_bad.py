"""TP: the PR-7 tracker bug — worker-side unregister plus a naive attach."""

from multiprocessing import resource_tracker, shared_memory


def attach(name):
    seg = shared_memory.SharedMemory(name=name)
    resource_tracker.unregister(seg._name, "shared_memory")
    return seg
