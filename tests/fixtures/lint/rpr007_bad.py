"""TP: frozen-dataclass fast construction outside the decode paths."""


class Record:
    pass


def decode(payload):
    obj = Record.__new__(Record)
    obj.__dict__ = payload
    return obj
