"""TP: the PR-7 silent-waiver bug — a speedup row without a gate flag."""


def payload_row(wall, base):
    return {
        "backend": "pool",
        "wall_s": wall,
        "speedup": base / wall,
    }
