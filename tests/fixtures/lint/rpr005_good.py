"""TN: the PR-7 fix — suppress the attach-side register (bpo-39959)."""

from multiprocessing import resource_tracker, shared_memory


def attach(name):
    original = resource_tracker.register
    resource_tracker.register = lambda *a, **k: None
    try:
        seg = shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original
    return seg
