"""TP: the PR-3 FastEngine bug — aliasing the protocol's yielded outbox."""


def pump(gen, pending, i):
    raw = gen.send(None)
    pending[i] = raw
    return None
