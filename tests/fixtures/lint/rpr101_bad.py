"""TP (experimental): acknowledged-debt comment for the nightly sweep."""

# TODO: tighten this bound once the demand matrix is exact.


def bound(n):
    return 2 * n
