"""TN: the PR-3 fix — snapshot the yielded dict before storing it."""


def pump(gen, pending, i):
    raw = gen.send(None)
    pending[i] = dict(raw)
    return None
