"""TN: ordinary construction through the real constructor."""


class Record:
    def __init__(self, header, words):
        self.header = header
        self.words = words


def decode(payload):
    return Record(payload["header"], payload["words"])
