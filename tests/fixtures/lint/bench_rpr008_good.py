"""TN: the PR-7 fix — every ratio row says whether it is gate-enforced."""


def payload_row(wall, base, enforced):
    return {
        "backend": "pool",
        "wall_s": wall,
        "speedup": base / wall,
        "gated": enforced,
    }
