"""TN: the PR-6 fix — the failure is recorded as STATUS_FAILED."""

STATUS_FAILED = "failed"


def settle(futures):
    done = []
    for fut in futures:
        try:
            done.append((None, fut.result()))
        except Exception as exc:
            done.append((STATUS_FAILED, repr(exc)))
    return done
