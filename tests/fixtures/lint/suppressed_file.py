# repro: ignore-file[RPR006] -- fixture: file-wide waiver for cleanup code.
"""File-wide suppression: every RPR006 hit in this file is waived."""


def cleanup(futures):
    for fut in futures:
        try:
            fut.cancel()
        except Exception:
            pass
