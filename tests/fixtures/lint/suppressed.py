"""Deliberate violations under line-level suppression directives.

Must lint clean: the trailing-comment form covers its own line, and a
standalone directive comment covers the first code line after the
comment block.
"""


def audit(plan_cache, recompute):
    plan_cache.enabled = False  # repro: ignore[RPR001] -- fixture: test harness scope
    try:
        return recompute()
    finally:
        # repro: ignore[RPR001] -- standalone directive: covers the
        # next code line even across a multi-line explanation.
        plan_cache.enabled = True


def settle(fut):
    try:
        return fut.cancel()
    # repro: ignore -- bare directive suppresses every rule here.
    except Exception:
        return None
