"""Bounds table and report rendering."""

from repro.analysis import (
    ROUTING_PHASES,
    SORTING_PHASES,
    check_bound,
    naive_routing_rounds,
    render_table,
    subset_sort_bucket_bound,
)


def test_phase_tables_sum_to_totals():
    assert sum(ROUTING_PHASES.values()) == 16
    assert sum(SORTING_PHASES.values()) == 37


def test_bucket_bound_matches_paper_constants():
    # (w, k_max) = (sqrt(n), 2n) gives the paper's < 4n (up to the +w slack
    # from open-ended buckets).
    n = 100
    bound = subset_sort_bucket_bound(2 * n, 10)
    assert bound == 2 * n + 20 * 10 + 10  # k_max + s*w + w = 4n + w


def test_naive_bound_identity():
    assert naive_routing_rounds(7) == 7


def test_render_table():
    text = render_table("T", ["a", "bb"], [[1, 22], [333, 4]])
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "bb" in lines[1]
    assert len(lines) == 5


def test_check_bound_verdicts():
    assert "[OK]" in check_bound(10, 16, "x")
    assert "[EXCEEDED]" in check_bound(17, 16, "x")
