"""Engine semantics: lockstep rounds, audits, phases, piggyback."""

import pytest

from repro.core import (
    CongestedClique,
    EdgeConflict,
    ModelViolation,
    ProtocolError,
    attach_piggyback,
    idle,
    merge_outboxes,
    packet,
    run_protocol,
    strip_piggyback,
)


def test_single_round_exchange():
    def prog(ctx):
        inbox = yield {(ctx.node_id + 1) % ctx.n: packet(ctx.node_id)}
        return sorted(inbox)

    res = run_protocol(4, prog)
    assert res.rounds == 1
    assert res.outputs == [[3], [0], [1], [2]]


def test_self_send_allowed():
    def prog(ctx):
        inbox = yield {ctx.node_id: packet(99)}
        return inbox[ctx.node_id].words[0]

    res = run_protocol(3, prog)
    assert res.outputs == [99, 99, 99]


def test_invalid_destination_rejected():
    def prog(ctx):
        yield {ctx.n + 5: packet(1)}

    with pytest.raises(ModelViolation):
        run_protocol(3, prog)


def test_non_dict_outbox_rejected():
    def prog(ctx):
        yield [1, 2]

    with pytest.raises(ModelViolation):
        run_protocol(2, prog)


def test_max_rounds_guard():
    def prog(ctx):
        while True:
            yield {}

    with pytest.raises(ProtocolError):
        CongestedClique(2, max_rounds=5).run(prog)


def test_packet_to_finished_node_rejected():
    def prog(ctx):
        if ctx.node_id == 0:
            return "done"
        yield {}
        yield {0: packet(1)}
        return "late"

    with pytest.raises(ProtocolError):
        run_protocol(2, prog)


def test_phase_attribution():
    def prog(ctx):
        ctx.enter_phase("a")
        yield {}
        yield {}
        ctx.enter_phase("b")
        yield {}
        return None

    res = run_protocol(3, prog)
    assert res.phase_table() == {"a": 2, "b": 1}


def test_stats_count_words():
    def prog(ctx):
        yield {(ctx.node_id + 1) % ctx.n: packet(1, 2, 3)}
        return None

    res = run_protocol(4, prog)
    assert res.stats.total_packets == 4
    assert res.stats.total_words == 12


def test_meter_collection():
    def prog(ctx):
        ctx.charge(7)
        ctx.observe_live_words(42)
        yield {}
        return None

    res = run_protocol(3, prog, meter=True)
    assert res.meters.max_steps == 7
    assert res.meters.max_peak_words == 42


def test_shared_cache_verify_mode_catches_nondeterminism():
    state = {"calls": 0}

    def prog(ctx):
        def impure():
            state["calls"] += 1
            return state["calls"]  # different per evaluation

        ctx.shared_compute("k", impure)
        yield {}
        return None

    with pytest.raises(ProtocolError):
        run_protocol(3, prog, verify_shared=True)


def test_piggyback_roundtrip():
    def prog(ctx):
        out = {}
        if ctx.node_id == 0:
            out = {1: packet(5, 6)}
        inbox = yield attach_piggyback(out, 100 + ctx.node_id, ctx.n)
        clean, words = strip_piggyback(inbox)
        return (sorted(words.values()), {
            src: tuple(p.words) for src, p in clean.items()
        })

    res = run_protocol(3, prog)
    for node, (words, clean) in enumerate(res.outputs):
        assert words == [100, 101, 102]
        if node == 1:
            assert clean == {0: (5, 6)}
        else:
            assert clean == {}


def test_merge_outboxes_detects_conflicts():
    with pytest.raises(EdgeConflict):
        merge_outboxes([{1: packet(1)}, {1: packet(2)}])
    merged = merge_outboxes([{1: packet(1)}, {2: packet(2)}])
    assert set(merged) == {1, 2}


def test_idle_raises_on_unexpected_packet():
    def prog(ctx):
        if ctx.node_id == 0:
            yield {1: packet(1)}
        else:
            yield from idle(1)
        return None

    with pytest.raises(EdgeConflict):
        run_protocol(2, prog)
