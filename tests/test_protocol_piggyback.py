"""Regression tests for the attach/strip piggyback asymmetry.

``attach_piggyback`` always emits at least the broadcast word on every edge,
so a zero-word packet in a piggyback round means the sender skipped the
attach step.  ``strip_piggyback`` used to silently drop such packets — losing
the sender's broadcast word and desynchronizing termination protocols built
on it — and now reports them as a ``ProtocolError``.  Also covers the
capacity edge: piggybacking consumes exactly the one word of slack the
caller must reserve.
"""

import pytest

from repro.core import (
    CapacityExceeded,
    CongestedClique,
    Packet,
    ProtocolError,
    attach_piggyback,
    packet,
    run_protocol,
    strip_piggyback,
)

ENGINES = ["reference", "fast-audit"]


def test_round_trip_recovers_every_broadcast_word():
    outbox = {0: packet(1, 2), 2: packet(7)}
    stamped = attach_piggyback(outbox, word=42, n=4)
    assert set(stamped) == {0, 1, 2, 3}  # fills unused edges
    # simulate node k receiving one stamped packet from each of 4 senders
    inbox = {src: stamped[src] for src in range(4)}
    clean, words = strip_piggyback(inbox)
    assert words == {0: 42, 1: 42, 2: 42, 3: 42}
    assert clean == {0: packet(1, 2), 2: packet(7)}


def test_round_trip_with_empty_payload_packet_keeps_the_broadcast_word():
    # An explicitly empty packet in the outbox must not lose the broadcast:
    # after attach it carries exactly the piggyback word, and strip reports
    # the word while (correctly) dropping the payloadless packet.
    outbox = {1: Packet(())}
    stamped = attach_piggyback(outbox, word=9, n=3)
    assert stamped[1] == packet(9)
    clean, words = strip_piggyback({1: stamped[1]})
    assert words == {1: 9}
    assert clean == {}


def test_empty_packet_in_piggyback_round_is_loud():
    # Regression: a zero-word packet was silently skipped, losing the
    # sender's broadcast word; it must now raise.
    with pytest.raises(ProtocolError, match="empty packet from node 2"):
        strip_piggyback({2: Packet(())})


@pytest.mark.parametrize("engine", ENGINES)
def test_piggyback_round_through_the_engine(engine):
    def prog(ctx):
        base = {} if ctx.node_id else {1: packet(5)}
        inbox = yield attach_piggyback(base, word=ctx.node_id + 10, n=ctx.n)
        clean, words = strip_piggyback(inbox)
        return (sorted(words.values()), sorted(clean))

    res = run_protocol(3, prog, engine=engine)
    for node_id, (words, payload_srcs) in enumerate(res.outputs):
        assert words == [10, 11, 12]
        assert payload_srcs == ([0] if node_id == 1 else [])


@pytest.mark.parametrize("engine", ENGINES)
def test_piggyback_at_capacity_edge_is_legal(engine):
    # The caller reserves one word of slack: capacity-1 payload words plus
    # the piggyback word exactly fill a packet.
    capacity = 4

    def prog(ctx):
        payload = {1: Packet(tuple(range(capacity - 1)))}
        inbox = yield attach_piggyback(payload, word=3, n=ctx.n)
        clean, words = strip_piggyback(inbox)
        return max(len(p.words) for p in inbox.values())

    res = run_protocol(2, prog, capacity=capacity, engine=engine)
    # node 1 received the full payload+piggyback packet; node 0 only saw
    # piggyback-only fillers.
    assert res.outputs == [1, capacity]


@pytest.mark.parametrize("engine", ENGINES)
def test_piggyback_without_slack_exceeds_capacity(engine):
    # Forgetting the slack word makes the stamped packet one word too big;
    # the engine audit must reject the round.
    capacity = 4

    def prog(ctx):
        payload = {1: Packet(tuple(range(capacity)))}
        yield attach_piggyback(payload, word=3, n=ctx.n)

    with pytest.raises(CapacityExceeded):
        run_protocol(2, prog, capacity=capacity, engine=engine)
