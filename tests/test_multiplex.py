"""Channel multiplexer: id translation, framing, capacity budgets."""

import pytest

from repro.core import ProtocolError, packet, run_protocol
from repro.core.message import Packet
from repro.routing.multiplex import Channel, SubContext, multiplex


def _echo_channel(tag):
    """Each member sends its (virtual) id+tag to virtual node 0; node 0
    returns the sorted list it received."""

    def factory(sub: SubContext):
        def gen():
            out = {0: packet(sub.node_id * 100 + tag)}
            inbox = yield out
            if sub.node_id == 0:
                return sorted(p.words[0] for p in inbox.values())
            return None

        return gen()

    return factory


def test_two_disjoint_channels_share_rounds():
    channels = [
        Channel("A", (0, 1, 2), _echo_channel(1)),
        Channel("B", (3, 4, 5), _echo_channel(2)),
    ]

    def prog(ctx):
        outs = yield from multiplex(ctx, channels)
        return outs

    res = run_protocol(6, prog, capacity=16)
    assert res.rounds == 1  # concurrent, not sequential
    assert res.outputs[0][0] == [1, 101, 201]
    assert res.outputs[3][1] == [2, 102, 202]
    assert res.outputs[1] == [None, None]


def test_overlapping_channels_merge_frames():
    # node 2 participates in both channels; its packets to the two virtual
    # "node 0"s (global 0 and global 2) ride distinct physical edges, but
    # global node 2 receives frames from both channels on one edge from
    # itself?  No — channels address different globals; the point is that a
    # single physical packet can carry multiple channel frames.
    channels = [
        Channel("A", (0, 1, 2), _echo_channel(1)),
        Channel("B", (2, 3, 4), _echo_channel(2)),
    ]

    def prog(ctx):
        outs = yield from multiplex(ctx, channels)
        return outs

    res = run_protocol(5, prog, capacity=24)
    assert res.outputs[0][0] == [1, 101, 201]
    assert res.outputs[2][1] == [2, 102, 202]


def test_channels_of_different_lengths():
    def short(sub):
        def gen():
            yield {}
            return "short"

        return gen()

    def long(sub):
        def gen():
            for _ in range(4):
                yield {}
            return "long"

        return gen()

    channels = [
        Channel("S", None, short),
        Channel("L", None, long),
    ]

    def prog(ctx):
        return (yield from multiplex(ctx, channels))

    res = run_protocol(3, prog)
    assert res.rounds == 4  # max, not sum
    assert res.outputs[0] == ["short", "long"]


def test_channel_capacity_enforced():
    def fat(sub):
        def gen():
            yield {0: Packet(tuple(range(9)))}
            return None

        return gen()

    channels = [Channel("F", None, fat, capacity=8)]

    def prog(ctx):
        return (yield from multiplex(ctx, channels))

    with pytest.raises(ProtocolError):
        run_protocol(2, prog, capacity=32)


def test_identity_channel_uses_global_ids():
    def probe(sub):
        def gen():
            inbox = yield {(sub.node_id + 1) % sub.n: packet(sub.node_id)}
            return sorted(inbox)

        return gen()

    channels = [Channel("I", None, probe)]

    def prog(ctx):
        return (yield from multiplex(ctx, channels))

    res = run_protocol(4, prog)
    assert res.outputs[0] == [[3]]


def test_subcontext_prefixes_shared_cache():
    seen = []

    def chan(name):
        def factory(sub):
            def gen():
                value = sub.shared_compute("k", lambda: name)
                seen.append(value)
                yield {}
                return value

            return gen()

        return factory

    channels = [
        Channel("A", (0,), chan("A")),
        Channel("B", (1,), chan("B")),
    ]

    def prog(ctx):
        return (yield from multiplex(ctx, channels))

    res = run_protocol(2, prog)
    # without prefixing, both channels would share key "k" and collide
    assert res.outputs[0][0] == "A"
    assert res.outputs[1][1] == "B"
