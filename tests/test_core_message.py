"""Unit tests for the packet/word model."""

import pytest

from repro.core import (
    CapacityExceeded,
    Packet,
    WordSizeViolation,
    bundle,
    pack_pair,
    pack_triple,
    packet,
    unbundle,
    unpack_pair,
    unpack_triple,
    validate_packet,
)


def test_packet_basics():
    p = packet(1, 2, 3)
    assert len(p) == 3
    assert list(p) == [1, 2, 3]
    assert p[1] == 2


def test_packet_coerces_list():
    p = Packet([4, 5])  # type: ignore[arg-type]
    assert p.words == (4, 5)


def test_validate_rejects_oversize():
    with pytest.raises(CapacityExceeded):
        validate_packet(packet(*range(9)), n=16, capacity=8)


def test_validate_rejects_huge_word():
    with pytest.raises(WordSizeViolation):
        validate_packet(packet(16 ** 13), n=16, capacity=8)


def test_validate_rejects_bool_and_float():
    with pytest.raises(WordSizeViolation):
        validate_packet(Packet((True,)), n=16, capacity=8)
    with pytest.raises(WordSizeViolation):
        validate_packet(Packet((1.5,)), n=16, capacity=8)  # type: ignore


def test_validate_accepts_polynomial_words():
    validate_packet(packet(16 ** 11, -5, 0), n=16, capacity=8)


def test_pack_pair_roundtrip():
    for a in (0, 3, 15):
        for b in (0, 7, 15):
            assert unpack_pair(pack_pair(a, b, 16), 16) == (a, b)


def test_pack_pair_rejects_out_of_range():
    with pytest.raises(ValueError):
        pack_pair(16, 0, 16)


def test_pack_triple_roundtrip():
    for t in [(0, 0, 0), (3, 9, 15), (15, 15, 15)]:
        assert unpack_triple(pack_triple(*t, 16), 16) == t


def test_pack_triple_rejects_out_of_range():
    with pytest.raises(ValueError):
        pack_triple(0, 16, 0, 16)


def test_bundle_unbundle_roundtrip():
    values = list(range(10))
    packets = bundle(values, 3)
    assert [len(p) for p in packets] == [3, 3, 3, 1]
    assert unbundle(packets) == values


def test_bundle_rejects_zero_width():
    with pytest.raises(ValueError):
        bundle([1], 0)
