"""E7 — "the randomized solutions are about 2 times as fast" (Section 1).

Deterministic 16/12-round routing vs the Valiant-style randomized baseline,
and deterministic 37-round sorting vs randomized sample sort.  The expected
shape: randomized round counts roughly half the deterministic ones (and the
deterministic counts are worst-case guarantees, not expectations).
"""

from repro.analysis import render_table
from repro.routing import (
    route_lenzen,
    route_optimized,
    route_valiant,
    uniform_instance,
    verify_delivery,
)
from repro.sorting import (
    sample_sort,
    sort_lenzen,
    uniform_sort_instance,
    verify_sorted_batches,
)


def _measure():
    rows = []
    for n in (16, 25, 36, 49):
        inst = uniform_instance(n, seed=n)
        det = route_lenzen(inst)
        verify_delivery(inst, det.outputs)
        opt = route_optimized(inst)
        verify_delivery(inst, opt.outputs)
        rnd = route_valiant(inst, seed=n)
        verify_delivery(inst, rnd.outputs)
        rows.append(
            [
                "routing",
                n,
                det.rounds,
                opt.rounds,
                rnd.rounds,
                f"{det.rounds / rnd.rounds:.1f}x",
            ]
        )
    for n in (16, 25, 36):
        sinst = uniform_sort_instance(n, seed=n)
        det = sort_lenzen(sinst)
        verify_sorted_batches(sinst, det.outputs)
        rnd = sample_sort(sinst, seed=n)
        verify_sorted_batches(sinst, rnd.outputs)
        rows.append(
            [
                "sorting",
                n,
                det.rounds,
                "-",
                rnd.rounds,
                f"{det.rounds / rnd.rounds:.1f}x",
            ]
        )
        assert det.rounds >= 1.5 * rnd.rounds  # the paper's ~2x shape
    return rows


def test_bench_vs_randomized(benchmark, table_printer):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    table_printer(
        render_table(
            "E7  Deterministic vs randomized (paper: randomized ~2x faster)",
            ["task", "n", "det", "det-opt", "randomized", "det/rand"],
            rows,
        )
    )


if __name__ == "__main__":
    from conftest import run_standalone

    raise SystemExit(run_standalone(__file__))
