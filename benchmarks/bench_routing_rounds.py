"""E1 — Theorem 3.7: deterministic routing in at most 16 rounds, any n.

Regenerates the round-count table over four workloads and a size sweep that
includes non-square n.  The paper's claim is a worst-case constant; the
table shows the measured constant per instance family.
"""

import pytest

from repro.analysis import ROUTING_ROUNDS, render_table
from repro.routing import (
    block_skew_instance,
    permutation_instance,
    route_lenzen,
    transpose_instance,
    uniform_instance,
    verify_delivery,
)

WORKLOADS = {
    "uniform": lambda n: uniform_instance(n, seed=n),
    "hotspot-perm": lambda n: permutation_instance(n),
    "transpose": transpose_instance,
    "block-skew": lambda n: block_skew_instance(n, seed=n),
}

SIZES = [16, 20, 25, 27, 36, 49, 64, 100]


def _measure():
    rows = []
    for name, maker in WORKLOADS.items():
        for n in SIZES:
            inst = maker(n)
            res = route_lenzen(inst)
            verify_delivery(inst, res.outputs)
            assert res.rounds <= ROUTING_ROUNDS
            rows.append([name, n, res.rounds, ROUTING_ROUNDS])
    return rows


def test_bench_routing_rounds(benchmark, table_printer):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    table_printer(
        render_table(
            "E1  Theorem 3.7 - deterministic routing rounds",
            ["workload", "n", "rounds", "paper bound"],
            rows,
        )
    )


@pytest.mark.parametrize("n", [16, 25])
def test_bench_single_route(benchmark, n):
    inst = uniform_instance(n, seed=1)
    benchmark(lambda: route_lenzen(inst))


if __name__ == "__main__":
    from conftest import run_standalone

    raise SystemExit(run_standalone(__file__))
