"""E6 — Corollary 4.6 + derived problems: constant-round indexing,
selection, median, and mode."""

from collections import Counter

from repro.analysis import render_table
from repro.sorting import (
    ROUNDS_INDEXING,
    ROUNDS_MODE,
    ROUNDS_SELECTION,
    duplicate_heavy_instance,
    index_keys,
    median,
    mode,
    select_kth,
    uniform_sort_instance,
    verify_indices,
)


def _measure():
    rows = []
    for n in (16, 25):
        dup = duplicate_heavy_instance(n, distinct=5, seed=n)
        uni = uniform_sort_instance(n, seed=n)

        r_idx = index_keys(dup)
        verify_indices(dup, r_idx.outputs)
        rows.append(["indexing (Cor 4.6)", n, r_idx.rounds, ROUNDS_INDEXING])

        ordered = sorted(k for ks in uni.keys_by_node for k in ks)
        r_sel = select_kth(uni, len(ordered) // 3)
        assert all(o == ordered[len(ordered) // 3] for o in r_sel.outputs)
        rows.append(["selection", n, r_sel.rounds, ROUNDS_SELECTION])

        r_med = median(uni)
        assert all(o == ordered[len(ordered) // 2] for o in r_med.outputs)
        rows.append(["median", n, r_med.rounds, ROUNDS_SELECTION])

        counts = Counter(k for ks in dup.keys_by_node for k in ks)
        best = max(counts.items(), key=lambda kv: (kv[1], -kv[0]))
        r_mode = mode(dup)
        assert all(o == best for o in r_mode.outputs)
        rows.append(["mode", n, r_mode.rounds, ROUNDS_MODE])
    return rows


def test_bench_indexing_selection(benchmark, table_printer):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    table_printer(
        render_table(
            "E6  Constant-round derived problems (Cor. 4.6 and remarks)",
            ["problem", "n", "rounds", "bound"],
            rows,
        )
    )


if __name__ == "__main__":
    from conftest import run_standalone

    raise SystemExit(run_standalone(__file__))
