"""E18: serialization — the columnar envelope codec vs per-envelope pickle.

The ISSUE 7 acceptance gate: on a 256-instance mixed batch, the columnar
request/summary round trip (encode requests, decode them, encode the
judged summaries, decode them back) must cost >= 5x less time per
request and >= 3x fewer bytes than the wire paid before the transport
layer existed.  Unlike the throughput benches, these gates are enforced
on *every* host — codec ratios are single-threaded and do not depend on
the core count.

Both sides measure the *complete dispatch payload* at their production
granularity, which is the point of the comparison:

* **pickle baseline** — per request, one ``pickle.dumps``/``loads`` of
  ``(execute_request, (request,))`` out (the work item the pre-transport
  gateway's executor pickled per ticket hop — callable reference
  included) and one of the judged ``RunSummary`` back.  Pickle
  re-instantiates the nested ``RunRequest`` inside every summary it
  loads.
* **columnar** — per dispatch batch, one pickled work item
  (``_run_envelope_shm`` plus four scalars — the only thing the shm
  transport sends through the executor's pickle channel) and one
  request envelope out, one summary envelope back, cost amortized per
  request; summaries rejoin the requests the parent already holds
  instead of re-shipping them.

The per-payload rows (requests alone, summaries alone) are recorded as
context; the gate rides the ``round_trip`` row, which is what one
request costs end to end on the wire.  Results land in
``BENCH_engines.json`` under the ``serialization`` section;
``check_regression`` re-enforces the recorded targets against fresh runs.
"""

import pickle
import time

from repro.scenarios import mixed_batch
from repro.service import requests_from_scenarios
from repro.service.batch import execute_request
from repro.service.transport import (
    _run_envelope_shm,
    decode_requests,
    decode_summaries,
    encode_requests,
    encode_summaries,
)

BATCH = 256
ENGINE = "fast"
TIME_RATIO_TARGET = 5.0
BYTES_RATIO_TARGET = 3.0

#: best-of-N timing to shrug off CI-runner noise.
REPEAT = 9

#: the shm transport's per-envelope work item: what actually crosses the
#: executor's pickle channel (slot name + three geometry scalars).
_SHM_ITEM = (_run_envelope_shm, ("renv-bench-0", 4096, 524288, 524288))

SIZES = dict(routing_sizes=(16,), sorting_sizes=(16,), multiplex_sizes=(16,))


def _envelopes():
    requests = requests_from_scenarios(
        mixed_batch(BATCH, seed0=0, **SIZES), engine=ENGINE
    )
    summaries = [execute_request(r) for r in requests]
    return requests, summaries


def _best_us(fn, repeat=REPEAT):
    """Best-of-N wall time for one whole-batch pass, in µs per request."""
    best = float("inf")
    for _ in range(repeat):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best / BATCH * 1e6


def _measure():
    requests, summaries = _envelopes()

    # Fidelity first: the speed comparison is meaningless unless the
    # columnar codec reproduces the envelopes exactly.
    req_buf = encode_requests(requests)
    sum_buf = encode_summaries(summaries)
    assert decode_requests(req_buf) == requests
    assert decode_summaries(sum_buf, requests) == summaries

    proto = pickle.HIGHEST_PROTOCOL
    shm_item = len(pickle.dumps(_SHM_ITEM, proto))
    req_pkl = sum(
        len(pickle.dumps((execute_request, (r,)), proto)) for r in requests
    )
    sum_pkl = sum(len(pickle.dumps(s, proto)) for s in summaries)

    def pickle_requests():
        for r in requests:
            pickle.loads(pickle.dumps((execute_request, (r,)), proto))

    def pickle_summaries():
        for s in summaries:
            pickle.loads(pickle.dumps(s, proto))

    def columnar_requests():
        pickle.loads(pickle.dumps(_SHM_ITEM, proto))
        decode_requests(encode_requests(requests))

    def columnar_summaries():
        decode_summaries(encode_summaries(summaries), requests)

    timings = {
        "requests": (
            _best_us(pickle_requests),
            _best_us(columnar_requests),
            req_pkl,
            shm_item + len(req_buf),
        ),
        "summaries": (
            _best_us(pickle_summaries),
            _best_us(columnar_summaries),
            sum_pkl,
            len(sum_buf),
        ),
    }

    def round_trip_pickle():
        pickle_requests()
        pickle_summaries()

    def round_trip_columnar():
        columnar_requests()
        columnar_summaries()

    timings["round_trip"] = (
        _best_us(round_trip_pickle),
        _best_us(round_trip_columnar),
        req_pkl + sum_pkl,
        shm_item + len(req_buf) + len(sum_buf),
    )

    rows = []
    for payload, (pkl_us, col_us, pkl_b, col_b) in timings.items():
        rows.append({
            "payload": payload,
            "pickle_us_per_req": round(pkl_us, 3),
            "columnar_us_per_req": round(col_us, 3),
            "pickle_bytes_per_req": round(pkl_b / BATCH, 1),
            "columnar_bytes_per_req": round(col_b / BATCH, 1),
            "time_ratio": round(pkl_us / col_us, 2),
            "bytes_ratio": round(pkl_b / col_b, 2),
            "gated": payload == "round_trip",
        })
    return rows


def test_bench_transport_serialization(benchmark, table_printer, bench_json):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    from repro.analysis import render_table

    table_printer(
        render_table(
            f"E18  envelope codec - {BATCH} mixed instances "
            f"(best-of-{REPEAT}, µs and bytes per request)",
            ["payload", "pickle µs", "columnar µs", "time ratio",
             "pickle B", "columnar B", "bytes ratio"],
            [
                [
                    r["payload"],
                    f"{r['pickle_us_per_req']:.2f}",
                    f"{r['columnar_us_per_req']:.2f}",
                    f"{r['time_ratio']:.1f}x",
                    f"{r['pickle_bytes_per_req']:.0f}",
                    f"{r['columnar_bytes_per_req']:.0f}",
                    f"{r['bytes_ratio']:.1f}x",
                ]
                for r in rows
            ],
        )
    )
    bench_json(
        "serialization",
        {
            "description": (
                f"{BATCH}-instance mixed batch, complete dispatch payload "
                f"per request: columnar envelopes + one pickled shm work "
                f"item per dispatch (repro.service.transport, amortized) "
                f"vs per-ticket pickling of (execute_request, (request,)) "
                f"out and the RunSummary back (the pre-transport hop); "
                f"the round_trip row is gated on every host (codec ratios "
                f"are core-count independent)"
            ),
            "engine": ENGINE,
            "time_ratio_target": TIME_RATIO_TARGET,
            "bytes_ratio_target": BYTES_RATIO_TARGET,
            "rows": rows,
        },
    )
    gated = next(r for r in rows if r["gated"])
    assert gated["time_ratio"] >= TIME_RATIO_TARGET, (
        f"columnar round trip only {gated['time_ratio']:.1f}x faster than "
        f"pickle; target {TIME_RATIO_TARGET:g}x"
    )
    assert gated["bytes_ratio"] >= BYTES_RATIO_TARGET, (
        f"columnar round trip only {gated['bytes_ratio']:.1f}x smaller than "
        f"pickle; target {BYTES_RATIO_TARGET:g}x"
    )


if __name__ == "__main__":
    from conftest import run_standalone

    raise SystemExit(run_standalone(__file__))
