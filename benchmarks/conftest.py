"""Shared helpers for the experiment benches (E1-E12 in DESIGN.md).

Every bench measures *round counts* (the paper's cost metric) and asserts
them against the theorem bounds, while pytest-benchmark records wall-clock
simulation time as a secondary signal.  Tables are printed so ``pytest
benchmarks/ --benchmark-only -s`` regenerates the EXPERIMENTS.md rows.
"""

import pytest


@pytest.fixture
def table_printer(capsys):
    """Print a table bypassing capture so it lands in the bench log."""

    def _print(text: str) -> None:
        with capsys.disabled():
            print("\n" + text)

    return _print
