"""Shared helpers for the experiment benches (E1-E19 in DESIGN.md).

Every bench measures *round counts* (the paper's cost metric) and asserts
them against the theorem bounds, while pytest-benchmark records wall-clock
simulation time as a secondary signal.  Tables are printed so ``pytest
benchmarks/ --benchmark-only -s`` regenerates the EXPERIMENTS.md rows.

Machine-readable results: the perf-tracking benches merge their rows into
``BENCH_engines.json`` at the repository root via the :func:`bench_json`
fixture, so the trajectory is comparable across PRs (CI uploads the file as
a workflow artifact).
"""

import json
import os
import pathlib
import platform
import sys

import pytest


def run_standalone(bench_file: str) -> int:
    """Entry point for ``python benchmarks/bench_X.py``.

    Executes the bench's gates under pytest (quick mode — the internal
    best-of-N comparisons and speedup assertions run, pytest-benchmark's
    own timing loops stay off) and returns a non-zero exit code on any
    failure, matching how CI's engine-bench job documents the benches.
    Every ``bench_*.py`` calls this from its ``__main__`` block; extra
    argv is passed through to pytest.
    """
    return int(pytest.main(
        [bench_file, "-q", "-s", "--benchmark-disable"] + sys.argv[1:]
    ))

#: Machine-readable benchmark results, one section per bench, at repo root.
BENCH_JSON_PATH = pathlib.Path(__file__).resolve().parent.parent / (
    "BENCH_engines.json"
)


def host_meta() -> dict:
    """The host fingerprint stamped into ``BENCH_engines.json``.

    One top-level block instead of per-section copies: every reader of the
    file (regression gate, review diff) sees at a glance which hardware
    produced the numbers, and a gated row waived on a low-CPU host can
    point here instead of re-recording the environment.
    """
    return {
        "cpus": os.cpu_count() or 1,
        "python": platform.python_version(),
        "platform": platform.platform(),
    }


def merge_bench_json(section: str, payload: dict) -> dict:
    """Merge ``payload`` under ``section`` in ``BENCH_engines.json``.

    Existing sections written by other benches are preserved, so running
    any subset of the benches keeps the file coherent.  The top-level
    ``meta`` block is refreshed on every merge (last bench run wins — the
    sections in one file always describe one host).  Returns the full
    document as written.
    """
    doc = {}
    if BENCH_JSON_PATH.exists():
        try:
            doc = json.loads(BENCH_JSON_PATH.read_text())
        except (ValueError, OSError):
            doc = {}
    if not isinstance(doc, dict):
        doc = {}
    doc.setdefault("schema", 1)
    doc["meta"] = host_meta()
    doc[section] = payload
    BENCH_JSON_PATH.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return doc


@pytest.fixture
def bench_json():
    """Fixture handle on :func:`merge_bench_json`."""
    return merge_bench_json


@pytest.fixture
def table_printer(capsys):
    """Print a table bypassing capture so it lands in the bench log."""

    def _print(text: str) -> None:
        with capsys.disabled():
            print("\n" + text)

    return _print
