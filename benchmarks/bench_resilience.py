"""E20: the resilience layer under injected faults — recovery and goodput.

A threaded server behind the wire-level fault proxy
(:mod:`repro.service.net.faultproxy`), driven by the reconnecting
:class:`~repro.service.net.resilience.ResilientClient`.  Three kinds of
rows land in ``BENCH_engines.json`` under the ``resilience`` section:

* **recovery** — time from a forced mid-session disconnect (the proxy
  severs every live connection) to the next completed request, i.e. the
  reconnect + RESUME + resubmit path end to end, sampled over several
  flaps.
* **clean** — the through-proxy batch run with no toxics: the baseline
  the degraded run is compared against, on the same proxied path so the
  ratio isolates the *fault* cost, not the proxy hop.
* **corrupt_1pct** — the same batch with a 1%-per-chunk corruption
  toxic: every flipped byte is caught by the v2 CRC, the connection is
  torn down, and the client reconnects and resubmits under its
  idempotency keys.  ``goodput_ratio`` is degraded/clean throughput.

The only *gate* is correctness: both remote digests must match the
sequential in-process re-execution byte-for-byte, and the corrupted run
must not execute any request twice (the gateway's ``offered`` counter
equals the unique request count).  The timing rows are explicitly
ungated (``"gated": False``) — like E19, loopback recovery latency
measures the host scheduler as much as the protocol and is not portable
across CI runners.
"""

import time

from repro.scenarios import remote_selfcheck_batch
from repro.service import requests_from_scenarios
from repro.service.batch import execute_request, summaries_digest
from repro.service.net import ServerThread
from repro.service.net.faultproxy import ProxyThread
from repro.service.net.resilience import (
    BackoffPolicy,
    CircuitBreaker,
    ResilientClient,
)

BATCH = 48
ENGINE = "fast"
WORKERS = 2

#: forced disconnects sampled for the recovery rows.
FLAPS = 5

#: per-chunk byte-flip probability for the degraded run.
CORRUPT_PROB = 0.01

#: the clean/degraded comparison runs single-request envelopes, several
#: passes — enough frames through the proxy that a 1% per-chunk toxic
#: actually fires instead of rounding to zero events.
GOODPUT_PASSES = 2
GOODPUT_CHUNK = 1


def _percentile(sorted_values, q):
    """Nearest-rank percentile over an already-sorted sample."""
    if not sorted_values:
        return None
    rank = max(0, min(len(sorted_values) - 1,
                      round(q / 100.0 * (len(sorted_values) - 1))))
    return sorted_values[rank]


def _client(proxy):
    return ResilientClient(
        proxy.host,
        proxy.port,
        timeout=5,
        backoff=BackoffPolicy(base_s=0.01, max_s=0.2, deadline_s=60),
        breaker=CircuitBreaker(threshold=50),
        seed=0,
    )


def _measure():
    requests = requests_from_scenarios(
        remote_selfcheck_batch(BATCH, seed0=0), engine=ENGINE
    )
    sequential_digest = summaries_digest(
        execute_request(r) for r in requests
    )

    with ServerThread(
        workers=WORKERS, engine=ENGINE, queue_cap=256, policy="block"
    ) as st:
        # -- recovery: forced flap -> next completed request ----------------
        with ProxyThread(st.host, st.port) as proxy:
            with _client(proxy) as client:
                client.collect(client.submit(requests[:2]))  # warm path
                recovery_ms = []
                for i in range(FLAPS):
                    proxy.drop_connections()
                    t0 = time.perf_counter()
                    client.collect(client.submit([requests[i % BATCH]]))
                    recovery_ms.append((time.perf_counter() - t0) * 1e3)
                recovery_reconnects = client.reconnects
        recovery_ms.sort()

        # -- clean through-proxy baseline -----------------------------------
        with ProxyThread(st.host, st.port) as proxy:
            with _client(proxy) as client:
                t0 = time.perf_counter()
                for _ in range(GOODPUT_PASSES):
                    clean_summaries = client.run(
                        requests, chunk=GOODPUT_CHUNK
                    )
                clean_wall = time.perf_counter() - t0
        clean_digest = summaries_digest(clean_summaries)
        assert clean_digest == sequential_digest, (
            f"clean remote digest {clean_digest} != sequential "
            f"{sequential_digest}"
        )

        # -- degraded: 1% per-chunk corruption ------------------------------
        with ProxyThread(
            st.host, st.port, toxics=[f"corrupt:{CORRUPT_PROB}"], seed=0
        ) as proxy:
            with _client(proxy) as client:
                t0 = time.perf_counter()
                for _ in range(GOODPUT_PASSES):
                    summaries = client.run(requests, chunk=GOODPUT_CHUNK)
                corrupt_wall = time.perf_counter() - t0
                metrics = client.metrics()
                stats = client.stats()
            proxy_stats = proxy.stats()
        corrupt_digest = summaries_digest(summaries)
        assert corrupt_digest == sequential_digest, (
            f"corrupted-path digest {corrupt_digest} != sequential "
            f"{sequential_digest}"
        )
        offered = metrics["gateway"]["offered"]
        # recovery run + clean passes + corrupted passes each executed
        # the requests they submitted exactly once on the shared gateway.
        expected_offered = (2 + FLAPS) + 2 * GOODPUT_PASSES * BATCH
        assert offered == expected_offered, (
            f"gateway offered {offered} != {expected_offered}: a resubmit "
            f"was re-executed instead of answered from the lineage cache"
        )

    rows = [
        {
            "row": "recovery",
            "flaps": FLAPS,
            "p50_ms": round(_percentile(recovery_ms, 50), 3),
            "max_ms": round(recovery_ms[-1], 3),
            "reconnects": recovery_reconnects,
            "gated": False,
        },
        {
            "row": "clean",
            "requests": GOODPUT_PASSES * BATCH,
            "wall_s": round(clean_wall, 4),
            "throughput_rps": round(GOODPUT_PASSES * BATCH / clean_wall, 2),
            "digest_match": True,
            "gated": False,
        },
        {
            "row": "corrupt_1pct",
            "requests": GOODPUT_PASSES * BATCH,
            "wall_s": round(corrupt_wall, 4),
            "throughput_rps": round(
                GOODPUT_PASSES * BATCH / corrupt_wall, 2
            ),
            "goodput_ratio": round(clean_wall / corrupt_wall, 3),
            "corrupted_chunks": proxy_stats["corrupted"],
            "reconnects": stats["reconnects"],
            "resubmits": stats["resubmits"],
            "cache_hits": stats["cache_hits"],
            "digest_match": True,
            "duplicate_executions": 0,
            "gated": False,
        },
    ]
    return rows


def test_bench_resilience_faulty_wire(benchmark, table_printer, bench_json):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    from repro.analysis import render_table

    recovery = next(r for r in rows if r["row"] == "recovery")
    clean = next(r for r in rows if r["row"] == "clean")
    corrupt = next(r for r in rows if r["row"] == "corrupt_1pct")
    table_printer(
        render_table(
            f"E20  resilience - {BATCH} mixed instances through the fault "
            f"proxy ({WORKERS} workers, {GOODPUT_PASSES} goodput passes)",
            ["row", "req/s", "recov p50 ms", "recov max ms",
             "reconnects", "goodput ratio"],
            [
                [
                    "recovery", "-",
                    f"{recovery['p50_ms']:.1f}",
                    f"{recovery['max_ms']:.1f}",
                    f"{recovery['reconnects']}", "-",
                ],
                [
                    "clean",
                    f"{clean['throughput_rps']:.1f}",
                    "-", "-", "-", "-",
                ],
                [
                    "corrupt_1pct",
                    f"{corrupt['throughput_rps']:.1f}",
                    "-", "-",
                    f"{corrupt['reconnects']}",
                    f"{corrupt['goodput_ratio']:.2f}",
                ],
            ],
        )
    )
    bench_json(
        "resilience",
        {
            "description": (
                f"{BATCH}-instance full-taxonomy batch driven by "
                f"ResilientClient through the wire-level fault proxy; "
                f"recovery rows time forced-disconnect -> next completed "
                f"request ({FLAPS} flaps); corrupt_1pct flips one byte "
                f"per proxied chunk with p={CORRUPT_PROB} over "
                f"{GOODPUT_PASSES} single-request-envelope passes and "
                f"reports degraded/clean goodput; digest parity vs a "
                f"sequential "
                f"re-execution and zero duplicate executions are the "
                f"only gates (loopback timing is host-scheduler-bound, "
                f"deliberately ungated like E19)"
            ),
            "engine": ENGINE,
            "rows": rows,
        },
    )
    assert clean["digest_match"] and corrupt["digest_match"]
    assert corrupt["duplicate_executions"] == 0


if __name__ == "__main__":
    from conftest import run_standalone

    raise SystemExit(run_standalone(__file__))
