"""E9 — Section 6.1: payloads of L words cost either L x rounds (fixed
bandwidth) or 1 x rounds at L x message size; total bits per node are the
invariant."""

from repro.analysis import render_table
from repro.extensions import WideMessage, route_wide_messages
from repro.routing import uniform_instance


def _measure():
    rows = []
    n = 16
    base = uniform_instance(n, seed=9)
    for width in (1, 2, 4):
        wide = [
            [
                WideMessage(
                    m.source, m.dest, m.seq, [m.payload + i for i in range(width)]
                )
                for m in row
            ]
            for row in base.messages_by_source
        ]
        _, r_lanes = route_wide_messages(n, wide, width, sequential=False)
        _, r_seq = route_wide_messages(n, wide, width, sequential=True)
        assert r_lanes == 16
        assert r_seq == 16 * width
        rows.append([width, r_seq, r_lanes, f"{width}x", "1x"])
    return rows


def test_bench_large_messages(benchmark, table_printer):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    table_printer(
        render_table(
            "E9  Section 6.1 - payload width vs rounds (n=16)",
            [
                "payload words",
                "rounds @ fixed B",
                "rounds @ B*width",
                "size seq",
                "size lanes",
            ],
            rows,
        )
    )


if __name__ == "__main__":
    from conftest import run_standalone

    raise SystemExit(run_standalone(__file__))
