"""Ablation — footnote 3: greedy (<= 2d-1 colors) inside Corollary 3.3.

DESIGN.md calls out the coloring algorithm as the key substitutable design
choice.  The exact Koenig coloring uses the fewest intermediates (d); the
greedy coloring is asymptotically cheaper to compute but may use up to
2d-1 colors, forcing an extra lane (doubled message size) when d is close
to n.  Both deliver correctly in exactly 2 rounds; the table contrasts the
color counts and the local computation cost.
"""

import time

from repro.analysis import render_table
from repro.core import run_protocol
from repro.routing.primitives import _color_map, route_known


def _run(n, w, scheme):
    groups = tuple(tuple(range(g * w, (g + 1) * w)) for g in range(n // w))

    def prog(ctx):
        g, r = divmod(ctx.node_id, w)
        items = [(b, (ctx.node_id, b)) for b in range(w)]
        demand = tuple(tuple(1 for _ in range(w)) for _ in range(w))
        got = yield from route_known(
            ctx, groups, g, r, items, demand, "abl",
            item_width=2, coloring=scheme,
        )
        assert len(got) == w
        return None

    return run_protocol(n, prog, capacity=8)


def _measure():
    rows = []
    for n, w in [(36, 6), (64, 8), (100, 10)]:
        demand = tuple(tuple(2 for _ in range(w)) for _ in range(w))
        t0 = time.perf_counter()
        _, d_koenig = _color_map(demand, "koenig")
        t_koenig = time.perf_counter() - t0
        t0 = time.perf_counter()
        _, d_greedy = _color_map(demand, "greedy")
        t_greedy = time.perf_counter() - t0

        r_koenig = _run(n, w, "koenig").rounds
        r_greedy = _run(n, w, "greedy").rounds
        assert r_koenig == r_greedy == 2
        rows.append(
            [
                n,
                w,
                d_koenig,
                d_greedy,
                2 * d_koenig - 1,
                r_koenig,
                r_greedy,
                f"{t_koenig / max(t_greedy, 1e-9):.1f}x",
            ]
        )
    return rows


def test_bench_ablation_coloring(benchmark, table_printer):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    table_printer(
        render_table(
            "Ablation  Koenig vs greedy coloring inside Cor. 3.3 "
            "(footnote 3)",
            [
                "n",
                "|W|",
                "Koenig colors",
                "greedy colors",
                "2d-1",
                "rounds K",
                "rounds G",
                "Koenig/greedy time",
            ],
            rows,
        )
    )


if __name__ == "__main__":
    from conftest import run_standalone

    raise SystemExit(run_standalone(__file__))
