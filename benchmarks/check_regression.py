"""Bench-regression gate: fresh BENCH_engines.json vs the committed file.

CI runs the perf benches (E13-E16), which overwrite ``BENCH_engines.json``
in the working tree, then calls this script with the *committed* copy as
the baseline::

    python benchmarks/check_regression.py \
        --baseline /tmp/BENCH_committed.json --fresh BENCH_engines.json

The check fails (exit 1) if any **gated** speedup in the fresh results
drops below the target *recorded in the committed baseline* — so a PR
cannot quietly lower a bar inside a bench file without also updating the
committed JSON (which shows up in review), and a perf regression fails
even if someone forgot to run the bench's own assertion.

Rules per section:

* ``engines`` — every baseline row with a numeric ``bar`` (e.g. ``">=
  1.8"``) must exist in the fresh rows (matched by workload and n) and
  meet that bar; ``"(context)"`` rows are informational.
* ``data_plane`` — every baseline row marked ``"gated": true`` must exist
  fresh (matched by workload) and meet the baseline's
  ``warm_speedup_target``; unmarked rows are context (the bench itself
  only asserts the fast-engine rows).
* ``service`` / ``stream`` — the best fresh speedup must meet the
  baseline's ``speedup_target``, but only when the fresh run says the
  gate is enforced (``speedup_gate_enforced`` — false on < 4 CPUs, where
  the measurement is meaningless).
* ``serialization`` — every baseline row marked ``"gated": true`` must
  exist fresh (matched by payload name) and meet the baseline's
  ``time_ratio_target`` and ``bytes_ratio_target`` (columnar codec vs
  pickle).  Enforced on every host: codec ratios are single-threaded and
  do not depend on the core count.

The top-level ``meta`` block (host fingerprint: cpus, python, platform)
is informational and never gated.  Sections present in the baseline but
missing from the fresh file fail: a gate that silently stops being
measured is itself a regression.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from typing import Dict, List, Optional


def _parse_bar(bar: object) -> Optional[float]:
    """``">= 1.8"`` -> 1.8; non-numeric bars (``"(context)"``) -> None."""
    if not isinstance(bar, str):
        return None
    match = re.search(r"(\d+(?:\.\d+)?)", bar)
    return float(match.group(1)) if match else None


def _rows(section: object) -> List[dict]:
    if isinstance(section, dict) and isinstance(section.get("rows"), list):
        return [r for r in section["rows"] if isinstance(r, dict)]
    return []


def _check_engines(base: dict, fresh: Optional[dict], out: List[str]) -> None:
    fresh_rows = {
        (r.get("workload"), r.get("n")): r for r in _rows(fresh)
    }
    for row in _rows(base):
        bar = _parse_bar(row.get("bar"))
        if bar is None:
            continue
        key = (row.get("workload"), row.get("n"))
        got = fresh_rows.get(key)
        if got is None:
            out.append(
                f"engines: gated row {key} missing from fresh results"
            )
        elif not got.get("speedup") or got["speedup"] < bar:
            out.append(
                f"engines: {key} speedup {got.get('speedup')} below "
                f"recorded bar {bar}"
            )


def _check_data_plane(
    base: dict, fresh: Optional[dict], out: List[str]
) -> None:
    target = base.get("warm_speedup_target")
    if not isinstance(target, (int, float)):
        return
    fresh_rows = {
        (r.get("workload"), r.get("n")): r for r in _rows(fresh)
    }
    for row in _rows(base):
        if not row.get("gated"):
            continue
        key = (row.get("workload"), row.get("n"))
        got = fresh_rows.get(key)
        if got is None:
            out.append(
                f"data_plane: gated row {key!r} missing from fresh results"
            )
        elif not got.get("speedup") or got["speedup"] < target:
            out.append(
                f"data_plane: {key!r} warm speedup {got.get('speedup')} "
                f"below recorded target {target}"
            )


def _check_serialization(
    base: dict, fresh: Optional[dict], out: List[str]
) -> None:
    time_target = base.get("time_ratio_target")
    bytes_target = base.get("bytes_ratio_target")
    if fresh is None:
        if _rows(base):
            out.append(
                "serialization: gated section missing from fresh results"
            )
        return
    fresh_rows = {r.get("payload"): r for r in _rows(fresh)}
    for row in _rows(base):
        if not row.get("gated"):
            continue
        key = row.get("payload")
        got = fresh_rows.get(key)
        if got is None:
            out.append(
                f"serialization: gated row {key!r} missing from fresh "
                f"results"
            )
            continue
        if isinstance(time_target, (int, float)) and (
            not got.get("time_ratio") or got["time_ratio"] < time_target
        ):
            out.append(
                f"serialization: {key!r} time ratio {got.get('time_ratio')} "
                f"below recorded target {time_target}"
            )
        if isinstance(bytes_target, (int, float)) and (
            not got.get("bytes_ratio") or got["bytes_ratio"] < bytes_target
        ):
            out.append(
                f"serialization: {key!r} bytes ratio "
                f"{got.get('bytes_ratio')} below recorded target "
                f"{bytes_target}"
            )


def _check_throughput(
    name: str, base: dict, fresh: Optional[dict], out: List[str]
) -> None:
    target = base.get("speedup_target")
    if not isinstance(target, (int, float)):
        return
    if fresh is None:
        out.append(f"{name}: gated section missing from fresh results")
        return
    if not fresh.get("speedup_gate_enforced"):
        return  # gate unmeasurable on this hardware (< pool-size CPUs)
    speedups = [
        r["speedup"] for r in _rows(fresh)
        if isinstance(r.get("speedup"), (int, float))
    ]
    best = max(speedups, default=0.0)
    if best < target:
        out.append(
            f"{name}: best fresh speedup {best} below recorded target "
            f"{target} (gate enforced)"
        )


def check(baseline: dict, fresh: dict) -> List[str]:
    """All gated-speedup regressions of ``fresh`` against ``baseline``."""
    failures: List[str] = []
    checkers = {
        "engines": _check_engines,
        "data_plane": _check_data_plane,
        "serialization": _check_serialization,
    }
    for name, section in baseline.items():
        if not isinstance(section, dict):
            continue
        if name in checkers:
            checkers[name](section, fresh.get(name), failures)
        elif "speedup_target" in section:
            _check_throughput(name, section, fresh.get(name), failures)
    return failures


def _load(path: str) -> Dict[str, object]:
    with open(path) as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict):
        raise ValueError(f"{path}: expected a JSON object at top level")
    return doc


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail if any gated bench speedup regressed below the "
        "target recorded in the committed BENCH_engines.json."
    )
    parser.add_argument(
        "--baseline", required=True,
        help="committed BENCH_engines.json (the recorded targets)",
    )
    parser.add_argument(
        "--fresh", required=True,
        help="freshly produced BENCH_engines.json (the new measurements)",
    )
    args = parser.parse_args(argv)

    failures = check(_load(args.baseline), _load(args.fresh))
    if failures:
        print("bench regression check FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("bench regression check passed: no gated speedup regressed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
