"""E8 — naive direct routing needs up to n rounds; Lenzen stays at 16.

The hotspot (permutation) workload forces the naive router to push n
messages over single edges — its round count grows linearly with n while
the deterministic algorithm stays constant.  The crossover sits where
``max edge demand > 16``.
"""

from repro.analysis import ROUTING_ROUNDS, render_table
from repro.routing import (
    naive_round_bound,
    permutation_instance,
    route_lenzen,
    route_naive,
    uniform_instance,
    verify_delivery,
)


def _measure():
    rows = []
    for n in (9, 16, 25, 36, 49, 64):
        inst = permutation_instance(n)
        naive = route_naive(inst)
        verify_delivery(inst, naive.outputs)
        det = route_lenzen(inst)
        verify_delivery(inst, det.outputs)
        assert naive.rounds == n == naive_round_bound(inst)
        assert det.rounds <= ROUTING_ROUNDS
        winner = "naive" if naive.rounds < det.rounds else "Lenzen"
        rows.append(["hotspot", n, naive.rounds, det.rounds, winner])
    # balanced traffic: naive wins small constants, as expected
    inst = uniform_instance(36, seed=1)
    naive = route_naive(inst)
    det = route_lenzen(inst)
    rows.append(
        [
            "uniform",
            36,
            naive.rounds,
            det.rounds,
            "naive" if naive.rounds < det.rounds else "Lenzen",
        ]
    )
    return rows


def test_bench_vs_naive(benchmark, table_printer):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    table_printer(
        render_table(
            "E8  Naive direct routing vs Theorem 3.7 "
            "(crossover where max edge demand > 16)",
            ["workload", "n", "naive rounds", "Lenzen rounds", "winner"],
            rows,
        )
    )


if __name__ == "__main__":
    from conftest import run_standalone

    raise SystemExit(run_standalone(__file__))
