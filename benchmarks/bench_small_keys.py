"""E10 — Section 6.3: keys of o(log n) bits ordered in 2 rounds with 1-2 bit
messages, versus 37 rounds for general sorting."""

import random

from repro.analysis import SMALL_KEY_ROUNDS, render_table
from repro.extensions import sort_small_keys


def _measure():
    rows = []
    for n, num_keys, max_count in [
        (64, 2, 3),
        (100, 4, 7),
        (144, 4, 15),
        (196, 6, 15),
    ]:
        rng = random.Random(n)
        counts = [
            [rng.randint(0, max_count) for _ in range(num_keys)]
            for _ in range(n)
        ]
        res = sort_small_keys(n, counts, num_keys, max_count)
        assert res.rounds == SMALL_KEY_ROUNDS
        total = sum(sum(row) for row in counts)
        rows.append(
            [
                n,
                num_keys,
                max_count,
                total,
                res.rounds,
                SMALL_KEY_ROUNDS,
                37,
            ]
        )
    return rows


def test_bench_small_keys(benchmark, table_printer):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    table_printer(
        render_table(
            "E10  Section 6.3 - tiny-key ordering with 1-2 bit messages",
            [
                "n",
                "distinct keys",
                "max copies/node",
                "keys ordered",
                "rounds",
                "bound",
                "general sort",
            ],
            rows,
        )
    )


if __name__ == "__main__":
    from conftest import run_standalone

    raise SystemExit(run_standalone(__file__))
