"""E12 — per-phase round audit: the implementation's round budget matches
the paper's step-by-step accounting.

Routing: Lemma 3.6 gives 2+0+2+0+2+1 = 7 for Algorithm 2, Corollary 3.5
gives 4, Step 4 is 1, Corollary 3.4 gives 4 — total 16.
Sorting: Theorem 4.5 gives 0+1+8+2+0+16+8+2 = 37.
"""

from repro.analysis import ROUTING_PHASES, render_table
from repro.routing import route_lenzen_square, uniform_instance
from repro.sorting import sort_lenzen, uniform_sort_instance

#: Expected rounds of Algorithm 4's phases as instrumented (the embedded
#: 16-round router reports its own sub-phases, summed under "step6").
SORT_PHASE_GROUPS = {
    "alg4.sample": 1,      # Step 2 (Step 1 is local)
    "alg3.": 16,           # Steps 3 and 7: two 8-round subset sorts
    "alg4.delimiters": 2,  # Step 4
    "alg4.route": 0,       # label only; router sub-phases carry the rounds
    "router": 16,          # Step 6
    "alg4.redist": 2,      # Step 8
}


def _measure_routing():
    res = route_lenzen_square(uniform_instance(25, seed=3))
    table = res.phase_table()
    rows = []
    for phase, expected in ROUTING_PHASES.items():
        measured = table.get(phase, 0)
        assert measured == expected, (phase, measured, expected)
        rows.append([phase, measured, expected])
    rows.append(["TOTAL", res.rounds, 16])
    return rows


def _measure_sorting():
    res = sort_lenzen(uniform_sort_instance(16, seed=3))
    table = res.phase_table()
    agg = {
        "step2 (scatter)": table.get("alg4.sample", 0),
        "steps 3+7 (subset sorts)": sum(
            v
            for k, v in table.items()
            if k.startswith("alg3.")
            or k in ("alg4.sort_samples", "alg4.sort_buckets")
        ),
        "step4 (delimiters)": table.get("alg4.delimiters", 0),
        "step6 (Thm 3.7 router)": sum(
            v
            for k, v in table.items()
            if k.startswith("alg2.")
            or k.startswith("alg1.")
            or k in ("alg4.split", "alg4.route")
        ),
        "step8 (rebalance)": table.get("alg4.redist", 0),
    }
    expected = {
        "step2 (scatter)": 1,
        "steps 3+7 (subset sorts)": 16,
        "step4 (delimiters)": 2,
        "step6 (Thm 3.7 router)": 16,
        "step8 (rebalance)": 2,
    }
    rows = []
    for phase, exp in expected.items():
        assert agg[phase] == exp, (phase, agg[phase], exp)
        rows.append([phase, agg[phase], exp])
    rows.append(["TOTAL", res.rounds, 37])
    assert res.rounds == 37
    return rows


def test_bench_phase_audit_routing(benchmark, table_printer):
    rows = benchmark.pedantic(_measure_routing, rounds=1, iterations=1)
    table_printer(
        render_table(
            "E12a  Routing round budget vs paper decomposition (n=25)",
            ["phase", "measured", "paper"],
            rows,
        )
    )


def test_bench_phase_audit_sorting(benchmark, table_printer):
    rows = benchmark.pedantic(_measure_sorting, rounds=1, iterations=1)
    table_printer(
        render_table(
            "E12b  Sorting round budget vs paper decomposition (n=16)",
            ["phase", "measured", "paper"],
            rows,
        )
    )


if __name__ == "__main__":
    from conftest import run_standalone

    raise SystemExit(run_standalone(__file__))
