"""E11 — Theorem 3.2 machinery: exact Koenig d-coloring vs greedy <= 2d-1.

Verifies the decomposition into perfect matchings (each color class of a
d-regular graph) and compares color counts and wall time of the exact and
greedy algorithms across a degree sweep.
"""

import random

from repro.analysis import render_table
from repro.graphtools import (
    BipartiteMultigraph,
    color_classes,
    greedy_edge_coloring,
    koenig_edge_coloring,
    num_colors,
    verify_exact_coloring,
    verify_matching,
    verify_proper_coloring,
)


def _regular(n, d, seed):
    rng = random.Random(seed)
    g = BipartiteMultigraph(n, n)
    for _ in range(d):
        perm = list(range(n))
        rng.shuffle(perm)
        for u, v in enumerate(perm):
            g.add_edge(u, v)
    return g


def _measure():
    rows = []
    for n, d in [(16, 4), (16, 16), (32, 8), (32, 31), (64, 16)]:
        g = _regular(n, d, seed=d)
        exact = koenig_edge_coloring(g)
        verify_exact_coloring(g, exact, d)
        for cls in color_classes(exact):
            verify_matching(g, cls)
            assert len(cls) == n  # perfect matchings
        greedy = greedy_edge_coloring(g)
        verify_proper_coloring(g, greedy)
        gcols = num_colors(greedy)
        assert gcols <= 2 * d - 1
        rows.append([n, d, g.num_edges, num_colors(exact), gcols, 2 * d - 1])
    return rows


def test_bench_coloring(benchmark, table_printer):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    table_printer(
        render_table(
            "E11  Koenig exact coloring vs greedy (footnote 3)",
            ["n", "degree d", "edges", "Koenig colors", "greedy", "2d-1"],
            rows,
        )
    )


def test_bench_koenig_speed(benchmark):
    g = _regular(64, 16, seed=1)
    benchmark(lambda: koenig_edge_coloring(g))


def test_bench_greedy_speed(benchmark):
    g = _regular(64, 16, seed=1)
    benchmark(lambda: greedy_edge_coloring(g))


if __name__ == "__main__":
    from conftest import run_standalone

    raise SystemExit(run_standalone(__file__))
