"""E16: streaming-gateway throughput and tail latency vs the sequential
backend.

The ISSUE 4 acceptance gate: a saturated (permanently backlogged) stream
of >= 192 mixed instances on a 4-worker process-backed gateway must
sustain >= 2x the throughput of the 1-worker sequential batch backend,
with the stream's output digests byte-identical to the sequential run.
Alongside the gate, an open-loop Poisson run at ~70% of the measured
saturated throughput records the latency profile (p50/p95/p99) a
non-overloaded service would see.

Correctness is asserted unconditionally (digest parity, zero losses under
the blocking policy).  The *speedup* gate only means something when the
hardware can run 4 workers — on fewer than 4 CPUs the rows are recorded
and the assertion is skipped, exactly as in ``bench_service.py``.

Results land in ``BENCH_engines.json`` under the ``stream`` section.
"""

import os

from repro.scenarios import mixed_batch, saturated_arrivals, poisson_arrivals
from repro.service import BatchService, requests_from_scenarios, serve

#: the acceptance-gate shape: >= 192 mixed instances, 4 workers, >= 2x.
BATCH = 192
WORKERS = 4
SPEEDUP_TARGET = 2.0
ENGINE = "fast"
QUEUE_CAP = 64

#: best-of-N timing to shrug off CI-runner noise.
REPEAT = 2

SIZES = dict(routing_sizes=(16,), sorting_sizes=(16,), multiplex_sizes=(16,))


def _requests():
    return requests_from_scenarios(
        mixed_batch(BATCH, seed0=0, **SIZES), engine=ENGINE
    )


def _best_sequential(requests):
    service = BatchService(workers=1, engine=ENGINE)
    best = None
    for _ in range(REPEAT):
        report = service.run_batch(requests)
        if best is None or report.wall_s < best.wall_s:
            best = report
    return best


def _best_stream(requests, arrivals, warmup, micro_batch=1):
    best = None
    for _ in range(REPEAT):
        report = serve(
            requests,
            arrivals,
            workers=WORKERS,
            engine=ENGINE,
            backend="process",
            queue_cap=QUEUE_CAP,
            policy="block",
            warmup=warmup,
            micro_batch=micro_batch,
        )
        if best is None or report.wall_s < best.wall_s:
            best = report
    return best


def _latency(report, q):
    return report.metrics["latency"][q]


def _measure():
    requests = _requests()

    sequential = _best_sequential(requests)
    assert sequential.ok, sequential.failures[:3]

    # Saturated stream: arrival clock at t=0 for every request, blocking
    # policy — sustained throughput is bounded by the worker pool alone.
    # micro_batch > 1 exercises the adaptive coalescer where it pays:
    # a permanently backlogged queue amortizes per-hop dispatch cost.
    saturated = _best_stream(
        requests, saturated_arrivals(BATCH), warmup=True, micro_batch=4
    )
    assert saturated.ok, saturated.failures[:3]
    assert len(saturated.completed) == BATCH
    assert not saturated.rejected and not saturated.cancelled
    assert saturated.stream_digest() == sequential.batch_digest(), (
        "stream digests diverge from the sequential backend"
    )

    # Open-loop Poisson at ~70% of measured capacity: the latency profile
    # of a provisioned (non-overloaded) gateway.  No gate — recorded as
    # context.
    rate = max(1.0, 0.7 * saturated.throughput)
    open_loop = _best_stream(
        requests, poisson_arrivals(rate, BATCH, seed=0), warmup=False
    )
    assert open_loop.ok, open_loop.failures[:3]

    speedup = sequential.wall_s / saturated.wall_s
    rows = [
        {
            "config": "sequential-batch",
            "workers": 1,
            "transport": "",
            "micro_batch": None,
            "offered": BATCH,
            "completed": BATCH,
            "wall_s": round(sequential.wall_s, 3),
            "instances_per_s": round(sequential.throughput, 2),
            "speedup": 1.0,
            "gated": False,
            "p50_ms": None,
            "p95_ms": None,
            "p99_ms": None,
            "digest": sequential.batch_digest(),
        },
        {
            "config": "stream-saturated",
            "workers": WORKERS,
            "transport": saturated.transport,
            "micro_batch": 4,
            "offered": BATCH,
            "completed": len(saturated.completed),
            "wall_s": round(saturated.wall_s, 3),
            "instances_per_s": round(saturated.throughput, 2),
            "speedup": round(speedup, 3),
            "gated": True,
            "p50_ms": _latency(saturated, "p50_ms"),
            "p95_ms": _latency(saturated, "p95_ms"),
            "p99_ms": _latency(saturated, "p99_ms"),
            "digest": saturated.stream_digest(),
        },
        {
            "config": f"stream-poisson@{rate:.0f}/s",
            "workers": WORKERS,
            "transport": open_loop.transport,
            "micro_batch": 1,
            "offered": BATCH,
            "completed": len(open_loop.completed),
            "wall_s": round(open_loop.wall_s, 3),
            "instances_per_s": round(open_loop.throughput, 2),
            "speedup": None,
            "gated": False,
            "p50_ms": _latency(open_loop, "p50_ms"),
            "p95_ms": _latency(open_loop, "p95_ms"),
            "p99_ms": _latency(open_loop, "p99_ms"),
            "digest": open_loop.stream_digest(),
        },
    ]
    return rows


def test_bench_stream_throughput(benchmark, table_printer, bench_json):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    from repro.analysis import render_table

    cpus = os.cpu_count() or 1
    enforced = cpus >= WORKERS

    def fmt(v, spec="{}"):
        return "-" if v is None else spec.format(v)

    table_printer(
        render_table(
            f"E16  streaming gateway - {BATCH} mixed instances, "
            f"engine={ENGINE} (best-of-{REPEAT}, {cpus} cpus)",
            ["config", "workers", "done", "wall s", "inst/s", "speedup",
             "p50 ms", "p95 ms", "p99 ms"],
            [
                [
                    r["config"],
                    r["workers"],
                    r["completed"],
                    f"{r['wall_s']:.2f}",
                    f"{r['instances_per_s']:.1f}",
                    fmt(r["speedup"], "{:.2f}x"),
                    fmt(r["p50_ms"], "{:.1f}"),
                    fmt(r["p95_ms"], "{:.1f}"),
                    fmt(r["p99_ms"], "{:.1f}"),
                ]
                for r in rows
            ],
        )
    )
    payload = {
        "description": (
            f"{BATCH}-instance mixed stream on the asyncio gateway "
            f"(process backend, block policy); speedup = sequential "
            f"batch wall / saturated stream wall; digests byte-checked "
            f"against the sequential backend; poisson row records the "
            f"open-loop latency profile at ~70% capacity"
        ),
        "engine": ENGINE,
        "queue_cap": QUEUE_CAP,
        "speedup_target": SPEEDUP_TARGET,
        "speedup_gate_enforced": enforced,
        "rows": rows,
    }
    if not enforced:
        payload["gate_skip_reason"] = (
            f"host has {cpus} cpu(s) < {WORKERS} workers; parallel speedup "
            f"is unmeasurable here (see top-level meta)"
        )
    bench_json("stream", payload)
    speedup = rows[1]["speedup"]
    if enforced:
        assert speedup >= SPEEDUP_TARGET, (
            f"{WORKERS}-worker sustained stream speedup {speedup:.2f}x "
            f"below target {SPEEDUP_TARGET}x on {cpus} cpus"
        )
    else:
        print(
            f"\n[bench_stream] {cpus} cpu(s) < {WORKERS} workers: "
            f"recorded {speedup:.2f}x, speedup gate not enforced"
        )


if __name__ == "__main__":
    from conftest import run_standalone

    raise SystemExit(run_standalone(__file__))
