"""E17: chaos harness — tail latency and recovery under injected faults.

The ISSUE 6 acceptance gate: a live process-backed gateway survives a
SIGKILLed pool worker and poison requests (pool replaced, requests
submitted after the kill still complete), the digests of the surviving
runs are byte-identical to a sequential re-execution of exactly those
requests, and p99 under injected stragglers degrades *boundedly*:

    p99_chaos <= P99_FACTOR * (p99_clean + straggler_ms) + P99_SLACK_MS

The clean twin of the workload runs first on an identical gateway to
anchor the bound.  Results land in ``BENCH_engines.json`` under the
``chaos`` section (no ``speedup_target`` — the bench enforces its own
gates; ``check_regression`` reads the section for trend context only).
"""

import os

from repro.scenarios import mixed_batch
from repro.service import requests_from_scenarios, run_chaos
from repro.service.chaos import ChaosPlan, inject

BATCH = 48
WORKERS = 4
ENGINE = "fast"
KILLS = 1
POISONS = 2
STRAGGLER_MS = 120.0
STRAGGLER_EVERY = 5  # every 5th clean request is slowed
P99_FACTOR = 4.0
P99_SLACK_MS = 500.0

SIZES = dict(routing_sizes=(16,), sorting_sizes=(16,), multiplex_sizes=(16,))


def _plan():
    clean = requests_from_scenarios(
        mixed_batch(BATCH, seed0=0, **SIZES), engine=ENGINE
    )
    armed = list(clean)
    kill_indices = [BATCH // 3]
    poison_indices = [BATCH // 2, (3 * BATCH) // 4]
    taken = set(kill_indices + poison_indices)
    straggler_indices = [
        i for i in range(0, BATCH, STRAGGLER_EVERY) if i not in taken
    ]
    for i in kill_indices:
        armed[i] = inject(armed[i], "kill")
    for i in poison_indices:
        armed[i] = inject(armed[i], "poison")
    for i in straggler_indices:
        armed[i] = inject(armed[i], f"slow:{STRAGGLER_MS:g}")
    return ChaosPlan(
        requests=armed,
        clean=clean,
        kill_indices=kill_indices,
        poison_indices=poison_indices,
        straggler_indices=straggler_indices,
    )


def _measure():
    report = run_chaos(
        _plan(),
        workers=WORKERS,
        straggler_ms=STRAGGLER_MS,
        p99_factor=P99_FACTOR,
        p99_slack_ms=P99_SLACK_MS,
        compare_clean=True,
    )
    return report


def test_bench_chaos_gates(benchmark, table_printer, bench_json):
    report = benchmark.pedantic(_measure, rounds=1, iterations=1)
    from repro.analysis import render_table

    cpus = os.cpu_count() or 1
    c = report.counts
    rows = [
        {
            "config": "clean-twin",
            "workers": WORKERS,
            "offered": BATCH,
            "completed": BATCH,
            "failed": 0,
            "pool_replacements": 0,
            "p99_ms": report.p99_clean_ms,
        },
        {
            "config": (
                f"chaos[{c['kills']}k/{c['poisons']}p/"
                f"{c['stragglers']}s@{STRAGGLER_MS:g}ms]"
            ),
            "workers": WORKERS,
            "offered": c["offered"],
            "completed": c["completed"],
            "failed": c["failed"],
            "pool_replacements": report.pool_replacements,
            "p99_ms": report.p99_chaos_ms,
        },
    ]
    table_printer(
        render_table(
            f"E17  chaos harness - {BATCH} mixed instances, "
            f"engine={ENGINE} ({cpus} cpus)",
            ["config", "workers", "offered", "done", "failed",
             "pool swaps", "p99 ms"],
            [
                [
                    r["config"],
                    r["workers"],
                    r["offered"],
                    r["completed"],
                    r["failed"],
                    r["pool_replacements"],
                    f"{r['p99_ms']:.1f}",
                ]
                for r in rows
            ],
        )
    )
    bench_json(
        "chaos",
        {
            "description": (
                f"fault-injection gates on the {WORKERS}-worker process "
                f"gateway: worker kill + poison requests + stragglers "
                f"({STRAGGLER_MS:g}ms); p99 bound = "
                f"{P99_FACTOR:g}*(clean_p99+straggler_ms)+{P99_SLACK_MS:g}; "
                f"digests of surviving runs byte-checked against a "
                f"sequential re-execution"
            ),
            "engine": ENGINE,
            "transport": "shm",
            "gates": dict(report.gates),
            "counts": dict(c),
            "p99_clean_ms": report.p99_clean_ms,
            "p99_chaos_ms": report.p99_chaos_ms,
            "p99_bound_ms": report.p99_bound_ms,
            "pool_replacements": report.pool_replacements,
            "chaos_digest": report.chaos_digest,
            "baseline_digest": report.baseline_digest,
            "rows": rows,
        },
    )
    failed_gates = [g for g, ok in report.gates.items() if not ok]
    assert not failed_gates, (
        f"chaos gates failed: {failed_gates} "
        f"(p99 chaos {report.p99_chaos_ms:.1f}ms vs bound "
        f"{report.p99_bound_ms:.1f}ms, "
        f"{report.pool_replacements} pool replacement(s))"
    )


if __name__ == "__main__":
    from conftest import run_standalone

    raise SystemExit(run_standalone(__file__))
