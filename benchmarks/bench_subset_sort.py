"""E4 — Lemma 4.4 (10-round subset sort) and Lemma 4.3 (bucket balance).

For each group size the table reports the measured rounds and the largest
bucket against the generalized Lemma 4.3 bound ``k_max + s*w + w``
(the paper's ``< 4n`` at ``(w, k_max) = (sqrt(n), 2n)``).
"""

import random

from repro.analysis import (
    SUBSET_SORT_ROUNDS,
    render_table,
    subset_sort_bucket_bound,
)
from repro.core import run_protocol
from repro.sorting import subset_sort


def _run_one(n, w, keys_per, seed):
    groups = (tuple(range(w)),)
    rng = random.Random(seed)
    pool = rng.sample(range(10 ** 6), w * keys_per)
    lists = [
        sorted(pool[i * keys_per : (i + 1) * keys_per]) for i in range(w)
    ]

    def prog(ctx):
        if ctx.node_id < w:
            res = yield from subset_sort(
                ctx, groups, 0, ctx.node_id, lists[ctx.node_id],
                keys_per, "b", redistribute=True,
            )
        else:
            res = yield from subset_sort(
                ctx, groups, None, None, [], keys_per, "b",
            )
        return res

    res = run_protocol(n, prog, capacity=16)
    merged = []
    for i in range(w):
        merged.extend(res.outputs[i].run)
    assert merged == sorted(pool)
    return res.rounds, max(res.outputs[0].bucket_sizes)


def _measure():
    rows = []
    for w in (4, 6, 8, 10, 12):
        n = w * w
        keys_per = 2 * n
        rounds, max_bucket = _run_one(n, w, keys_per, seed=w)
        bound = subset_sort_bucket_bound(keys_per, w)
        assert rounds == SUBSET_SORT_ROUNDS
        assert max_bucket < bound
        rows.append(
            [w, n, keys_per, rounds, SUBSET_SORT_ROUNDS, max_bucket, bound]
        )
    return rows


def test_bench_subset_sort(benchmark, table_printer):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    table_printer(
        render_table(
            "E4  Lemma 4.4 rounds + Lemma 4.3 bucket balance",
            [
                "w",
                "n",
                "keys/node",
                "rounds",
                "bound",
                "max bucket",
                "bucket bound",
            ],
            rows,
        )
    )


if __name__ == "__main__":
    from conftest import run_standalone

    raise SystemExit(run_standalone(__file__))
