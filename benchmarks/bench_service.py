"""E15: batch-service throughput — sharded workers vs the sequential baseline.

The ISSUE 3 acceptance gate: a >= 256-instance mixed batch on 4 workers
must run >= 2x faster wall-clock than the 1-worker sequential backend,
with output digests byte-identical to direct ``engine.execute`` runs.

Correctness is asserted unconditionally (every backend's per-run digests
must equal the direct-execution digests, and the two backends' batch
digests must match).  The *speedup* gate only means something when the
hardware can actually run 4 workers — on fewer than 4 CPUs the row is
recorded and the assertion is skipped (CI's runners have >= 4 vCPUs, so
the gate is enforced where it is measured meaningfully).

Results land in ``BENCH_engines.json`` under the ``service`` section.
"""

import os

from repro.scenarios import Scenario, mixed_batch, output_digest
from repro.scenarios.runner import ALGORITHMS, default_algorithm
from repro.service import BatchService, requests_from_scenarios

#: the acceptance-gate shape: >= 256 mixed instances, 4 workers, >= 2x.
BATCH = 256
WORKERS = 4
SPEEDUP_TARGET = 2.0
ENGINE = "fast"

#: best-of-N timing to shrug off CI-runner noise.
REPEAT = 2

SIZES = dict(routing_sizes=(25,), sorting_sizes=(25,), multiplex_sizes=(16,))


def _requests():
    return requests_from_scenarios(
        mixed_batch(BATCH, seed0=0, **SIZES), engine=ENGINE
    )


def _direct_digests(requests):
    """Plain engine.execute runs through the algorithm registry."""
    digests = []
    for req in requests:
        scenario = Scenario(req.kind, req.family, req.n, req.seed)
        spec = ALGORITHMS[
            (req.kind, req.algorithm or default_algorithm(req.kind))
        ]
        result = spec.run(scenario.build(), req.engine, req.seed)
        digests.append(output_digest(req.kind, result.outputs))
    return digests


def _best_report(service, requests, repeat=REPEAT):
    best = None
    for _ in range(repeat):
        report = service.run_batch(requests)
        if best is None or report.wall_s < best.wall_s:
            best = report
    return best


def _measure():
    requests = _requests()
    direct = _direct_digests(requests)  # also warms the parent plan cache

    sequential = _best_report(BatchService(workers=1, engine=ENGINE), requests)
    pooled = _best_report(
        BatchService(workers=WORKERS, engine=ENGINE), requests
    )

    for label, report in (("sequential", sequential), ("pool", pooled)):
        assert report.ok, f"{label}: {report.failures[:3]}"
        got = [s.digest for s in report.summaries]
        assert got == direct, (
            f"{label} backend digests diverge from direct engine.execute"
        )
    assert sequential.batch_digest() == pooled.batch_digest()

    speedup = sequential.wall_s / pooled.wall_s
    rows = []
    for report, speed in ((sequential, 1.0), (pooled, speedup)):
        rows.append([
            report.backend,
            report.workers,
            report.transport,
            len(report.summaries),
            report.wall_s,
            report.throughput,
            speed,
            report.batch_digest(),
        ])
    return rows


def test_bench_service_throughput(benchmark, table_printer, bench_json):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    from repro.analysis import render_table

    cpus = os.cpu_count() or 1
    enforced = cpus >= WORKERS
    table_printer(
        render_table(
            f"E15  batch service - {BATCH} mixed instances, engine={ENGINE} "
            f"(best-of-{REPEAT}, {cpus} cpus)",
            ["backend", "workers", "transport", "batch", "wall s", "inst/s",
             "speedup", "digest"],
            [
                [b, w, x or "-", n, f"{t:.2f}", f"{r:.1f}", f"{s:.2f}x", d]
                for b, w, x, n, t, r, s, d in rows
            ],
        )
    )
    payload = {
        "description": (
            f"{BATCH}-instance mixed batch (routing/sorting/multiplex) "
            f"on the batch service; speedup = sequential wall / pooled "
            f"wall; digests cross-checked against direct engine.execute"
        ),
        "engine": ENGINE,
        "speedup_target": SPEEDUP_TARGET,
        "speedup_gate_enforced": enforced,
        "rows": [
            {
                "backend": b,
                "workers": w,
                "transport": x,
                "batch": n,
                "wall_s": round(t, 3),
                "instances_per_s": round(r, 2),
                "speedup": round(s, 3),
                "gated": enforced and w > 1,
                "batch_digest": d,
            }
            for b, w, x, n, t, r, s, d in rows
        ],
    }
    if not enforced:
        payload["gate_skip_reason"] = (
            f"host has {cpus} cpu(s) < {WORKERS} workers; parallel speedup "
            f"is unmeasurable here (see top-level meta)"
        )
    bench_json("service", payload)
    speedup = rows[-1][6]
    if enforced:
        assert speedup >= SPEEDUP_TARGET, (
            f"{WORKERS}-worker batch speedup {speedup:.2f}x below target "
            f"{SPEEDUP_TARGET}x on {cpus} cpus"
        )
    else:
        print(
            f"\n[bench_service] {cpus} cpu(s) < {WORKERS} workers: "
            f"recorded {speedup:.2f}x, speedup gate not enforced"
        )


if __name__ == "__main__":
    from conftest import run_standalone

    raise SystemExit(run_standalone(__file__))
