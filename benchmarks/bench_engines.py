"""Engine face-off: ReferenceEngine vs FastEngine on routing workloads.

The fast engine's advantages are (a) skipping finished/idle nodes via its
live-set, (b) lazy mailboxes, (c) batched statistics and sampled validation.
They show where per-round engine overhead dominates — long skewed runs with
few active nodes — and shrink where the protocol's own local computation
dominates (the Lenzen router's Koenig colorings; see bench_data_plane.py
for the plan cache that amortizes those across runs).  The table reports
both regimes; the acceptance bar is SPEEDUP_TARGET on the skewed routing
rows at n >= ASSERT_HARD_AT, with byte-identical outputs across engines.
Results are merged into BENCH_engines.json for cross-PR tracking.
"""

import time

import pytest

from repro.core import CongestedClique
from repro.routing import (
    Message,
    RoutingInstance,
    route_lenzen,
    uniform_instance,
    verify_delivery,
)
from repro.routing.naive import naive_program
from repro.scenarios import output_digest

#: sizes for the engine comparison; the acceptance criterion is n >= 64.
SIZES = (64, 128)

#: required FastEngine advantage on the skewed routing workload.  The bar
#: dropped from 3.0 when the columnar wire data plane landed: batched
#: validation sped the *reference* engine up as well, so the ratio shrank
#: while both absolute times improved (locally n=128 measures ~3.2x with
#: reference 8.2ms -> the JSON below records the absolute times so the
#: trajectory stays auditable across PRs).
SPEEDUP_TARGET = 2.5

#: the hard gate applies from this size up; on shared CI runners the n=64
#: margin is thin, so below ASSERT_HARD_AT the row is gated by the looser
#: regression tripwire instead of flaking unrelated builds.
ASSERT_HARD_AT = 128
SPEEDUP_TRIPWIRE = 1.8


def skewed_hotspot(n: int, mult: int = 3) -> RoutingInstance:
    """Relaxed skewed instance: one hot pair carries ``mult * n`` messages.

    Naive routing then needs ``mult * n`` rounds during which all but two
    nodes are finished — the live-set regime.  ``max_load`` raises the
    per-node cap as Theorem 3.7's remark allows.
    """
    load = mult * n
    msgs = [[] for _ in range(n)]
    for j in range(load):
        msgs[0].append(Message(source=0, dest=1, seq=j, payload=j))
    return RoutingInstance(n, msgs, exact=False, max_load=load)


def _best_of(fn, repeat: int = 5) -> float:
    best = float("inf")
    for _ in range(repeat):
        t0 = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - t0
        if elapsed < best:
            best = elapsed
    return best


def _compare_engines(n, make_result, repeat=5):
    """Best-of-N wall time per engine plus an output-identity check."""
    ref = make_result("reference")
    fast = make_result("fast")
    assert output_digest("routing", ref.outputs) == output_digest(
        "routing", fast.outputs
    ), "engines disagree on delivered messages"
    assert ref.rounds == fast.rounds
    t_ref = _best_of(lambda: make_result("reference"), repeat)
    t_fast = _best_of(lambda: make_result("fast"), repeat)
    return t_ref, t_fast


def _measure():
    rows = []
    for n in SIZES:
        inst = skewed_hotspot(n)
        prog = naive_program(inst)

        def run(engine, n=n, prog=prog):
            return CongestedClique(n, engine=engine).run(prog)

        res = run("fast")
        verify_delivery(inst, res.outputs)
        t_ref, t_fast = _compare_engines(n, run)
        bar = SPEEDUP_TARGET if n >= ASSERT_HARD_AT else SPEEDUP_TRIPWIRE
        rows.append(
            ["skewed-hotspot/naive", n, t_ref * 1e3, t_fast * 1e3,
             t_ref / t_fast, f">= {bar}"]
        )
    # Context rows: protocol-bound regimes, reported without a bar.
    for n in (64,):
        inst = uniform_instance(n, seed=1)

        def run_lenzen(engine, inst=inst):
            return route_lenzen(inst, engine=engine)

        t_ref, t_fast = _compare_engines(n, run_lenzen, repeat=3)
        rows.append(
            ["balanced/lenzen", n, t_ref * 1e3, t_fast * 1e3,
             t_ref / t_fast, "(context)"]
        )
    return rows


def test_bench_engine_speedup(benchmark, table_printer, bench_json):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    from repro.analysis import render_table

    table_printer(
        render_table(
            "E13  execution engines - reference vs fast (ms, best-of-N)",
            ["workload", "n", "reference", "fast", "speedup", "bar"],
            [
                [w, n, f"{r:.2f}", f"{f:.2f}", f"{s:.1f}x", bar]
                for w, n, r, f, s, bar in rows
            ],
        )
    )
    bench_json(
        "engines",
        {
            "description": (
                "ReferenceEngine vs FastEngine wall time (ms, best-of-N); "
                "speedup = reference / fast"
            ),
            "speedup_target": SPEEDUP_TARGET,
            "speedup_tripwire": SPEEDUP_TRIPWIRE,
            "assert_hard_at": ASSERT_HARD_AT,
            "rows": [
                {
                    "workload": w,
                    "n": n,
                    "reference_ms": round(r, 3),
                    "fast_ms": round(f, 3),
                    "speedup": round(s, 3),
                    "bar": bar,
                }
                for w, n, r, f, s, bar in rows
            ],
        },
    )
    for workload, n, _ref, _fast, speedup, _bar in rows:
        if not workload.startswith("skewed") or n < 64:
            continue
        bar = SPEEDUP_TARGET if n >= ASSERT_HARD_AT else SPEEDUP_TRIPWIRE
        assert speedup >= bar, (
            f"{workload} n={n}: FastEngine speedup {speedup:.2f}x "
            f"below target {bar}x"
        )


@pytest.mark.parametrize("engine", ["reference", "fast"])
def test_bench_single_engine(benchmark, engine):
    inst = skewed_hotspot(64)
    prog = naive_program(inst)
    benchmark(lambda: CongestedClique(64, engine=engine).run(prog))


if __name__ == "__main__":
    from conftest import run_standalone

    raise SystemExit(run_standalone(__file__))
