"""E2 — Theorem 5.4: 12-round routing with O(n log n) local computation.

Two tables: the round counts (12 on every workload), and the local-work
scaling — ``max node steps / (n log2 n)`` must stay flat as n grows, and
peak live words per node must stay O(n).
"""

from repro.analysis import ROUTING_OPTIMIZED_ROUNDS, render_table
from repro.routing import (
    block_skew_instance,
    permutation_instance,
    route_optimized,
    uniform_instance,
    verify_delivery,
)


def _measure_rounds():
    rows = []
    for name, maker in [
        ("uniform", lambda n: uniform_instance(n, seed=n)),
        ("hotspot-perm", permutation_instance),
        ("block-skew", lambda n: block_skew_instance(n, seed=1)),
    ]:
        for n in (16, 25, 36, 49):
            inst = maker(n)
            res = route_optimized(inst)
            verify_delivery(inst, res.outputs)
            assert res.rounds == ROUTING_OPTIMIZED_ROUNDS
            rows.append([name, n, res.rounds, ROUTING_OPTIMIZED_ROUNDS])
    return rows


def _measure_work():
    rows = []
    for n in (16, 36, 64, 100):
        inst = uniform_instance(n, seed=2)
        res = route_optimized(inst, meter=True)
        verify_delivery(inst, res.outputs)
        rows.append(
            [
                n,
                res.meters.max_steps,
                f"{res.meters.normalized_steps(n):.2f}",
                res.meters.max_peak_words,
                f"{res.meters.normalized_words(n):.2f}",
            ]
        )
    return rows


def test_bench_optimized_rounds(benchmark, table_printer):
    rows = benchmark.pedantic(_measure_rounds, rounds=1, iterations=1)
    table_printer(
        render_table(
            "E2a  Theorem 5.4 - optimized routing rounds",
            ["workload", "n", "rounds", "paper bound"],
            rows,
        )
    )


def test_bench_optimized_local_work(benchmark, table_printer):
    rows = benchmark.pedantic(_measure_work, rounds=1, iterations=1)
    table_printer(
        render_table(
            "E2b  Theorem 5.4 - local computation scaling "
            "(steps/(n log n) and words/n must stay flat)",
            ["n", "max steps", "steps/(n log n)", "peak words", "words/n"],
            rows,
        )
    )


if __name__ == "__main__":
    from conftest import run_standalone

    raise SystemExit(run_standalone(__file__))
