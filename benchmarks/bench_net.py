"""E19: the network service on a loopback socket — wire cost and latency.

A threaded server (``ServerThread`` fronting the stream gateway) and the
blocking ``Client`` run a full-taxonomy mixed batch over a real TCP
socket.  Two kinds of rows land in ``BENCH_engines.json`` under the
``net`` section:

* **batch** — the windowed batch run: per-request wire bytes in each
  direction (the client counts every byte it sends and receives, frame
  headers included) and aggregate throughput.  Wire bytes are the
  protocol's honest overhead figure: the columnar ``RENV`` envelopes
  plus the 8-byte frame header and 4-byte channel prefix per hop.
* **round_trip** — single-request submit→summary round trips on a
  dedicated connection, recorded as p50/p95/p99.

The only *gate* is correctness: the remote digest must match an
in-process sequential re-execution byte-for-byte.  The latency rows are
explicitly ungated (``"gated": False``) — loopback round-trip timing
measures the host's scheduler as much as the protocol and is not
portable across CI runners.
"""

import time

from repro.scenarios import remote_selfcheck_batch
from repro.service import requests_from_scenarios
from repro.service.batch import execute_request, summaries_digest
from repro.service.net import Client, ServerThread

BATCH = 64
ENGINE = "fast"
WORKERS = 2
CHUNK = 16

#: single-request round trips for the latency percentiles.
ROUND_TRIPS = 48


def _percentile(sorted_values, q):
    """Nearest-rank percentile over an already-sorted sample."""
    if not sorted_values:
        return None
    rank = max(0, min(len(sorted_values) - 1,
                      round(q / 100.0 * (len(sorted_values) - 1))))
    return sorted_values[rank]


def _measure():
    requests = requests_from_scenarios(
        remote_selfcheck_batch(BATCH, seed0=0), engine=ENGINE
    )
    sequential_digest = summaries_digest(
        execute_request(r) for r in requests
    )

    with ServerThread(workers=WORKERS, engine=ENGINE) as st:
        with Client(st.host, st.port) as client:
            t0 = time.perf_counter()
            summaries = client.run(requests, chunk=CHUNK)
            batch_wall = time.perf_counter() - t0
            sent, received = client.bytes_sent, client.bytes_received
            version = client.protocol_version

        # Fidelity first: the wire numbers are meaningless unless the
        # remote run reproduces the sequential digest exactly.
        assert len(summaries) == len(requests)
        remote_digest = summaries_digest(summaries)
        assert remote_digest == sequential_digest, (
            f"remote digest {remote_digest} != sequential "
            f"{sequential_digest}"
        )

        # A fresh connection for the latency sample, so the batch run's
        # buffered frames can't smear the round-trip timings.
        with Client(st.host, st.port) as client:
            lat_ms = []
            for req in requests[:ROUND_TRIPS]:
                t0 = time.perf_counter()
                channel = client.submit([req])
                client.collect(channel)
                lat_ms.append((time.perf_counter() - t0) * 1e3)
    lat_ms.sort()

    rows = [
        {
            "row": "batch",
            "requests": len(requests),
            "protocol_version": version,
            "wall_s": round(batch_wall, 4),
            "throughput_rps": round(len(requests) / batch_wall, 2),
            "sent_bytes_per_req": round(sent / len(requests), 1),
            "received_bytes_per_req": round(received / len(requests), 1),
            "digest_match": True,
            "gated": False,
        },
        {
            "row": "round_trip",
            "samples": len(lat_ms),
            "p50_ms": round(_percentile(lat_ms, 50), 3),
            "p95_ms": round(_percentile(lat_ms, 95), 3),
            "p99_ms": round(_percentile(lat_ms, 99), 3),
            "gated": False,
        },
    ]
    return rows


def test_bench_net_loopback(benchmark, table_printer, bench_json):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    from repro.analysis import render_table

    batch = next(r for r in rows if r["row"] == "batch")
    rtt = next(r for r in rows if r["row"] == "round_trip")
    table_printer(
        render_table(
            f"E19  network service - {BATCH} mixed instances over loopback "
            f"({WORKERS} workers, chunk {CHUNK})",
            ["row", "req/s", "sent B/req", "recv B/req",
             "p50 ms", "p95 ms", "p99 ms"],
            [
                [
                    "batch",
                    f"{batch['throughput_rps']:.1f}",
                    f"{batch['sent_bytes_per_req']:.0f}",
                    f"{batch['received_bytes_per_req']:.0f}",
                    "-", "-", "-",
                ],
                [
                    "round_trip", "-", "-", "-",
                    f"{rtt['p50_ms']:.2f}",
                    f"{rtt['p95_ms']:.2f}",
                    f"{rtt['p99_ms']:.2f}",
                ],
            ],
        )
    )
    bench_json(
        "net",
        {
            "description": (
                f"{BATCH}-instance full-taxonomy batch through "
                f"repro.service.net over a loopback socket "
                f"(ServerThread, {WORKERS} thread-backend workers, "
                f"chunked submits of {CHUNK}); wire bytes count every "
                f"frame byte in both directions; round_trip rows are "
                f"single-request submit->summary latencies on a fresh "
                f"connection; digest parity vs a sequential in-process "
                f"re-execution is the only gate (loopback latency is "
                f"host-scheduler-bound, deliberately ungated)"
            ),
            "engine": ENGINE,
            "rows": rows,
        },
    )
    assert batch["digest_match"]


if __name__ == "__main__":
    from conftest import run_standalone

    raise SystemExit(run_standalone(__file__))
