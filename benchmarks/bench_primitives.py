"""E5 — Corollaries 3.3 (2 rounds) and 3.4 (4 rounds), concurrent groups."""

from repro.analysis import (
    KNOWN_PATTERN_ROUNDS,
    UNKNOWN_PATTERN_ROUNDS,
    render_table,
)
from repro.core import run_protocol
from repro.routing.primitives import route_known, route_unknown


def _run(n, w, mode):
    num_groups = n // w
    groups = tuple(
        tuple(range(g * w, (g + 1) * w)) for g in range(num_groups)
    )

    def prog(ctx):
        g, r = divmod(ctx.node_id, w)
        items = [(b, (ctx.node_id, b)) for b in range(w)]
        if mode == "known":
            demand = tuple(tuple(1 for _ in range(w)) for _ in range(w))
            got = yield from route_known(
                ctx, groups, g, r, items, demand, "e5", item_width=2
            )
        else:
            got = yield from route_unknown(
                ctx, groups, g, r, items, "e5", item_width=2
            )
        assert len(got) == w
        return None

    return run_protocol(n, prog).rounds


def _measure():
    rows = []
    for n, w in [(16, 4), (36, 6), (64, 8), (100, 10)]:
        known = _run(n, w, "known")
        unknown = _run(n, w, "unknown")
        assert known == KNOWN_PATTERN_ROUNDS
        assert unknown == UNKNOWN_PATTERN_ROUNDS
        rows.append(
            [
                n,
                w,
                n // w,
                known,
                KNOWN_PATTERN_ROUNDS,
                unknown,
                UNKNOWN_PATTERN_ROUNDS,
            ]
        )
    return rows


def test_bench_primitives(benchmark, table_printer):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    table_printer(
        render_table(
            "E5  Cor. 3.3 / 3.4 round counts (all groups concurrent)",
            [
                "n",
                "|W|",
                "groups",
                "Cor3.3",
                "bound",
                "Cor3.4",
                "bound",
            ],
            rows,
        )
    )


if __name__ == "__main__":
    from conftest import run_standalone

    raise SystemExit(run_standalone(__file__))
