"""E3 — Theorem 4.5: deterministic sorting of n^2 keys in 37 rounds."""

from repro.analysis import SORTING_ROUNDS, render_table
from repro.sorting import (
    duplicate_heavy_instance,
    presorted_instance,
    reversed_instance,
    sort_lenzen,
    uniform_sort_instance,
    verify_sorted_batches,
)

WORKLOADS = {
    "uniform": lambda n: uniform_sort_instance(n, seed=n),
    "dup-heavy": lambda n: duplicate_heavy_instance(n, distinct=4, seed=n),
    "presorted": presorted_instance,
    "reversed": reversed_instance,
}


def _measure():
    rows = []
    for name, maker in WORKLOADS.items():
        for n in (16, 25, 36, 49):
            inst = maker(n)
            res = sort_lenzen(inst)
            verify_sorted_batches(inst, res.outputs)
            assert res.rounds == SORTING_ROUNDS
            rows.append(
                [name, n, n * n, res.rounds, SORTING_ROUNDS]
            )
    return rows


def test_bench_sorting_rounds(benchmark, table_printer):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    table_printer(
        render_table(
            "E3  Theorem 4.5 - deterministic sorting rounds",
            ["workload", "n", "keys", "rounds", "paper bound"],
            rows,
        )
    )


def test_bench_single_sort(benchmark):
    inst = uniform_sort_instance(16, seed=3)
    benchmark(lambda: sort_lenzen(inst))


if __name__ == "__main__":
    from conftest import run_standalone

    raise SystemExit(run_standalone(__file__))
