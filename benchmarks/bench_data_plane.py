"""E14: the columnar wire data plane and the cross-run plan cache.

Two effects are measured on end-to-end Lenzen routing (Theorem 3.7):

* **warm vs cold plan cache** — the router's local work is dominated by
  Koenig colorings and pattern derivations that are pure functions of the
  instance *structure*; the :class:`~repro.core.context.PlanCache` replays
  them across runs.  ``cold`` clears the cache before every run (the
  pre-refactor regime, where every run paid full setup); ``warm`` keeps it
  (the scenario-sweep / benchmark-repeat / batched-service regime).  The
  acceptance bar from ISSUE 2 is a >= 2x end-to-end speedup on repeated
  routing at n >= 64; the gate is asserted on the fast engine (widest
  margin) and the reference row is recorded as context.
* **plan-cache hit accounting** — a warm repeat must be fully served by the
  cache (zero new misses), proving the structural keys actually recur.

Results are merged into ``BENCH_engines.json`` (section ``data_plane``) so
the perf trajectory is tracked across PRs.
"""

import time

from repro.core import plan_cache
from repro.routing import route_lenzen, uniform_instance, verify_delivery
from repro.scenarios import output_digest

#: problem sizes; the ISSUE-2 acceptance criterion applies from n >= 64.
SIZES = (64,)

#: required warm-over-cold advantage on repeated routing (fast engine).
WARM_SPEEDUP_TARGET = 2.0

#: repeats for best-of-N timing (high enough to shrug off CI-runner noise).
REPEAT = 5


def _best_of(fn, repeat=REPEAT):
    best = float("inf")
    for _ in range(repeat):
        t0 = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - t0
        if elapsed < best:
            best = elapsed
    return best


def _measure():
    rows = []
    cache = plan_cache()
    for n in SIZES:
        inst = uniform_instance(n, seed=1)
        for engine in ("reference", "fast"):
            def run(engine=engine, inst=inst):
                return route_lenzen(inst, engine=engine)

            def run_cold(run=run, cache=cache):
                cache.clear()
                return run()

            # Correctness first: warm and cold runs deliver identically.
            cold_res = run_cold()
            verify_delivery(inst, cold_res.outputs)
            warm_res = run()
            assert output_digest("routing", cold_res.outputs) == (
                output_digest("routing", warm_res.outputs)
            ), "plan cache changed delivered messages"
            assert cold_res.rounds == warm_res.rounds

            t_cold = _best_of(run_cold)
            run()  # ensure the cache is warm before timing warm repeats
            misses_before = cache.misses
            t_warm = _best_of(run)
            new_misses = cache.misses - misses_before
            rows.append(
                [f"lenzen/uniform/{engine}", n, t_cold * 1e3, t_warm * 1e3,
                 t_cold / t_warm, new_misses]
            )
    return rows


def test_bench_plan_cache_warm_speedup(benchmark, table_printer, bench_json):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    from repro.analysis import render_table

    table_printer(
        render_table(
            "E14  wire data plane - plan-cache cold vs warm (ms, best-of-N)",
            ["workload", "n", "cold", "warm", "speedup", "new misses"],
            [
                [w, n, f"{c:.2f}", f"{h:.2f}", f"{s:.2f}x", m]
                for w, n, c, h, s, m in rows
            ],
        )
    )
    bench_json(
        "data_plane",
        {
            "description": (
                "Repeated Lenzen routing, plan cache cleared per run (cold) "
                "vs retained (warm); speedup = cold / warm"
            ),
            "warm_speedup_target": WARM_SPEEDUP_TARGET,
            "rows": [
                {
                    "workload": w,
                    "n": n,
                    "cold_ms": round(c, 3),
                    "warm_ms": round(h, 3),
                    "speedup": round(s, 3),
                    "warm_repeat_new_misses": m,
                    # which rows the >= target assertion below applies to;
                    # CI's bench-regression step gates on the same flag.
                    "gated": w.endswith("/fast") and n >= 64,
                }
                for w, n, c, h, s, m in rows
            ],
        },
    )
    for workload, n, _cold, _warm, speedup, new_misses in rows:
        # A warm repeat of an identical instance must be fully replayed.
        assert new_misses == 0, (
            f"{workload} n={n}: warm repeat recomputed {new_misses} plans"
        )
        if workload.endswith("/fast") and n >= 64:
            assert speedup >= WARM_SPEEDUP_TARGET, (
                f"{workload} n={n}: warm speedup {speedup:.2f}x below "
                f"target {WARM_SPEEDUP_TARGET}x"
            )


if __name__ == "__main__":
    from conftest import run_standalone

    raise SystemExit(run_standalone(__file__))
