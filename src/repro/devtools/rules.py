"""Project-specific lint rules: this repository's bug history, as code.

Every stable rule below encodes an invariant a shipped PR paid to learn
at runtime; the fixture corpus under ``tests/fixtures/lint/`` carries the
minimized historical bug (true positive) and the fixed form (true
negative) for each, so the linter is regression-tested against the
project's own history.  DESIGN.md section 11 maps each rule to the PR
whose bug motivated it.

Rule ids are stable and grep-able: ``RPR0xx`` for tier-1 rules, ``RPR1xx``
for experimental heuristics that only run under ``--experimental``
(nightly CI) because their signal/noise ratio is not yet gate-worthy.
"""

from __future__ import annotations

import ast
import io
import tokenize
from typing import Iterator, List, Optional, Sequence, Set, Tuple

from .lint import FileContext, Finding, Rule, register_rule

__all__ = [
    "STABLE_RULE_IDS",
    "EXPERIMENTAL_RULE_IDS",
]

FunctionLike = (ast.FunctionDef, ast.AsyncFunctionDef)


def _doc_order(node: ast.AST) -> Iterator[ast.AST]:
    """Depth-first traversal in document order (``ast.walk`` is BFS)."""
    for child in ast.iter_child_nodes(node):
        yield child
        yield from _doc_order(child)


def _functions(tree: ast.AST) -> Iterator[ast.AST]:
    for node in ast.walk(tree):
        if isinstance(node, FunctionLike):
            yield node


def _call_name(node: ast.AST) -> str:
    """Dotted name of a call target: ``a.b.c(...)`` -> ``"a.b.c"``."""
    parts: List[str] = []
    cur: Optional[ast.AST] = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
    elif isinstance(cur, ast.Call):
        parts.append(_call_name(cur.func) + "()")
    return ".".join(reversed(parts))


def _mentions_cache(node: ast.AST) -> bool:
    """Does an expression's receiver look like a plan cache?"""
    text = _call_name(node).lower()
    return "cache" in text or "plan" in text


# -- RPR001: PlanCache.enabled mutation --------------------------------------


@register_rule
class PlanCacheEnabledMutation(Rule):
    id = "RPR001"
    name = "plan-cache-enabled-mutation"
    description = (
        "PlanCache.enabled (and .disable()/.enable()) is process-global "
        "state; scoped determinism audits must use PlanCache.bypassed() "
        "instead of flipping the flag."
    )
    rationale = (
        "PR 3: SharedCache.verify_mode toggled the global PlanCache."
        "enabled flag, silently disabling (or re-enabling) the cache "
        "under every concurrently interleaved run."
    )
    exclude = ("*/core/context.py",)

    _MSG = (
        "mutating a plan cache's `enabled` flag is visible to every "
        "interleaved run; use plan_cache().bypassed() for a scoped bypass "
        "[PR-3 verify_mode bug]"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and target.attr == "enabled"
                        and _mentions_cache(target.value)
                    ):
                        found = ctx.finding(self.id, node, self._MSG)
                        if found:
                            yield found
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in ("disable", "enable")
                    and _mentions_cache(func.value)
                ):
                    found = ctx.finding(self.id, node, self._MSG)
                    if found:
                        yield found


# -- RPR002: engine-protocol outbox aliasing ---------------------------------


def _is_yield_boundary_call(node: ast.AST) -> bool:
    """A call that hands back a dict yielded by a protocol generator."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr == "send":
        return True
    return isinstance(func, ast.Name) and func.id == "next"


@register_rule
class OutboxAliasing(Rule):
    id = "RPR002"
    name = "outbox-aliasing"
    description = (
        "A dict received from a protocol generator's yield (gen.send()/"
        "next(gen)) must be copied before being stored in a container or "
        "returned; the generator may mutate or reuse it after yielding."
    )
    rationale = (
        "PR 3: FastEngine._coerce_fast aliased the protocol's yielded "
        "outbox dict, letting post-yield mutation retroactively rewrite "
        "what was 'sent'."
    )

    _MSG = (
        "dict yielded across the engine protocol boundary is stored/"
        "returned without copying; snapshot it first (e.g. dict(outbox)) "
        "[PR-3 FastEngine outbox aliasing]"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for func in _functions(ctx.tree):
            yield from self._check_function(ctx, func)

    def _check_function(
        self, ctx: FileContext, func: ast.AST
    ) -> Iterator[Finding]:
        tracked: Set[str] = set()
        for node in _doc_order(func):
            if isinstance(node, FunctionLike) and node is not func:
                continue  # nested functions get their own pass
            if isinstance(node, ast.Assign):
                names = [
                    t.id for t in node.targets if isinstance(t, ast.Name)
                ]
                # Direct store of the yielded dict into a container.
                if _is_yield_boundary_call(node.value):
                    for target in node.targets:
                        if isinstance(target, (ast.Subscript, ast.Attribute)):
                            found = ctx.finding(self.id, node, self._MSG)
                            if found:
                                yield found
                    tracked.update(names)
                    continue
                # Storing a tracked name un-copied.
                for target in node.targets:
                    if isinstance(target, (ast.Subscript, ast.Attribute)):
                        value = node.value
                        if isinstance(value, ast.Name) and value.id in tracked:
                            found = ctx.finding(self.id, node, self._MSG)
                            if found:
                                yield found
                # Any other rebind launders the name (dict(x), coerce(x)...).
                tracked.difference_update(names)
            elif isinstance(node, ast.Return):
                value = node.value
                if isinstance(value, ast.Name) and value.id in tracked:
                    found = ctx.finding(self.id, node, self._MSG)
                    if found:
                        yield found
                elif value is not None and _is_yield_boundary_call(value):
                    found = ctx.finding(self.id, node, self._MSG)
                    if found:
                        yield found
            elif isinstance(node, ast.Call):
                func_expr = node.func
                if (
                    isinstance(func_expr, ast.Attribute)
                    and func_expr.attr in ("append", "add", "insert", "extend")
                ):
                    for arg in node.args:
                        if isinstance(arg, ast.Name) and arg.id in tracked:
                            found = ctx.finding(self.id, node, self._MSG)
                            if found:
                                yield found
                        elif _is_yield_boundary_call(arg):
                            found = ctx.finding(self.id, node, self._MSG)
                            if found:
                                yield found


# -- RPR003: blocking calls in async bodies ----------------------------------


_BLOCKING_CALLS = {
    "time.sleep": "time.sleep() blocks the event loop; await asyncio.sleep()",
    "open": "sync file I/O blocks the event loop; use an executor",
    "subprocess.run": "subprocess.run() blocks; use asyncio.create_subprocess_*",
    "subprocess.call": "subprocess.call() blocks; use asyncio.create_subprocess_*",
    "subprocess.check_call": (
        "subprocess.check_call() blocks; use asyncio.create_subprocess_*"
    ),
    "subprocess.check_output": (
        "subprocess.check_output() blocks; use asyncio.create_subprocess_*"
    ),
}


@register_rule
class AsyncBlockingCall(Rule):
    id = "RPR003"
    name = "async-blocking-call"
    description = (
        "No blocking calls (time.sleep, Future.result(), sync file I/O, "
        "subprocess) directly inside `async def` bodies in repro.service; "
        "executor-side code (chaos faults) is allowlisted."
    )
    rationale = (
        "The gateway's event loop drives every dispatcher; one blocking "
        "call stalls all in-flight requests at once (the class of bug the "
        "PR-4 deadline/backpressure machinery exists to bound)."
    )
    include = ("*/service/*.py",)
    exclude = ("*/service/chaos.py",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for func in _functions(ctx.tree):
            if not isinstance(func, ast.AsyncFunctionDef):
                continue
            yield from self._check_async_body(ctx, func)

    def _check_async_body(
        self, ctx: FileContext, func: ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        for node in self._direct_nodes(func):
            if not isinstance(node, ast.Call):
                continue
            dotted = _call_name(node.func)
            blocked = _BLOCKING_CALLS.get(dotted)
            if blocked is not None:
                found = ctx.finding(
                    self.id,
                    node,
                    f"blocking call `{dotted}` inside `async def "
                    f"{func.name}`: {blocked}",
                )
                if found:
                    yield found
                continue
            func_expr = node.func
            if (
                isinstance(func_expr, ast.Attribute)
                and func_expr.attr == "result"
                and not node.args
                and not node.keywords
            ):
                found = ctx.finding(
                    self.id,
                    node,
                    f"`.result()` inside `async def {func.name}` blocks "
                    "the loop until the future resolves; await "
                    "asyncio.wrap_future(...) instead",
                )
                if found:
                    yield found

    @staticmethod
    def _direct_nodes(func: ast.AsyncFunctionDef) -> Iterator[ast.AST]:
        """Nodes of the async body, skipping nested defs and lambdas.

        Nested functions run elsewhere (done-callbacks, executor thunks),
        so a blocking call inside one is not a loop stall at this site.
        """

        def walk(node: ast.AST) -> Iterator[ast.AST]:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (*FunctionLike, ast.Lambda)):
                    continue
                yield child
                yield from walk(child)

        yield from walk(func)


# -- RPR004: queue.put without closed-state re-check -------------------------


def _test_mentions_closed(test: ast.AST) -> bool:
    for node in ast.walk(test):
        if isinstance(node, ast.Attribute) and "closed" in node.attr:
            return True
        if isinstance(node, ast.Name) and "closed" in node.id:
            return True
    return False


@register_rule
class PutWithoutCloseRecheck(Rule):
    id = "RPR004"
    name = "put-without-close-recheck"
    description = (
        "Every `await queue.put(...)` in the gateway must be followed by a "
        "closed-state re-check: under the block policy a submitter can "
        "resume from put() after close() already drained the queue."
    )
    rationale = (
        "PR 6: a submitter suspended in _queue.put could enqueue after "
        "drain() released, stranding its future forever."
    )
    include = ("*/service/*.py",)

    #: how many sibling statements after the put may precede the re-check.
    _WINDOW = 3

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for func in _functions(ctx.tree):
            if not isinstance(func, ast.AsyncFunctionDef):
                continue
            yield from self._scan_body(ctx, func.body)

    def _scan_body(
        self, ctx: FileContext, body: Sequence[ast.stmt]
    ) -> Iterator[Finding]:
        for i, stmt in enumerate(body):
            await_put = self._await_put(stmt)
            if await_put is not None:
                if not self._recheck_follows(body[i + 1 : i + 1 + self._WINDOW]):
                    found = ctx.finding(
                        self.id,
                        await_put,
                        "`await queue.put(...)` without a closed-state "
                        "re-check in the following statements; a submitter "
                        "suspended in put() can enqueue after close() "
                        "drained the queue [PR-6 stranded-future race]",
                    )
                    if found:
                        yield found
            # Recurse into nested statement bodies (loops, ifs, withs).
            for field in ("body", "orelse", "finalbody"):
                nested = getattr(stmt, field, None)
                if isinstance(nested, list):
                    yield from self._scan_body(ctx, nested)
            handlers = getattr(stmt, "handlers", None)
            if isinstance(handlers, list):
                for handler in handlers:
                    yield from self._scan_body(ctx, handler.body)

    @staticmethod
    def _await_put(stmt: ast.stmt) -> Optional[ast.AST]:
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Expr):
            value = stmt.value
        elif isinstance(stmt, ast.Assign):
            value = stmt.value
        if not isinstance(value, ast.Await):
            return None
        call = value.value
        if (
            isinstance(call, ast.Call)
            and isinstance(call.func, ast.Attribute)
            and call.func.attr == "put"
        ):
            return value
        return None

    @staticmethod
    def _recheck_follows(following: Sequence[ast.stmt]) -> bool:
        for stmt in following:
            if isinstance(stmt, ast.If) and _test_mentions_closed(stmt.test):
                return True
            for node in ast.walk(stmt):
                if isinstance(node, ast.If) and _test_mentions_closed(
                    node.test
                ):
                    return True
        return False


# -- RPR005: shared-memory resource-tracker discipline -----------------------


def _is_shm_constructor(node: ast.Call) -> bool:
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr == "SharedMemory":
        return True
    return isinstance(func, ast.Name) and func.id == "SharedMemory"


def _patches_register(func: ast.AST) -> bool:
    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and target.attr == "register"
                    and "tracker" in _call_name(target.value)
                ):
                    return True
    return False


@register_rule
class ShmTrackerDiscipline(Rule):
    id = "RPR005"
    name = "shm-tracker-discipline"
    description = (
        "multiprocessing.shared_memory attach/close/unlink must follow the "
        "PR-7 tracker discipline: never call resource_tracker.unregister, "
        "and suppress the attach-side register (bpo-39959) when attaching "
        "to a parent-owned segment."
    )
    rationale = (
        "PR 7: a worker-side unregister stripped the parent's own "
        "registration under fork; the parent's later unlink() then "
        "double-unregistered and the tracker logged a KeyError."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        # (a) any resource_tracker.unregister call is the historical bug.
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr == "unregister"
                    and "tracker" in _call_name(func.value)
                ):
                    found = ctx.finding(
                        self.id,
                        node,
                        "resource_tracker.unregister() strips the parent's "
                        "registration under fork (double-unregister on "
                        "unlink); suppress the attach-side register instead "
                        "[PR-7 bpo-39959 discipline]",
                    )
                    if found:
                        yield found
        # (b) attach-mode SharedMemory(name=...) outside a register-patch.
        for func in _functions(ctx.tree):
            patched = _patches_register(func)
            for node in _doc_order(func):
                if isinstance(node, FunctionLike) and node is not func:
                    continue
                if not (isinstance(node, ast.Call) and _is_shm_constructor(node)):
                    continue
                kwargs = {k.arg for k in node.keywords if k.arg}
                if "create" in kwargs or not kwargs & {"name"}:
                    continue  # creation side, or positional-only: not attach
                if not patched:
                    found = ctx.finding(
                        self.id,
                        node,
                        "attaching to a shared-memory segment without "
                        "suppressing resource_tracker.register: the tracker "
                        "would adopt (and later unlink) the parent's segment "
                        "[PR-7 bpo-39959 discipline]",
                    )
                    if found:
                        yield found


# -- RPR006: broad except that swallows the failure --------------------------


_BROAD_NAMES = {"Exception", "BaseException"}


def _is_broad_handler(handler: ast.ExceptHandler) -> bool:
    t = handler.type
    if t is None:
        return True
    if isinstance(t, ast.Name) and t.id in _BROAD_NAMES:
        return True
    if isinstance(t, ast.Tuple):
        return any(
            isinstance(el, ast.Name) and el.id in _BROAD_NAMES
            for el in t.elts
        )
    return False


def _handler_records_failure(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Name) and node.id == "STATUS_FAILED":
            return True
        if isinstance(node, ast.Attribute) and node.attr == "STATUS_FAILED":
            return True
    return False


@register_rule
class BroadExceptSwallow(Rule):
    id = "RPR006"
    name = "broad-except-swallow"
    description = (
        "A bare/broad `except Exception` may not swallow executor failures "
        "silently: it must re-raise or record STATUS_FAILED (deliberate "
        "best-effort cleanup carries an explanatory suppression)."
    )
    rationale = (
        "PR 6: executor-failure summaries were mislabeled completed; a "
        "swallowed BrokenExecutor poisons digests and percentiles."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _is_broad_handler(node):
                continue
            if _handler_records_failure(node):
                continue
            found = ctx.finding(
                self.id,
                node,
                "broad except swallows the failure without re-raising or "
                "recording STATUS_FAILED; narrow the exception types, or "
                "suppress with a reason if this is deliberate best-effort "
                "cleanup [PR-6 mislabeled-failure bug]",
            )
            if found:
                yield found


# -- RPR007: frozen-dataclass __new__/__dict__ construction ------------------


@register_rule
class FrozenBypassConstruction(Rule):
    id = "RPR007"
    name = "frozen-bypass-construction"
    description = (
        "Frozen-dataclass fast construction (`Cls.__new__` + `__dict__` "
        "install) is sanctioned only in the envelope decode paths "
        "(core/engine.py fast_* helpers, core/wire.py, service/transport"
        ".py); everywhere else use the real constructor."
    )
    rationale = (
        "The __new__ bypass skips __init__ validation and field defaults; "
        "PR 7 confined it to decode hot loops where every field is "
        "explicitly installed and benchmarked."
    )
    exclude = (
        "*/core/engine.py",
        "*/core/wire.py",
        "*/service/transport.py",
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Attribute)
                and node.attr == "__new__"
                and isinstance(node.ctx, ast.Load)
            ):
                found = ctx.finding(
                    self.id,
                    node,
                    "`__new__` fast construction outside the sanctioned "
                    "decode paths; build the object through its constructor "
                    "[PR-7 envelope-decode discipline]",
                )
                if found:
                    yield found
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and target.attr == "__dict__"
                    ):
                        found = ctx.finding(
                            self.id,
                            node,
                            "wholesale `__dict__` install outside the "
                            "sanctioned decode paths [PR-7 envelope-decode "
                            "discipline]",
                        )
                        if found:
                            yield found
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr == "__setattr__"
                    and len(node.args) >= 2
                    and isinstance(node.args[1], ast.Constant)
                    and node.args[1].value == "__dict__"
                ):
                    found = ctx.finding(
                        self.id,
                        node,
                        "object.__setattr__(..., '__dict__', ...) outside "
                        "the sanctioned decode paths [PR-7 envelope-decode "
                        "discipline]",
                    )
                    if found:
                        yield found


# -- RPR008: bench rows must carry an explicit gate flag ---------------------


def _dict_string_keys(node: ast.Dict) -> Set[str]:
    keys: Set[str] = set()
    for key in node.keys:
        if isinstance(key, ast.Constant) and isinstance(key.value, str):
            keys.add(key.value)
    return keys


@register_rule
class BenchRowGateFlag(Rule):
    id = "RPR008"
    name = "bench-row-gate-flag"
    description = (
        "A benchmark result row recording a speedup/ratio must carry an "
        "explicit `gated` (or `bar`) field, so check_regression.py and "
        "reviewers can tell enforced measurements from context rows; "
        "waived gates carry `gate_skip_reason` at the payload level."
    )
    rationale = (
        "PR 7: waived speedup gates silently read as passes until rows "
        "grew explicit gated flags and skip reasons."
    )
    include = ("bench_*.py", "*/bench_*.py")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Dict):
                continue
            keys = _dict_string_keys(node)
            if not keys & {"speedup", "time_ratio", "bytes_ratio"}:
                continue
            if keys & {"gated", "bar"}:
                continue
            found = ctx.finding(
                self.id,
                node,
                "bench result row records a speedup/ratio without an "
                "explicit `gated` (or `bar`) field; mark whether this row "
                "is gate-enforced [PR-7 explicit-waiver discipline]",
            )
            if found:
                yield found


# -- experimental rules (nightly only) ---------------------------------------


@register_rule
class TodoComment(Rule):
    id = "RPR101"
    name = "todo-comment"
    description = (
        "TODO/FIXME/XXX comments in shipped source; nightly inventory of "
        "acknowledged debt (too noisy to gate tier-1 CI)."
    )
    rationale = "Debt inventory for the nightly report artifact."
    experimental = True

    _MARKERS = ("TODO", "FIXME", "XXX")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        try:
            tokens = tokenize.generate_tokens(
                io.StringIO(ctx.source).readline
            )
            for tok in tokens:
                if tok.type != tokenize.COMMENT:
                    continue
                upper = tok.string.upper()
                marker = next(
                    (m for m in self._MARKERS if m in upper), None
                )
                if marker is None:
                    continue
                if ctx.suppressed(self.id, tok.start[0]):
                    continue
                yield Finding(
                    self.id,
                    ctx.path,
                    tok.start[0],
                    tok.start[1],
                    f"{marker} comment: {tok.string.lstrip('# ')[:80]}",
                )
        except (tokenize.TokenError, IndentationError):
            return


@register_rule
class BroadExceptAnywhere(Rule):
    id = "RPR102"
    name = "broad-except-anywhere"
    description = (
        "Every bare/broad except, including re-raising and suppressed "
        "ones — the noisy superset of RPR006 for the nightly exception-"
        "handling audit."
    )
    rationale = "Nightly audit surface over RPR006's gate."
    experimental = True

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and _is_broad_handler(node):
                found = ctx.finding(
                    self.id,
                    node,
                    "broad except handler (nightly audit; see RPR006 for "
                    "the gated subset)",
                )
                if found:
                    yield found


# Rule-count sanity: the registry is the single source of truth; tests
# assert the stable set matches DESIGN.md section 11.
STABLE_RULE_IDS: Tuple[str, ...] = (
    "RPR001",
    "RPR002",
    "RPR003",
    "RPR004",
    "RPR005",
    "RPR006",
    "RPR007",
    "RPR008",
)

EXPERIMENTAL_RULE_IDS: Tuple[str, ...] = ("RPR101", "RPR102")
