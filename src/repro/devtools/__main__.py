"""``python -m repro.devtools`` delegates to the linter CLI."""

from .lint import main

if __name__ == "__main__":
    raise SystemExit(main())
