"""Developer tooling: the project-aware static-analysis pass.

``repro.devtools.lint`` is an AST-level checker whose rules encode this
repository's *own* bug history — every invariant a past PR paid for at
runtime (the PR-3 ``PlanCache.enabled`` flip, the PR-3 FastEngine outbox
aliasing, the PR-6 put-after-close race, the PR-7 shm resource-tracker
discipline) is machine-checked here before the chaos harness ever has to
catch it live.  See DESIGN.md section 11 for the rule-by-rule rationale.

Run it::

    python -m repro.devtools.lint src/            # text, exit 1 on findings
    python -m repro.devtools.lint --json src/     # machine-readable report

Exports are lazy so ``python -m repro.devtools.lint`` never imports the
linter twice (runpy would otherwise execute a second module copy with its
own, empty rule registry).
"""

from typing import Any, List

_EXPORTS = (
    "Finding",
    "FileContext",
    "LintConfig",
    "Rule",
    "all_rules",
    "lint_paths",
    "lint_source",
    "register_rule",
)

__all__: List[str] = list(_EXPORTS)


def __getattr__(name: str) -> Any:
    if name in _EXPORTS:
        from . import lint

        return getattr(lint, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
