"""AST-visitor lint framework with a project-specific rule registry.

The framework is deliberately small: a :class:`Rule` is a class with an
``id``, path scoping, and a ``check(ctx)`` generator over
:class:`Finding`; :class:`FileContext` hands every rule the parsed tree,
the raw source, and the suppression table; the registry maps rule ids to
instances.  Rules themselves live in :mod:`repro.devtools.rules` and
encode invariants this repository has already paid to learn (see
DESIGN.md section 11).

Suppressions
------------

A finding is suppressed by a ``# repro: ignore[RULE-ID]`` comment on the
flagged line (comma-separate several ids; ``# repro: ignore`` with no
bracket suppresses every rule on that line).  A *standalone* comment line
also covers the immediately following line, so multi-clause statements
can carry an explanation above them::

    # repro: ignore[RPR006] -- best-effort cleanup, never fatal
    except Exception:
        pass

A ``# repro: ignore-file[RULE-ID]`` comment in the first ten lines
suppresses the rule for the whole file.

Command line
------------

::

    python -m repro.devtools.lint src/ benchmarks/      # exit 1 on findings
    python -m repro.devtools.lint --json src/           # JSON report
    python -m repro.devtools.lint --experimental src/   # include noisy rules
    python -m repro.devtools.lint --list-rules

Rule selection defaults are pinned in ``pyproject.toml`` under
``[tool.repro.lint]`` so CI runs are deterministic; CLI flags override the
file.
"""

from __future__ import annotations

import argparse
import ast
import fnmatch
import io
import json
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import (
    ClassVar,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Type,
)

__all__ = [
    "Finding",
    "FileContext",
    "LintConfig",
    "Rule",
    "all_rules",
    "register_rule",
    "lint_source",
    "lint_paths",
    "main",
]

#: Bumped when the JSON report layout changes shape.
JSON_SCHEMA_VERSION = 1

#: Pseudo-rule id for files that do not parse; never suppressible.
PARSE_ERROR_ID = "RPR900"

_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*ignore(-file)?(?:\[([A-Za-z0-9_,\s-]+)\])?"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


class _Suppressions:
    """Per-file suppression table parsed from ``# repro: ignore`` comments."""

    #: sentinel meaning "every rule" (bare ``# repro: ignore``).
    ALL = "*"

    def __init__(self, source: str) -> None:
        self.by_line: Dict[int, FrozenSet[str]] = {}
        self.file_wide: FrozenSet[str] = frozenset()
        self._parse(source)

    def _parse(self, source: str) -> None:
        lines = source.splitlines()
        file_wide: Set[str] = set()
        try:
            tokens = list(
                tokenize.generate_tokens(io.StringIO(source).readline)
            )
        except (tokenize.TokenError, IndentationError, SyntaxError):
            return  # unparseable files are reported as parse errors anyway
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(tok.string)
            if match is None:
                continue
            is_file_wide = match.group(1) is not None
            raw_ids = match.group(2)
            ids: FrozenSet[str] = (
                frozenset({self.ALL})
                if raw_ids is None
                else frozenset(
                    part.strip().upper()
                    for part in raw_ids.split(",")
                    if part.strip()
                )
            )
            line = tok.start[0]
            if is_file_wide:
                if line <= 10:
                    file_wide |= ids
                continue
            self._add(line, ids)
            before = lines[line - 1][: tok.start[1]] if line <= len(lines) else ""
            if not before.strip():
                # Standalone comment: also covers the first code line after
                # the comment block, so an explanation may span several
                # comment lines above the flagged statement.
                target = line + 1
                while target <= len(lines):
                    text = lines[target - 1].strip()
                    if text and not text.startswith("#"):
                        break
                    target += 1
                self._add(target, ids)
        self.file_wide = frozenset(file_wide)

    def _add(self, line: int, ids: FrozenSet[str]) -> None:
        self.by_line[line] = self.by_line.get(line, frozenset()) | ids

    def suppressed(self, rule_id: str, line: int) -> bool:
        if self.ALL in self.file_wide or rule_id in self.file_wide:
            return True
        ids = self.by_line.get(line)
        if ids is None:
            return False
        return self.ALL in ids or rule_id in ids


class FileContext:
    """Everything a rule may inspect about one source file."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        #: display path, always posix-style (what scoping patterns match).
        self.path = path
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()
        self._suppressions = _Suppressions(source)

    def suppressed(self, rule_id: str, line: int) -> bool:
        return self._suppressions.suppressed(rule_id, line)

    def finding(
        self, rule_id: str, node: ast.AST, message: str
    ) -> Optional[Finding]:
        """Build a finding at ``node`` unless suppressed (then ``None``)."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        if self.suppressed(rule_id, line):
            return None
        return Finding(rule_id, self.path, line, col, message)


class Rule:
    """Base class for lint rules.

    Subclasses set the class attributes and implement :meth:`check` as a
    generator of :class:`Finding` (use :meth:`FileContext.finding`, which
    already applies suppressions).  ``include``/``exclude`` are fnmatch
    patterns against the posix display path; a rule only runs on files
    matching at least one ``include`` and no ``exclude``.
    """

    id: ClassVar[str] = ""
    name: ClassVar[str] = ""
    description: ClassVar[str] = ""
    #: which shipped bug motivated the rule (shown by --list-rules).
    rationale: ClassVar[str] = ""
    #: experimental rules only run under --experimental (nightly CI).
    experimental: ClassVar[bool] = False
    include: ClassVar[Tuple[str, ...]] = ("*.py",)
    exclude: ClassVar[Tuple[str, ...]] = ()

    def applies_to(self, path: str) -> bool:
        if not any(fnmatch.fnmatch(path, pat) for pat in self.include):
            return False
        return not any(fnmatch.fnmatch(path, pat) for pat in self.exclude)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError
        yield  # pragma: no cover - generator typing aid


_REGISTRY: Dict[str, Rule] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding one instance of ``cls`` to the registry."""
    if not cls.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if cls.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.id}")
    _REGISTRY[cls.id] = cls()
    return cls


def all_rules(experimental: bool = False) -> List[Rule]:
    """Registered rules, stable ones first, experimental only on request."""
    _ensure_rules_loaded()
    rules = sorted(_REGISTRY.values(), key=lambda r: r.id)
    if experimental:
        return rules
    return [r for r in rules if not r.experimental]


def _ensure_rules_loaded() -> None:
    # Imported lazily so `import repro.devtools.lint` never cycles with
    # rules that may want framework names at module import time.
    from . import rules as _rules  # noqa: F401


@dataclass
class LintConfig:
    """Resolved rule selection for one lint run."""

    select: Optional[FrozenSet[str]] = None
    experimental: bool = False

    def active_rules(self) -> List[Rule]:
        rules = all_rules(experimental=True)
        if self.select is not None:
            return [r for r in rules if r.id in self.select]
        if self.experimental:
            return rules
        return [r for r in rules if not r.experimental]


def lint_source(
    source: str, path: str, config: Optional[LintConfig] = None
) -> List[Finding]:
    """Lint one in-memory source blob under display path ``path``."""
    config = config or LintConfig()
    display = Path(path).as_posix()
    try:
        tree = ast.parse(source, filename=display)
    except SyntaxError as exc:
        return [
            Finding(
                PARSE_ERROR_ID,
                display,
                exc.lineno or 1,
                (exc.offset or 1) - 1,
                f"file does not parse: {exc.msg}",
            )
        ]
    ctx = FileContext(display, source, tree)
    findings: List[Finding] = []
    for rule in config.active_rules():
        if not rule.applies_to(display):
            continue
        findings.extend(rule.check(ctx))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def _iter_py_files(paths: Sequence[str]) -> Iterator[Path]:
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            for f in sorted(p.rglob("*.py")):
                if "__pycache__" in f.parts:
                    continue
                if any(part.startswith(".") for part in f.parts[1:]):
                    continue
                yield f
        elif p.suffix == ".py":
            yield p


def lint_paths(
    paths: Sequence[str], config: Optional[LintConfig] = None
) -> Tuple[List[Finding], int]:
    """Lint files/directories; returns ``(findings, files_scanned)``."""
    config = config or LintConfig()
    findings: List[Finding] = []
    scanned = 0
    for file in _iter_py_files(paths):
        scanned += 1
        try:
            source = file.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            findings.append(
                Finding(
                    PARSE_ERROR_ID,
                    file.as_posix(),
                    1,
                    0,
                    f"file is unreadable: {exc}",
                )
            )
            continue
        findings.extend(lint_source(source, file.as_posix(), config))
    return findings, scanned


# -- configuration -----------------------------------------------------------


def _load_pyproject_selection(
    explicit: Optional[str],
) -> Tuple[Optional[FrozenSet[str]], Optional[bool]]:
    """``(select, experimental)`` pinned in pyproject.toml, if any.

    Looks for ``[tool.repro.lint]`` in the explicit ``--config`` file or in
    a ``pyproject.toml`` found next to the current directory or any parent.
    Silently returns no pins when :mod:`tomllib` is unavailable (< 3.11) or
    nothing is configured — the CLI then runs every stable rule.
    """
    try:
        import tomllib
    except ImportError:  # Python < 3.11: defaults only
        return None, None
    candidates: List[Path] = []
    if explicit is not None:
        candidates.append(Path(explicit))
    else:
        here = Path.cwd()
        for parent in (here, *here.parents):
            candidates.append(parent / "pyproject.toml")
    for candidate in candidates:
        if not candidate.is_file():
            continue
        try:
            doc = tomllib.loads(candidate.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None, None
        section = doc.get("tool", {}).get("repro", {}).get("lint", {})
        if not isinstance(section, dict):
            return None, None
        select_raw = section.get("select")
        select: Optional[FrozenSet[str]] = None
        if isinstance(select_raw, list):
            select = frozenset(str(item).upper() for item in select_raw)
        experimental_raw = section.get("experimental")
        experimental = (
            experimental_raw if isinstance(experimental_raw, bool) else None
        )
        return select, experimental
    return None, None


def _render_report(
    findings: Iterable[Finding], scanned: int, as_json: bool,
    config: LintConfig,
) -> str:
    findings = list(findings)
    if as_json:
        doc = {
            "schema": JSON_SCHEMA_VERSION,
            "files_scanned": scanned,
            "rules": [r.id for r in config.active_rules()],
            "findings": [f.to_dict() for f in findings],
        }
        return json.dumps(doc, indent=2, sort_keys=True)
    lines = [f.render() for f in findings]
    noun = "finding" if len(findings) == 1 else "findings"
    lines.append(
        f"repro-lint: {len(findings)} {noun} in {scanned} file(s)"
    )
    return "\n".join(lines)


def _list_rules() -> str:
    rows = []
    for rule in all_rules(experimental=True):
        tag = " [experimental]" if rule.experimental else ""
        rows.append(f"{rule.id}{tag}  {rule.name}")
        rows.append(f"    {rule.description}")
        if rule.rationale:
            rows.append(f"    motivated by: {rule.rationale}")
    return "\n".join(rows)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.lint",
        description=(
            "Project-aware static analysis: AST rules encoding this "
            "repository's hard-won concurrency/serialization invariants."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=[], metavar="PATH",
        help="files or directories to lint (default: src/)",
    )
    parser.add_argument(
        "--select", default=None, metavar="IDS",
        help="comma-separated rule ids to run (overrides pyproject pin)",
    )
    parser.add_argument(
        "--experimental", action="store_true",
        help="also run experimental (noisy) rules — the nightly mode",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit a machine-readable JSON report",
    )
    parser.add_argument(
        "--exit-zero", action="store_true",
        help="always exit 0 (report-only mode, used by nightly CI)",
    )
    parser.add_argument(
        "--config", default=None, metavar="PYPROJECT",
        help="explicit pyproject.toml carrying [tool.repro.lint]",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print every registered rule and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    pin_select, pin_experimental = _load_pyproject_selection(args.config)
    select: Optional[FrozenSet[str]] = pin_select
    if args.select is not None:
        select = frozenset(
            part.strip().upper()
            for part in args.select.split(",")
            if part.strip()
        )
    experimental = args.experimental or bool(pin_experimental)
    if experimental and select is not None and args.select is None:
        # The pyproject pin freezes the *stable* gate; experimental mode
        # unions the experimental set on top rather than being filtered
        # out by the pin.  An explicit --select stays exact.
        select = select | frozenset(
            r.id for r in all_rules(experimental=True) if r.experimental
        )
    config = LintConfig(select=select, experimental=experimental)

    paths = args.paths or ["src"]
    findings, scanned = lint_paths(paths, config)
    print(_render_report(findings, scanned, args.json, config))
    if args.exit_zero:
        return 0
    return 1 if findings else 0


if __name__ == "__main__":
    # Under ``python -m repro.devtools.lint`` runpy executes this file as
    # ``__main__`` while the package import system holds a *second* copy
    # (rules register against that one).  Route through the canonical
    # module so there is exactly one registry.
    from repro.devtools.lint import main as _canonical_main

    raise SystemExit(_canonical_main())
