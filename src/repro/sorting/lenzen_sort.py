"""Algorithm 4: deterministic sorting of ``n^2`` keys in 37 rounds.

Round budget (Theorem 4.5), reproduced exactly:

=========  ================================================  ======
step       what                                              rounds
=========  ================================================  ======
1 (local)  sort input, select every sqrt(n)-th key           0
2          i-th selected key to node i                       1
3          Algorithm 3 on nodes 0..sqrt(n)-1 (skip Step 8)   8
4          announce the sqrt(n) delimiters to all nodes      2
5 (local)  split input by delimiters                         0
6          ship bucket j to group j (Theorem 3.7 router,
           two keys packed per message word)                 16
7          Algorithm 3 inside every group (skip Step 8)      8
8          rebalance to exact batches (Corollary 3.3)        2
=========  ================================================  ======

Step 8 needs every node's post-Step-7 key count as *common knowledge*.  The
count is known to its holder right after Step 7's internal count
announcement, so it piggybacks on one word of Step 7's remaining rounds
(filling unused edges) — message size stays O(log n) and no extra round is
spent, preserving the paper's total of 37.

Requires perfect-square ``n`` (the paper's non-square remark — "work with
subsets of size floor(sqrt(n))" at constant-factor larger messages — applies
but is not implemented; use square ``n``).
"""

from __future__ import annotations

import bisect
from typing import Callable, Dict, Generator, List, Tuple

from ..core.context import NodeContext
from ..core.engine import EngineSpec
from ..core.errors import InvalidInstance, ProtocolError
from ..core.message import Packet
from ..core.network import CongestedClique, RunResult
from ..core.topology import is_perfect_square, square_groups, square_partition
from ..core.wire import header_codec
from ..routing.lenzen import header_base, lenzen_wire_program
from ..routing.primitives import route_known
from .problem import SortInstance
from .subset_sort import KEYS_PER_ITEM, _announce_sentinel, subset_sort

#: Paper round budget (Theorem 4.5).
ROUNDS_SORT = 37

#: Packet capacity for sorting runs.  The paper freely increases message
#: size by constant factors (e.g. "bundling up to two keys in each message");
#: 16 words accommodate the widest bundle (2 lanes x 5-word bucket items
#: plus the Step-7 piggyback word).
SORT_CAPACITY = 16


def lenzen_sort_program(
    instance: SortInstance,
) -> Callable[[NodeContext], Generator]:
    """Program factory for Algorithm 4."""
    n = instance.n
    if not is_perfect_square(n):
        raise InvalidInstance("Algorithm 4 requires perfect-square n")
    part = square_partition(n)
    s = part.group_size
    groups: Tuple[Tuple[int, ...], ...] = square_groups(n)
    tagged = instance.tagged_by_node()
    codec = instance.codec
    # Step-6 wire table: one slot per node, each filled by its own program
    # before the embedded router starts (no cross-node reads happen).
    route_table: List[List[Tuple[int, int]]] = [[] for _ in range(n)]
    # Step-6 routing: up to 2n messages per node (two packed keys each).
    route_load = 2 * n
    hbase = header_base(n, route_load)
    pack_header = header_codec(hbase).pack  # hoisted: one codec per factory

    def program(ctx: NodeContext) -> Generator:
        me = ctx.node_id
        g = part.group_of(me)
        r = part.rank_in_group(me)
        keys = list(tagged[me])  # already sorted
        sentinel = _announce_sentinel(ctx)
        ctx.observe_live_words(len(keys))

        # ---- Step 1 (local): select every sqrt(n)-th key. -----------------
        ctx.enter_phase("alg4.sample")
        selected = [keys[i] for i in range(s - 1, len(keys), s)]

        # ---- Step 2 (1 round): i-th selected key to node i. ---------------
        outbox = {
            i: Packet((key,)) for i, key in enumerate(selected)
        }
        inbox = yield outbox
        sample_pool = sorted(pkt.words[0] for pkt in inbox.values())

        # ---- Step 3 (8 rounds): sorter group sorts the n^(3/2) samples. ---
        ctx.enter_phase("alg4.sort_samples")
        sorter_group = 0
        res3 = yield from subset_sort(
            ctx,
            groups,
            sorter_group if g == sorter_group else None,
            r if g == sorter_group else None,
            sample_pool if g == sorter_group else [],
            k_max=n,
            pattern_key="a4s3",
            redistribute=False,
        )

        # ---- Step 4 (2 rounds): announce delimiters to all nodes. ---------
        # The sorted sample has s*n keys in total; delimiters sit at global
        # sample indices n-1, 2n-1, ..., (s-1)*n - 1 (s-1 split points; the
        # last bucket is open-ended).  Each sorter owns a contiguous run and
        # sends the delimiters inside it to everyone, two (id, key) pairs
        # per round.
        ctx.enter_phase("alg4.delimiters")
        my_delims: List[Tuple[int, int]] = []
        if g == sorter_group and res3 is not None:
            lo = res3.run_offset
            for d in range(1, s):
                pos = d * n - 1
                if lo <= pos < lo + len(res3.run):
                    my_delims.append((d - 1, res3.run[pos - lo]))
        collected: Dict[int, int] = {}
        for half in range(2):
            chunk = my_delims[2 * half : 2 * half + 2]
            outbox = {}
            if chunk:
                words = tuple(x for pair in chunk for x in pair)
                outbox = {dst: Packet(words) for dst in range(n)}
            inbox = yield outbox
            for pkt in inbox.values():
                for i in range(0, len(pkt.words), 2):
                    collected[pkt.words[i]] = pkt.words[i + 1]
        if len(my_delims) > 4:
            raise ProtocolError(
                f"sorter holds {len(my_delims)} delimiters; bound is 4 "
                "(run < 2n keys spans < 3 delimiter positions)"
            )
        delimiters = [collected[d] for d in range(s - 1) if d in collected]
        if len(delimiters) != s - 1:
            raise ProtocolError(
                f"missing delimiters: got {len(delimiters)} of {s - 1}"
            )

        # ---- Step 5 (local): split my input by the delimiters. ------------
        ctx.enter_phase("alg4.split")
        splits = [bisect.bisect_right(keys, d) for d in delimiters]
        bounds = [0] + splits + [len(keys)]
        buckets = [keys[bounds[j] : bounds[j + 1]] for j in range(s)]
        ctx.charge(len(keys))

        # ---- Step 6 (16 rounds): ship bucket j to group j. ----------------
        # Each sender splits its own bucket evenly over the group members
        # (floor/ceil shares, rotation (me + j) keeps the remainders spread),
        # packing two keys per message payload word.
        ctx.enter_phase("alg4.route")
        wire_msgs: List[Tuple[int, int]] = []
        seq = 0
        for j, bucket in enumerate(buckets):
            shares: List[List[int]] = [[] for _ in range(s)]
            for k, key in enumerate(bucket):
                shares[(k + me + j) % s].append(key)
            for b, share in enumerate(shares):
                dest = part.member(j, b)
                for i in range(0, len(share), 2):
                    pair = share[i : i + 2]
                    if len(pair) == 1:
                        pair.append(sentinel)
                    payload = pair[0] * (sentinel + 1) + pair[1]
                    wire_msgs.append((pack_header(me, dest, seq), payload))
                    seq += 1
        if seq > route_load:
            raise ProtocolError(
                f"step 6 source load {seq} exceeds bound {route_load}"
            )
        route_table[me] = sorted(wire_msgs)
        router = lenzen_wire_program(
            n, route_table, load_bound=route_load, strict=False
        )
        delivered = yield from router(ctx)
        bucket_keys: List[int] = []
        for msg in delivered:
            a, b = divmod(msg.payload, sentinel + 1)
            for key in (a, b):
                if key != sentinel:
                    bucket_keys.append(key)
        ctx.observe_live_words(len(bucket_keys))

        # ---- Step 7 (8 rounds): every group sorts its bucket; each node
        # piggybacks its final count so Step 8's pattern becomes global
        # common knowledge for free. --------------------------------------
        ctx.enter_phase("alg4.sort_buckets")
        res7 = yield from subset_sort(
            ctx,
            groups,
            g,
            r,
            bucket_keys,
            k_max=3 * n,
            pattern_key="a4s7",
            redistribute=False,
            piggyback_my_count=True,
        )
        assert res7 is not None
        all_counts = tuple(
            res7.piggyback_counts.get(v, 0) for v in range(n)
        )
        if sum(all_counts) != sum(len(ks) for ks in tagged):
            raise ProtocolError(
                "piggybacked counts do not cover all keys"
            )

        # ---- Step 8 (2 rounds): rebalance to exact batches. ---------------
        # Global order = (group, member-rank) = node-id order: bucket j is
        # held, contiguously, by the members of group j in rank order.
        ctx.enter_phase("alg4.redist")
        offsets = [0] * (n + 1)
        for v in range(n):
            offsets[v + 1] = offsets[v] + all_counts[v]
        total = offsets[n]
        base, extra = divmod(total, n)
        t_bounds = [0] * (n + 1)
        for v in range(n):
            t_bounds[v + 1] = t_bounds[v] + base + (1 if v < extra else 0)
        # Consistency: my run must start at offsets[me].
        my_lo = offsets[me]
        if all_counts[me] != len(res7.run):
            raise ProtocolError("announced count differs from held run")
        all_group = (tuple(range(n)),)
        demand, my_items = _global_overlap_demand(
            offsets, t_bounds, res7.run, me, n, sentinel
        )
        received = yield from route_known(
            ctx,
            all_group,
            0,
            me,
            my_items,
            demand,
            ("a4s8", all_counts),
            item_width=KEYS_PER_ITEM,
        )
        batch = sorted(
            k for item in received for k in item if k != sentinel
        )
        want = t_bounds[me + 1] - t_bounds[me]
        if len(batch) != want:
            raise ProtocolError(
                f"final batch has {len(batch)} keys, expected {want}"
            )
        ctx.charge_sort(len(batch))
        return batch

    return program


def _global_overlap_demand(
    offsets: List[int],
    t_bounds: List[int],
    run: List[int],
    me: int,
    n: int,
    sentinel: int,
):
    """Step-8 pattern over the whole clique: run x batch overlaps, chunked."""
    demand = [[0] * n for _ in range(n)]
    items: List[Tuple[int, Tuple[int, ...]]] = []
    for v in range(n):
        lo, hi = offsets[v], offsets[v + 1]
        if lo == hi:
            continue
        b_lo = bisect.bisect_right(t_bounds, lo) - 1
        b = max(0, min(b_lo, n - 1))
        while b < n and t_bounds[b] < hi:
            overlap = min(hi, t_bounds[b + 1]) - max(lo, t_bounds[b])
            if overlap > 0:
                n_items = -(-overlap // KEYS_PER_ITEM)
                demand[v][b] = n_items
                if v == me:
                    start = max(lo, t_bounds[b]) - lo
                    seg = run[start : start + overlap]
                    for i in range(0, len(seg), KEYS_PER_ITEM):
                        chunk = list(seg[i : i + KEYS_PER_ITEM])
                        chunk.extend(
                            [sentinel] * (KEYS_PER_ITEM - len(chunk))
                        )
                        items.append((b, tuple(chunk)))
            b += 1
    return tuple(tuple(row) for row in demand), items


def sort_lenzen(
    instance: SortInstance,
    meter: bool = False,
    verify_shared: bool = False,
    engine: "EngineSpec" = None,
) -> RunResult:
    """Run Algorithm 4; outputs are per-node sorted tagged-key batches."""
    clique = CongestedClique(
        instance.n,
        capacity=SORT_CAPACITY,
        meter=meter,
        verify_shared=verify_shared,
        engine=engine,
    )
    return clique.run(lenzen_sort_program(instance))
