"""Algorithm 3: sorting up to ``2n^{3/2}`` keys within a group of ``sqrt(n)``
nodes, using only edges with an endpoint in the group.

Parameterized as in DESIGN.md: for a group of ``w`` nodes holding at most
``k_max`` keys each, the sampling stride is ``s = ceil(k_max / w)`` and every
``w``-th sample is a delimiter, giving at most ``w`` buckets of fewer than
``k_max + s*w (~ 2*k_max)`` keys (the generalization of Lemma 4.3's ``< 4n``).

Round budget (Lemma 4.4):

=========  ======================================  ======
step       what                                    rounds
=========  ======================================  ======
1 (local)  sort input, select every s-th key       0
2          announce samples within group           2
3 (local)  pick every w-th sample as delimiter     0
4 (local)  split input into buckets                0
5          announce bucket counts within group     2
6          send bucket j to member j (Cor. 3.4)    4
7 (local)  sort received bucket                    0
8 (opt)    rebalance to even shares (Cor. 3.3)     2
=========  ======================================  ======

Total: 10 rounds standalone, 8 when the caller skips Step 8 (Algorithm 4
does, twice).  Multiple disjoint groups run concurrently; nodes outside all
groups participate as relays (``my_group=None``).

Optionally the step-6 rounds piggyback one word per node (each node's final
bucket share size) to all nodes — Algorithm 4 uses this to make the global
Step-8 exchange pattern common knowledge without spending extra rounds.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, Generator, Hashable, List, Optional, Sequence, Tuple

from ..core.context import NodeContext
from ..core.errors import ProtocolError
from ..core.message import Packet
from ..core.protocol import attach_piggyback, strip_piggyback
from ..routing.primitives import announce_within_group, route_known, route_unknown
from .problem import KeyCodec

#: Keys carried per step-6 item (the paper bundles "a constant number").
KEYS_PER_ITEM = 4

ROUNDS_FULL = 10
ROUNDS_NO_REDIST = 8


@dataclass
class SubsetSortResult:
    """What one group member knows after Algorithm 3 (without Step 8).

    Attributes:
        run: the sorted keys this node now holds (its bucket, or its even
            share after Step 8).
        run_offset: index of ``run[0]`` in the sorted order of all the
            group's keys.
        member_counts: keys held by each member after Step 6 (common
            knowledge within the group).
        bucket_sizes: total keys per bucket (Lemma 4.3 diagnostics).
        piggyback_counts: node -> announced word, when piggyback was on.
    """

    run: List[int]
    run_offset: int
    member_counts: List[int]
    bucket_sizes: List[int]
    piggyback_counts: Dict[int, int] = field(default_factory=dict)


def subset_sort(
    ctx: NodeContext,
    groups: Tuple[Tuple[int, ...], ...],
    my_group: Optional[int],
    my_rank: Optional[int],
    my_keys: Sequence[int],
    k_max: int,
    pattern_key: Hashable,
    redistribute: bool = True,
    piggyback_my_count: bool = False,
) -> Generator[Dict[int, Packet], Dict[int, Packet], Optional[SubsetSortResult]]:
    """Run Algorithm 3 at this node; see module docstring for the schedule.

    ``my_keys`` are tagged (distinct) keys; ``k_max`` is the commonly known
    bound on keys per member.  Returns ``None`` for non-members.
    """
    if my_group is None:
        return (yield from _relay(ctx, groups, pattern_key, redistribute,
                                  piggyback_my_count))

    w = len(groups[my_group])
    stride = max(1, -(-k_max // w))  # ceil(k_max / w)
    keys = sorted(my_keys)
    ctx.charge_sort(len(keys))
    ctx.observe_live_words(len(keys))

    # Step 1: select every stride-th key (1-based positions stride, 2*stride..)
    ctx.enter_phase("alg3.sample")
    selected = [keys[i] for i in range(stride - 1, len(keys), stride)]
    max_selected = k_max // stride
    sentinel = _announce_sentinel(ctx)
    vector = [len(selected)] + selected + [sentinel] * (
        max_selected - len(selected)
    )

    # Step 2: announce samples within the group (2 rounds).
    sample_matrix = yield from announce_within_group(
        ctx, groups, my_group, my_rank, vector, (pattern_key, "smp")
    )

    # Step 3 (local): same input at every member => same delimiters.
    all_samples: List[int] = []
    for row in sample_matrix:
        cnt = row[0]
        all_samples.extend(row[1 : 1 + cnt])
    all_samples.sort()
    ctx.charge_sort(len(all_samples))
    # Every w-th sample; first w-1 of them are the split points, the last
    # bucket is open-ended (keys above the last sample land in bucket w-1).
    delimiters = all_samples[w - 1 :: w][: w - 1]
    # With few samples there may be fewer than w-1 split points; pad with the
    # sentinel so every member still addresses exactly w (possibly empty)
    # buckets.
    delimiters.extend([sentinel] * (w - 1 - len(delimiters)))

    # Step 4 (local): split my input into buckets.
    splits = [bisect.bisect_right(keys, d) for d in delimiters]
    bounds = [0] + splits + [len(keys)]
    buckets = [keys[bounds[j] : bounds[j + 1]] for j in range(w)]
    my_counts = [len(b) for b in buckets]
    ctx.charge(len(keys))

    # Step 5: announce bucket counts within the group (2 rounds).
    ctx.enter_phase("alg3.counts")
    counts = yield from announce_within_group(
        ctx, groups, my_group, my_rank, my_counts, (pattern_key, "cnt")
    )
    bucket_sizes = [sum(counts[a][j] for a in range(w)) for j in range(w)]
    bucket_offsets = [0] * w
    for j in range(1, w):
        bucket_offsets[j] = bucket_offsets[j - 1] + bucket_sizes[j - 1]
    my_final_count = bucket_sizes[my_rank]

    # Step 6: send bucket j to member j (Corollary 3.4, 4 rounds), keys
    # bundled KEYS_PER_ITEM to an item and padded with the sentinel.
    ctx.enter_phase("alg3.exchange")
    items: List[Tuple[int, Tuple[int, ...]]] = []
    for j, bucket in enumerate(buckets):
        for i in range(0, len(bucket), KEYS_PER_ITEM):
            chunk = list(bucket[i : i + KEYS_PER_ITEM])
            chunk.extend([sentinel] * (KEYS_PER_ITEM - len(chunk)))
            items.append((j, tuple(chunk)))
    exchange = route_unknown(
        ctx,
        groups,
        my_group,
        my_rank,
        items,
        (pattern_key, "exc"),
        item_width=KEYS_PER_ITEM,
    )
    pig_word = my_final_count if piggyback_my_count else None
    received, pig_counts = yield from _drive_with_piggyback(
        ctx, exchange, pig_word
    )

    # Step 7 (local): sort my bucket.
    run = sorted(
        k for item in received for k in item if k != sentinel
    )
    ctx.charge_sort(len(run))
    if len(run) != my_final_count:
        raise ProtocolError(
            f"Alg3 Step 6: member holds {len(run)} keys, counts say "
            f"{my_final_count}"
        )
    # Lemma 4.3 generalized: every bucket < k_max + stride * w keys.
    for j, size in enumerate(bucket_sizes):
        if size >= k_max + stride * w + w:
            raise ProtocolError(
                f"Lemma 4.3 violated: bucket {j} holds {size} >= "
                f"{k_max + stride * w + w} keys"
            )

    if not redistribute:
        return SubsetSortResult(
            run=run,
            run_offset=bucket_offsets[my_rank],
            member_counts=bucket_sizes,
            bucket_sizes=bucket_sizes,
            piggyback_counts=pig_counts,
        )

    # Step 8: rebalance so member i holds the i-th even share (2 rounds).
    ctx.enter_phase("alg3.redist")
    total = sum(bucket_sizes)
    base, extra = divmod(total, w)
    targets = [base + (1 if i < extra else 0) for i in range(w)]
    target_bounds = [0] * (w + 1)
    for i in range(w):
        target_bounds[i + 1] = target_bounds[i] + targets[i]
    demand, my_items = _overlap_demand(
        bucket_offsets, bucket_sizes, target_bounds, run, my_rank, sentinel
    )
    received8 = yield from route_known(
        ctx,
        groups,
        my_group,
        my_rank,
        my_items,
        demand,
        (pattern_key, "rd8"),
        item_width=KEYS_PER_ITEM,
    )
    share = sorted(
        k for item in received8 for k in item if k != sentinel
    )
    if len(share) != targets[my_rank]:
        raise ProtocolError(
            f"Alg3 Step 8: member holds {len(share)} keys, target "
            f"{targets[my_rank]}"
        )
    return SubsetSortResult(
        run=share,
        run_offset=target_bounds[my_rank],
        member_counts=targets,
        bucket_sizes=bucket_sizes,
        piggyback_counts=pig_counts,
    )


def _relay(
    ctx: NodeContext,
    groups,
    pattern_key,
    redistribute: bool,
    piggyback: bool,
) -> Generator[Dict[int, Packet], Dict[int, Packet], None]:
    """Non-member schedule: relay duty for every communicating step."""
    yield from announce_within_group(
        ctx, groups, None, None, [], (pattern_key, "smp")
    )
    yield from announce_within_group(
        ctx, groups, None, None, [], (pattern_key, "cnt")
    )
    exchange = route_unknown(
        ctx, groups, None, None, [], (pattern_key, "exc"),
        item_width=KEYS_PER_ITEM,
    )
    yield from _drive_with_piggyback(ctx, exchange, None)
    if redistribute:
        yield from route_known(
            ctx, groups, None, None, [], None, (pattern_key, "rd8"),
            item_width=KEYS_PER_ITEM,
        )
    return None


def _drive_with_piggyback(
    ctx: NodeContext,
    inner: Generator,
    word: Optional[int],
) -> Generator[Dict[int, Packet], Dict[int, Packet], Tuple[list, Dict[int, int]]]:
    """Drive ``inner``, optionally piggybacking ``word`` on every round.

    All nodes must agree on whether piggybacking is active (it changes the
    wire format); Algorithm 4 turns it on for every node simultaneously.
    Returns ``(inner_result, collected_words)``.
    """
    collected: Dict[int, int] = {}
    try:
        outbox = next(inner)
    except StopIteration as stop:
        return stop.value, collected
    while True:
        if word is not None:
            inbox = yield attach_piggyback(outbox, word, ctx.n)
            clean, words = strip_piggyback(inbox)
            collected.update(words)
        else:
            clean = yield outbox
        try:
            outbox = inner.send(clean)
        except StopIteration as stop:
            return stop.value, collected


def _overlap_demand(
    bucket_offsets: List[int],
    bucket_sizes: List[int],
    target_bounds: List[int],
    run: List[int],
    my_rank: int,
    sentinel: int,
):
    """Step-8 pattern: ship each overlap of (held run x target share).

    Returns the full demand matrix (identical at every member — derived from
    commonly known counts) and this member's items.
    """
    w = len(bucket_sizes)
    demand = [[0] * w for _ in range(w)]
    items: List[Tuple[int, Tuple[int, ...]]] = []
    for a in range(w):
        lo, hi = bucket_offsets[a], bucket_offsets[a] + bucket_sizes[a]
        for b in range(w):
            t_lo, t_hi = target_bounds[b], target_bounds[b + 1]
            overlap = min(hi, t_hi) - max(lo, t_lo)
            if overlap <= 0:
                continue
            n_items = -(-overlap // KEYS_PER_ITEM)
            demand[a][b] = n_items
            if a == my_rank:
                start = max(lo, t_lo) - lo
                seg = run[start : start + overlap]
                for i in range(0, len(seg), KEYS_PER_ITEM):
                    chunk = list(seg[i : i + KEYS_PER_ITEM])
                    chunk.extend(
                        [sentinel] * (KEYS_PER_ITEM - len(chunk))
                    )
                    items.append((b, tuple(chunk)))
    return tuple(tuple(row) for row in demand), items


def _announce_sentinel(ctx: NodeContext) -> int:
    """A value above every tagged key, identical at all nodes.

    Tagged keys are bounded by ``n^3 * n * n = n^5`` (see
    :class:`~repro.sorting.problem.KeyCodec`); one shared constant keeps the
    wire format independent of any node's local key bound.
    """
    return max(ctx.n, 2) ** 5
