"""Selection, median and mode in constant rounds (corollaries of sorting).

The paper notes that constant-round sorting "implies constant-round
solutions for related problems like selection or determining modes"
(Corollary 4.6's closing remark).  Concretely:

* **selection(k)** — run Algorithm 4; the holder of global rank ``k``
  broadcasts the key: 37 + 1 rounds.
* **median** — selection with ``k = total // 2``.
* **mode** — run Algorithm 4; every node announces its run boundaries (as in
  Corollary 4.6) *plus* its best strictly-interior candidate.  A raw key is
  either interior to one node's run (its count is complete there) or appears
  only as run boundaries (its total is the sum of announced boundary
  counts), so one broadcast round decides the mode: 37 + 1 rounds.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, List

from ..core.context import NodeContext
from ..core.errors import ProtocolError
from ..core.message import Packet
from ..core.network import CongestedClique, RunResult
from .lenzen_sort import SORT_CAPACITY, lenzen_sort_program
from .problem import SortInstance

ROUNDS_SELECTION = 37 + 1
ROUNDS_MODE = 37 + 1


def selection_program(
    instance: SortInstance, k: int
) -> Callable[[NodeContext], Generator]:
    """Every node learns the raw key of global rank ``k`` (0-based, in the
    tagged total order — equivalently the multiset order of raw keys)."""
    n = instance.n
    total = instance.total_keys()
    if not 0 <= k < total:
        raise ValueError(f"rank {k} outside [0, {total})")
    codec = instance.codec
    sort_program = lenzen_sort_program(instance)

    def program(ctx: NodeContext) -> Generator:
        batch: List[int] = yield from sort_program(ctx)
        ctx.enter_phase("selection.announce")
        # Batch sizes are the even split of Algorithm 4 Step 8.
        base, extra = divmod(total, n)
        lo = ctx.node_id * base + min(ctx.node_id, extra)
        outbox = {}
        if lo <= k < lo + len(batch):
            key = codec.raw(batch[k - lo])
            outbox = {dst: Packet((key,)) for dst in range(n)}
        inbox = yield outbox
        if len(inbox) != 1:
            raise ProtocolError(
                f"selection: expected one announcement, got {len(inbox)}"
            )
        return next(iter(inbox.values())).words[0]

    return program


def select_kth(instance: SortInstance, k: int, **kwargs) -> RunResult:
    """Constant-round selection of the rank-``k`` key."""
    clique = CongestedClique(instance.n, capacity=SORT_CAPACITY, **kwargs)
    return clique.run(selection_program(instance, k))


def median(instance: SortInstance, **kwargs) -> RunResult:
    """Constant-round median (lower median for even totals)."""
    return select_kth(instance, instance.total_keys() // 2, **kwargs)


def mode_program(
    instance: SortInstance,
) -> Callable[[NodeContext], Generator]:
    """Every node learns the mode (most frequent raw key; smallest wins
    ties) of the union of all inputs."""
    n = instance.n
    codec = instance.codec
    sort_program = lenzen_sort_program(instance)

    def program(ctx: NodeContext) -> Generator:
        batch: List[int] = yield from sort_program(ctx)
        ctx.enter_phase("mode.announce")
        raws = [codec.raw(t) for t in batch]
        if raws:
            mn, mx = raws[0], raws[-1]
            cmin = sum(1 for r in raws if r == mn)
            cmax = sum(1 for r in raws if r == mx)
            # Best interior candidate: complete counts by construction.
            best_key, best_cnt = 0, 0
            cur_key, cur_cnt = None, 0
            for r in raws:
                if r == mn or r == mx:
                    continue
                if r == cur_key:
                    cur_cnt += 1
                else:
                    cur_key, cur_cnt = r, 1
                if cur_cnt > best_cnt or (
                    cur_cnt == best_cnt and cur_key < best_key
                ):
                    best_key, best_cnt = cur_key, cur_cnt
            words = (1, mn, cmin, mx, cmax, best_key, best_cnt)
        else:
            words = (0, 0, 0, 0, 0, 0, 0)
        inbox = yield {dst: Packet(words) for dst in range(n)}

        boundary: Dict[int, int] = {}
        best_key, best_cnt = 0, 0
        for src in sorted(inbox):
            has, mn, cmin, mx, cmax, bkey, bcnt = inbox[src].words
            if not has:
                continue
            if mn == mx:
                boundary[mn] = boundary.get(mn, 0) + cmin
            else:
                boundary[mn] = boundary.get(mn, 0) + cmin
                boundary[mx] = boundary.get(mx, 0) + cmax
            if bcnt > best_cnt or (bcnt == best_cnt and bkey < best_key):
                best_key, best_cnt = bkey, bcnt
        for key, cnt in boundary.items():
            if cnt > best_cnt or (cnt == best_cnt and key < best_key):
                best_key, best_cnt = key, cnt
        return (best_key, best_cnt)

    return program


def mode(instance: SortInstance, **kwargs) -> RunResult:
    """Constant-round mode; outputs are (key, multiplicity) at every node."""
    clique = CongestedClique(instance.n, capacity=SORT_CAPACITY, **kwargs)
    return clique.run(mode_program(instance))
