"""Problem 4.1 — distributed sorting — instances, key encoding, verification.

Each node holds (up to) ``n`` keys; node ``i`` must end up with the keys of
global ranks ``i*n .. (i+1)*n - 1`` (0-based).  The paper assumes w.l.o.g.
distinct keys, ordering duplicates "lexicographically by key, node whose
input contains the key, and a local enumeration" (footnote 5).  We realize
that footnote concretely: a *tagged key* packs ``(key, source, seq)`` into
one word, so duplicate raw keys become distinct tagged keys whose order is
exactly the footnote's lexicographic order.

Encodings (all polynomially bounded in ``n``):

* raw keys: ``0 <= key < key_universe`` (default ``n**2``, max ``n**3``);
* tagged key: ``key * n^2 + source * n_pad + seq`` with ``n_pad`` covering
  the per-node key count;
* key pair: two tagged keys packed into one word for the paper's
  "bundle two keys in one message" steps.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core.errors import InvalidInstance, VerificationError


@dataclass(frozen=True)
class KeyCodec:
    """Tagging/packing scheme shared by all nodes of one sort run."""

    n: int
    max_keys_per_node: int
    key_universe: int

    def __post_init__(self) -> None:
        if self.key_universe > self.n ** 3 + 1:
            raise InvalidInstance(
                f"key universe {self.key_universe} exceeds n^3; keys must be "
                "O(log n) bits"
            )

    @property
    def seq_base(self) -> int:
        return max(self.max_keys_per_node, 1)

    def tag(self, key: int, source: int, seq: int) -> int:
        """Make a raw key distinct: lexicographic (key, source, seq)."""
        if not 0 <= key < self.key_universe:
            raise InvalidInstance(
                f"key {key} outside universe [0, {self.key_universe})"
            )
        return (key * self.n + source) * self.seq_base + seq

    def untag(self, tagged: int) -> Tuple[int, int, int]:
        """Inverse of :meth:`tag`: returns ``(key, source, seq)``."""
        rest, seq = divmod(tagged, self.seq_base)
        key, source = divmod(rest, self.n)
        return key, source, seq

    def raw(self, tagged: int) -> int:
        return tagged // (self.n * self.seq_base)

    @property
    def sentinel(self) -> int:
        """Padding value strictly above every tagged key."""
        return self.key_universe * self.n * self.seq_base

    @property
    def pack_base(self) -> int:
        return self.sentinel + 1

    def pack2(self, a: int, b: int) -> int:
        """Pack two tagged keys (or sentinels) into one word."""
        return a * self.pack_base + b

    def unpack2(self, word: int) -> Tuple[int, int]:
        return divmod(word, self.pack_base)


class SortInstance:
    """A validated instance of Problem 4.1.

    Args:
        n: number of nodes.
        keys_by_node: raw keys per node; exactly ``n`` each when ``exact``.
        key_universe: exclusive upper bound on raw keys (default ``n**2``).
    """

    def __init__(
        self,
        n: int,
        keys_by_node: Sequence[Sequence[int]],
        exact: bool = True,
        key_universe: Optional[int] = None,
    ) -> None:
        if len(keys_by_node) != n:
            raise InvalidInstance(f"{len(keys_by_node)} key lists for n={n}")
        self.n = n
        self.keys_by_node: List[List[int]] = [list(ks) for ks in keys_by_node]
        self.exact = exact
        self.key_universe = key_universe if key_universe else max(n * n, 4)
        max_keys = max((len(ks) for ks in self.keys_by_node), default=0)
        for i, ks in enumerate(self.keys_by_node):
            if exact and len(ks) != n:
                raise InvalidInstance(
                    f"node {i} holds {len(ks)} keys, expected {n}"
                )
            for k in ks:
                if not 0 <= k < self.key_universe:
                    raise InvalidInstance(
                        f"key {k} at node {i} outside universe "
                        f"[0, {self.key_universe})"
                    )
        self.codec = KeyCodec(
            n=n,
            max_keys_per_node=max(max_keys, 1),
            key_universe=self.key_universe,
        )

    def tagged_by_node(self) -> List[List[int]]:
        """Each node's keys as sorted tagged keys."""
        return [
            sorted(
                self.codec.tag(k, i, j) for j, k in enumerate(ks)
            )
            for i, ks in enumerate(self.keys_by_node)
        ]

    def total_keys(self) -> int:
        return sum(len(ks) for ks in self.keys_by_node)

    def global_sorted_tagged(self) -> List[int]:
        """Reference answer: all tagged keys in increasing order."""
        out: List[int] = []
        for row in self.tagged_by_node():
            out.extend(row)
        out.sort()
        return out

    def expected_batches(self) -> List[List[int]]:
        """Reference answer per node: the ``i``-th batch of tagged keys."""
        ordered = self.global_sorted_tagged()
        total = len(ordered)
        base, extra = divmod(total, self.n)
        batches: List[List[int]] = []
        pos = 0
        for i in range(self.n):
            size = base + (1 if i < extra else 0)
            batches.append(ordered[pos : pos + size])
            pos += size
        return batches


def uniform_sort_instance(
    n: int, seed: int = 0, key_universe: Optional[int] = None
) -> SortInstance:
    """Random keys drawn uniformly from the universe (duplicates possible)."""
    rng = random.Random(seed)
    universe = key_universe if key_universe else max(n * n, 4)
    keys = [[rng.randrange(universe) for _ in range(n)] for _ in range(n)]
    return SortInstance(n, keys, key_universe=universe)


def duplicate_heavy_instance(
    n: int, distinct: int = 4, seed: int = 0
) -> SortInstance:
    """Only ``distinct`` raw values — exercises footnote-5 tie-breaking."""
    rng = random.Random(seed)
    keys = [
        [rng.randrange(distinct) for _ in range(n)] for _ in range(n)
    ]
    return SortInstance(n, keys, key_universe=max(distinct, 4))


def presorted_instance(n: int) -> SortInstance:
    """Globally sorted placement: node i holds keys i*n..i*n+n-1."""
    keys = [[i * n + j for j in range(n)] for i in range(n)]
    return SortInstance(n, keys)


def reversed_instance(n: int) -> SortInstance:
    """Anti-sorted placement: node i holds the (n-1-i)-th batch, reversed."""
    keys = [
        [(n - 1 - i) * n + (n - 1 - j) for j in range(n)] for i in range(n)
    ]
    return SortInstance(n, keys)


def verify_sorted_batches(
    instance: SortInstance, outputs: Sequence[Sequence[int]]
) -> None:
    """Check each node ended with exactly its batch of tagged keys, sorted."""
    expected = instance.expected_batches()
    for i in range(instance.n):
        got = list(outputs[i])
        if got != expected[i]:
            raise VerificationError(
                f"node {i}: batch mismatch (got {len(got)} keys, "
                f"expected {len(expected[i])}; first diff at "
                f"{next((j for j, (a, b) in enumerate(zip(got, expected[i])) if a != b), 'len')})"
            )


def verify_indices(
    instance: SortInstance, index_outputs: Sequence[dict]
) -> None:
    """Check the Corollary 4.6 variant: each node knows, for each of its
    input keys, the key's index in the *deduplicated* global order."""
    all_raw = sorted(
        {k for ks in instance.keys_by_node for k in ks}
    )
    rank = {k: i for i, k in enumerate(all_raw)}
    for i, ks in enumerate(instance.keys_by_node):
        got = index_outputs[i]
        for j, k in enumerate(ks):
            if got.get((k, j)) != rank[k]:
                raise VerificationError(
                    f"node {i} key {k} (seq {j}): index {got.get((k, j))} "
                    f"!= expected {rank[k]}"
                )
