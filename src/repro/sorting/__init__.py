"""Sorting on the congested clique (paper Section 4 + baselines)."""

from .lenzen_sort import ROUNDS_SORT, lenzen_sort_program, sort_lenzen
from .problem import (
    KeyCodec,
    SortInstance,
    duplicate_heavy_instance,
    presorted_instance,
    reversed_instance,
    uniform_sort_instance,
    verify_indices,
    verify_sorted_batches,
)
from .subset_sort import SubsetSortResult, subset_sort

__all__ = [
    "SortInstance",
    "KeyCodec",
    "uniform_sort_instance",
    "duplicate_heavy_instance",
    "presorted_instance",
    "reversed_instance",
    "verify_sorted_batches",
    "verify_indices",
    "subset_sort",
    "SubsetSortResult",
    "sort_lenzen",
    "lenzen_sort_program",
    "ROUNDS_SORT",
]

from .baseline import sample_sort, sample_sort_program
from .indexing import ROUNDS_INDEXING, index_keys, indexing_program
from .selection import (
    ROUNDS_MODE,
    ROUNDS_SELECTION,
    median,
    mode,
    select_kth,
)

__all__ += [
    "sample_sort",
    "sample_sort_program",
    "index_keys",
    "indexing_program",
    "ROUNDS_INDEXING",
    "select_kth",
    "median",
    "mode",
    "ROUNDS_SELECTION",
    "ROUNDS_MODE",
]
