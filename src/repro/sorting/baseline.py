"""Baseline: randomized sample sort (stand-in for Patt-Shamir & Teplitsky).

The paper cites a randomized constant-round sorting algorithm [12] and notes
randomized solutions are "about 2 times as fast".  This baseline captures
that shape:

1. every node broadcasts one random sample key (1 round); the sorted pool of
   ``n`` samples yields ``sqrt(n)-1`` splitters known to everyone;
2. every key is sent directly to a uniformly random member of its bucket's
   group, queues draining with up to ``KEYS_PER_PACKET`` keys per packet and
   a piggybacked remaining-work counter for global termination (a few
   rounds w.h.p. — randomized balance instead of deterministic coloring);
3. each group sorts its bucket with the deterministic subset sort (8
   rounds), piggybacking final counts;
4. a 2-round Corollary 3.3 exchange rebalances to exact batches.

Total: typically ~17-19 rounds versus the deterministic 37 — matching the
paper's remark — but only with high probability: an unlucky sample skews the
buckets and the round count grows.
"""

from __future__ import annotations

import bisect
import random
from typing import Callable, Dict, Generator, List

from ..core.context import NodeContext
from ..core.engine import EngineSpec
from ..core.errors import ProtocolError
from ..core.message import Packet
from ..core.network import CongestedClique, RunResult
from ..core.protocol import attach_piggyback, strip_piggyback
from ..core.topology import square_partition
from ..routing.primitives import route_known
from .lenzen_sort import SORT_CAPACITY, _global_overlap_demand
from .problem import SortInstance
from .subset_sort import KEYS_PER_ITEM, _announce_sentinel, subset_sort

KEYS_PER_PACKET = 6


def sample_sort_program(
    instance: SortInstance, seed: int = 0
) -> Callable[[NodeContext], Generator]:
    """Randomized sample sort; see module docstring."""
    n = instance.n
    part = square_partition(n)
    s = part.group_size
    groups = tuple(tuple(part.members(g)) for g in part.groups())
    tagged = instance.tagged_by_node()

    def program(ctx: NodeContext) -> Generator:
        me = ctx.node_id
        g = part.group_of(me)
        r = part.rank_in_group(me)
        rng = random.Random((seed << 20) | me)
        keys = list(tagged[me])
        sentinel = _announce_sentinel(ctx)

        # ---- 1 round: broadcast one random sample. -------------------------
        ctx.enter_phase("ssort.sample")
        sample = rng.choice(keys) if keys else sentinel
        inbox = yield {dst: Packet((sample,)) for dst in range(n)}
        pool = sorted(p.words[0] for p in inbox.values())
        splitters = pool[s - 1 :: s][: s - 1]
        splitters.extend([sentinel] * (s - 1 - len(splitters)))

        # ---- randomized scatter: each key to a random member of its
        # bucket's group; queues drain with global piggyback termination. ---
        ctx.enter_phase("ssort.scatter")
        queues: Dict[int, List[int]] = {}
        for k in keys:
            j = bisect.bisect_left(splitters, k)
            dest = part.member(j, rng.randrange(s))
            queues.setdefault(dest, []).append(k)
        bucket_keys: List[int] = []
        while True:
            outbox = {}
            sent = 0
            for dest in list(queues):
                chunk = queues[dest][:KEYS_PER_PACKET]
                del queues[dest][:KEYS_PER_PACKET]
                outbox[dest] = Packet(tuple(chunk))
                sent += len(chunk)
                if not queues[dest]:
                    del queues[dest]
            remaining = sent + sum(len(q) for q in queues.values())
            inbox = yield attach_piggyback(outbox, remaining, n)
            payloads, reports = strip_piggyback(inbox)
            for src in sorted(payloads):
                bucket_keys.extend(payloads[src].words)
            if sum(reports.values()) == 0:
                break

        # ---- 8 rounds: deterministic subset sort inside each group. --------
        ctx.enter_phase("ssort.bucket")
        res = yield from subset_sort(
            ctx,
            groups,
            g,
            r,
            bucket_keys,
            k_max=4 * n,
            pattern_key="ssort",
            redistribute=False,
            piggyback_my_count=True,
        )
        assert res is not None
        all_counts = tuple(res.piggyback_counts.get(v, 0) for v in range(n))

        # ---- 2 rounds: exact-batch rebalance (Corollary 3.3). --------------
        ctx.enter_phase("ssort.redist")
        offsets = [0] * (n + 1)
        for v in range(n):
            offsets[v + 1] = offsets[v] + all_counts[v]
        total = offsets[n]
        base, extra = divmod(total, n)
        t_bounds = [0] * (n + 1)
        for v in range(n):
            t_bounds[v + 1] = t_bounds[v] + base + (1 if v < extra else 0)
        demand, my_items = _global_overlap_demand(
            offsets, t_bounds, res.run, me, n, sentinel
        )
        received = yield from route_known(
            ctx,
            (tuple(range(n)),),
            0,
            me,
            my_items,
            demand,
            ("ssort.rd", all_counts),
            item_width=KEYS_PER_ITEM,
        )
        batch = sorted(
            k for item in received for k in item if k != sentinel
        )
        want = t_bounds[me + 1] - t_bounds[me]
        if len(batch) != want:
            raise ProtocolError(
                f"sample sort batch {len(batch)} != target {want}"
            )
        return batch

    return program


def sample_sort(
    instance: SortInstance, seed: int = 0, engine: "EngineSpec" = None
) -> RunResult:
    """Run the randomized sample-sort baseline (reproducible via seed)."""
    clique = CongestedClique(
        instance.n, capacity=SORT_CAPACITY, engine=engine
    )
    return clique.run(sample_sort_program(instance, seed=seed))
