"""Corollary 4.6: each node learns its input keys' indices in the
*deduplicated* global order, in constant rounds.

After Algorithm 4 each node holds one contiguous run of the sorted key
sequence.  As the paper prescribes, every node then announces (i) its
smallest and largest *raw* key, (ii) the number of copies of each it holds,
and (iii) the number of distinct raw keys it holds — one broadcast round.
From these 5 words everyone computes, for every node ``v``, the number of
distinct keys preceding ``v``'s run and whether ``v``'s first key continues
the previous run's last key; that pins down the deduplicated index of every
key each node holds.  Finally Theorem 3.7 routes each (key, index) fact back
to the node whose input contained the key.

Round budget: 37 (Algorithm 4) + 1 (announce) + 16 (routing) = 54, a
constant.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, List, Tuple

from ..core.context import NodeContext
from ..core.errors import ProtocolError
from ..core.message import Packet, pack_pair, unpack_pair
from ..core.network import CongestedClique, RunResult
from ..routing.lenzen import _wire, header_base, lenzen_wire_program
from ..routing.problem import Message
from .lenzen_sort import SORT_CAPACITY, lenzen_sort_program
from .problem import SortInstance

#: Round budget: Algorithm 4 + announce + Theorem 3.7 report-back.
ROUNDS_INDEXING = 37 + 1 + 16


def indexing_program(
    instance: SortInstance,
) -> Callable[[NodeContext], Generator]:
    """Program: sort, announce run boundaries, report dedup indices back."""
    n = instance.n
    codec = instance.codec
    sort_program = lenzen_sort_program(instance)
    hbase = header_base(n, n)
    # Report-back wire table: one slot per node, filled by its own program.
    report_table: List[List] = [[] for _ in range(n)]

    def program(ctx: NodeContext) -> Generator:
        me = ctx.node_id
        batch: List[int] = yield from sort_program(ctx)

        # ---- announce round: (min_raw, cnt_min, max_raw, cnt_max, distinct)
        ctx.enter_phase("cor46.announce")
        raws = [codec.raw(t) for t in batch]
        distinct_here = len(set(raws))
        if raws:
            mn, mx = raws[0], raws[-1]
            cmin = sum(1 for r in raws if r == mn)
            cmax = sum(1 for r in raws if r == mx)
            words = (1, mn, cmin, mx, cmax, distinct_here)
        else:
            words = (0, 0, 0, 0, 0, 0)
        inbox = yield {dst: Packet(words) for dst in range(n)}
        ann: Dict[int, Tuple[int, ...]] = {
            src: tuple(pkt.words) for src, pkt in inbox.items()
        }
        if len(ann) != n:
            raise ProtocolError("missing boundary announcements")

        # ---- local: distinct keys before each node's run. -----------------
        # dist_prefix[v] = #distinct raw keys in runs 0..v-1;
        # overlap[v] = 1 iff run v starts with the same raw key run v-1
        # ended with (then that key was already counted).
        dist_prefix = [0] * (n + 1)
        overlap = [0] * n
        prev_max = None
        for v in range(n):
            has, mn, _cmin, mx, _cmax, dd = ann[v]
            if not has:
                dist_prefix[v + 1] = dist_prefix[v]
                continue
            overlap[v] = 1 if prev_max is not None and mn == prev_max else 0
            dist_prefix[v + 1] = dist_prefix[v] + dd - overlap[v]
            prev_max = mx

        # my key's dedup index = dist_prefix[me] - overlap[me] + local rank.
        local_rank: Dict[int, int] = {}
        rank = -1
        last = None
        for r in raws:
            if r != last:
                rank += 1
                last = r
            local_rank[r] = rank
        index_of = {
            r: dist_prefix[me] - overlap[me] + local_rank[r]
            for r in set(raws)
        }

        # ---- report back via Theorem 3.7 (16 rounds). ---------------------
        # For each held tagged key, send (seq, index) to the key's source.
        ctx.enter_phase("cor46.report")
        wire_msgs = []
        for i, t in enumerate(batch):
            raw, source, seq = codec.untag(t)
            payload = pack_pair(seq, index_of[raw], max(n * n, 2))
            wire_msgs.append(
                _wire(Message(me, source, i, payload), hbase)
            )
        report_table[me] = sorted(wire_msgs)
        router = lenzen_wire_program(
            n, report_table, load_bound=n, strict=False
        )
        delivered = yield from router(ctx)

        result: Dict[Tuple[int, int], int] = {}
        my_keys = instance.keys_by_node[me]
        for msg in delivered:
            seq, idx = unpack_pair(msg.payload, max(n * n, 2))
            result[(my_keys[seq], seq)] = idx
        if len(result) != len(my_keys):
            raise ProtocolError(
                f"node {me} got {len(result)} index reports for "
                f"{len(my_keys)} keys"
            )
        return result

    return program


def index_keys(instance: SortInstance, **kwargs) -> RunResult:
    """Run the Corollary 4.6 variant; outputs map (key, seq) -> dedup index."""
    clique = CongestedClique(instance.n, capacity=SORT_CAPACITY, **kwargs)
    return clique.run(indexing_program(instance))
