"""Bipartite multigraphs with edge identity.

The paper's communication schedules are edge colorings of bipartite
multigraphs in which *each message is one edge* (Theorem 3.2 / Corollary
3.3).  Edge identity therefore matters: colorings are reported per edge
index, and parallel edges are distinct objects.

Left vertices are ``0..left_size-1``, right vertices ``0..right_size-1``;
the two sides are separate namespaces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..core.errors import ColoringError

Edge = Tuple[int, int]


@dataclass
class BipartiteMultigraph:
    """A bipartite multigraph given as an ordered list of (left, right) edges."""

    left_size: int
    right_size: int
    edges: List[Edge] = field(default_factory=list)

    def __post_init__(self) -> None:
        for u, v in self.edges:
            self._check_edge(u, v)

    def _check_edge(self, u: int, v: int) -> None:
        if not 0 <= u < self.left_size:
            raise ValueError(f"left vertex {u} out of range")
        if not 0 <= v < self.right_size:
            raise ValueError(f"right vertex {v} out of range")

    def add_edge(self, u: int, v: int) -> int:
        """Append an edge; returns its index."""
        self._check_edge(u, v)
        self.edges.append((u, v))
        return len(self.edges) - 1

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def left_degrees(self) -> List[int]:
        deg = [0] * self.left_size
        for u, _ in self.edges:
            deg[u] += 1
        return deg

    def right_degrees(self) -> List[int]:
        deg = [0] * self.right_size
        for _, v in self.edges:
            deg[v] += 1
        return deg

    def max_degree(self) -> int:
        degs = self.left_degrees() + self.right_degrees()
        return max(degs) if degs else 0

    def is_regular(self) -> bool:
        """True iff every left and every right vertex has the same degree."""
        ld, rd = self.left_degrees(), self.right_degrees()
        all_degs = ld + rd
        return len(set(all_degs)) <= 1

    def regular_degree(self) -> int:
        """The common degree of a regular graph (raises if not regular)."""
        if not self.is_regular():
            raise ColoringError("graph is not regular")
        return self.left_degrees()[0] if self.left_size else 0

    def adjacency(self) -> Tuple[List[List[Tuple[int, int]]], List[List[Tuple[int, int]]]]:
        """Adjacency lists ``(left_adj, right_adj)`` of (neighbor, edge_idx)."""
        left_adj: List[List[Tuple[int, int]]] = [[] for _ in range(self.left_size)]
        right_adj: List[List[Tuple[int, int]]] = [[] for _ in range(self.right_size)]
        for idx, (u, v) in enumerate(self.edges):
            left_adj[u].append((v, idx))
            right_adj[v].append((u, idx))
        return left_adj, right_adj

    def subgraph(self, edge_indices: Sequence[int]) -> Tuple["BipartiteMultigraph", List[int]]:
        """Graph induced by the given edge indices.

        Returns ``(graph, back_map)`` where ``back_map[i]`` is the index in
        ``self.edges`` of the subgraph's ``i``-th edge.
        """
        back = list(edge_indices)
        sub = BipartiteMultigraph(
            self.left_size, self.right_size, [self.edges[i] for i in back]
        )
        return sub, back

    def canonical_key(self) -> Tuple:
        """Hashable identity for shared-computation caching."""
        return (self.left_size, self.right_size, tuple(self.edges))


def from_demand_matrix(demand: Sequence[Sequence[int]]) -> BipartiteMultigraph:
    """Build a multigraph from a demand matrix.

    ``demand[u][v]`` parallel edges are created from left ``u`` to right
    ``v``, in row-major order — the canonical encoding of "node u holds k
    messages for destination v" used by the routing primitives.
    """
    left = len(demand)
    right = len(demand[0]) if left else 0
    g = BipartiteMultigraph(left, right)
    for u, row in enumerate(demand):
        if len(row) != right:
            raise ValueError("demand matrix is ragged")
        for v, count in enumerate(row):
            if count < 0:
                raise ValueError("negative demand")
            for _ in range(count):
                g.add_edge(u, v)
    return g


def pad_to_regular(
    graph: BipartiteMultigraph, degree: int = None
) -> Tuple[BipartiteMultigraph, int]:
    """Add dummy edges so the graph becomes ``degree``-regular.

    Only defined for equal side sizes (the paper always pads sender/receiver
    role graphs, which are square).  The padding is deterministic: deficient
    left vertices are paired with deficient right vertices greedily in
    increasing id order, so every node computing this from common knowledge
    obtains the identical padded graph.

    Returns ``(padded_graph, num_real_edges)``; real edges keep their indices
    ``0..num_real_edges-1`` and dummies occupy the tail.
    """
    if graph.left_size != graph.right_size:
        raise ColoringError("padding requires equal side sizes")
    target = degree if degree is not None else graph.max_degree()
    ld, rd = graph.left_degrees(), graph.right_degrees()
    if any(d > target for d in ld + rd):
        raise ColoringError(f"target degree {target} below existing max degree")

    padded = BipartiteMultigraph(
        graph.left_size, graph.right_size, list(graph.edges)
    )
    num_real = graph.num_edges
    left_deficit = [(u, target - d) for u, d in enumerate(ld) if target > d]
    right_deficit = [(v, target - d) for v, d in enumerate(rd) if target > d]
    li = ri = 0
    while li < len(left_deficit) and ri < len(right_deficit):
        u, du = left_deficit[li]
        v, dv = right_deficit[ri]
        take = min(du, dv)
        for _ in range(take):
            padded.add_edge(u, v)
        du -= take
        dv -= take
        if du == 0:
            li += 1
        else:
            left_deficit[li] = (u, du)
        if dv == 0:
            ri += 1
        else:
            right_deficit[ri] = (v, dv)
    if li < len(left_deficit) or ri < len(right_deficit):
        raise ColoringError(
            "left/right padding deficits disagree; sides have unequal totals"
        )
    return padded, num_real


def degree_histogram(graph: BipartiteMultigraph) -> Dict[int, int]:
    """How many vertices (both sides) have each degree — for diagnostics."""
    hist: Dict[int, int] = {}
    for d in graph.left_degrees() + graph.right_degrees():
        hist[d] = hist.get(d, 0) + 1
    return hist
