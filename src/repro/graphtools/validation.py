"""Verification helpers for colorings and matchings (test/bench support)."""

from __future__ import annotations

from typing import List, Sequence

from ..core.errors import ColoringError
from .multigraph import BipartiteMultigraph


def verify_proper_coloring(
    graph: BipartiteMultigraph, colors: Sequence[int]
) -> None:
    """Assert that ``colors`` is a proper edge coloring of ``graph``.

    Proper: no two edges sharing a left or right endpoint have equal color.
    Raises :class:`ColoringError` on violation.
    """
    if len(colors) != graph.num_edges:
        raise ColoringError(
            f"{len(colors)} colors for {graph.num_edges} edges"
        )
    seen_left = set()
    seen_right = set()
    for (u, v), c in zip(graph.edges, colors):
        if (u, c) in seen_left:
            raise ColoringError(f"color {c} repeated at left vertex {u}")
        if (v, c) in seen_right:
            raise ColoringError(f"color {c} repeated at right vertex {v}")
        seen_left.add((u, c))
        seen_right.add((v, c))


def verify_exact_coloring(
    graph: BipartiteMultigraph, colors: Sequence[int], degree: int
) -> None:
    """Assert a proper coloring using colors ``0..degree-1`` only.

    For a ``degree``-regular graph this means every color class is a perfect
    matching — Koenig's theorem realized.
    """
    verify_proper_coloring(graph, colors)
    for c in colors:
        if not 0 <= c < degree:
            raise ColoringError(f"color {c} outside 0..{degree - 1}")


def verify_matching(graph: BipartiteMultigraph, edge_indices: Sequence[int]) -> None:
    """Assert the edge set is a matching (no shared endpoints)."""
    lefts = set()
    rights = set()
    for i in edge_indices:
        u, v = graph.edges[i]
        if u in lefts:
            raise ColoringError(f"matching repeats left vertex {u}")
        if v in rights:
            raise ColoringError(f"matching repeats right vertex {v}")
        lefts.add(u)
        rights.add(v)


def color_classes(colors: Sequence[int]) -> List[List[int]]:
    """Edge indices grouped by color, index ``c`` holding class ``c``."""
    if not colors:
        return []
    classes: List[List[int]] = [[] for _ in range(max(colors) + 1)]
    for idx, c in enumerate(colors):
        classes[c].append(idx)
    return classes
