"""Edge colorings of bipartite multigraphs.

Two algorithms back the paper's communication scheduling:

* :func:`koenig_edge_coloring` — an *exact* Delta-coloring of a regular
  bipartite multigraph (Koenig's line coloring theorem, the paper's Theorem
  3.2), computed by the classical recursion: even degree -> Euler partition
  into two half-degree graphs; odd degree -> extract one perfect matching and
  recurse on the even remainder.  The paper cites Cole–Ost–Schirra [1] for an
  ``O(|E| log Delta)`` implementation; we use this simpler polynomial scheme
  (see DESIGN.md "Simulation substitutions") — any deterministic proper
  coloring computed identically by all nodes satisfies the algorithms.
* :func:`greedy_edge_coloring` — the ``<= 2*Delta - 1`` color greedy coloring
  of the paper's footnote 3, used by the Section 5 computation-efficient
  variant.

Both are pure functions of the input graph and deterministic, so simulated
nodes agree on the schedule without communication.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.errors import ColoringError
from .euler import euler_split
from .matching import perfect_matching
from .multigraph import BipartiteMultigraph, pad_to_regular


def koenig_edge_coloring(graph: BipartiteMultigraph) -> List[int]:
    """Color a d-regular bipartite multigraph with exactly ``d`` colors.

    Returns ``colors[i]`` in ``0..d-1`` for each edge index ``i`` such that no
    two edges sharing an endpoint receive the same color (each color class is
    a perfect matching).

    Raises:
        ColoringError: if the graph is not regular.
    """
    if graph.left_size != graph.right_size:
        raise ColoringError("Koenig coloring requires equal side sizes")
    if not graph.is_regular():
        raise ColoringError(
            "Koenig coloring requires a regular graph; pad first "
            "(see pad_to_regular)"
        )
    d = graph.regular_degree()
    colors: List[Optional[int]] = [None] * graph.num_edges
    _color_regular(graph, list(range(graph.num_edges)), d, 0, colors)
    out: List[int] = []
    for c in colors:
        if c is None:
            raise ColoringError("internal error: some edges left uncolored")
        out.append(c)
    return out


def _color_regular(
    graph: BipartiteMultigraph,
    back: List[int],
    d: int,
    base_color: int,
    colors: List[Optional[int]],
) -> None:
    """Assign colors ``base_color .. base_color + d - 1`` to ``graph``.

    ``back[i]`` maps the i-th edge of ``graph`` to its index in the original
    graph whose ``colors`` array is being filled.
    """
    if d == 0 or graph.num_edges == 0:
        return
    if d == 1:
        for i in range(graph.num_edges):
            colors[back[i]] = base_color
        return
    if d % 2 == 1:
        matching = perfect_matching(graph)
        matched = set(matching)
        for i in matching:
            colors[back[i]] = base_color
        rest = [i for i in range(graph.num_edges) if i not in matched]
        sub, sub_back = graph.subgraph(rest)
        _color_regular(
            sub, [back[i] for i in sub_back], d - 1, base_color + 1, colors
        )
        return
    half = d // 2
    part_a, part_b = euler_split(graph)
    sub_a, back_a = graph.subgraph(part_a)
    sub_b, back_b = graph.subgraph(part_b)
    _color_regular(sub_a, [back[i] for i in back_a], half, base_color, colors)
    _color_regular(
        sub_b, [back[i] for i in back_b], half, base_color + half, colors
    )


def koenig_coloring_padded(
    graph: BipartiteMultigraph, degree: Optional[int] = None
) -> List[int]:
    """Koenig-color an irregular graph by padding it to regular first.

    Dummy padding edges are colored too but discarded; only colors of the
    real edges are returned.  The number of colors is ``degree`` (default:
    the max degree of the input).
    """
    padded, num_real = pad_to_regular(graph, degree)
    full = koenig_edge_coloring(padded)
    return full[:num_real]


def greedy_edge_coloring(graph: BipartiteMultigraph) -> List[int]:
    """Greedy proper edge coloring with at most ``2*Delta - 1`` colors.

    Edges are processed in index order; each takes the smallest color unused
    at both endpoints.  This is the cheap coloring the paper's footnote 3
    allows ("a simple greedy coloring of the line graph results in at most
    2d-1 matchings") and Section 5 relies on for O(n log n) local work.
    """
    left_used: List[set] = [set() for _ in range(graph.left_size)]
    right_used: List[set] = [set() for _ in range(graph.right_size)]
    colors: List[int] = []
    for u, v in graph.edges:
        c = 0
        used_u, used_v = left_used[u], right_used[v]
        while c in used_u or c in used_v:
            c += 1
        used_u.add(c)
        used_v.add(c)
        colors.append(c)
    return colors


def num_colors(colors: List[int]) -> int:
    """Number of distinct colors actually used."""
    return len(set(colors)) if colors else 0
