"""Deterministic perfect matchings in bipartite multigraphs (Hopcroft–Karp).

Koenig coloring of an odd-degree-regular multigraph extracts one perfect
matching (which exists by Hall's theorem for any d-regular bipartite
multigraph) and recurses on the even remainder.  Hopcroft–Karp runs on the
underlying simple graph; a representative edge index (the smallest) is
reported per matched pair so parallel edges stay distinguishable.

Determinism: vertices and neighbors are always scanned in increasing index
order, so every simulated node computes the same matching from the same
graph.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple

from ..core.errors import ColoringError
from .multigraph import BipartiteMultigraph

INF = float("inf")


def maximum_matching(graph: BipartiteMultigraph) -> List[int]:
    """Maximum matching as a list of edge indices (one per matched pair)."""
    # Underlying simple adjacency with representative (smallest) edge index.
    rep: Dict[Tuple[int, int], int] = {}
    for idx, (u, v) in enumerate(graph.edges):
        if (u, v) not in rep:
            rep[(u, v)] = idx
    simple_adj: List[List[int]] = [[] for _ in range(graph.left_size)]
    for (u, v) in sorted(rep):
        simple_adj[u].append(v)

    match_left: List[Optional[int]] = [None] * graph.left_size
    match_right: List[Optional[int]] = [None] * graph.right_size

    # Layered distances from the latest BFS phase, shared with dfs below.
    dist: List[float] = [INF] * graph.left_size

    def bfs() -> bool:
        nonlocal dist
        dist = [INF] * graph.left_size
        queue: deque = deque()
        for u in range(graph.left_size):
            if match_left[u] is None:
                dist[u] = 0
                queue.append(u)
        found_augmenting = False
        while queue:
            u = queue.popleft()
            for v in simple_adj[u]:
                w = match_right[v]
                if w is None:
                    found_augmenting = True
                elif dist[w] is INF:
                    dist[w] = dist[u] + 1
                    queue.append(w)
        return found_augmenting

    def dfs(u: int) -> bool:
        for v in simple_adj[u]:
            w = match_right[v]
            if w is None or (dist[w] == dist[u] + 1 and dfs(w)):
                match_left[u] = v
                match_right[v] = u
                return True
        dist[u] = INF
        return False

    while bfs():
        for u in range(graph.left_size):
            if match_left[u] is None:
                dfs(u)

    return [
        rep[(u, v)]
        for u, v in (
            (u, match_left[u])
            for u in range(graph.left_size)
            if match_left[u] is not None
        )
    ]


def perfect_matching(graph: BipartiteMultigraph) -> List[int]:
    """A perfect matching of a regular bipartite multigraph.

    Raises :class:`ColoringError` if the matching found is not perfect —
    which cannot happen on a regular input (Hall's theorem) and therefore
    signals a corrupt graph.
    """
    if graph.left_size != graph.right_size:
        raise ColoringError("perfect matching requires equal side sizes")
    matching = maximum_matching(graph)
    if len(matching) != graph.left_size:
        raise ColoringError(
            f"no perfect matching: matched {len(matching)} of "
            f"{graph.left_size} vertices (graph not regular?)"
        )
    return sorted(matching)
