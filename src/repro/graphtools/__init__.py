"""Bipartite-multigraph toolkit backing the paper's Theorem 3.2 machinery."""

from .coloring import (
    greedy_edge_coloring,
    koenig_coloring_padded,
    koenig_edge_coloring,
    num_colors,
)
from .euler import euler_split
from .matching import maximum_matching, perfect_matching
from .multigraph import (
    BipartiteMultigraph,
    degree_histogram,
    from_demand_matrix,
    pad_to_regular,
)
from .validation import (
    color_classes,
    verify_exact_coloring,
    verify_matching,
    verify_proper_coloring,
)

__all__ = [
    "BipartiteMultigraph",
    "from_demand_matrix",
    "pad_to_regular",
    "degree_histogram",
    "euler_split",
    "maximum_matching",
    "perfect_matching",
    "koenig_edge_coloring",
    "koenig_coloring_padded",
    "greedy_edge_coloring",
    "num_colors",
    "verify_proper_coloring",
    "verify_exact_coloring",
    "verify_matching",
    "color_classes",
]
