"""Euler partition of even-degree bipartite multigraphs.

The classic step in Koenig edge-coloring: if every vertex of a bipartite
multigraph has even degree, its edge set splits into two subgraphs in which
every vertex has exactly half its original degree.  The split walks an Euler
circuit of each connected component and assigns edges alternately to the two
halves; bipartite circuits have even length, so the alternation closes
cleanly and each visit to a vertex contributes one edge to each half.

Everything is deterministic (vertices and edges processed in index order) so
all simulated nodes derive identical splits from common knowledge.
"""

from __future__ import annotations

from typing import List, Tuple

from ..core.errors import ColoringError
from .multigraph import BipartiteMultigraph


def euler_split(graph: BipartiteMultigraph) -> Tuple[List[int], List[int]]:
    """Split an all-even-degree multigraph into two half-degree edge sets.

    Returns two lists of edge indices.  Raises :class:`ColoringError` if any
    vertex has odd degree.
    """
    for d in graph.left_degrees() + graph.right_degrees():
        if d % 2 != 0:
            raise ColoringError("euler_split requires all degrees even")

    # Unified vertex namespace: left u -> u, right v -> left_size + v.
    offset = graph.left_size
    num_vertices = graph.left_size + graph.right_size
    adj: List[List[Tuple[int, int]]] = [[] for _ in range(num_vertices)]
    for idx, (u, v) in enumerate(graph.edges):
        adj[u].append((offset + v, idx))
        adj[offset + v].append((u, idx))

    used = [False] * graph.num_edges
    # Pointers into adjacency lists so each edge endpoint is scanned once.
    ptr = [0] * num_vertices
    half_a: List[int] = []
    half_b: List[int] = []

    for start in range(num_vertices):
        while ptr[start] < len(adj[start]):
            # Hierholzer: grow a circuit from `start`, splicing sub-circuits.
            circuit_edges = _trace_circuit(start, adj, used, ptr)
            if not circuit_edges:
                break
            # Bipartite circuits have even length; alternate the halves.
            if len(circuit_edges) % 2 != 0:
                raise ColoringError(
                    "odd circuit in bipartite multigraph (corrupt input)"
                )
            for i, edge_idx in enumerate(circuit_edges):
                (half_a if i % 2 == 0 else half_b).append(edge_idx)
    return half_a, half_b


def _trace_circuit(
    start: int,
    adj: List[List[Tuple[int, int]]],
    used: List[bool],
    ptr: List[int],
) -> List[int]:
    """Iterative Hierholzer circuit starting (and ending) at ``start``.

    Returns edge indices in traversal order.  All vertices have even degree,
    so every walk that leaves a vertex can also re-enter it and the trace
    always closes into a circuit.
    """
    stack: List[int] = [start]
    # Edge used to *enter* the vertex at the same stack position (-1 = none).
    edge_stack: List[int] = [-1]
    circuit: List[int] = []

    while stack:
        v = stack[-1]
        advanced = False
        while ptr[v] < len(adj[v]):
            to, edge_idx = adj[v][ptr[v]]
            if used[edge_idx]:
                ptr[v] += 1
                continue
            used[edge_idx] = True
            ptr[v] += 1
            stack.append(to)
            edge_stack.append(edge_idx)
            advanced = True
            break
        if not advanced:
            stack.pop()
            entering = edge_stack.pop()
            if entering >= 0:
                circuit.append(entering)
    # Hierholzer emits edges in reverse traversal order; orientation does not
    # matter for alternation, but reverse for determinism of the output.
    circuit.reverse()
    return circuit
