"""Theoretical bounds and reporting helpers for the experiment harness."""

from .bounds import (
    KNOWN_PATTERN_ROUNDS,
    ROUTING_OPTIMIZED_ROUNDS,
    ROUTING_PHASES,
    ROUTING_ROUNDS,
    SMALL_KEY_ROUNDS,
    SORTING_PHASES,
    SORTING_ROUNDS,
    SUBSET_SORT_ROUNDS,
    UNKNOWN_PATTERN_ROUNDS,
    naive_routing_rounds,
    subset_sort_bucket_bound,
)
from .report import check_bound, render_table

__all__ = [
    "ROUTING_ROUNDS",
    "ROUTING_OPTIMIZED_ROUNDS",
    "SORTING_ROUNDS",
    "SUBSET_SORT_ROUNDS",
    "KNOWN_PATTERN_ROUNDS",
    "UNKNOWN_PATTERN_ROUNDS",
    "SMALL_KEY_ROUNDS",
    "ROUTING_PHASES",
    "SORTING_PHASES",
    "naive_routing_rounds",
    "subset_sort_bucket_bound",
    "render_table",
    "check_bound",
]
