"""Plain-text table rendering for benchmark output (EXPERIMENTS.md rows)."""

from __future__ import annotations

from typing import List, Sequence


def render_table(
    title: str, headers: Sequence[str], rows: Sequence[Sequence]
) -> str:
    """ASCII table with a title line — the benches print these."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max([len(h)] + [len(r[i]) for r in cells if i < len(r)])
        for i, h in enumerate(headers)
    ]

    def fmt(row: Sequence[str]) -> str:
        return " | ".join(c.ljust(w) for c, w in zip(row, widths))

    sep = "-+-".join("-" * w for w in widths)
    lines: List[str] = [title, fmt(list(headers)), sep]
    lines.extend(fmt(r) for r in cells)
    return "\n".join(lines)


def check_bound(measured: int, bound: int, label: str) -> str:
    """One-line verdict used in bench output."""
    verdict = "OK" if measured <= bound else "EXCEEDED"
    return f"{label}: measured={measured} bound={bound} [{verdict}]"
