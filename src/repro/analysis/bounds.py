"""Closed-form round bounds from the paper, used by benchmarks and tests."""

from __future__ import annotations

from typing import Dict

#: Theorem 3.7 — deterministic routing, any n.
ROUTING_ROUNDS = 16
#: Theorem 5.4 — computation-efficient routing.
ROUTING_OPTIMIZED_ROUNDS = 12
#: Theorem 4.5 — deterministic sorting.
SORTING_ROUNDS = 37
#: Lemma 4.4 — subset sort (with Step 8).
SUBSET_SORT_ROUNDS = 10
#: Corollary 3.3 — routing with commonly known pattern.
KNOWN_PATTERN_ROUNDS = 2
#: Corollary 3.4 — routing within |W| <= sqrt(n) with unknown pattern.
UNKNOWN_PATTERN_ROUNDS = 4
#: Section 6.3 — small-key ordering.
SMALL_KEY_ROUNDS = 2

#: The paper's per-step decomposition of the 16-round router
#: (Lemma 3.6: 2+0+2+0+2+1, Corollary 3.5: 4, Step 4: 1, Corollary 3.4: 4).
ROUTING_PHASES: Dict[str, int] = {
    "alg2.step1": 2,
    "alg2.step2": 0,
    "alg2.step3": 2,
    "alg2.step4": 0,
    "alg2.step5": 2,
    "alg2.step6": 1,
    "alg1.step3": 4,
    "alg1.step4": 1,
    "alg1.step5": 4,
}

#: Theorem 4.5's decomposition: 0 + 1 + 8 + 2 + 0 + 16 + 8 + 2 = 37.
SORTING_PHASES: Dict[str, int] = {
    "step2 (scatter samples)": 1,
    "step3 (Algorithm 3 on samples)": 8,
    "step4 (announce delimiters)": 2,
    "step6 (Theorem 3.7 routing)": 16,
    "step7 (Algorithm 3 per group)": 8,
    "step8 (rebalance)": 2,
}


def naive_routing_rounds(max_edge_demand: int) -> int:
    """Naive direct routing: rounds equal the maximum per-edge demand."""
    return max_edge_demand


def subset_sort_bucket_bound(k_max: int, w: int) -> int:
    """Generalized Lemma 4.3: bucket size bound for w nodes, k_max keys.

    With sampling stride ``s = ceil(k_max/w)`` and delimiter stride ``w``,
    every bucket holds fewer than ``k_max + s*w + w`` keys (the paper's
    ``< 4n`` for ``(w, k_max) = (sqrt(n), 2n)``).
    """
    stride = max(1, -(-k_max // w))
    return k_max + stride * w + w
