"""Command-line demo: ``python -m repro [n] [--engine E] [--repeat K]``.

Runs the paper's two headline algorithms on an ``n``-node simulated clique
(default 25) and prints the measured round budgets next to the theorem
bounds.  ``--engine`` selects the round-loop driver (``reference``,
``fast``, ``fast-audit``, ``fast-unchecked``); ``--repeat`` re-runs every
algorithm K times so repeated instances warm the process-wide plan cache —
the table then reports first-run and best wall time side by side, showing
the cross-run amortization the wire data plane provides.
"""

from __future__ import annotations

import argparse
import time
from typing import List, Optional

from . import (
    route_lenzen,
    route_optimized,
    sort_lenzen,
    uniform_instance,
    uniform_sort_instance,
    verify_delivery,
    verify_sorted_batches,
)
from .analysis import render_table
from .core import available_engines, plan_cache
from .core.topology import is_perfect_square


def _timed_repeats(run, verify, repeat: int):
    """Run ``run()`` ``repeat`` times; verify once; return (result, times)."""
    times: List[float] = []
    result = None
    for _ in range(max(1, repeat)):
        t0 = time.perf_counter()
        result = run()
        times.append(time.perf_counter() - t0)
    verify(result)
    return result, times


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Demo of Lenzen (PODC 2013) routing and sorting on a simulated "
            "congested clique."
        ),
        epilog=(
            "For batched throughput over many instances, see "
            "`python -m repro.service`; for the differential scenario "
            "sweep, `python -m repro.scenarios`."
        ),
    )
    parser.add_argument(
        "n", nargs="?", type=int, default=25,
        help="number of nodes (default 25; square n unlocks all algorithms)",
    )
    parser.add_argument(
        "--engine", default=None, choices=available_engines(),
        help="execution engine (default: the fully-audited reference engine)",
    )
    parser.add_argument(
        "--repeat", type=int, default=1, metavar="K",
        help=(
            "run each algorithm K times; repeats replay cached plans "
            "(colorings, partitions, header tables) and report best time"
        ),
    )
    args = parser.parse_args(argv)
    n, engine, repeat = args.n, args.engine, args.repeat

    rows = []

    def row(label, bound, result, times):
        cells = [label, n, result.rounds, bound, "verified"]
        if repeat > 1:
            cells.append(f"{times[0] * 1e3:.1f}")
            cells.append(f"{min(times) * 1e3:.1f}")
        rows.append(cells)

    inst = uniform_instance(n, seed=0)
    res, times = _timed_repeats(
        lambda: route_lenzen(inst, engine=engine),
        lambda r: verify_delivery(inst, r.outputs),
        repeat,
    )
    row("routing (Thm 3.7)", 16, res, times)

    if is_perfect_square(n):
        opt, times = _timed_repeats(
            lambda: route_optimized(inst, engine=engine),
            lambda r: verify_delivery(inst, r.outputs),
            repeat,
        )
        row("routing (Thm 5.4)", 12, opt, times)

        sinst = uniform_sort_instance(n, seed=0)
        sres, times = _timed_repeats(
            lambda: sort_lenzen(sinst, engine=engine),
            lambda r: verify_sorted_batches(sinst, r.outputs),
            repeat,
        )
        row("sorting (Thm 4.5)", 37, sres, times)
    else:
        pad = ["-", "-"] if repeat > 1 else []
        rows.append(
            ["routing (Thm 5.4)", n, "-", 12, "needs square n"] + pad
        )
        rows.append(
            ["sorting (Thm 4.5)", n, "-", 37, "needs square n"] + pad
        )

    headers = ["algorithm", "n", "rounds", "paper", "output"]
    if repeat > 1:
        headers += ["first ms", "best ms"]
    engine_name = engine or "reference"
    print(
        render_table(
            f"Lenzen (PODC 2013) on a simulated congested clique "
            f"[engine={engine_name}, repeat={repeat}]",
            headers,
            rows,
        )
    )
    if repeat > 1:
        hits, misses, size = plan_cache().stats()
        print(
            f"plan cache: {hits} hits, {misses} misses, {size} plans "
            f"resident"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
