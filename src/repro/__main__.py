"""Command-line demo: ``python -m repro [n]``.

Runs the paper's two headline algorithms on an ``n``-node simulated clique
(default 25) and prints the measured round budgets next to the theorem
bounds.
"""

from __future__ import annotations

import sys

from . import (
    route_lenzen,
    route_optimized,
    sort_lenzen,
    uniform_instance,
    uniform_sort_instance,
    verify_delivery,
    verify_sorted_batches,
)
from .analysis import render_table
from .core.topology import is_perfect_square


def main(argv: list) -> int:
    n = int(argv[1]) if len(argv) > 1 else 25
    rows = []

    inst = uniform_instance(n, seed=0)
    res = route_lenzen(inst)
    verify_delivery(inst, res.outputs)
    rows.append(["routing (Thm 3.7)", n, res.rounds, 16, "verified"])

    if is_perfect_square(n):
        opt = route_optimized(inst)
        verify_delivery(inst, opt.outputs)
        rows.append(["routing (Thm 5.4)", n, opt.rounds, 12, "verified"])

        sinst = uniform_sort_instance(n, seed=0)
        sres = sort_lenzen(sinst)
        verify_sorted_batches(sinst, sres.outputs)
        rows.append(["sorting (Thm 4.5)", n, sres.rounds, 37, "verified"])
    else:
        rows.append(
            ["routing (Thm 5.4)", n, "-", 12, "needs square n"]
        )
        rows.append(
            ["sorting (Thm 4.5)", n, "-", 37, "needs square n"]
        )

    print(
        render_table(
            "Lenzen (PODC 2013) on a simulated congested clique",
            ["algorithm", "n", "rounds", "paper", "output"],
            rows,
        )
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
