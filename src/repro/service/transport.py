"""Zero-copy columnar IPC for the batch and stream backends.

The executor boundary used to move one pickle per object: each
:class:`~repro.core.engine.RunRequest` pickled into the ``submit()`` call,
each :class:`~repro.core.engine.RunSummary` pickled back.  Per-object
pickling is the dominant serialization cost of a saturated service — the
payloads are tiny, the per-object protocol overhead is not.  This module
replaces that path with *envelope buffers*: a whole chunk of requests (or
results) encoded as one flat columnar blob using the envelope column
primitives of :mod:`repro.core.wire`, shipped across the process boundary
either through a :mod:`multiprocessing.shared_memory` slot
(:class:`ShmTransport` — the worker reads the bytes in place, no pickle at
all for the payload) or as a single ``bytes`` argument
(:class:`PickleTransport` — one opaque byte-string pickle instead of N
object pickles).

Wire format (``MAGIC = b"RENV"``)::

    b"RENV" | u8 version | u8 kind (0=requests, 1=summaries) | u32 count
    string table: u32 n, then n * (u32 byte-length + utf-8 bytes)
    columns, in fixed field order, each with a leading flag byte
    (see repro.core.wire: COL_FULL / COL_CONST / COL_RAW)

Two deliberate asymmetries keep the envelopes small and fast:

* **Summaries do not re-ship their request.**  The dispatching side holds
  the request objects of every in-flight envelope; :func:`decode_summaries`
  rejoins them *by position*.  The nested ``RunRequest`` is the most
  expensive part of a pickled summary, and it is redundant on this path.
* **Digests ride a raw column** (:func:`~repro.core.wire.pack_raw_str_col`):
  they are unique per run, so interning them would build a string table as
  large as the data.

Crash safety: each shared-memory slot is split into a request region
(parent-written, worker-read) and a result region (worker-written,
parent-read only after the future resolves), so a ``SIGKILL`` mid-write can
tear at most bytes the parent will never read.  Slots are owned and
unlinked by the parent; :meth:`ShmArena.live_segments` exposes the
created-not-yet-unlinked set so the chaos suite can assert no segment
leaks across worker kills.  Results that outgrow their region fall back to
returning the encoded bytes through the future (pool pickling of one
``bytes`` object), and batches that find no free slot fall back to the
pickle-bytes path — the transport degrades, it never blocks.

The module also hosts :class:`AutoscalePolicy`, the pure decision rule the
streaming gateway's worker autoscaler samples against observed queue depth.
"""

from __future__ import annotations

import struct
import uuid
from concurrent.futures import CancelledError, Future
from multiprocessing import resource_tracker, shared_memory
from operator import attrgetter
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..core.engine import RunRequest, RunSummary
from ..core.wire import (
    StringTable,
    pack_byte_col,
    pack_f64_col,
    pack_i64_col,
    pack_opt_f64_col,
    pack_raw_str_col,
    read_byte_col,
    read_f64_col,
    read_i64_col,
    read_opt_f64_col,
    read_raw_str_col,
    read_str_col,
    read_string_table,
    string_lut,
)

__all__ = [
    "MAGIC",
    "ENVELOPE_VERSION",
    "encode_requests",
    "decode_requests",
    "encode_summaries",
    "decode_summaries",
    "ShmArena",
    "Slot",
    "PendingEnvelope",
    "PickleTransport",
    "ShmTransport",
    "make_transport",
    "TRANSPORTS",
    "AutoscalePolicy",
]

MAGIC = b"RENV"
ENVELOPE_VERSION = 1
_KIND_REQUESTS = 0
_KIND_SUMMARIES = 1

TRANSPORTS = ("shm", "pickle")


# -- envelope codec ----------------------------------------------------------

_REQ_GET = attrgetter(
    "kind", "family", "algorithm", "engine", "tag", "n", "seed",
    "deadline_ms",
)

_SUM_GET = attrgetter(
    "engine", "digest", "error", "status", "ok", "rounds", "total_packets",
    "total_words", "max_edge_words", "shared_cache_hits",
    "shared_cache_misses", "wall_s", "queue_s", "latency_s",
)


def _header(kind: int, count: int) -> bytes:
    return MAGIC + struct.pack("<BBI", ENVELOPE_VERSION, kind, count)


def _check_header(buf: bytes, kind: int) -> int:
    if bytes(buf[:4]) != MAGIC:
        raise ValueError("not an envelope buffer (bad magic)")
    version, got, count = struct.unpack_from("<BBI", buf, 4)
    if version != ENVELOPE_VERSION:
        raise ValueError(f"unsupported envelope version {version}")
    if got != kind:
        raise ValueError(f"envelope kind mismatch: expected {kind}, got {got}")
    return count


def encode_requests(requests: Sequence[RunRequest]) -> bytes:
    """Encode a non-empty request batch into one columnar envelope."""
    count = len(requests)
    if not count:
        raise ValueError("cannot encode an empty request batch")
    kind, family, algorithm, engine, tag, n, seed, deadline = zip(
        *map(_REQ_GET, requests)
    )
    table = StringTable()
    cols = [
        table.col(kind),
        table.col(family),
        table.col(algorithm),
        table.col(engine),
        table.col(tag),
        pack_i64_col(n, count),
        pack_i64_col(seed, count),
        pack_opt_f64_col(deadline, count),
    ]
    return b"".join(
        [_header(_KIND_REQUESTS, count), table.table_bytes()] + cols
    )


def decode_requests(buf: bytes) -> List[RunRequest]:
    """Decode :func:`encode_requests` output back into request objects."""
    count = _check_header(buf, _KIND_REQUESTS)
    off = 10
    table, off = read_string_table(buf, off)
    lut = string_lut(table)
    kind, off = read_str_col(buf, off, count, lut)
    family, off = read_str_col(buf, off, count, lut)
    algorithm, off = read_str_col(buf, off, count, lut)
    engine, off = read_str_col(buf, off, count, lut)
    tag, off = read_str_col(buf, off, count, lut)
    n, off = read_i64_col(buf, off, count)
    seed, off = read_i64_col(buf, off, count)
    deadline, off = read_opt_f64_col(buf, off, count)
    # Inlined fast_request: per-row function-call overhead is measurable
    # at envelope sizes (bench_transport gates the ratio), so the hot
    # decode builds each frozen instance's dict as a literal in place.
    new = RunRequest.__new__
    set_attr = object.__setattr__
    out: List[RunRequest] = []
    append = out.append
    for k, f, nn, sd, alg, eng, tg, dl in zip(
        kind, family, n, seed, algorithm, engine, tag, deadline
    ):
        r = new(RunRequest)
        set_attr(r, "__dict__", {
            "kind": k, "family": f, "n": nn, "seed": sd, "algorithm": alg,
            "engine": eng, "tag": tg, "deadline_ms": dl,
        })
        append(r)
    return out


def encode_summaries(summaries: Sequence[RunSummary]) -> bytes:
    """Encode a non-empty summary batch (requests are *not* shipped)."""
    count = len(summaries)
    if not count:
        raise ValueError("cannot encode an empty summary batch")
    (engine, digest, error, status, ok, rounds, total_packets, total_words,
     max_edge_words, hits, misses, wall, queue, latency) = zip(
        *map(_SUM_GET, summaries)
    )
    table = StringTable()
    cols = [
        table.col(engine),
        pack_raw_str_col(digest),
        table.col(error),
        table.col(status),
        pack_byte_col(ok, count),  # bool is int: packs as 0/1 bytes
        pack_i64_col(rounds, count),
        pack_i64_col(total_packets, count),
        pack_i64_col(total_words, count),
        pack_i64_col(max_edge_words, count),
        pack_i64_col(hits, count),
        pack_i64_col(misses, count),
        pack_f64_col(wall, count),
        pack_f64_col(queue, count),
        pack_f64_col(latency, count),
    ]
    return b"".join(
        [_header(_KIND_SUMMARIES, count), table.table_bytes()] + cols
    )


def decode_summaries(
    buf: bytes, requests: Sequence[RunRequest]
) -> List[RunSummary]:
    """Decode a summary envelope, rejoining ``requests`` by position.

    ``requests`` must be the exact sequence the envelope's summaries were
    produced from — the dispatcher holds them per in-flight envelope.
    """
    count = _check_header(buf, _KIND_SUMMARIES)
    if count != len(requests):
        raise ValueError(
            f"summary envelope carries {count} rows for "
            f"{len(requests)} requests"
        )
    off = 10
    table, off = read_string_table(buf, off)
    lut = string_lut(table)
    engine, off = read_str_col(buf, off, count, lut)
    digest, off = read_raw_str_col(buf, off, count)
    error, off = read_str_col(buf, off, count, lut)
    status, off = read_str_col(buf, off, count, lut)
    ok, off = read_byte_col(buf, off, count)
    rounds, off = read_i64_col(buf, off, count)
    total_packets, off = read_i64_col(buf, off, count)
    total_words, off = read_i64_col(buf, off, count)
    max_edge_words, off = read_i64_col(buf, off, count)
    hits, off = read_i64_col(buf, off, count)
    misses, off = read_i64_col(buf, off, count)
    wall, off = read_f64_col(buf, off, count)
    queue, off = read_f64_col(buf, off, count)
    latency, off = read_f64_col(buf, off, count)
    # Inlined fast_summary, same reasoning as decode_requests.  ``ok``
    # rides a 0/1 byte column and is re-booled column-wise.
    new = RunSummary.__new__
    out: List[RunSummary] = []
    append = out.append
    for req, o, eng, rd, tp, tw, mw, dig, w, h, m, err, st, q, lat in zip(
        requests, map(bool, ok), engine, rounds, total_packets,
        total_words, max_edge_words, digest, wall, hits, misses, error,
        status, queue, latency,
    ):
        s = new(RunSummary)
        s.__dict__ = {
            "request": req, "ok": o, "engine": eng, "rounds": rd,
            "total_packets": tp, "total_words": tw, "max_edge_words": mw,
            "digest": dig, "wall_s": w, "shared_cache_hits": h,
            "shared_cache_misses": m, "error": err, "status": st,
            "queue_s": q, "latency_s": lat,
        }
        append(s)
    return out


# -- shared-memory arena -----------------------------------------------------


class Slot:
    """One shared-memory segment, split into request and result regions.

    Layout: ``[0, result_offset)`` is the request region (parent writes,
    worker reads); ``[result_offset, size)`` is the result region (worker
    writes, parent reads only after the worker's future resolves).  The
    disjoint write domains are the crash-safety argument: a worker killed
    mid-write can only tear bytes in the region the parent never trusts
    before a clean future resolution.
    """

    __slots__ = ("shm", "name", "result_offset", "request_capacity",
                 "result_capacity", "in_use")

    def __init__(self, shm: shared_memory.SharedMemory) -> None:
        self.shm = shm
        self.name = shm.name
        size = shm.size
        self.result_offset = size // 2
        self.request_capacity = self.result_offset
        self.result_capacity = size - self.result_offset
        self.in_use = False

    def write_request(self, blob: bytes) -> None:
        self.shm.buf[:len(blob)] = blob

    def read_result(self, length: int) -> bytes:
        start = self.result_offset
        return bytes(self.shm.buf[start:start + length])


class ShmArena:
    """Parent-owned pool of fixed shared-memory slots.

    All segments are created (and eventually unlinked) by the parent
    process; workers only attach.  ``acquire`` never blocks — when every
    slot is busy or the payload outgrows a region the caller falls back to
    the pickle path.  The class-level ``_live`` registry tracks every
    segment created and not yet unlinked, across all arenas in the
    process, so tests can assert worker kills leak nothing.
    """

    _live: Dict[str, "ShmArena"] = {}

    def __init__(self, slots: int = 8, slot_bytes: int = 1 << 20) -> None:
        if slots < 1:
            raise ValueError("need at least one slot")
        self._slots: List[Slot] = []
        prefix = f"renv-{uuid.uuid4().hex[:8]}"
        try:
            for i in range(slots):
                shm = shared_memory.SharedMemory(
                    create=True, size=slot_bytes, name=f"{prefix}-{i}"
                )
                self._slots.append(Slot(shm))
                ShmArena._live[shm.name] = self
        except (OSError, ValueError):
            # Slot creation failed partway (shm exhaustion, bad size):
            # unlink whatever was already created, then surface the error.
            self.close()
            raise
        self._closed = False

    @classmethod
    def live_segments(cls) -> List[str]:
        """Names of all created-but-not-yet-unlinked segments."""
        return sorted(cls._live)

    def acquire(self, request_bytes: int) -> Optional[Slot]:
        """A free slot that fits ``request_bytes``, or ``None``."""
        if self._closed:
            return None
        for slot in self._slots:
            if not slot.in_use and request_bytes <= slot.request_capacity:
                slot.in_use = True
                return slot
        return None

    def release(self, slot: Slot) -> None:
        slot.in_use = False

    def close(self) -> None:
        """Unlink every segment.  Idempotent."""
        self._closed = True
        slots, self._slots = self._slots, []
        for slot in slots:
            ShmArena._live.pop(slot.name, None)
            try:
                slot.shm.close()
                slot.shm.unlink()
            except (FileNotFoundError, OSError):
                pass

    def __del__(self) -> None:  # last-resort cleanup; close() is the API
        try:
            self.close()
        # repro: ignore[RPR006] -- best-effort shm cleanup: __del__ may run
        # during interpreter teardown where any module global can be None.
        except Exception:
            pass


# -- worker-side entry points ------------------------------------------------
#
# These run inside pool workers.  They import the executor lazily (batch.py
# imports this module at top level; the worker resolves the function once
# and caches it) and keep a bounded cache of attached segments so repeated
# envelopes through the same slot skip the attach syscall.

_execute_request: Optional[Callable[[RunRequest], RunSummary]] = None

_ATTACHED: Dict[str, shared_memory.SharedMemory] = {}
_ATTACH_CAP = 64


def _executor() -> Callable[[RunRequest], RunSummary]:
    global _execute_request
    if _execute_request is None:
        from .batch import execute_request

        _execute_request = execute_request
    return _execute_request


def _attach(name: str) -> shared_memory.SharedMemory:
    shm = _ATTACHED.get(name)
    if shm is not None:
        return shm
    if len(_ATTACHED) >= _ATTACH_CAP:
        for cached in _ATTACHED.values():
            try:
                cached.close()
            except OSError:
                pass
        _ATTACHED.clear()
    # CPython's resource tracker registers *attaching* processes as owners
    # and would unlink the parent's segment when this worker exits
    # (bpo-39959); only the creating process may own the lifetime.  Suppress
    # the attach-side register entirely rather than unregistering after the
    # fact: under fork the workers share the parent's tracker, and an
    # unregister here would strip the parent's own registration (its later
    # ``unlink()`` then double-unregisters and the tracker logs a KeyError).
    register = resource_tracker.register
    resource_tracker.register = lambda *a, **k: None
    try:
        shm = shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = register
    _ATTACHED[name] = shm
    return shm


def _run_envelope_bytes(blob: bytes) -> bytes:
    """Pickle-transport worker: envelope bytes in, envelope bytes out."""
    run = _executor()
    summaries = [run(r) for r in decode_requests(blob)]
    return encode_summaries(summaries)


def _run_envelope_shm(
    name: str, request_length: int, result_offset: int, result_capacity: int
):
    """Shm-transport worker: read the slot in place, write results back.

    Returns the result byte count when the encoded summaries fit the
    result region, or the encoded bytes themselves when they don't (the
    overflow path costs one bytes-pickle, it never fails the batch).
    """
    shm = _attach(name)
    blob = bytes(shm.buf[:request_length])
    run = _executor()
    summaries = [run(r) for r in decode_requests(blob)]
    out = encode_summaries(summaries)
    if len(out) <= result_capacity:
        shm.buf[result_offset:result_offset + len(out)] = out
        return len(out)
    return out


# -- transports --------------------------------------------------------------


class PendingEnvelope:
    """One in-flight envelope: the future plus what decoding needs.

    ``decode`` is called exactly once, after ``future`` resolved cleanly;
    ``abandon`` covers every other exit (executor death, deadline
    abandonment) and is idempotent.  A slot whose worker may still be
    running is not recycled immediately — ``abandon`` parks the release on
    the future's completion so a straggling worker can't scribble into a
    reused slot.
    """

    __slots__ = ("future", "requests", "_slot", "_arena", "_released")

    def __init__(
        self,
        future: "Future[Any]",
        requests: Sequence[RunRequest],
        slot: Optional[Slot] = None,
        arena: Optional[ShmArena] = None,
    ) -> None:
        self.future = future
        self.requests = requests
        self._slot = slot
        self._arena = arena
        self._released = False

    def _release(self) -> None:
        if self._released:
            return
        self._released = True
        if self._slot is not None and self._arena is not None:
            self._arena.release(self._slot)

    def decode(self) -> List[RunSummary]:
        """Decode the resolved future's payload and recycle the slot."""
        raw = self.future.result()
        try:
            if isinstance(raw, int):
                if self._slot is None:
                    raise TypeError(
                        "integer result on a slotless envelope"
                    )
                return decode_summaries(
                    self._slot.read_result(raw), self.requests
                )
            return decode_summaries(raw, self.requests)
        finally:
            self._release()

    def abandon(self) -> None:
        """Give up on this envelope without reading a result."""
        if self._released:
            return
        def _settle(f: "Future[Any]") -> None:
            try:
                f.exception()
            except CancelledError:
                pass  # an abandoned hop may also have been cancelled
            self._release()

        if self.future.done():
            _settle(self.future)
        else:
            # The worker may still be writing into the slot: recycle it
            # only once the stale run finishes (or the pool dies).
            self.future.add_done_callback(_settle)


class PickleTransport:
    """Envelope bytes through the executor's own pickle channel.

    Still columnar — one opaque ``bytes`` pickle per direction instead of
    one object pickle per request/summary — so it is both the portable
    fallback and most of the serialization win.
    """

    name = "pickle"
    fallback_reason = ""

    def dispatch(self, pool, requests: Sequence[RunRequest]) -> PendingEnvelope:
        blob = encode_requests(requests)
        return PendingEnvelope(
            pool.submit(_run_envelope_bytes, blob), requests
        )

    def close(self) -> None:
        pass


class ShmTransport:
    """Envelope bytes through shared-memory slots.

    The worker reads the request envelope in place and writes the result
    envelope back into the same slot; the only pickled values are the slot
    coordinates and the result length.  Batches that find no free slot
    (or outgrow a region) silently take the pickle-bytes path of
    :class:`PickleTransport`.
    """

    name = "shm"
    fallback_reason = ""

    def __init__(self, slots: int = 8, slot_bytes: int = 1 << 20) -> None:
        self._arena = ShmArena(slots=slots, slot_bytes=slot_bytes)
        self._pickle = PickleTransport()

    def dispatch(self, pool, requests: Sequence[RunRequest]) -> PendingEnvelope:
        blob = encode_requests(requests)
        slot = self._arena.acquire(len(blob))
        if slot is None:
            return PendingEnvelope(
                pool.submit(_run_envelope_bytes, blob), requests
            )
        slot.write_request(blob)
        future = pool.submit(
            _run_envelope_shm, slot.name, len(blob), slot.result_offset,
            slot.result_capacity,
        )
        return PendingEnvelope(future, requests, slot, self._arena)

    def close(self) -> None:
        self._arena.close()


def make_transport(
    name: str = "shm", *, slots: int = 8, slot_bytes: int = 1 << 20
):
    """Build the named transport, degrading ``shm`` to ``pickle`` if the
    host can't create shared memory (some sandboxes mount no ``/dev/shm``).

    The returned transport's ``fallback_reason`` records why a requested
    ``shm`` transport came back as ``pickle`` (empty otherwise).
    """
    if name not in TRANSPORTS:
        raise ValueError(
            f"unknown transport {name!r} (choose from {', '.join(TRANSPORTS)})"
        )
    if name == "pickle":
        return PickleTransport()
    try:
        return ShmTransport(slots=slots, slot_bytes=slot_bytes)
    except (OSError, ValueError) as exc:
        transport = PickleTransport()
        transport.fallback_reason = (
            f"shared memory unavailable ({type(exc).__name__}: {exc}); "
            "using pickle transport"
        )
        return transport


# -- autoscaler policy -------------------------------------------------------


class AutoscalePolicy:
    """Pure decision rule for the streaming gateway's worker autoscaler.

    The gateway samples queue depth and feeds ``observe(depth, now)``;
    the policy answers ``+1`` (add a dispatcher), ``-1`` (retire one) or
    ``0``.  Scale-up requires the depth to sit at/above ``high_depth``
    for ``sustain_s`` continuous seconds; scale-down symmetrically for
    ``low_depth``; and every decision starts a ``cooldown_s`` quiet
    period so bursts can't thrash the pool.  Deliberately free of clocks
    and asyncio: the caller supplies ``now``, which makes the policy
    directly unit-testable.
    """

    def __init__(
        self,
        *,
        min_workers: int = 1,
        max_workers: int = 4,
        high_depth: int = 8,
        low_depth: int = 1,
        sustain_s: float = 0.25,
        cooldown_s: float = 1.0,
    ) -> None:
        if min_workers < 1 or max_workers < min_workers:
            raise ValueError("need 1 <= min_workers <= max_workers")
        if low_depth > high_depth:
            raise ValueError("low_depth must not exceed high_depth")
        self.min_workers = min_workers
        self.max_workers = max_workers
        self.high_depth = high_depth
        self.low_depth = low_depth
        self.sustain_s = sustain_s
        self.cooldown_s = cooldown_s
        self.workers = min_workers
        self._high_since: Optional[float] = None
        self._low_since: Optional[float] = None
        self._decided_at: Optional[float] = None

    def observe(self, depth: int, now: float) -> int:
        if self._decided_at is not None:
            if now - self._decided_at < self.cooldown_s:
                return 0
            self._decided_at = None
        if depth >= self.high_depth:
            self._low_since = None
            if self.workers >= self.max_workers:
                self._high_since = None
                return 0
            if self._high_since is None:
                self._high_since = now
            if now - self._high_since >= self.sustain_s:
                self.workers += 1
                self._high_since = None
                self._decided_at = now
                return 1
            return 0
        self._high_since = None
        if depth <= self.low_depth:
            if self.workers <= self.min_workers:
                self._low_since = None
                return 0
            if self._low_since is None:
                self._low_since = now
            if now - self._low_since >= self.sustain_s:
                self.workers -= 1
                self._low_since = None
                self._decided_at = now
                return -1
            return 0
        self._low_since = None
        return 0
