"""Append-only versioned traffic capture and deterministic replay.

Production services answer incidents with traces, not anecdotes: this
module records every :class:`~repro.core.engine.RunRequest` /
:class:`~repro.core.engine.RunSummary` envelope that crosses the batch
service or the streaming gateway — plus the observed arrival offsets —
into a versioned, append-only capture file, and replays a capture
deterministically afterwards (same arrivals, same engine choices,
byte-identical digests).  Modeled on the recording/replaying-client
pattern from acconeer's exploration tool: versioned capture files, a
replaying backend indistinguishable from the live one.

Capture format (``repro-capture`` v1)
-------------------------------------

One JSON object per line (JSONL), so a capture is appendable with O(1)
cost per event and remains readable after a crash truncates the tail:

* line 1 — ``{"kind": "header", "format": "repro-capture", "version": 1,
  "meta": {...}, "crc": ...}``
* ``{"kind": "req", "seq": N, "arrival_s": T, "request": {...}, "crc"}``
  — one per submission, ``arrival_s`` is the offset from the first
  recorded event.
* ``{"kind": "sum", "seq": N, "summary": {...}, "crc"}`` — one per
  resolution, linked to its request by ``seq`` (summaries may arrive out
  of submission order; the link is explicit, not positional).
* ``{"kind": "metrics", "metrics": {...}, "crc"}`` — optional rollup.

Every record carries a CRC32 over its canonical JSON encoding (sorted
keys, minimal separators, ``crc`` field excluded), so corruption is
detected per record and a torn final line is reported as truncation
rather than silently dropped.

Replay
------

:func:`replay_capture` re-feeds the recorded requests through a live
:func:`~repro.service.stream.serve` run at the recorded arrival offsets
and compares digests; :class:`ReplayingBackend` instead serves the
*recorded* summaries through the batch-backend protocol — a stand-in
executor for tests and forensics that must not re-run anything.

Command line::

    python -m repro.service.recording info capture.jsonl
    python -m repro.service.recording replay capture.jsonl --workers 2

See DESIGN.md section 9 for the semantics.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import zlib
from dataclasses import asdict, dataclass, field, fields
from typing import (
    Any,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    TextIO,
    Tuple,
)

from ..core.engine import RunRequest, RunSummary
from ..scenarios.generators import recorded_arrivals
from .batch import summaries_digest

__all__ = [
    "CAPTURE_FORMAT",
    "CAPTURE_VERSION",
    "Capture",
    "CaptureError",
    "CaptureWriter",
    "Recorder",
    "ReplayingBackend",
    "load_capture",
    "replay_capture",
]

CAPTURE_FORMAT = "repro-capture"
CAPTURE_VERSION = 1


class CaptureError(RuntimeError):
    """A capture file is corrupt, truncated, or from an unknown format."""


# -- envelope (de)serialization ----------------------------------------------


def request_to_doc(req: RunRequest) -> Dict[str, Any]:
    """JSON-ready form of a request envelope (field-complete)."""
    return asdict(req)


def request_from_doc(doc: Dict[str, Any]) -> RunRequest:
    """Rebuild a request envelope; unknown fields are a format error."""
    known = {f.name for f in fields(RunRequest)}
    extra = set(doc) - known
    if extra:
        raise CaptureError(
            f"request record carries unknown fields {sorted(extra)}"
        )
    try:
        return RunRequest(**doc)
    except TypeError as exc:
        raise CaptureError(f"malformed request record: {exc}") from None


def summary_to_doc(summary: RunSummary) -> Dict[str, Any]:
    """JSON-ready form of a summary envelope (request nested verbatim)."""
    return asdict(summary)


def summary_from_doc(doc: Dict[str, Any]) -> RunSummary:
    """Rebuild a summary envelope from :func:`summary_to_doc` output."""
    if "request" not in doc:
        raise CaptureError("summary record lacks its request envelope")
    body = dict(doc)
    req = request_from_doc(body.pop("request"))
    known = {f.name for f in fields(RunSummary)} - {"request"}
    extra = set(body) - known
    if extra:
        raise CaptureError(
            f"summary record carries unknown fields {sorted(extra)}"
        )
    try:
        return RunSummary(request=req, **body)
    except TypeError as exc:
        raise CaptureError(f"malformed summary record: {exc}") from None


# -- framing ------------------------------------------------------------------


def _canonical(doc: Dict[str, Any]) -> bytes:
    return json.dumps(doc, sort_keys=True, separators=(",", ":")).encode()


def _stamp_crc(doc: Dict[str, Any]) -> Dict[str, Any]:
    doc = dict(doc)
    doc.pop("crc", None)
    doc["crc"] = zlib.crc32(_canonical(doc))
    return doc


def _check_crc(doc: Dict[str, Any], lineno: int) -> None:
    body = dict(doc)
    crc = body.pop("crc", None)
    if crc is None:
        raise CaptureError(f"line {lineno}: record has no crc field")
    if zlib.crc32(_canonical(body)) != crc:
        raise CaptureError(
            f"line {lineno}: crc mismatch (corrupt or hand-edited record)"
        )


class CaptureWriter:
    """Append-only writer for one capture file.

    Creates the file and writes the header eagerly, then appends one
    framed record per event, flushing after each — a crash loses at most
    the torn final line, which :func:`load_capture` reports as
    truncation instead of mis-parsing.
    """

    def __init__(
        self, path: str, meta: Optional[Dict[str, Any]] = None
    ) -> None:
        self.path = path
        self._fh: Optional[TextIO] = open(path, "w", encoding="utf-8")
        self._write(
            {
                "kind": "header",
                "format": CAPTURE_FORMAT,
                "version": CAPTURE_VERSION,
                "meta": meta or {},
            }
        )

    def _write(self, doc: Dict[str, Any]) -> None:
        if self._fh is None:
            raise CaptureError(f"capture {self.path} is already closed")
        self._fh.write(json.dumps(_stamp_crc(doc), sort_keys=True) + "\n")
        self._fh.flush()

    def write_request(
        self, seq: int, arrival_s: float, request: RunRequest
    ) -> None:
        self._write(
            {
                "kind": "req",
                "seq": seq,
                "arrival_s": round(float(arrival_s), 9),
                "request": request_to_doc(request),
            }
        )

    def write_summary(self, seq: int, summary: RunSummary) -> None:
        self._write(
            {"kind": "sum", "seq": seq, "summary": summary_to_doc(summary)}
        )

    def write_metrics(self, metrics: Dict[str, Any]) -> None:
        self._write({"kind": "metrics", "metrics": metrics})

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "CaptureWriter":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


# -- reading ------------------------------------------------------------------


@dataclass
class Capture:
    """A fully parsed, CRC-verified capture."""

    version: int
    meta: Dict[str, Any]
    #: ``(seq, arrival_s, request)`` in recorded submission order.
    events: List[Tuple[int, float, RunRequest]]
    #: resolved summaries keyed by their request's ``seq``.
    summaries: Dict[int, RunSummary] = field(default_factory=dict)
    metrics: Optional[Dict[str, Any]] = None

    @property
    def requests(self) -> List[RunRequest]:
        return [req for _, _, req in self.events]

    @property
    def arrivals(self) -> List[float]:
        return [arrival for _, arrival, _ in self.events]

    def statuses(self) -> List[str]:
        """Per-request status sequence in submission order (``""`` if the
        capture ended before the request resolved)."""
        return [
            self.summaries[seq].status if seq in self.summaries else ""
            for seq, _, _ in self.events
        ]

    def resolved_summaries(self) -> List[RunSummary]:
        """Recorded summaries that executed to a judged end, in seq order."""
        return [
            self.summaries[seq]
            for seq, _, _ in self.events
            if seq in self.summaries and self.summaries[seq].resolved
        ]

    def capture_digest(self) -> str:
        """Order-independent digest over the resolved recorded runs —
        directly comparable to a replay's stream/batch digest."""
        return summaries_digest(self.resolved_summaries())


def load_capture(path: str) -> Capture:
    """Parse and verify a capture file.

    Raises :class:`CaptureError` on a missing/foreign header, a version
    this reader does not speak, any per-record CRC mismatch, an unparsable
    (torn) line, or a summary that references an unrecorded request.
    """
    events: List[Tuple[int, float, RunRequest]] = []
    summaries: Dict[int, RunSummary] = {}
    metrics: Optional[Dict[str, Any]] = None
    header: Optional[Dict[str, Any]] = None
    seen_seqs: set = set()
    try:
        fh = open(path, "r", encoding="utf-8")
    except OSError as exc:
        raise CaptureError(f"cannot open capture {path}: {exc}") from None
    with fh:
        for lineno, line in enumerate(fh, start=1):
            stripped = line.strip()
            if not stripped:
                continue
            try:
                doc = json.loads(stripped)
            except json.JSONDecodeError:
                raise CaptureError(
                    f"line {lineno}: unparsable record (truncated capture "
                    f"or non-capture file)"
                ) from None
            if not isinstance(doc, dict):
                raise CaptureError(f"line {lineno}: record is not an object")
            _check_crc(doc, lineno)
            kind = doc.get("kind")
            if lineno == 1:
                if kind != "header":
                    raise CaptureError(
                        "capture does not start with a header record"
                    )
                if doc.get("format") != CAPTURE_FORMAT:
                    raise CaptureError(
                        f"not a {CAPTURE_FORMAT} file "
                        f"(format={doc.get('format')!r})"
                    )
                if doc.get("version") != CAPTURE_VERSION:
                    raise CaptureError(
                        f"capture version {doc.get('version')!r} is not "
                        f"supported (this reader speaks "
                        f"v{CAPTURE_VERSION})"
                    )
                header = doc
            elif kind == "req":
                seq = int(doc["seq"])
                if seq in seen_seqs:
                    raise CaptureError(f"line {lineno}: duplicate seq {seq}")
                seen_seqs.add(seq)
                events.append(
                    (
                        seq,
                        float(doc["arrival_s"]),
                        request_from_doc(doc["request"]),
                    )
                )
            elif kind == "sum":
                seq = int(doc["seq"])
                if seq not in seen_seqs:
                    raise CaptureError(
                        f"line {lineno}: summary for unrecorded seq {seq}"
                    )
                summaries[seq] = summary_from_doc(doc["summary"])
            elif kind == "metrics":
                metrics = doc.get("metrics")
            else:
                raise CaptureError(
                    f"line {lineno}: unknown record kind {kind!r}"
                )
    if header is None:
        raise CaptureError(f"capture {path} is empty")
    return Capture(
        version=int(header["version"]),
        meta=dict(header.get("meta") or {}),
        events=events,
        summaries=summaries,
        metrics=metrics,
    )


# -- recording taps -----------------------------------------------------------


class Recorder:
    """Event tap: assigns seqs, stamps arrival offsets, frames records.

    One recorder per capture file.  Attach it to a live
    :class:`~repro.service.stream.StreamGateway` with :meth:`attach`
    (submissions and resolutions are recorded transparently) or wrap a
    batch service with :meth:`record_batch`.
    """

    def __init__(
        self, path: str, meta: Optional[Dict[str, Any]] = None
    ) -> None:
        self._writer = CaptureWriter(path, meta=meta)
        self._next_seq = 0
        self._t0: Optional[float] = None

    @property
    def path(self) -> str:
        return self._writer.path

    def _offset(self) -> float:
        now = time.perf_counter()
        if self._t0 is None:
            self._t0 = now
        return now - self._t0

    def record_request(
        self, request: RunRequest, arrival_s: Optional[float] = None
    ) -> int:
        """Record one submission; returns the seq linking its summary."""
        seq = self._next_seq
        self._next_seq += 1
        offset = self._offset() if arrival_s is None else float(arrival_s)
        self._writer.write_request(seq, offset, request)
        return seq

    def record_summary(self, seq: int, summary: RunSummary) -> None:
        self._writer.write_summary(seq, summary)

    def record_metrics(self, metrics: Any) -> None:
        doc = metrics.to_dict() if hasattr(metrics, "to_dict") else metrics
        self._writer.write_metrics(doc)

    def close(self) -> None:
        self._writer.close()

    def __enter__(self) -> "Recorder":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- taps ----------------------------------------------------------------

    def attach(self, gateway: Any) -> "_RecordingGateway":
        """Wrap a stream gateway: every ``submit`` records the request at
        its observed arrival offset, every resolution its summary."""
        return _RecordingGateway(gateway, self)

    def record_batch(
        self, service: Any, requests: Sequence[RunRequest]
    ) -> Any:
        """Run a batch through ``service`` with every envelope recorded.

        Batch arrivals are all offset 0 — the batch regime has no arrival
        clock; replaying such a capture through the stream gateway is the
        saturated-arrival case.  Returns the service's ``BatchReport``.
        """
        seqs = [self.record_request(req, arrival_s=0.0) for req in requests]
        report = service.run_batch(requests)
        for seq, summary in zip(seqs, report.summaries):
            self.record_summary(seq, summary)
        self.record_metrics(report.to_dict())
        return report


class _RecordingGateway:
    """Transparent ``submit`` proxy over a live stream gateway."""

    def __init__(self, gateway: Any, recorder: Recorder) -> None:
        self._gateway = gateway
        self._recorder = recorder

    def __getattr__(self, name: str) -> Any:
        return getattr(self._gateway, name)

    async def submit(self, request: RunRequest) -> Any:
        seq = self._recorder.record_request(request)
        future = await self._gateway.submit(request)
        future.add_done_callback(
            lambda f: (
                self._recorder.record_summary(seq, f.result())
                if not f.cancelled() and f.exception() is None
                else None
            )
        )
        return future


# -- replay -------------------------------------------------------------------


class ReplayingBackend:
    """Batch-style backend that serves *recorded* summaries verbatim.

    Speaks the same ``execute(requests) -> Iterator[RunSummary]`` /
    ``close()`` protocol as the live batch backends, but never runs
    anything: each request is answered with the recorded summary whose
    envelope matches.  Deterministic by construction — replaying twice
    yields byte-identical digests — and the drop-in stand-in for tests
    and forensics that must not depend on engine execution.
    """

    name = "replaying"

    def __init__(self, capture: Capture) -> None:
        self.capture = capture
        self._by_envelope: Dict[Tuple, List[RunSummary]] = {}
        for seq, _, req in capture.events:
            if seq in capture.summaries:
                self._by_envelope.setdefault(self._key(req), []).append(
                    capture.summaries[seq]
                )

    @staticmethod
    def _key(req: RunRequest) -> Tuple:
        return (req.kind, req.family, req.n, req.seed, req.algorithm, req.tag)

    def execute(
        self, requests: Sequence[RunRequest]
    ) -> Iterator[RunSummary]:
        for req in requests:
            bucket = self._by_envelope.get(self._key(req))
            if not bucket:
                raise CaptureError(
                    f"capture has no recorded summary for {req.name} "
                    f"(tag={req.tag!r})"
                )
            yield bucket.pop(0)

    def close(self) -> None:  # protocol parity with live backends
        pass


@dataclass
class ReplayReport:
    """Outcome of re-feeding a capture through a live gateway."""

    capture_digest: str
    replay_digest: str
    recorded_statuses: List[str]
    replayed_statuses: List[str]
    stream_report: Any

    @property
    def digests_match(self) -> bool:
        return self.capture_digest == self.replay_digest

    @property
    def statuses_match(self) -> bool:
        return self.recorded_statuses == self.replayed_statuses

    @property
    def ok(self) -> bool:
        return self.digests_match

    def to_dict(self) -> Dict[str, Any]:
        return {
            "capture_digest": self.capture_digest,
            "replay_digest": self.replay_digest,
            "digests_match": self.digests_match,
            "statuses_match": self.statuses_match,
            "stream": self.stream_report.to_dict(),
        }


def replay_capture(
    capture: Capture,
    *,
    workers: int = 2,
    backend: str = "process",
    engine: Optional[str] = None,
    queue_cap: Optional[int] = None,
    policy: Optional[str] = None,
    timescale: float = 1.0,
    warmup: bool = True,
) -> ReplayReport:
    """Re-feed a capture through a live stream gateway deterministically.

    The recorded requests are submitted at their recorded arrival offsets
    (scaled by ``timescale``; ``0`` collapses the timeline into a
    saturated replay) with their recorded engine choices.  Gateway shape
    defaults to what the capture's header recorded.  The report compares
    the digest over the replay's completed runs against the capture's own
    digest over resolved recorded runs — byte equality is the
    determinism gate.
    """
    from .stream import serve

    meta = capture.meta
    report = serve(
        capture.requests,
        recorded_arrivals(capture.arrivals, timescale),
        workers=workers,
        engine=engine or str(meta.get("engine", "fast")),
        backend=backend,
        queue_cap=int(queue_cap or meta.get("queue_cap", 64)),
        policy=str(policy or meta.get("policy", "reject")),
        deadline_ms=None,  # deadlines depend on wall clock, not the trace
        warmup=warmup,
    )
    return ReplayReport(
        capture_digest=capture.capture_digest(),
        replay_digest=report.stream_digest(),
        recorded_statuses=capture.statuses(),
        replayed_statuses=[s.status for s in report.summaries],
        stream_report=report,
    )


# -- CLI ----------------------------------------------------------------------


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.recording",
        description=(
            "Inspect and replay repro-capture traffic recordings "
            "(record one with: python -m repro.service.stream --record "
            "PATH, or python -m repro.service --record PATH)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_info = sub.add_parser("info", help="print a capture's header and counts")
    p_info.add_argument("capture", help="capture file path")
    p_info.add_argument("--json", action="store_true")

    p_replay = sub.add_parser(
        "replay",
        help="re-feed a capture through a live gateway and compare digests",
    )
    p_replay.add_argument("capture", help="capture file path")
    p_replay.add_argument("--workers", type=int, default=2)
    p_replay.add_argument(
        "--backend", default="process", choices=("process", "thread")
    )
    p_replay.add_argument(
        "--timescale", type=float, default=1.0,
        help="arrival-offset multiplier; 0 = saturated replay (default 1)",
    )
    p_replay.add_argument("--json", action="store_true")

    args = parser.parse_args(argv)
    try:
        capture = load_capture(args.capture)
    except CaptureError as exc:
        print(f"capture error: {exc}", file=sys.stderr)
        return 2

    if args.command == "info":
        doc = {
            "format": CAPTURE_FORMAT,
            "version": capture.version,
            "meta": capture.meta,
            "requests": len(capture.events),
            "summaries": len(capture.summaries),
            "resolved": len(capture.resolved_summaries()),
            "statuses": {
                s: capture.statuses().count(s)
                for s in sorted(set(capture.statuses()))
            },
            "capture_digest": capture.capture_digest(),
            "has_metrics": capture.metrics is not None,
        }
        if args.json:
            print(json.dumps(doc, indent=2, sort_keys=True))
        else:
            for key, value in doc.items():
                print(f"{key}: {value}")
        return 0

    report = replay_capture(
        capture,
        workers=args.workers,
        backend=args.backend,
        timescale=args.timescale,
    )
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(
            f"replayed {len(capture.events)} requests: capture digest "
            f"{report.capture_digest} vs replay {report.replay_digest} -> "
            f"{'match' if report.digests_match else 'MISMATCH'}"
        )
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
