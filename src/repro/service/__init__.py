"""Execution service layer: offline batches and online streams.

Two front ends share the same envelopes, judgement and digests:

* :mod:`repro.service.batch` — *offline*: callers enqueue
  :class:`~repro.core.engine.RunRequest` envelopes (any registered
  routing/sorting/extension algorithm x workload x engine), the
  :class:`BatchService` shards them across a process pool (or the
  in-process sequential baseline), warms worker plan caches from a
  structural prefetch pass, and streams back judged
  :class:`~repro.core.engine.RunSummary` records with batch aggregates.
* :mod:`repro.service.stream` — *online*: the :class:`StreamGateway`
  accepts a continuous request stream behind a bounded queue with
  explicit backpressure (reject or block), enforces per-request
  deadlines, and records tail-latency histograms; judged on sustained
  throughput and p50/p95/p99, not batch wall-time.

Two operational companions ride on the same envelopes:

* :mod:`repro.service.recording` — append-only versioned traffic
  captures (every request/summary plus arrival offsets) and
  deterministic replay: trace-driven load tests, forensics.
* :mod:`repro.service.chaos` — fault injection (worker kills, poison
  requests, stragglers) against live gateways, gated on recovery,
  digest correctness, and bounded p99.
* :mod:`repro.service.transport` — the zero-copy request/result path
  shared by both front ends: columnar envelope codec, shared-memory
  slot arena with pickle fallback, and the autoscaler policy.
* :mod:`repro.service.net` — the networked front end: a versioned
  length-prefixed binary protocol over TCP whose payloads are the
  transport's columnar envelopes; asyncio server fronting the stream
  gateway, blocking :class:`Client` and in-memory :class:`MockClient`.

Command line::

    python -m repro.service --batch 256 --workers 4 --engine fast
    python -m repro.service.stream --rate 8 --duration 2 --workers 2
    python -m repro.service.chaos --requests 24 --kills 1 --poisons 2
    python -m repro.service.recording replay capture.jsonl
    python -m repro.service.net serve --port 7707 --workers 4

See DESIGN.md sections 6 (batch), 7 (stream), 9 (recording/chaos) and
12 (network service).
"""

from .batch import (
    CHAOS_TAG_PREFIX,
    BatchReport,
    BatchService,
    ProcessPoolBackend,
    SequentialBackend,
    execute_request,
    requests_from_scenarios,
    summaries_digest,
)

#: Submodule names re-exported lazily (PEP 562).  Eagerly importing
#: ``.stream`` (or the recording/chaos CLIs) here would put them in
#: ``sys.modules`` before ``python -m repro.service.stream`` executes them
#: as ``__main__``, running the module twice (and making runpy warn about
#: exactly that).
_STREAM_EXPORTS = (
    "STATUS_CANCELLED",
    "STATUS_COMPLETED",
    "STATUS_FAILED",
    "STATUS_REJECTED",
    "StreamGateway",
    "StreamMetrics",
    "StreamReport",
    "replay",
    "serve",
    "structural_warmup",
)

_RECORDING_EXPORTS = (
    "Capture",
    "CaptureError",
    "CaptureWriter",
    "Recorder",
    "ReplayingBackend",
    "load_capture",
    "replay_capture",
)

_CHAOS_EXPORTS = (
    "ChaosFault",
    "ChaosPlan",
    "ChaosReport",
    "apply_fault",
    "build_chaos_plan",
    "inject",
    "run_chaos",
)

_NET_EXPORTS = (
    "Client",
    "CommonClient",
    "MockClient",
    "NetServer",
    "ServerThread",
)

_TRANSPORT_EXPORTS = (
    "TRANSPORTS",
    "AutoscalePolicy",
    "PendingEnvelope",
    "PickleTransport",
    "ShmArena",
    "ShmTransport",
    "decode_requests",
    "decode_summaries",
    "encode_requests",
    "encode_summaries",
    "make_transport",
)


def __getattr__(name: str):
    if name in _STREAM_EXPORTS:
        from . import stream

        return getattr(stream, name)
    if name in _RECORDING_EXPORTS:
        from . import recording

        return getattr(recording, name)
    if name in _CHAOS_EXPORTS:
        from . import chaos

        return getattr(chaos, name)
    if name in _TRANSPORT_EXPORTS:
        from . import transport

        return getattr(transport, name)
    if name in _NET_EXPORTS:
        from . import net

        return getattr(net, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "CHAOS_TAG_PREFIX",
    "BatchReport",
    "BatchService",
    "ProcessPoolBackend",
    "SequentialBackend",
    "execute_request",
    "requests_from_scenarios",
    "summaries_digest",
    *_STREAM_EXPORTS,
    *_RECORDING_EXPORTS,
    *_CHAOS_EXPORTS,
    *_TRANSPORT_EXPORTS,
    *_NET_EXPORTS,
]
