"""Execution service layer: offline batches and online streams.

Two front ends share the same envelopes, judgement and digests:

* :mod:`repro.service.batch` — *offline*: callers enqueue
  :class:`~repro.core.engine.RunRequest` envelopes (any registered
  routing/sorting/extension algorithm x workload x engine), the
  :class:`BatchService` shards them across a process pool (or the
  in-process sequential baseline), warms worker plan caches from a
  structural prefetch pass, and streams back judged
  :class:`~repro.core.engine.RunSummary` records with batch aggregates.
* :mod:`repro.service.stream` — *online*: the :class:`StreamGateway`
  accepts a continuous request stream behind a bounded queue with
  explicit backpressure (reject or block), enforces per-request
  deadlines, and records tail-latency histograms; judged on sustained
  throughput and p50/p95/p99, not batch wall-time.

Command line::

    python -m repro.service --batch 256 --workers 4 --engine fast
    python -m repro.service.stream --rate 8 --duration 2 --workers 2

See DESIGN.md sections 6 (batch) and 7 (stream) for the architecture.
"""

from .batch import (
    BatchReport,
    BatchService,
    ProcessPoolBackend,
    SequentialBackend,
    execute_request,
    requests_from_scenarios,
    summaries_digest,
)

#: Streaming-gateway names re-exported lazily (PEP 562).  Eagerly importing
#: ``.stream`` here would put it in ``sys.modules`` before ``python -m
#: repro.service.stream`` executes it as ``__main__``, running the module
#: twice (and making runpy warn about exactly that).
_STREAM_EXPORTS = (
    "STATUS_CANCELLED",
    "STATUS_COMPLETED",
    "STATUS_REJECTED",
    "StreamGateway",
    "StreamMetrics",
    "StreamReport",
    "replay",
    "serve",
    "structural_warmup",
)


def __getattr__(name: str):
    if name in _STREAM_EXPORTS:
        from . import stream

        return getattr(stream, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "BatchReport",
    "BatchService",
    "ProcessPoolBackend",
    "SequentialBackend",
    "execute_request",
    "requests_from_scenarios",
    "summaries_digest",
    "STATUS_CANCELLED",
    "STATUS_COMPLETED",
    "STATUS_REJECTED",
    "StreamGateway",
    "StreamMetrics",
    "StreamReport",
    "replay",
    "serve",
    "structural_warmup",
]
