"""Batch-execution service: shard heterogeneous runs across workers.

The front end every scaling layer builds on: callers enqueue
:class:`~repro.core.engine.RunRequest` envelopes (any registered
routing/sorting/extension algorithm x workload x engine), the
:class:`BatchService` shards them across a process pool (or the in-process
sequential baseline), warms worker plan caches from a structural prefetch
pass, and streams back judged :class:`~repro.core.engine.RunSummary`
records with batch-level aggregates.

Command line::

    python -m repro.service --batch 256 --workers 4 --engine fast

See DESIGN.md section 7 for the architecture.
"""

from .batch import (
    BatchReport,
    BatchService,
    ProcessPoolBackend,
    SequentialBackend,
    execute_request,
    requests_from_scenarios,
)

__all__ = [
    "BatchReport",
    "BatchService",
    "ProcessPoolBackend",
    "SequentialBackend",
    "execute_request",
    "requests_from_scenarios",
]
