"""Batch service CLI: ``python -m repro.service [options]``.

Generates a deterministic mixed batch from the scenario taxonomy, executes
it on the selected backend, and prints per-family rollups plus aggregate
throughput.  Exits non-zero if any run fails verification/bounds or (with
``--selfcheck``) if the parallel backend's batch digest diverges from the
sequential baseline's.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from ..analysis import render_table
from ..core.engine import available_engines
from ..scenarios.generators import DEFAULT_MIX, mixed_batch
from .batch import BatchReport, BatchService, requests_from_scenarios
from .transport import TRANSPORTS


def _render(report: BatchReport) -> str:
    rows = []
    for (kind, family), agg in sorted(report.by_family().items()):
        runs = int(agg["runs"])
        rows.append([
            f"{kind}/{family}",
            runs,
            int(agg["ok"]),
            int(agg["rounds"]),
            int(agg["packets"]),
            f"{agg['wall_s'] * 1e3:.1f}",
        ])
    table = render_table(
        f"batch service [{report.backend}, workers={report.workers}]",
        ["workload", "runs", "ok", "rounds", "packets", "run ms"],
        rows,
    )
    hits, misses, size = report.plan_cache_stats
    lines = [
        table,
        f"batch: {len(report.summaries)} runs in {report.wall_s:.2f}s "
        f"({report.throughput:.1f} instances/s), digest "
        f"{report.batch_digest()}",
        f"caches: shared hit rate {report.shared_cache_hit_rate:.1%}; "
        f"parent plans {size} resident ({hits} hits / {misses} misses), "
        f"{report.warmed_plans} shipped to workers via "
        f"{report.prefetch_runs} prefetch runs",
    ]
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description=(
            "Sharded batch execution of mixed routing/sorting/multiplex "
            "workloads on the congested-clique simulator."
        ),
    )
    parser.add_argument(
        "--workers", type=int, default=0, metavar="W",
        help="0/1: in-process sequential backend; >=2: process pool of W",
    )
    parser.add_argument(
        "--batch", type=int, default=64, metavar="B",
        help="number of instances in the batch (default 64)",
    )
    parser.add_argument(
        "--scenario-mix", default=DEFAULT_MIX, metavar="MIX",
        help=(
            "weighted kind/family:weight mix, comma-separated "
            f"(default: {DEFAULT_MIX!r})"
        ),
    )
    parser.add_argument(
        "--engine", default="fast", choices=available_engines(),
        help="execution engine for every run (default: fast)",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="base seed; request i uses seed+i (default 0)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the machine-readable report instead of tables",
    )
    parser.add_argument(
        "--selfcheck", action="store_true",
        help=(
            "re-run the batch on the sequential backend and require "
            "byte-identical batch digests (CI smoke mode)"
        ),
    )
    parser.add_argument(
        "--transport", default="shm", choices=sorted(TRANSPORTS),
        help=(
            "request/result path for the process pool: shm (zero-copy "
            "shared-memory slots, default) or pickle (pre-pickled bytes)"
        ),
    )
    parser.add_argument(
        "--no-warmup", action="store_true",
        help="skip the structural prefetch / worker plan-cache warmup",
    )
    parser.add_argument(
        "--record", default=None, metavar="PATH",
        help=(
            "append every request/summary envelope to a capture file "
            "(replay with python -m repro.service.recording)"
        ),
    )
    args = parser.parse_args(argv)

    try:
        scenarios = mixed_batch(
            args.batch, mix=args.scenario_mix, seed0=args.seed
        )
    except ValueError as exc:
        parser.error(str(exc))
    requests = requests_from_scenarios(scenarios, engine=args.engine)

    service = BatchService(
        workers=args.workers,
        engine=args.engine,
        warmup=not args.no_warmup,
        transport=args.transport,
    )
    if args.record is not None:
        from .recording import Recorder

        with Recorder(
            args.record,
            meta={
                "source": "batch",
                "workers": args.workers,
                "engine": args.engine,
                "transport": args.transport if args.workers >= 2 else "",
            },
        ) as recorder:
            report = recorder.record_batch(service, requests)
    else:
        report = service.run_batch(requests)

    doc = report.to_dict()
    selfcheck_ok = True
    if args.selfcheck:
        baseline = BatchService(workers=0, engine=args.engine).run_batch(
            requests
        )
        selfcheck_ok = (
            baseline.ok and baseline.batch_digest() == report.batch_digest()
        )
        doc["selfcheck"] = {
            "sequential_digest": baseline.batch_digest(),
            "match": selfcheck_ok,
        }

    if args.json:
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        print(_render(report))
        if args.selfcheck:
            status = "match" if selfcheck_ok else "MISMATCH"
            print(
                f"selfcheck: sequential backend digest "
                f"{doc['selfcheck']['sequential_digest']} -> {status}"
            )

    if not report.ok:
        for s in report.failures:
            print(f"FAIL {s.request.name}: {s.error}", file=sys.stderr)
        return 1
    if not selfcheck_ok:
        print(
            "selfcheck FAILED: backends disagree on batch digest",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
