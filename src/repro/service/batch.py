"""Sharded batch execution: many runs, many workers, one report.

Lenzen's routing and sorting finish in O(1) rounds *per instance*, so the
axis this reproduction scales along is throughput across **many** instances
— the service regime from the ROADMAP ("heavy traffic from millions of
users").  This module is that front end:

* Requests are :class:`~repro.core.engine.RunRequest` envelopes — picklable
  coordinates, not live objects — resolved through the scenario taxonomy
  and the algorithm registry.  Anything registered with
  :func:`repro.scenarios.runner.register_algorithm` is addressable.
* Two backends shard a batch: :class:`SequentialBackend` runs in-process in
  request order (the determinism baseline), :class:`ProcessPoolBackend`
  fans chunks out to a ``ProcessPoolExecutor``.
* Every run is judged exactly as the scenario harness judges it (oracle
  verification, round bounds, message budget) and collapsed to a
  :class:`~repro.core.engine.RunSummary`; summaries stream back in request
  order so callers can consume a large batch incrementally.
* **Worker plan-cache warmup.**  The structural plans (Koenig colorings,
  group partitions, header codecs) dominate per-run setup and recur across
  a batch.  The pool backend runs a *structural prefetch pass*: one
  representative request per distinct ``(kind, family, n, algorithm,
  engine)`` group executes in the parent, the parent's
  :class:`~repro.core.context.PlanCache` is snapshotted (pickle-filtered),
  and every worker warms from that snapshot in its initializer.  Prefetch
  runs are real results — their summaries are spliced back into the batch,
  so the warmup costs no duplicated work.

The digests let any two paths over the same batch — sequential, pooled, or
direct ``engine.execute`` calls — be compared byte-for-byte; CI's service
smoke job and :mod:`benchmarks.bench_service` both gate on that.
"""

from __future__ import annotations

import hashlib
import pickle
import time
from collections import deque
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import dataclass, replace
from typing import Deque, Dict, Hashable, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..core.context import plan_cache
from ..core.engine import (
    STATUS_COMPLETED,
    STATUS_FAILED,
    RunRequest,
    RunSummary,
    available_engines,
)
from ..scenarios.generators import Scenario
from ..scenarios.runner import ScenarioOutcome, ScenarioRunner
from .transport import PendingEnvelope, make_transport

__all__ = [
    "BatchReport",
    "BatchService",
    "CHAOS_TAG_PREFIX",
    "ProcessPoolBackend",
    "SequentialBackend",
    "execute_request",
    "requests_from_scenarios",
    "structural_key",
    "summaries_digest",
]

#: Tag prefix that routes a request through the chaos fault injector
#: (:mod:`repro.service.chaos`) before execution.
CHAOS_TAG_PREFIX = "chaos:"


def summaries_digest(summaries: Iterable[RunSummary]) -> str:
    """Order-independent digest over the *resolved* per-run output digests.

    Byte-identical across backends, worker counts and scheduling — the
    cross-backend equivalence gate CI and the benches assert on.  The
    batch service and the streaming gateway both fold their summaries
    through here, which is what makes "streaming == batch == sequential"
    a one-line comparison.

    Unresolved runs — crashed engines, dead pool workers, resolution
    errors, anything with no output digest — are skipped, so the fold
    covers exactly the runs that executed to a judged end.  That is the
    chaos-harness invariant: the digest of the runs that *survived* a
    fault must match a fault-free execution of those same requests.
    """
    blob = "\n".join(
        sorted(f"{s.request.name} {s.digest}" for s in summaries if s.digest)
    ).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


def requests_from_scenarios(
    scenarios: Iterable[Scenario],
    engine: Optional[str] = None,
    algorithm: Optional[str] = None,
) -> List[RunRequest]:
    """Wrap scenario coordinates into service request envelopes."""
    return [
        RunRequest(
            kind=sc.kind,
            family=sc.family,
            n=sc.n,
            seed=sc.seed,
            algorithm=algorithm,
            engine=engine,
        )
        for sc in scenarios
    ]


def structural_key(req: RunRequest) -> Tuple:
    """The coordinate that decides "same structural plans" for warmup.

    Requests sharing this key replay identical Koenig colorings, group
    partitions and header codecs from the plan cache (the seed only varies
    payloads, never structure).  Both the batch service's prefetch pass and
    the streaming gateway's ``structural_warmup`` dedupe through here, so
    the two regimes can never disagree on what counts as warm.
    """
    return (req.kind, req.family, req.n, req.algorithm, req.engine)


#: Shared runner for request execution (stateless between runs: every
#: ``run`` builds its own workload and judges it independently).
_RUNNER = ScenarioRunner()


def _summarize(req: RunRequest, outcome: ScenarioOutcome) -> RunSummary:
    return RunSummary(
        request=req,
        ok=outcome.ok,
        status=STATUS_COMPLETED,
        engine=outcome.engine,
        rounds=outcome.rounds,
        total_packets=outcome.total_packets,
        total_words=outcome.total_words,
        max_edge_words=outcome.max_edge_words,
        digest=outcome.digest,
        wall_s=outcome.wall_s,
        shared_cache_hits=outcome.shared_cache_hits,
        shared_cache_misses=outcome.shared_cache_misses,
        error=outcome.error,
    )


def execute_request(req: RunRequest) -> RunSummary:
    """Resolve, run, verify and summarize one request (any process).

    ``engine=None`` resolves to the simulator's default (the fully-audited
    reference engine) — when dispatching through :class:`BatchService`,
    unset engines are stamped with the service's default first.

    Resolution errors (unknown family/algorithm/engine) and engine crashes
    are carried in the summary's ``error`` field with ``status ==
    STATUS_FAILED`` rather than raised: one malformed or poisoned request
    must not take down a shard of good ones.

    Requests whose ``tag`` starts with ``"chaos:"`` route through the
    fault injector first (:func:`repro.service.chaos.apply_fault`) — the
    tag travels inside the picklable envelope, so a fault fires in
    whatever process executes the request, with no worker-side setup.
    """
    try:
        if req.tag.startswith(CHAOS_TAG_PREFIX):
            from .chaos import apply_fault

            apply_fault(req.tag)
        scenario = Scenario(req.kind, req.family, req.n, req.seed)
        outcome = _RUNNER.run(
            scenario,
            algorithm=req.algorithm,
            engine=req.engine if req.engine is not None else "reference",
        )
    except Exception as exc:  # resolution/registry errors or engine crashes
        return RunSummary(
            request=req,
            ok=False,
            status=STATUS_FAILED,
            error=f"{type(exc).__name__}: {exc}",
        )
    return _summarize(req, outcome)


def _execute_chunk(reqs: List[RunRequest]) -> List[RunSummary]:
    return [execute_request(r) for r in reqs]


def _warm_worker(plans: Dict[Hashable, object]) -> None:
    """Pool-worker initializer: adopt the parent's structural plans."""
    plan_cache().warm(plans)


def _pickle_plans(plans: Dict[Hashable, object]) -> bytes:
    """Freeze a plan-cache snapshot into one reusable initializer blob.

    Pickled **once per batch** and handed to every worker initializer —
    including the workers of every pool rebuilt after a chaos kill.
    Before this existed the snapshot dict rode the ``initargs`` tuple and
    was re-pickled on every pool (re)build, which made recovery cost
    scale with the warm set.
    """
    return pickle.dumps(plans, protocol=pickle.HIGHEST_PROTOCOL)


def _warm_worker_blob(blob: bytes) -> None:
    """Pool-worker initializer: adopt a pre-pickled plan snapshot."""
    plan_cache().warm(pickle.loads(blob))


class SequentialBackend:
    """In-process, in-order execution — the determinism baseline."""

    name = "sequential"

    def execute(self, requests: Sequence[RunRequest]) -> Iterator[RunSummary]:
        for req in requests:
            yield execute_request(req)

    def close(self) -> None:
        pass


class ProcessPoolBackend:
    """Shard a batch across a ``ProcessPoolExecutor``.

    Args:
        workers: pool size (>= 1).
        warm_plans: plan-cache snapshot installed in every worker's
            process-wide :class:`~repro.core.context.PlanCache` before it
            takes work (see :meth:`PlanCache.warm`).  Pickled **once** into
            an initializer blob (:func:`_pickle_plans`) shared by every
            pool this backend builds, including rebuilds after breakage.
        chunk: requests per task; ``None`` picks ``ceil(batch / (4 *
            workers))`` capped at 32 — large enough to amortize IPC, small
            enough to keep the pool balanced and summaries streaming.
        transport: envelope transport across the executor boundary —
            ``"shm"`` (columnar envelopes through shared-memory slots,
            auto-degrading to pickle where shared memory is unavailable)
            or ``"pickle"`` (columnar envelopes through the executor's
            pickle channel).  See :mod:`repro.service.transport`.

    Chunks move as *columnar envelopes*, not per-object pickles, and are
    submitted through a sliding window (``4 * workers`` in flight) sized
    to the transport's shared-memory arena — every in-flight chunk can
    hold a slot, and summaries stream back as each envelope resolves.

    **Pool-death semantics.**  When a worker process dies mid-batch (OOM
    kill, segfault, a chaos ``kill`` fault), ``ProcessPoolExecutor`` breaks
    the *whole* pool: every pending future raises ``BrokenExecutor``.
    Instead of propagating — which would discard every already-judged
    summary — the backend marks the chunk whose envelope surfaced the
    breakage as :data:`~repro.core.engine.STATUS_FAILED`, abandons the
    outstanding envelopes (their shared-memory slots recycle when the dead
    futures settle), rebuilds the pool, and redispatches the chunks that
    had not yet been consumed.  A chunk is never resubmitted after its own
    failure, so a poison chunk that kills every pool it touches converges:
    each rebuild retires at least one chunk.  The batch digest is
    unaffected by the failed chunks (:func:`summaries_digest` folds only
    resolved runs).
    """

    name = "process-pool"

    def __init__(
        self,
        workers: int,
        warm_plans: Optional[Dict[Hashable, object]] = None,
        chunk: Optional[int] = None,
        transport: str = "shm",
    ) -> None:
        if workers < 1:
            raise ValueError("process pool needs workers >= 1")
        self.workers = workers
        self.chunk = chunk
        self._warm_blob = _pickle_plans(warm_plans or {})
        self._window = 4 * workers
        self._transport = make_transport(
            transport, slots=max(2, min(16, self._window))
        )
        #: pools rebuilt after mid-batch breakage (chaos gates read this).
        self.pool_replacements = 0
        self._pool = self._build_pool()

    @property
    def transport_name(self) -> str:
        return self._transport.name

    def _build_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_warm_worker_blob,
            initargs=(self._warm_blob,),
        )

    def _chunk_size(self, batch: int) -> int:
        if self.chunk is not None:
            return max(1, self.chunk)
        return max(1, min(32, -(-batch // (4 * self.workers))))

    def execute(self, requests: Sequence[RunRequest]) -> Iterator[RunSummary]:
        size = self._chunk_size(len(requests))
        chunks = [
            list(requests[i:i + size]) for i in range(0, len(requests), size)
        ]
        pending: Deque[Tuple[List[RunRequest], PendingEnvelope]] = deque()
        next_chunk = 0

        def refill() -> None:
            nonlocal next_chunk
            while next_chunk < len(chunks) and len(pending) < self._window:
                chunk = chunks[next_chunk]
                pending.append(
                    (chunk, self._transport.dispatch(self._pool, chunk))
                )
                next_chunk += 1

        refill()
        while pending:
            chunk, envelope = pending.popleft()
            try:
                results = envelope.decode()
            except BrokenExecutor as exc:
                for req in chunk:
                    yield RunSummary(
                        request=req,
                        ok=False,
                        status=STATUS_FAILED,
                        error=(
                            f"worker pool died mid-batch: "
                            f"{type(exc).__name__}: {exc}"
                        ),
                    )
                # The dead pool poisons every outstanding future; abandon
                # the in-flight envelopes, rebuild once and redispatch the
                # chunks not yet consumed (re-running a chunk is safe —
                # execution is deterministic and side-effect free).  The
                # failed chunk itself is retired.
                resubmit = [c for c, _ in pending]
                for _, stale in pending:
                    stale.abandon()
                pending.clear()
                self._pool.shutdown(wait=False)
                self._pool = self._build_pool()
                self.pool_replacements += 1
                for c in resubmit:
                    pending.append(
                        (c, self._transport.dispatch(self._pool, c))
                    )
            else:
                yield from results
            refill()

    def close(self) -> None:
        self._pool.shutdown()
        self._transport.close()


@dataclass
class BatchReport:
    """Aggregate view of one executed batch."""

    summaries: List[RunSummary]
    backend: str
    workers: int
    wall_s: float
    warmed_plans: int = 0
    prefetch_runs: int = 0
    plan_cache_stats: Tuple[int, int, int] = (0, 0, 0)
    #: worker pools rebuilt after mid-batch breakage (0 on a healthy run).
    pool_replacements: int = 0
    #: envelope transport the pool backend actually used ("shm", "pickle",
    #: or "" for the sequential backend, which crosses no boundary).
    transport: str = ""

    @property
    def ok(self) -> bool:
        return bool(self.summaries) and all(s.ok for s in self.summaries)

    @property
    def unresolved(self) -> List[RunSummary]:
        """Runs that never executed to a judged end (no output digest)."""
        return [s for s in self.summaries if not s.resolved]

    @property
    def failures(self) -> List[RunSummary]:
        return [s for s in self.summaries if not s.ok]

    @property
    def throughput(self) -> float:
        """Completed instances per wall-clock second."""
        return len(self.summaries) / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def shared_cache_hit_rate(self) -> float:
        hits = sum(s.shared_cache_hits for s in self.summaries)
        misses = sum(s.shared_cache_misses for s in self.summaries)
        return hits / (hits + misses) if hits + misses else 0.0

    def batch_digest(self) -> str:
        """Order-independent digest over the resolved runs' output digests.

        See :func:`summaries_digest` — shared with the streaming gateway;
        covers exactly the runs that executed to a judged end.
        """
        return summaries_digest(self.summaries)

    def by_family(self) -> Dict[Tuple[str, str], Dict[str, float]]:
        """Per ``(kind, family)`` rollup used by the CLI table."""
        rollup: Dict[Tuple[str, str], Dict[str, float]] = {}
        for s in self.summaries:
            row = rollup.setdefault(
                (s.request.kind, s.request.family),
                {"runs": 0, "ok": 0, "rounds": 0, "packets": 0, "wall_s": 0.0},
            )
            row["runs"] += 1
            row["ok"] += 1 if s.ok else 0
            row["rounds"] += s.rounds
            row["packets"] += s.total_packets
            row["wall_s"] += s.wall_s
        return rollup

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready document (the ``--json`` CLI output)."""
        hits, misses, size = self.plan_cache_stats
        return {
            "backend": self.backend,
            "workers": self.workers,
            "transport": self.transport,
            "ok": self.ok,
            "requests": len(self.summaries),
            "failed": len(self.failures),
            "wall_s": round(self.wall_s, 4),
            "throughput_per_s": round(self.throughput, 2),
            "total_rounds": sum(s.rounds for s in self.summaries),
            "total_packets": sum(s.total_packets for s in self.summaries),
            "total_words": sum(s.total_words for s in self.summaries),
            "shared_cache_hit_rate": round(self.shared_cache_hit_rate, 4),
            "unresolved": len(self.unresolved),
            "pool_replacements": self.pool_replacements,
            "plan_cache": {
                "hits": hits,
                "misses": misses,
                "size": size,
                "warmed_to_workers": self.warmed_plans,
                "prefetch_runs": self.prefetch_runs,
            },
            "batch_digest": self.batch_digest(),
            "failures": [
                {"request": s.request.name, "error": s.error}
                for s in self.failures
            ],
        }


class BatchService:
    """The batch-execution front end.

    Args:
        workers: ``0`` or ``1`` selects the in-process
            :class:`SequentialBackend`; ``>= 2`` shards across a
            :class:`ProcessPoolBackend` of that many workers.
        engine: default engine name stamped on requests that carry
            ``engine=None``.
        warmup: run the structural prefetch pass before sharding (pool
            backend only; the sequential backend warms its own cache as a
            side effect of running).
        max_prefetch: cap on prefetch runs.  Warmup is best-effort
            amortization: a batch sweeping many distinct structures (every
            request its own group) must not degenerate into running the
            whole batch serially in the parent, so at most this many
            representatives execute up front and the remaining groups start
            cold in the workers.
        chunk: override the pool backend's chunk size.
        transport: envelope transport of the pool backend (``"shm"`` or
            ``"pickle"``; the sequential backend ignores it).
    """

    def __init__(
        self,
        workers: int = 0,
        engine: str = "fast",
        warmup: bool = True,
        max_prefetch: int = 32,
        chunk: Optional[int] = None,
        transport: str = "shm",
    ) -> None:
        if engine not in available_engines():
            raise ValueError(
                f"unknown engine {engine!r}; available: "
                f"{', '.join(available_engines())}"
            )
        self.workers = max(0, int(workers))
        self.engine = engine
        self.warmup = warmup
        self.max_prefetch = max(0, int(max_prefetch))
        self.chunk = chunk
        self.transport = transport

    # -- internals ----------------------------------------------------------

    def _stamp(self, requests: Iterable[RunRequest]) -> List[RunRequest]:
        return [
            req if req.engine is not None else replace(req, engine=self.engine)
            for req in requests
        ]

    def _prefetch_indices(self, requests: Sequence[RunRequest]) -> List[int]:
        """Index of the first request of every distinct structural group.

        Capped so warmup stays best-effort amortization: at most
        ``max_prefetch`` representatives, and never more than a small
        fraction of the batch per worker — a structurally diverse batch
        must not serialize into the parent while the pool sits idle.
        """
        cap = min(
            self.max_prefetch,
            len(requests) // (2 * max(1, self.workers)) + 1,
        )
        seen = set()
        picks = []
        for i, req in enumerate(requests):
            if req.tag.startswith(CHAOS_TAG_PREFIX):
                # Prefetch executes in the parent process; a chaos fault
                # (worst case ``chaos:kill``) must only ever fire behind
                # the executor boundary, in a disposable pool worker.
                continue
            key = structural_key(req)
            if key not in seen:
                seen.add(key)
                picks.append(i)
                if len(picks) >= cap:
                    break
        return picks

    # -- execution ----------------------------------------------------------

    def execute(
        self,
        requests: Iterable[RunRequest],
        _info: Optional[Dict[str, object]] = None,
    ) -> Iterator[Tuple[RunRequest, RunSummary]]:
        """Execute a batch, streaming ``(request, summary)`` in order.

        ``_info``, when given, receives warmup accounting (``warmed``,
        ``prefetch_runs``) — internal plumbing for :meth:`run_batch`.
        """
        stamped = self._stamp(requests)
        if self.workers < 2:
            backend = SequentialBackend()
            try:
                for req, summary in zip(stamped, backend.execute(stamped)):
                    yield req, summary
            finally:
                backend.close()
            return
        # Pool path.  The structural prefetch pass runs one representative
        # per distinct (kind, family, n, algorithm, engine) group in the
        # parent — real work, its summaries are spliced back into the batch
        # — then ships the resulting plan-cache snapshot to every worker.
        prefetched: Dict[int, RunSummary] = {}
        warm_plans: Dict[Hashable, object] = {}
        if self.warmup:
            for i in self._prefetch_indices(stamped):
                prefetched[i] = execute_request(stamped[i])
            warm_plans = plan_cache().snapshot()
        if _info is not None:
            _info["warmed"] = len(warm_plans)
            _info["prefetch_runs"] = len(prefetched)
        backend = ProcessPoolBackend(
            self.workers,
            warm_plans=warm_plans,
            chunk=self.chunk,
            transport=self.transport,
        )
        if _info is not None:
            _info["transport"] = backend.transport_name
        rest = [req for i, req in enumerate(stamped) if i not in prefetched]
        try:
            pooled = backend.execute(rest)
            for i, req in enumerate(stamped):
                if i in prefetched:
                    yield req, prefetched[i]
                else:
                    yield req, next(pooled)
        finally:
            if _info is not None:
                _info["pool_replacements"] = backend.pool_replacements
            backend.close()

    def run_batch(self, requests: Iterable[RunRequest]) -> BatchReport:
        """Execute a batch to completion and aggregate the summaries."""
        pc = plan_cache()
        hits0, misses0, _ = pc.stats()
        info: Dict[str, object] = {}
        t0 = time.perf_counter()
        summaries = [s for _, s in self.execute(requests, _info=info)]
        wall = time.perf_counter() - t0
        hits1, misses1, size1 = pc.stats()
        return BatchReport(
            summaries=summaries,
            backend=(
                ProcessPoolBackend.name if self.workers >= 2
                else SequentialBackend.name
            ),
            workers=self.workers if self.workers >= 2 else 1,
            wall_s=wall,
            warmed_plans=int(info.get("warmed", 0)),
            prefetch_runs=int(info.get("prefetch_runs", 0)),
            plan_cache_stats=(hits1 - hits0, misses1 - misses0, size1),
            pool_replacements=int(info.get("pool_replacements", 0)),
            transport=str(info.get("transport", "")),
        )
