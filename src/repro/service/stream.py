"""Streaming asyncio gateway: online execution with backpressure.

The batch service (:mod:`repro.service.batch`) answers "run these B
instances and tell me when they are all done" — an *offline* regime judged
on batch wall-time.  This module is the *online* regime the ROADMAP's
"heavy traffic" north star actually means: a long-lived gateway that
accepts a continuous stream of :class:`~repro.core.engine.RunRequest`
envelopes, applies explicit backpressure, enforces per-request deadlines,
and is judged on sustained throughput and tail latency (p50/p95/p99).

Architecture::

    replay(requests, arrivals)        open-loop arrival clock
        -> StreamGateway.submit()     bounded queue, reject-or-block
            -> worker tasks (async)   deadline check, dispatch
                -> Executor pool      execute_request in process/thread
        <- asyncio.Future[RunSummary] per request, resolved on completion

* **Backpressure.**  The request queue is bounded (``queue_cap``).  Policy
  ``"reject"`` resolves the request immediately with a ``status ==
  "rejected"`` summary when the queue is full — load shedding, the
  open-loop default.  Policy ``"block"`` awaits queue space, propagating
  backpressure into the submitter (what a closed-loop client sees).
* **Deadlines.**  A request carries ``deadline_ms`` (or inherits the
  gateway default).  A request whose deadline expires while queued is
  cancelled without executing; one that exceeds its remaining budget
  mid-run is abandoned (``status == "cancelled"``).  Abandonment drops the
  result but cannot retract work already submitted to a pool worker — that
  worker finishes the stale run and only then takes new work, exactly the
  slot-occupancy cost a real service pays for late cancellation.
* **Warm workers.**  The process backend ships the parent's
  :class:`~repro.core.context.PlanCache` snapshot to every pool worker at
  start (same ``snapshot()/warm()`` machinery as the batch service), and
  :func:`structural_warmup` pre-populates the parent cache from one
  representative request per distinct structural group.  The thread
  backend shares the process-wide plan cache outright — it exists for
  environments where process pools are unavailable (restricted sandboxes,
  embedded interpreters); the GIL serializes pure-Python execution, so it
  trades throughput for portability.
* **Metrics.**  :class:`StreamMetrics` records latency/queue-wait/service
  histograms (:class:`~repro.core.metrics.LatencyHistogram`), status
  counters and queue-depth extrema; :class:`StreamReport` rolls them up
  with the order-independent digest shared with the batch service, so
  "streaming == batch == sequential" is a one-line comparison.

Command line::

    python -m repro.service.stream --rate 8 --duration 2 --workers 2
    python -m repro.service.stream --rate 0 --requests 64 --workers 4 \
        --backend process --selfcheck --json   # saturated throughput mode

See DESIGN.md section 7 for the semantics.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from concurrent.futures import (
    BrokenExecutor,
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from ..core.context import plan_cache
from ..core.engine import (
    STATUS_CANCELLED,
    STATUS_COMPLETED,
    STATUS_FAILED,
    STATUS_REJECTED,
    RunRequest,
    RunSummary,
    available_engines,
)
from ..core.metrics import LatencyHistogram
from ..scenarios.generators import DEFAULT_MIX, arrival_times, mixed_batch
from .batch import (
    CHAOS_TAG_PREFIX,
    BatchService,
    _warm_worker,
    execute_request,
    requests_from_scenarios,
    structural_key,
    summaries_digest,
)

__all__ = [
    "STATUS_CANCELLED",
    "STATUS_COMPLETED",
    "STATUS_FAILED",
    "STATUS_REJECTED",
    "StreamGateway",
    "StreamMetrics",
    "StreamReport",
    "replay",
    "serve",
    "structural_warmup",
]

BACKENDS = ("process", "thread")
POLICIES = ("reject", "block")


def structural_warmup(
    requests: Sequence[RunRequest], max_runs: int = 16
) -> List[RunSummary]:
    """Warm the parent plan cache from structural representatives.

    Runs one request per distinct ``(kind, family, n, algorithm, engine)``
    group — capped at ``max_runs`` — in the calling process, so the plans
    they build land in the process-wide cache before a gateway starts (the
    process backend then ships the snapshot to its workers).  Unlike the
    batch service's prefetch pass these runs are *not* part of any stream:
    a stream has no fixed membership to splice results into, so warmup here
    is paid once at startup, like a service loading its models.
    """
    seen = set()
    out: List[RunSummary] = []
    for req in requests:
        if req.tag.startswith(CHAOS_TAG_PREFIX):
            # Warmup executes in the calling process: a chaos fault here
            # (worst case ``chaos:kill``) would take down the gateway's
            # parent instead of a disposable pool worker.  Faults only
            # ever fire behind the executor boundary.
            continue
        key = structural_key(req)
        if key in seen:
            continue
        seen.add(key)
        out.append(execute_request(req))
        if len(out) >= max_runs:
            break
    return out


class StreamMetrics:
    """The gateway's metrics core: histograms, counters, queue depth."""

    def __init__(self) -> None:
        self.latency = LatencyHistogram()
        self.queue_wait = LatencyHistogram()
        self.service = LatencyHistogram()
        #: latency of failed runs, kept out of the success histograms: a
        #: crash that fails fast must not be allowed to *improve* p99.
        self.failure_latency = LatencyHistogram()
        self.offered = 0
        self.completed = 0
        self.rejected = 0
        self.cancelled = 0
        #: runs that produced no judged result (STATUS_FAILED: engine
        #: crashes, dead pool workers) plus completed runs whose
        #: verification/bounds judgement failed.
        self.failed = 0
        #: executor pools rebuilt after breakage (chaos recovery gate).
        self.pool_replacements = 0
        self.queue_depth_max = 0
        self._depth_sum = 0
        self._depth_samples = 0

    def observe_depth(self, depth: int) -> None:
        if depth > self.queue_depth_max:
            self.queue_depth_max = depth
        self._depth_sum += depth
        self._depth_samples += 1

    @property
    def queue_depth_mean(self) -> float:
        if not self._depth_samples:
            return 0.0
        return self._depth_sum / self._depth_samples

    def observe(self, summary: RunSummary) -> None:
        """Fold one resolved summary into the counters and histograms."""
        if summary.status == STATUS_REJECTED:
            self.rejected += 1
            return
        if summary.status == STATUS_FAILED:
            # Failed runs never enter the success percentiles: a crashed
            # worker answering in microseconds would otherwise drag p50
            # down exactly when the service is at its sickest.
            self.failed += 1
            self.failure_latency.record(summary.latency_s)
            return
        self.queue_wait.record(summary.queue_s)
        self.latency.record(summary.latency_s)
        if summary.status == STATUS_CANCELLED:
            self.cancelled += 1
            return
        self.service.record(summary.latency_s - summary.queue_s)
        self.completed += 1
        if not summary.ok:
            self.failed += 1

    def to_dict(self) -> Dict[str, object]:
        return {
            "offered": self.offered,
            "completed": self.completed,
            "rejected": self.rejected,
            "cancelled": self.cancelled,
            "failed": self.failed,
            "pool_replacements": self.pool_replacements,
            "queue_depth_max": self.queue_depth_max,
            "queue_depth_mean": round(self.queue_depth_mean, 2),
            "latency": self.latency.summary(),
            "queue_wait": self.queue_wait.summary(),
            "service": self.service.summary(),
            "failure_latency": self.failure_latency.summary(),
        }


@dataclass
class _Ticket:
    """One enqueued request: envelope, enqueue timestamp, result future."""

    request: RunRequest
    enqueued_at: float
    future: "asyncio.Future[RunSummary]"


class StreamGateway:
    """Long-lived asyncio front end over a warm executor pool.

    Args:
        workers: concurrent in-flight executions (async worker tasks, and
            the executor pool size).
        engine: default engine name stamped on requests with
            ``engine=None``.
        backend: ``"process"`` (a ``ProcessPoolExecutor`` with plan-cache
            warm workers — the throughput configuration) or ``"thread"``
            (portable, GIL-serialized).
        queue_cap: bound on the request queue — the backpressure knob.
        policy: ``"reject"`` (shed load when the queue is full) or
            ``"block"`` (make ``submit`` await space).
        deadline_ms: default per-request latency budget; a request's own
            ``deadline_ms`` wins.  ``None`` means no deadline.

    Use as an async context manager, or call :meth:`start` / :meth:`close`.
    """

    def __init__(
        self,
        workers: int = 2,
        engine: str = "fast",
        backend: str = "process",
        queue_cap: int = 64,
        policy: str = "reject",
        deadline_ms: Optional[float] = None,
    ) -> None:
        if engine not in available_engines():
            raise ValueError(
                f"unknown engine {engine!r}; available: "
                f"{', '.join(available_engines())}"
            )
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; want one of {BACKENDS}"
            )
        if policy not in POLICIES:
            raise ValueError(
                f"unknown policy {policy!r}; want one of {POLICIES}"
            )
        if workers < 1:
            raise ValueError("stream gateway needs workers >= 1")
        if queue_cap < 1:
            raise ValueError("queue_cap must be >= 1")
        self.workers = int(workers)
        self.engine = engine
        self.backend = backend
        self.queue_cap = int(queue_cap)
        self.policy = policy
        self.deadline_ms = deadline_ms
        self.metrics = StreamMetrics()
        self._queue: Optional["asyncio.Queue[_Ticket]"] = None
        self._pool: Optional[Executor] = None
        self._tasks: List["asyncio.Task[None]"] = []
        self._closed = False

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> "StreamGateway":
        """Build the executor pool and spawn the worker tasks."""
        if self._pool is not None:
            raise RuntimeError("gateway already started")
        if self._closed:
            # A closed gateway never accepts submissions again; starting a
            # pool for it would leak processes and tasks.  One gateway, one
            # lifecycle.
            raise RuntimeError("gateway already closed; build a new one")
        self._pool = self._build_pool()
        self._queue = asyncio.Queue(maxsize=self.queue_cap)
        self._tasks = [
            asyncio.create_task(self._worker(), name=f"stream-worker-{i}")
            for i in range(self.workers)
        ]
        return self

    def _build_pool(self) -> Executor:
        if self.backend == "process":
            # Warm every pool worker from the parent's plan-cache snapshot
            # (whatever structural_warmup / earlier runs left resident).
            return ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_warm_worker,
                initargs=(plan_cache().snapshot(),),
            )
        # Threads share the process-wide plan cache; no shipping needed.
        return ThreadPoolExecutor(max_workers=self.workers)

    def _replace_pool(self, broken: Executor) -> None:
        """Swap a broken executor pool for a fresh warm one.

        A dead pool child breaks the whole ``ProcessPoolExecutor``: every
        in-flight and future submission raises ``BrokenExecutor``.  The
        in-flight requests are already lost (their workers fail them as
        :data:`STATUS_FAILED`), but the gateway itself must outlive the
        pool — a long-lived service cannot answer every request after one
        crash with "broken pool".  Guarded by identity: several worker
        tasks observe the same breakage in the same event-loop iteration,
        and only the first one rebuilds (no awaits between check and swap,
        so the check cannot interleave).
        """
        if self._closed or self._pool is not broken:
            return
        broken.shutdown(wait=False)
        self._pool = self._build_pool()
        self.metrics.pool_replacements += 1

    async def drain(self) -> None:
        """Wait until every enqueued request has been resolved."""
        if self._queue is not None:
            await self._queue.join()

    def _resolve_stragglers(self) -> None:
        """Fail any ticket still queued after the workers are gone.

        ``asyncio.Queue.join`` performs a single un-rechecked wait on its
        "all tasks done" event, so a submitter suspended in ``put`` under
        the ``block`` policy can slip a ticket into the queue in the same
        event-loop iteration that wakes ``drain()`` — after which no
        worker will ever pick it up.  Both ``close()`` and the post-put
        re-check in :meth:`submit` funnel such tickets here: resolve with
        a cancelled summary and balance the queue's task counter so a
        later ``drain()`` cannot hang either.
        """
        if self._queue is None:
            return
        while True:
            try:
                ticket = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                return
            summary = RunSummary(
                request=ticket.request,
                ok=False,
                status=STATUS_CANCELLED,
                latency_s=time.perf_counter() - ticket.enqueued_at,
                error="gateway closed before the request could execute",
            )
            self.metrics.observe(summary)
            if not ticket.future.done():
                ticket.future.set_result(summary)
            self._queue.task_done()

    async def close(self) -> None:
        """Drain the queue, stop the workers, shut the pool down."""
        if self._closed:
            return
        self._closed = True
        await self.drain()
        for task in self._tasks:
            task.cancel()
        await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks = []
        # A blocked submitter may have enqueued between drain() waking and
        # the workers being cancelled; its own post-put re-check resolves
        # it, but only if it has run yet — sweep here as well so close()
        # never leaves an unresolvable ticket behind.
        self._resolve_stragglers()
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    async def __aenter__(self) -> "StreamGateway":
        return await self.start()

    async def __aexit__(self, *exc: object) -> None:
        await self.close()

    # -- submission ----------------------------------------------------------

    async def submit(self, request: RunRequest) -> "asyncio.Future[RunSummary]":
        """Enqueue one request; returns the future of its summary.

        Under the ``"reject"`` policy the returned future may already be
        resolved (with a ``status == "rejected"`` summary) — submission
        itself never blocks.  Under ``"block"`` this coroutine suspends
        until the queue has room.
        """
        if self._queue is None or self._closed:
            raise RuntimeError("gateway is not running")
        req = (
            request
            if request.engine is not None
            else replace(request, engine=self.engine)
        )
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[RunSummary]" = loop.create_future()
        self.metrics.offered += 1
        now = time.perf_counter()
        ticket = _Ticket(req, now, future)
        if self.policy == "reject" and self._queue.full():
            summary = RunSummary(
                request=req,
                ok=False,
                status=STATUS_REJECTED,
                error=(
                    f"backpressure: queue full "
                    f"(cap {self.queue_cap}, policy reject)"
                ),
            )
            self.metrics.observe(summary)
            future.set_result(summary)
            return future
        await self._queue.put(ticket)  # suspends only under "block"
        if self._closed:
            # The gateway closed while this submitter was suspended in
            # ``put``: drain() has already been released and the workers
            # are (being) cancelled, so this ticket would never resolve.
            # Fail it — and anything else stranded — right now.
            self._resolve_stragglers()
            return future
        self.metrics.observe_depth(self._queue.qsize())
        return future

    # -- workers -------------------------------------------------------------

    def _deadline_s(self, req: RunRequest) -> Optional[float]:
        ms = req.deadline_ms if req.deadline_ms is not None else self.deadline_ms
        if ms is None or ms <= 0:
            return None
        return ms / 1000.0

    async def _worker(self) -> None:
        assert self._queue is not None
        while True:
            ticket = await self._queue.get()
            try:
                pool = self._pool
                try:
                    summary = await self._process(ticket)
                except Exception as exc:
                    # Infrastructure failure (e.g. BrokenProcessPool after a
                    # pool child is OOM-killed, pickling errors).  The ticket
                    # MUST still resolve — an unresolved future deadlocks
                    # serve() — and the worker task must survive to fail the
                    # remaining backlog fast rather than hang it.  The run
                    # is FAILED, not completed: it produced no result, and
                    # mislabeling it would poison digests and percentiles.
                    summary = RunSummary(
                        request=ticket.request,
                        ok=False,
                        status=STATUS_FAILED,
                        latency_s=time.perf_counter() - ticket.enqueued_at,
                        error=f"executor failure: {type(exc).__name__}: {exc}",
                    )
                    if isinstance(exc, BrokenExecutor):
                        self._replace_pool(pool)
                self.metrics.observe(summary)
                if not ticket.future.done():
                    ticket.future.set_result(summary)
            finally:
                self._queue.task_done()

    async def _process(self, ticket: _Ticket) -> RunSummary:
        req = ticket.request
        started = time.perf_counter()
        waited = started - ticket.enqueued_at
        deadline_s = self._deadline_s(req)
        if deadline_s is not None and waited >= deadline_s:
            return RunSummary(
                request=req,
                ok=False,
                status=STATUS_CANCELLED,
                queue_s=waited,
                latency_s=waited,
                error=(
                    f"deadline: expired after {waited * 1e3:.1f}ms in queue "
                    f"(budget {deadline_s * 1e3:.0f}ms)"
                ),
            )
        budget = None if deadline_s is None else deadline_s - waited
        loop = asyncio.get_running_loop()
        call = loop.run_in_executor(self._pool, execute_request, req)
        try:
            summary = await asyncio.wait_for(call, timeout=budget)
        except asyncio.TimeoutError:
            total = time.perf_counter() - ticket.enqueued_at
            return RunSummary(
                request=req,
                ok=False,
                status=STATUS_CANCELLED,
                queue_s=waited,
                latency_s=total,
                error=(
                    f"deadline: exceeded mid-run after {total * 1e3:.1f}ms "
                    f"(budget {deadline_s * 1e3:.0f}ms); result abandoned"
                ),
            )
        # execute_request stamps STATUS_FAILED on runs that crashed inside
        # the worker (poison requests, resolution errors); everything else
        # ran to a judged end.  Preserve the failure label — the gateway
        # only adds its own timing.
        return replace(
            summary,
            status=(
                summary.status
                if summary.status == STATUS_FAILED
                else STATUS_COMPLETED
            ),
            queue_s=waited,
            latency_s=time.perf_counter() - ticket.enqueued_at,
        )


async def replay(
    gateway: StreamGateway,
    requests: Sequence[RunRequest],
    arrivals: Sequence[float],
) -> List["asyncio.Future[RunSummary]"]:
    """Open-loop load generator: submit each request at its arrival time.

    ``arrivals[i]`` is request ``i``'s offset (seconds) from the replay
    start; the clock does not wait for completions, so a slow gateway
    falls behind and the backpressure policy decides what happens.  Under
    the ``"block"`` policy a full queue stalls the clock itself — the
    closed-loop degradation a blocking client experiences.
    """
    if len(requests) != len(arrivals):
        raise ValueError(
            f"{len(requests)} requests but {len(arrivals)} arrival times"
        )
    t0 = time.perf_counter()
    futures: List["asyncio.Future[RunSummary]"] = []
    for req, at in zip(requests, arrivals):
        delay = t0 + at - time.perf_counter()
        if delay > 0:
            await asyncio.sleep(delay)
        else:
            # Even a saturated replay must yield so worker tasks can run.
            await asyncio.sleep(0)
        futures.append(await gateway.submit(req))
    return futures


@dataclass
class StreamReport:
    """Aggregate view of one replayed stream."""

    summaries: List[RunSummary]
    wall_s: float
    backend: str
    workers: int
    queue_cap: int
    policy: str
    deadline_ms: Optional[float]
    engine: str
    metrics: Dict[str, object] = field(default_factory=dict)

    @property
    def completed(self) -> List[RunSummary]:
        return [s for s in self.summaries if s.status == STATUS_COMPLETED]

    @property
    def rejected(self) -> List[RunSummary]:
        return [s for s in self.summaries if s.status == STATUS_REJECTED]

    @property
    def cancelled(self) -> List[RunSummary]:
        return [s for s in self.summaries if s.status == STATUS_CANCELLED]

    @property
    def failed(self) -> List[RunSummary]:
        """Runs that produced no judged result (crashes, dead workers)."""
        return [s for s in self.summaries if s.status == STATUS_FAILED]

    @property
    def failures(self) -> List[RunSummary]:
        """Failed runs plus completed runs whose judgement failed."""
        return self.failed + [s for s in self.completed if not s.ok]

    @property
    def ok(self) -> bool:
        """Every run either completed with a passing judgement or was shed.

        Rejections and cancellations are *policy outcomes* of an overloaded
        stream, not correctness failures; they are reported separately.
        Failed runs (engine crashes, executor breakage) are failures.
        """
        return not self.failures

    @property
    def throughput(self) -> float:
        """Completed instances per wall-clock second (sustained)."""
        return len(self.completed) / self.wall_s if self.wall_s > 0 else 0.0

    def stream_digest(self) -> str:
        """Order-independent digest over the *completed* runs.

        Same fold as :meth:`BatchReport.batch_digest`, so a loss-free
        stream (no rejections/cancellations) over a request set must equal
        the batch digest of any backend over that set.
        """
        return summaries_digest(self.completed)

    def to_dict(self) -> Dict[str, object]:
        return {
            "backend": self.backend,
            "workers": self.workers,
            "queue_cap": self.queue_cap,
            "policy": self.policy,
            "deadline_ms": self.deadline_ms,
            "engine": self.engine,
            "ok": self.ok,
            "offered": len(self.summaries),
            "completed": len(self.completed),
            "rejected": len(self.rejected),
            "cancelled": len(self.cancelled),
            "failed": len(self.failures),
            "wall_s": round(self.wall_s, 4),
            "throughput_per_s": round(self.throughput, 2),
            "stream_digest": self.stream_digest(),
            "metrics": self.metrics,
            "failures": [
                {"request": s.request.name, "error": s.error}
                for s in self.failures
            ],
        }


def serve(
    requests: Sequence[RunRequest],
    arrivals: Sequence[float],
    *,
    workers: int = 2,
    engine: str = "fast",
    backend: str = "process",
    queue_cap: int = 64,
    policy: str = "reject",
    deadline_ms: Optional[float] = None,
    warmup: bool = True,
    record: Optional[str] = None,
) -> StreamReport:
    """Run one full open-loop stream to completion (sync entry point).

    Warms the parent plan cache from structural representatives (shipped
    to process-backend workers), replays the arrival timeline through a
    fresh :class:`StreamGateway`, drains it, and rolls up the report.

    ``record`` names a capture file: every submitted request (with its
    observed arrival offset) and every resolved summary is appended to it
    through a :class:`~repro.service.recording.Recorder`, so the run can
    be re-fed deterministically later (trace-driven load tests, chaos
    forensics).
    """
    if warmup:
        structural_warmup(
            [
                req if req.engine is not None else replace(req, engine=engine)
                for req in requests
            ]
        )

    async def _main() -> StreamReport:
        recorder = None
        if record is not None:
            from .recording import Recorder

            recorder = Recorder(
                record,
                meta={
                    "source": "stream",
                    "workers": workers,
                    "engine": engine,
                    "backend": backend,
                    "queue_cap": queue_cap,
                    "policy": policy,
                    "deadline_ms": deadline_ms,
                },
            )
        gateway = StreamGateway(
            workers=workers,
            engine=engine,
            backend=backend,
            queue_cap=queue_cap,
            policy=policy,
            deadline_ms=deadline_ms,
        )
        try:
            async with gateway:
                front = (
                    gateway if recorder is None else recorder.attach(gateway)
                )
                t0 = time.perf_counter()
                futures = await replay(front, requests, arrivals)
                await gateway.drain()
                wall = time.perf_counter() - t0
                summaries = [await f for f in futures]
            if recorder is not None:
                recorder.record_metrics(gateway.metrics)
        finally:
            if recorder is not None:
                recorder.close()
        return StreamReport(
            summaries=summaries,
            wall_s=wall,
            backend=f"{backend}-stream",
            workers=workers,
            queue_cap=queue_cap,
            policy=policy,
            deadline_ms=deadline_ms,
            engine=engine,
            metrics=gateway.metrics.to_dict(),
        )

    return asyncio.run(_main())


# -- CLI ---------------------------------------------------------------------


def _render(report: StreamReport, arrivals_label: str) -> str:
    from ..analysis import render_table

    doc = report.to_dict()
    metrics = doc["metrics"]
    rows = []
    for label in ("latency", "queue_wait", "service"):
        h = metrics[label]
        rows.append([
            label,
            h["count"],
            f"{h['p50_ms']:.1f}",
            f"{h['p95_ms']:.1f}",
            f"{h['p99_ms']:.1f}",
            f"{h['max_ms']:.1f}",
        ])
    table = render_table(
        f"stream gateway [{report.backend}, workers={report.workers}, "
        f"queue<={report.queue_cap}, policy={report.policy}]",
        ["metric", "count", "p50 ms", "p95 ms", "p99 ms", "max ms"],
        rows,
    )
    lines = [
        table,
        f"stream: {doc['offered']} offered ({arrivals_label}) -> "
        f"{doc['completed']} completed, {doc['rejected']} rejected, "
        f"{doc['cancelled']} cancelled, {doc['failed']} failed in "
        f"{report.wall_s:.2f}s ({report.throughput:.1f} instances/s "
        f"sustained)",
        f"queue depth: max {metrics['queue_depth_max']}, "
        f"mean {metrics['queue_depth_mean']}; digest "
        f"{doc['stream_digest']}",
    ]
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.stream",
        description=(
            "Open-loop streaming gateway over the congested-clique "
            "simulator: Poisson (or uniform/saturated) arrivals, bounded "
            "queue with backpressure, per-request deadlines, tail-latency "
            "metrics."
        ),
    )
    parser.add_argument(
        "--rate", type=float, default=8.0, metavar="R",
        help="arrival rate per second; 0 = saturated (all at t=0)",
    )
    parser.add_argument(
        "--duration", type=float, default=2.0, metavar="D",
        help="seconds of offered arrivals; requests = rate * duration",
    )
    parser.add_argument(
        "--requests", type=int, default=None, metavar="N",
        help="exact request count (overrides rate * duration)",
    )
    parser.add_argument(
        "--arrivals", default="poisson",
        choices=("poisson", "uniform", "saturated"),
        help="arrival process (default: poisson; --rate 0 forces saturated)",
    )
    parser.add_argument(
        "--workers", type=int, default=2, metavar="W",
        help="concurrent executions / pool size (default 2)",
    )
    parser.add_argument(
        "--queue-cap", type=int, default=64, metavar="Q",
        help="request queue bound (default 64)",
    )
    parser.add_argument(
        "--policy", default="reject", choices=POLICIES,
        help="backpressure policy when the queue is full (default: reject)",
    )
    parser.add_argument(
        "--deadline-ms", type=float, default=None, metavar="MS",
        help="default per-request latency budget; omit for no deadline",
    )
    parser.add_argument(
        "--backend", default="process", choices=BACKENDS,
        help="executor backend (default: process)",
    )
    parser.add_argument(
        "--engine", default="fast", choices=available_engines(),
        help="execution engine for every run (default: fast)",
    )
    parser.add_argument(
        "--scenario-mix", default=DEFAULT_MIX, metavar="MIX",
        help="weighted kind/family:weight mix (see repro.service)",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="base seed for workloads and the arrival process (default 0)",
    )
    parser.add_argument(
        "--no-warmup", action="store_true",
        help="skip the structural plan-cache warmup pass",
    )
    parser.add_argument(
        "--record", default=None, metavar="PATH",
        help=(
            "append every request/summary envelope plus arrival offsets "
            "to a capture file (replay with python -m "
            "repro.service.recording)"
        ),
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the machine-readable report instead of tables",
    )
    parser.add_argument(
        "--selfcheck", action="store_true",
        help=(
            "re-run the completed requests on the sequential batch backend "
            "and require byte-identical digests (CI smoke mode)"
        ),
    )
    args = parser.parse_args(argv)

    if args.requests is not None:
        count = args.requests
    elif args.rate <= 0:
        parser.error(
            "--rate 0 (saturated mode) has no arrival clock to derive a "
            "request count from; give an explicit --requests"
        )
    else:
        count = int(args.rate * args.duration)
    if count < 1:
        parser.error("need at least one request (--requests or rate*duration)")
    process = "saturated" if args.rate <= 0 else args.arrivals
    try:
        scenarios = mixed_batch(count, mix=args.scenario_mix, seed0=args.seed)
        arrivals = arrival_times(
            process, max(args.rate, 1e-9), count, seed=args.seed
        )
    except ValueError as exc:
        parser.error(str(exc))
    requests = requests_from_scenarios(scenarios, engine=args.engine)

    report = serve(
        requests,
        arrivals,
        workers=args.workers,
        engine=args.engine,
        backend=args.backend,
        queue_cap=args.queue_cap,
        policy=args.policy,
        deadline_ms=args.deadline_ms,
        warmup=not args.no_warmup,
        record=args.record,
    )

    doc = report.to_dict()
    selfcheck_ok = True
    if args.selfcheck:
        done = [s.request for s in report.completed]
        if done:
            baseline = BatchService(workers=0, engine=args.engine).run_batch(
                done
            )
            selfcheck_ok = (
                baseline.ok
                and baseline.batch_digest() == report.stream_digest()
            )
            doc["selfcheck"] = {
                "sequential_digest": baseline.batch_digest(),
                "match": selfcheck_ok,
            }
        else:
            selfcheck_ok = False
            doc["selfcheck"] = {"sequential_digest": "", "match": False}

    if args.json:
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        label = f"{process} @ {args.rate:g}/s"
        print(_render(report, label))
        if args.selfcheck:
            status = "match" if selfcheck_ok else "MISMATCH"
            print(
                f"selfcheck: sequential backend digest "
                f"{doc['selfcheck']['sequential_digest']} -> {status}"
            )

    if not report.ok:
        for s in report.failures:
            print(f"FAIL {s.request.name}: {s.error}", file=sys.stderr)
        return 1
    if not selfcheck_ok:
        print(
            "selfcheck FAILED: stream and sequential backend disagree",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
