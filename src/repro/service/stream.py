"""Streaming asyncio gateway: online execution with backpressure.

The batch service (:mod:`repro.service.batch`) answers "run these B
instances and tell me when they are all done" — an *offline* regime judged
on batch wall-time.  This module is the *online* regime the ROADMAP's
"heavy traffic" north star actually means: a long-lived gateway that
accepts a continuous stream of :class:`~repro.core.engine.RunRequest`
envelopes, applies explicit backpressure, enforces per-request deadlines,
and is judged on sustained throughput and tail latency (p50/p95/p99).

Architecture::

    replay(requests, arrivals)        open-loop arrival clock
        -> StreamGateway.submit()     bounded queue, reject-or-block
            -> worker tasks (async)   deadline check, dispatch
                -> Executor pool      execute_request in process/thread
        <- asyncio.Future[RunSummary] per request, resolved on completion

* **Backpressure.**  The request queue is bounded (``queue_cap``).  Policy
  ``"reject"`` resolves the request immediately with a ``status ==
  "rejected"`` summary when the queue is full — load shedding, the
  open-loop default.  Policy ``"block"`` awaits queue space, propagating
  backpressure into the submitter (what a closed-loop client sees).
* **Deadlines.**  A request carries ``deadline_ms`` (or inherits the
  gateway default).  A request whose deadline expires while queued is
  cancelled without executing; one that exceeds its remaining budget
  mid-run is abandoned (``status == "cancelled"``).  Abandonment drops the
  result but cannot retract work already submitted to a pool worker — that
  worker finishes the stale run and only then takes new work, exactly the
  slot-occupancy cost a real service pays for late cancellation.
* **Warm workers.**  The process backend ships the parent's
  :class:`~repro.core.context.PlanCache` snapshot to every pool worker at
  start (same ``snapshot()/warm()`` machinery as the batch service), and
  :func:`structural_warmup` pre-populates the parent cache from one
  representative request per distinct structural group.  The thread
  backend shares the process-wide plan cache outright — it exists for
  environments where process pools are unavailable (restricted sandboxes,
  embedded interpreters); the GIL serializes pure-Python execution, so it
  trades throughput for portability.
* **Metrics.**  :class:`StreamMetrics` records latency/queue-wait/service
  histograms (:class:`~repro.core.metrics.LatencyHistogram`), status
  counters and queue-depth extrema; :class:`StreamReport` rolls them up
  with the order-independent digest shared with the batch service, so
  "streaming == batch == sequential" is a one-line comparison.
* **Zero-copy transport.**  The process backend ships work as columnar
  envelopes (:mod:`repro.service.transport`) — shared-memory slots by
  default, pickle-bytes fallback — instead of per-object pickles.
* **Micro-batching.**  Dispatchers can coalesce up to K queued requests
  (or wait T ms for batch-mates, whichever first; K adapts to observed
  queue depth) into one executor hop.  Off by default (K=1): coalescing
  trades per-request deadline granularity for IPC amortization, so it is
  an explicit opt-in for throughput-oriented streams.
* **Autoscaling.**  With ``autoscale=True`` a sampler task feeds observed
  queue depth to an :class:`~repro.service.transport.AutoscalePolicy` and
  spawns or retires dispatcher tasks on sustained pressure; retirement
  uses in-band sentinels so a dispatcher finishes its current work first.

Command line::

    python -m repro.service.stream --rate 8 --duration 2 --workers 2
    python -m repro.service.stream --rate 0 --requests 64 --workers 4 \
        --backend process --selfcheck --json   # saturated throughput mode

See DESIGN.md section 7 for the semantics.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from concurrent.futures import (
    BrokenExecutor,
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from ..core.context import plan_cache
from ..core.engine import (
    STATUS_CANCELLED,
    STATUS_COMPLETED,
    STATUS_FAILED,
    STATUS_REJECTED,
    RunRequest,
    RunSummary,
    available_engines,
)
from ..core.metrics import LatencyHistogram
from ..scenarios.generators import DEFAULT_MIX, arrival_times, mixed_batch
from .batch import (
    CHAOS_TAG_PREFIX,
    BatchService,
    _pickle_plans,
    _warm_worker_blob,
    execute_request,
    requests_from_scenarios,
    structural_key,
    summaries_digest,
)
from .transport import (
    TRANSPORTS,
    AutoscalePolicy,
    PendingEnvelope,
    make_transport,
)

__all__ = [
    "STATUS_CANCELLED",
    "STATUS_COMPLETED",
    "STATUS_FAILED",
    "STATUS_REJECTED",
    "AutoscalePolicy",
    "StreamGateway",
    "StreamMetrics",
    "StreamReport",
    "replay",
    "serve",
    "structural_warmup",
]

BACKENDS = ("process", "thread")
POLICIES = ("reject", "block")

#: In-band scale-down sentinel: a dispatcher that dequeues it finishes
#: nothing further and exits, so retirement never abandons taken work.
_RETIRE = object()


def _swallow_task_result(task: "asyncio.Future[object]") -> None:
    """Done-callback for hops nobody awaits anymore (all tickets
    abandoned): retrieve the outcome so the loop never logs an
    unretrieved-exception warning for work we deliberately walked away
    from."""
    try:
        task.exception()
    except asyncio.CancelledError:
        pass


def _run_tickets(requests: List[RunRequest]) -> List[RunSummary]:
    """Thread-backend batch entry: one executor hop for a micro-batch.

    Resolves ``execute_request`` through the module global at call time
    (not at dispatch-closure creation), so it tracks monkeypatching.
    """
    return [execute_request(r) for r in requests]


def structural_warmup(
    requests: Sequence[RunRequest], max_runs: int = 16
) -> List[RunSummary]:
    """Warm the parent plan cache from structural representatives.

    Runs one request per distinct ``(kind, family, n, algorithm, engine)``
    group — capped at ``max_runs`` — in the calling process, so the plans
    they build land in the process-wide cache before a gateway starts (the
    process backend then ships the snapshot to its workers).  Unlike the
    batch service's prefetch pass these runs are *not* part of any stream:
    a stream has no fixed membership to splice results into, so warmup here
    is paid once at startup, like a service loading its models.
    """
    seen = set()
    out: List[RunSummary] = []
    for req in requests:
        if req.tag.startswith(CHAOS_TAG_PREFIX):
            # Warmup executes in the calling process: a chaos fault here
            # (worst case ``chaos:kill``) would take down the gateway's
            # parent instead of a disposable pool worker.  Faults only
            # ever fire behind the executor boundary.
            continue
        key = structural_key(req)
        if key in seen:
            continue
        seen.add(key)
        out.append(execute_request(req))
        if len(out) >= max_runs:
            break
    return out


class StreamMetrics:
    """The gateway's metrics core: histograms, counters, queue depth."""

    def __init__(self) -> None:
        self.latency = LatencyHistogram()
        self.queue_wait = LatencyHistogram()
        self.service = LatencyHistogram()
        #: latency of failed runs, kept out of the success histograms: a
        #: crash that fails fast must not be allowed to *improve* p99.
        self.failure_latency = LatencyHistogram()
        self.offered = 0
        self.completed = 0
        self.rejected = 0
        self.cancelled = 0
        #: runs that produced no judged result (STATUS_FAILED: engine
        #: crashes, dead pool workers) plus completed runs whose
        #: verification/bounds judgement failed.
        self.failed = 0
        #: executor pools rebuilt after breakage (chaos recovery gate).
        self.pool_replacements = 0
        #: autoscaler decisions (dispatcher tasks spawned / retired).
        self.scale_ups = 0
        self.scale_downs = 0
        self.queue_depth_max = 0
        self._depth_sum = 0
        self._depth_samples = 0

    def observe_depth(self, depth: int) -> None:
        if depth > self.queue_depth_max:
            self.queue_depth_max = depth
        self._depth_sum += depth
        self._depth_samples += 1

    @property
    def queue_depth_mean(self) -> float:
        if not self._depth_samples:
            return 0.0
        return self._depth_sum / self._depth_samples

    def observe(self, summary: RunSummary) -> None:
        """Fold one resolved summary into the counters and histograms."""
        if summary.status == STATUS_REJECTED:
            self.rejected += 1
            return
        if summary.status == STATUS_FAILED:
            # Failed runs never enter the success percentiles: a crashed
            # worker answering in microseconds would otherwise drag p50
            # down exactly when the service is at its sickest.
            self.failed += 1
            self.failure_latency.record(summary.latency_s)
            return
        self.queue_wait.record(summary.queue_s)
        self.latency.record(summary.latency_s)
        if summary.status == STATUS_CANCELLED:
            self.cancelled += 1
            return
        self.service.record(summary.latency_s - summary.queue_s)
        self.completed += 1
        if not summary.ok:
            self.failed += 1

    def to_dict(self) -> Dict[str, object]:
        return {
            "offered": self.offered,
            "completed": self.completed,
            "rejected": self.rejected,
            "cancelled": self.cancelled,
            "failed": self.failed,
            "pool_replacements": self.pool_replacements,
            "scale_ups": self.scale_ups,
            "scale_downs": self.scale_downs,
            "queue_depth_max": self.queue_depth_max,
            "queue_depth_mean": round(self.queue_depth_mean, 2),
            "latency": self.latency.summary(),
            "queue_wait": self.queue_wait.summary(),
            "service": self.service.summary(),
            "failure_latency": self.failure_latency.summary(),
        }


@dataclass
class _Ticket:
    """One enqueued request: envelope, enqueue timestamp, result future."""

    request: RunRequest
    enqueued_at: float
    future: "asyncio.Future[RunSummary]"


class StreamGateway:
    """Long-lived asyncio front end over a warm executor pool.

    Args:
        workers: concurrent in-flight executions (async worker tasks, and
            the executor pool size).
        engine: default engine name stamped on requests with
            ``engine=None``.
        backend: ``"process"`` (a ``ProcessPoolExecutor`` with plan-cache
            warm workers — the throughput configuration) or ``"thread"``
            (portable, GIL-serialized).
        queue_cap: bound on the request queue — the backpressure knob.
        policy: ``"reject"`` (shed load when the queue is full) or
            ``"block"`` (make ``submit`` await space).
        deadline_ms: default per-request latency budget; a request's own
            ``deadline_ms`` wins.  ``None`` means no deadline.
        transport: envelope transport of the process backend — ``"shm"``
            (shared-memory slots, auto-degrading to pickle) or
            ``"pickle"``.  The thread backend crosses no process boundary
            and ignores it.
        micro_batch: max requests a dispatcher coalesces into one executor
            hop.  ``1`` (default) dispatches per request — micro-batching
            widens the window between a request starting and its deadline
            being enforceable, so it is opt-in.  When ``> 1`` the actual
            batch adapts to queue depth (never waiting for load that is
            not there).
        micro_batch_ms: with ``micro_batch > 1``, how long a dispatcher
            holding a short batch waits for batch-mates before going.
        autoscale: spawn/retire dispatcher tasks on sustained queue-depth
            pressure (see :class:`~repro.service.transport.AutoscalePolicy`).
            The pool is sized for the policy maximum; dispatchers start at
            the policy minimum.
        autoscale_policy: override the default policy
            (``min_workers=1, max_workers=workers``).

    Use as an async context manager, or call :meth:`start` / :meth:`close`.
    """

    def __init__(
        self,
        workers: int = 2,
        engine: str = "fast",
        backend: str = "process",
        queue_cap: int = 64,
        policy: str = "reject",
        deadline_ms: Optional[float] = None,
        transport: str = "shm",
        micro_batch: int = 1,
        micro_batch_ms: float = 2.0,
        autoscale: bool = False,
        autoscale_policy: Optional[AutoscalePolicy] = None,
    ) -> None:
        if engine not in available_engines():
            raise ValueError(
                f"unknown engine {engine!r}; available: "
                f"{', '.join(available_engines())}"
            )
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; want one of {BACKENDS}"
            )
        if policy not in POLICIES:
            raise ValueError(
                f"unknown policy {policy!r}; want one of {POLICIES}"
            )
        if transport not in TRANSPORTS:
            raise ValueError(
                f"unknown transport {transport!r}; want one of {TRANSPORTS}"
            )
        if workers < 1:
            raise ValueError("stream gateway needs workers >= 1")
        if queue_cap < 1:
            raise ValueError("queue_cap must be >= 1")
        if micro_batch < 1:
            raise ValueError("micro_batch must be >= 1")
        self.workers = int(workers)
        self.engine = engine
        self.backend = backend
        self.queue_cap = int(queue_cap)
        self.policy = policy
        self.deadline_ms = deadline_ms
        self.transport = transport
        self.micro_batch = int(micro_batch)
        self.micro_batch_ms = float(micro_batch_ms)
        self.autoscale = autoscale
        self._policy = autoscale_policy or AutoscalePolicy(
            min_workers=1, max_workers=self.workers
        )
        self.metrics = StreamMetrics()
        self._queue: Optional["asyncio.Queue[object]"] = None
        self._pool: Optional[Executor] = None
        self._transport = None
        self._warm_blob = b""
        self._tasks: List["asyncio.Task[None]"] = []
        self._sampler: Optional["asyncio.Task[None]"] = None
        self._closed = False

    @property
    def transport_name(self) -> str:
        """The transport actually in use ("" for the thread backend)."""
        return self._transport.name if self._transport is not None else ""

    @property
    def queue_depth(self) -> int:
        """Requests currently queued (0 before start / after close).

        The admission-control signal for front ends layered above the
        gateway: :mod:`repro.service.net` refuses SUBMIT envelopes with
        a typed ``retry-after`` once the queue is saturated, instead of
        letting the reject policy fail individual requests.
        """
        return self._queue.qsize() if self._queue is not None else 0

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> "StreamGateway":
        """Build the executor pool and spawn the worker tasks."""
        if self._pool is not None:
            raise RuntimeError("gateway already started")
        if self._closed:
            # A closed gateway never accepts submissions again; starting a
            # pool for it would leak processes and tasks.  One gateway, one
            # lifecycle.
            raise RuntimeError("gateway already closed; build a new one")
        if self.backend == "process":
            # Snapshot + pickle the warm plans ONCE; every pool this
            # gateway ever builds — including rebuilds after breakage —
            # reuses the same initializer blob.
            self._warm_blob = _pickle_plans(plan_cache().snapshot())
            self._transport = make_transport(
                self.transport, slots=max(2, min(16, 2 * self.workers))
            )
        self._pool = self._build_pool()
        self._queue = asyncio.Queue(maxsize=self.queue_cap)
        dispatchers = (
            self._policy.workers if self.autoscale else self.workers
        )
        self._tasks = [
            asyncio.create_task(self._worker(), name=f"stream-worker-{i}")
            for i in range(dispatchers)
        ]
        if self.autoscale:
            self._sampler = asyncio.create_task(
                self._autoscale_sampler(), name="stream-autoscaler"
            )
        return self

    def _build_pool(self) -> Executor:
        if self.backend == "process":
            # Warm every pool worker from the parent's plan-cache snapshot
            # (whatever structural_warmup / earlier runs left resident).
            # Workers spawn lazily, so sizing the pool for the autoscale
            # maximum costs nothing until dispatchers actually scale up.
            return ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_warm_worker_blob,
                initargs=(self._warm_blob,),
            )
        # Threads share the process-wide plan cache; no shipping needed.
        return ThreadPoolExecutor(max_workers=self.workers)

    async def _autoscale_sampler(self) -> None:
        """Feed queue depth to the policy; apply its spawn/retire verdicts."""
        assert self._queue is not None
        while not self._closed:
            await asyncio.sleep(0.02)
            if self._closed or self._queue is None:
                return
            delta = self._policy.observe(
                self._queue.qsize(), time.perf_counter()
            )
            if delta > 0:
                self._tasks.append(asyncio.create_task(
                    self._worker(),
                    name=f"stream-worker-{len(self._tasks)}",
                ))
                self.metrics.scale_ups += 1
            elif delta < 0:
                try:
                    self._queue.put_nowait(_RETIRE)
                    self.metrics.scale_downs += 1
                except asyncio.QueueFull:
                    # No room to deliver the sentinel (the queue refilled
                    # between sample and verdict) — the pressure reading
                    # is stale, revoke the decision.
                    self._policy.workers += 1

    def _replace_pool(self, broken: Executor) -> None:
        """Swap a broken executor pool for a fresh warm one.

        A dead pool child breaks the whole ``ProcessPoolExecutor``: every
        in-flight and future submission raises ``BrokenExecutor``.  The
        in-flight requests are already lost (their workers fail them as
        :data:`STATUS_FAILED`), but the gateway itself must outlive the
        pool — a long-lived service cannot answer every request after one
        crash with "broken pool".  Guarded by identity: several worker
        tasks observe the same breakage in the same event-loop iteration,
        and only the first one rebuilds (no awaits between check and swap,
        so the check cannot interleave).
        """
        if self._closed or self._pool is not broken:
            return
        broken.shutdown(wait=False)
        self._pool = self._build_pool()
        self.metrics.pool_replacements += 1

    async def drain(self) -> None:
        """Wait until every enqueued request has been resolved."""
        if self._queue is not None:
            await self._queue.join()

    def _resolve_stragglers(self) -> None:
        """Fail any ticket still queued after the workers are gone.

        ``asyncio.Queue.join`` performs a single un-rechecked wait on its
        "all tasks done" event, so a submitter suspended in ``put`` under
        the ``block`` policy can slip a ticket into the queue in the same
        event-loop iteration that wakes ``drain()`` — after which no
        worker will ever pick it up.  Both ``close()`` and the post-put
        re-check in :meth:`submit` funnel such tickets here: resolve with
        a cancelled summary and balance the queue's task counter so a
        later ``drain()`` cannot hang either.
        """
        if self._queue is None:
            return
        while True:
            try:
                ticket = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                return
            if ticket is _RETIRE:
                # An undelivered scale-down sentinel is not a request;
                # balance the join counter and move on.
                self._queue.task_done()
                continue
            summary = RunSummary(
                request=ticket.request,
                ok=False,
                status=STATUS_CANCELLED,
                latency_s=time.perf_counter() - ticket.enqueued_at,
                error="gateway closed before the request could execute",
            )
            self.metrics.observe(summary)
            if not ticket.future.done():
                ticket.future.set_result(summary)
            self._queue.task_done()

    async def close(self) -> None:
        """Drain the queue, stop the workers, shut the pool down."""
        if self._closed:
            return
        self._closed = True
        if self._sampler is not None:
            self._sampler.cancel()
            await asyncio.gather(self._sampler, return_exceptions=True)
            self._sampler = None
        await self.drain()
        for task in self._tasks:
            task.cancel()
        await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks = []
        # A blocked submitter may have enqueued between drain() waking and
        # the workers being cancelled; its own post-put re-check resolves
        # it, but only if it has run yet — sweep here as well so close()
        # never leaves an unresolvable ticket behind.
        self._resolve_stragglers()
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._transport is not None:
            self._transport.close()
            self._transport = None

    async def __aenter__(self) -> "StreamGateway":
        return await self.start()

    async def __aexit__(self, *exc: object) -> None:
        await self.close()

    # -- submission ----------------------------------------------------------

    async def submit(self, request: RunRequest) -> "asyncio.Future[RunSummary]":
        """Enqueue one request; returns the future of its summary.

        Under the ``"reject"`` policy the returned future may already be
        resolved (with a ``status == "rejected"`` summary) — submission
        itself never blocks.  Under ``"block"`` this coroutine suspends
        until the queue has room.
        """
        if self._queue is None or self._closed:
            raise RuntimeError("gateway is not running")
        req = (
            request
            if request.engine is not None
            else replace(request, engine=self.engine)
        )
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[RunSummary]" = loop.create_future()
        self.metrics.offered += 1
        now = time.perf_counter()
        ticket = _Ticket(req, now, future)
        if self.policy == "reject" and self._queue.full():
            summary = RunSummary(
                request=req,
                ok=False,
                status=STATUS_REJECTED,
                error=(
                    f"backpressure: queue full "
                    f"(cap {self.queue_cap}, policy reject)"
                ),
            )
            self.metrics.observe(summary)
            future.set_result(summary)
            return future
        await self._queue.put(ticket)  # suspends only under "block"
        if self._closed:
            # The gateway closed while this submitter was suspended in
            # ``put``: drain() has already been released and the workers
            # are (being) cancelled, so this ticket would never resolve.
            # Fail it — and anything else stranded — right now.
            self._resolve_stragglers()
            return future
        self.metrics.observe_depth(self._queue.qsize())
        return future

    # -- workers -------------------------------------------------------------

    def _deadline_s(self, req: RunRequest) -> Optional[float]:
        ms = req.deadline_ms if req.deadline_ms is not None else self.deadline_ms
        if ms is None or ms <= 0:
            return None
        return ms / 1000.0

    def _resolve(self, ticket: _Ticket, summary: RunSummary) -> None:
        self.metrics.observe(summary)
        if not ticket.future.done():
            ticket.future.set_result(summary)

    async def _worker(self) -> None:
        assert self._queue is not None
        queue = self._queue
        while True:
            first = await queue.get()
            if first is _RETIRE:
                queue.task_done()
                return
            batch: List[_Ticket] = [first]
            retire_after = False
            if self.micro_batch > 1:
                retire_after = await self._coalesce(batch)
            try:
                await self._dispatch_batch(batch)
            except Exception as exc:
                # Defensive backstop: _dispatch_batch already resolves
                # every executor-failure path, so anything surfacing here
                # is a dispatcher bug — still, no ticket may be left
                # unresolved (that deadlocks serve()) and the worker task
                # must survive to fail the backlog fast.
                for ticket in batch:
                    self._resolve(ticket, RunSummary(
                        request=ticket.request,
                        ok=False,
                        status=STATUS_FAILED,
                        latency_s=time.perf_counter() - ticket.enqueued_at,
                        error=(
                            f"executor failure: {type(exc).__name__}: {exc}"
                        ),
                    ))
            finally:
                for _ in batch:
                    queue.task_done()
            if retire_after:
                return

    async def _coalesce(self, batch: List[_Ticket]) -> bool:
        """Adaptively drain batch-mates into ``batch``.

        The target size is ``ceil(queue depth / dispatchers)`` clamped to
        ``micro_batch`` — a dispatcher takes its fair share of the backlog
        and no more, so an empty queue always dispatches immediately
        (depth-adaptive batching must not tax a lightly loaded stream).
        Only when the observed depth promised a bigger batch than the
        queue delivered does the dispatcher linger ``micro_batch_ms`` for
        stragglers.  Returns ``True`` when a retire sentinel was drained
        (the caller exits after dispatching).
        """
        assert self._queue is not None
        queue = self._queue
        retire = False

        def drain(limit: int) -> None:
            nonlocal retire
            while len(batch) < limit and not retire:
                try:
                    ticket = queue.get_nowait()
                except asyncio.QueueEmpty:
                    return
                if ticket is _RETIRE:
                    queue.task_done()
                    retire = True
                    return
                batch.append(ticket)

        dispatchers = max(1, len(self._tasks))
        target = max(1, min(
            self.micro_batch, -(-queue.qsize() // dispatchers) + 1
        ))
        drain(target)
        if len(batch) < target and not retire and self.micro_batch_ms > 0:
            # Single bounded linger (not a wait_for(queue.get()) — that
            # can lose an item to cancellation); then take what arrived.
            await asyncio.sleep(self.micro_batch_ms / 1e3)
            drain(target)
        return retire

    async def _dispatch_batch(self, tickets: List[_Ticket]) -> None:
        """Run one micro-batch through the executor, one hop for all.

        Per-request semantics are identical to per-request dispatch (the
        ``micro_batch=1`` default *is* per-request dispatch): queued-
        deadline expiry is checked per ticket before the hop, mid-run
        deadlines are enforced per ticket against the shared hop, and an
        executor failure fails every non-abandoned ticket in the batch.
        """
        now = time.perf_counter()
        live: List[_Ticket] = []
        waited: Dict[int, float] = {}
        deadlines: Dict[int, Optional[float]] = {}
        for ticket in tickets:
            w = now - ticket.enqueued_at
            deadline_s = self._deadline_s(ticket.request)
            if deadline_s is not None and w >= deadline_s:
                self._resolve(ticket, RunSummary(
                    request=ticket.request,
                    ok=False,
                    status=STATUS_CANCELLED,
                    queue_s=w,
                    latency_s=w,
                    error=(
                        f"deadline: expired after {w * 1e3:.1f}ms in queue "
                        f"(budget {deadline_s * 1e3:.0f}ms)"
                    ),
                ))
                continue
            live.append(ticket)
            waited[id(ticket)] = w
            deadlines[id(ticket)] = deadline_s
        if not live:
            return

        pool = self._pool
        requests = [t.request for t in live]
        envelope: Optional[PendingEnvelope] = None
        if self.backend == "process" and self._transport is not None:
            envelope = self._transport.dispatch(pool, requests)
            task: "asyncio.Future[object]" = asyncio.wrap_future(
                envelope.future
            )
        else:
            loop = asyncio.get_running_loop()
            task = loop.run_in_executor(pool, _run_tickets, requests)

        # Enforce mid-run deadlines per ticket, soonest first.  The hop is
        # shared, so a timed-out ticket abandons its *result*, never the
        # hop: shield() keeps the underlying work running for batch-mates
        # with laxer (or no) budgets.
        abandoned: set = set()
        timed = sorted(
            (t for t in live if deadlines[id(t)] is not None),
            key=lambda t: t.enqueued_at + deadlines[id(t)],
        )
        for ticket in timed:
            if task.done():
                break
            remaining = (
                ticket.enqueued_at + deadlines[id(ticket)]
                - time.perf_counter()
            )
            try:
                await asyncio.wait_for(
                    asyncio.shield(task), max(0.0, remaining)
                )
            except asyncio.TimeoutError:
                total = time.perf_counter() - ticket.enqueued_at
                deadline_s = deadlines[id(ticket)]
                abandoned.add(id(ticket))
                self._resolve(ticket, RunSummary(
                    request=ticket.request,
                    ok=False,
                    status=STATUS_CANCELLED,
                    queue_s=waited[id(ticket)],
                    latency_s=total,
                    error=(
                        f"deadline: exceeded mid-run after "
                        f"{total * 1e3:.1f}ms "
                        f"(budget {deadline_s * 1e3:.0f}ms); "
                        f"result abandoned"
                    ),
                ))
            # repro: ignore[RPR006] -- not swallowed: the same exception
            # re-raises out of the shared `await task` below, where every
            # surviving ticket is resolved as STATUS_FAILED.
            except Exception:
                break

        if len(abandoned) == len(live) and not task.done():
            # Nobody is waiting for this hop anymore.  Don't: the
            # dispatcher is worth more than the stale result.  The
            # envelope's slot recycles (and the exception, if any, is
            # consumed) when the hop eventually settles.
            if envelope is not None:
                envelope.abandon()
            task.add_done_callback(_swallow_task_result)
            return

        try:
            raw = await task
        except Exception as exc:
            # Infrastructure failure (e.g. BrokenProcessPool after a pool
            # child is OOM-killed, pickling errors).  Every non-abandoned
            # ticket MUST still resolve — an unresolved future deadlocks
            # serve().  The runs are FAILED, not completed: they produced
            # no result, and mislabeling them would poison digests and
            # percentiles.
            if envelope is not None:
                envelope.abandon()
            for ticket in live:
                if id(ticket) in abandoned:
                    continue
                self._resolve(ticket, RunSummary(
                    request=ticket.request,
                    ok=False,
                    status=STATUS_FAILED,
                    latency_s=time.perf_counter() - ticket.enqueued_at,
                    error=f"executor failure: {type(exc).__name__}: {exc}",
                ))
            if isinstance(exc, BrokenExecutor):
                self._replace_pool(pool)
            return

        summaries = envelope.decode() if envelope is not None else raw
        # execute_request stamps STATUS_FAILED on runs that crashed inside
        # the worker (poison requests, resolution errors); everything else
        # ran to a judged end.  Preserve the failure label — the gateway
        # only adds its own timing.
        for ticket, summary in zip(live, summaries):
            if id(ticket) in abandoned:
                continue
            self._resolve(ticket, replace(
                summary,
                status=(
                    summary.status
                    if summary.status == STATUS_FAILED
                    else STATUS_COMPLETED
                ),
                queue_s=waited[id(ticket)],
                latency_s=time.perf_counter() - ticket.enqueued_at,
            ))


async def replay(
    gateway: StreamGateway,
    requests: Sequence[RunRequest],
    arrivals: Sequence[float],
) -> List["asyncio.Future[RunSummary]"]:
    """Open-loop load generator: submit each request at its arrival time.

    ``arrivals[i]`` is request ``i``'s offset (seconds) from the replay
    start; the clock does not wait for completions, so a slow gateway
    falls behind and the backpressure policy decides what happens.  Under
    the ``"block"`` policy a full queue stalls the clock itself — the
    closed-loop degradation a blocking client experiences.
    """
    if len(requests) != len(arrivals):
        raise ValueError(
            f"{len(requests)} requests but {len(arrivals)} arrival times"
        )
    t0 = time.perf_counter()
    futures: List["asyncio.Future[RunSummary]"] = []
    for req, at in zip(requests, arrivals):
        delay = t0 + at - time.perf_counter()
        if delay > 0:
            await asyncio.sleep(delay)
        else:
            # Even a saturated replay must yield so worker tasks can run.
            await asyncio.sleep(0)
        futures.append(await gateway.submit(req))
    return futures


@dataclass
class StreamReport:
    """Aggregate view of one replayed stream."""

    summaries: List[RunSummary]
    wall_s: float
    backend: str
    workers: int
    queue_cap: int
    policy: str
    deadline_ms: Optional[float]
    engine: str
    metrics: Dict[str, object] = field(default_factory=dict)
    #: envelope transport the gateway used ("" for the thread backend).
    transport: str = ""

    @property
    def completed(self) -> List[RunSummary]:
        return [s for s in self.summaries if s.status == STATUS_COMPLETED]

    @property
    def rejected(self) -> List[RunSummary]:
        return [s for s in self.summaries if s.status == STATUS_REJECTED]

    @property
    def cancelled(self) -> List[RunSummary]:
        return [s for s in self.summaries if s.status == STATUS_CANCELLED]

    @property
    def failed(self) -> List[RunSummary]:
        """Runs that produced no judged result (crashes, dead workers)."""
        return [s for s in self.summaries if s.status == STATUS_FAILED]

    @property
    def failures(self) -> List[RunSummary]:
        """Failed runs plus completed runs whose judgement failed."""
        return self.failed + [s for s in self.completed if not s.ok]

    @property
    def ok(self) -> bool:
        """Every run either completed with a passing judgement or was shed.

        Rejections and cancellations are *policy outcomes* of an overloaded
        stream, not correctness failures; they are reported separately.
        Failed runs (engine crashes, executor breakage) are failures.
        """
        return not self.failures

    @property
    def throughput(self) -> float:
        """Completed instances per wall-clock second (sustained)."""
        return len(self.completed) / self.wall_s if self.wall_s > 0 else 0.0

    def stream_digest(self) -> str:
        """Order-independent digest over the *completed* runs.

        Same fold as :meth:`BatchReport.batch_digest`, so a loss-free
        stream (no rejections/cancellations) over a request set must equal
        the batch digest of any backend over that set.
        """
        return summaries_digest(self.completed)

    def to_dict(self) -> Dict[str, object]:
        return {
            "backend": self.backend,
            "workers": self.workers,
            "transport": self.transport,
            "queue_cap": self.queue_cap,
            "policy": self.policy,
            "deadline_ms": self.deadline_ms,
            "engine": self.engine,
            "ok": self.ok,
            "offered": len(self.summaries),
            "completed": len(self.completed),
            "rejected": len(self.rejected),
            "cancelled": len(self.cancelled),
            "failed": len(self.failures),
            "wall_s": round(self.wall_s, 4),
            "throughput_per_s": round(self.throughput, 2),
            "stream_digest": self.stream_digest(),
            "metrics": self.metrics,
            "failures": [
                {"request": s.request.name, "error": s.error}
                for s in self.failures
            ],
        }


def serve(
    requests: Sequence[RunRequest],
    arrivals: Sequence[float],
    *,
    workers: int = 2,
    engine: str = "fast",
    backend: str = "process",
    queue_cap: int = 64,
    policy: str = "reject",
    deadline_ms: Optional[float] = None,
    transport: str = "shm",
    micro_batch: int = 1,
    autoscale: bool = False,
    autoscale_policy: Optional[AutoscalePolicy] = None,
    warmup: bool = True,
    record: Optional[str] = None,
) -> StreamReport:
    """Run one full open-loop stream to completion (sync entry point).

    Warms the parent plan cache from structural representatives (shipped
    to process-backend workers), replays the arrival timeline through a
    fresh :class:`StreamGateway`, drains it, and rolls up the report.

    ``record`` names a capture file: every submitted request (with its
    observed arrival offset) and every resolved summary is appended to it
    through a :class:`~repro.service.recording.Recorder`, so the run can
    be re-fed deterministically later (trace-driven load tests, chaos
    forensics).
    """
    if warmup:
        structural_warmup(
            [
                req if req.engine is not None else replace(req, engine=engine)
                for req in requests
            ]
        )

    async def _main() -> StreamReport:
        recorder = None
        if record is not None:
            from .recording import Recorder

            recorder = Recorder(
                record,
                meta={
                    "source": "stream",
                    "workers": workers,
                    "engine": engine,
                    "backend": backend,
                    "queue_cap": queue_cap,
                    "policy": policy,
                    "deadline_ms": deadline_ms,
                    "transport": transport if backend == "process" else "",
                },
            )
        gateway = StreamGateway(
            workers=workers,
            engine=engine,
            backend=backend,
            queue_cap=queue_cap,
            policy=policy,
            deadline_ms=deadline_ms,
            transport=transport,
            micro_batch=micro_batch,
            autoscale=autoscale,
            autoscale_policy=autoscale_policy,
        )
        try:
            async with gateway:
                used_transport = gateway.transport_name
                front = (
                    gateway if recorder is None else recorder.attach(gateway)
                )
                t0 = time.perf_counter()
                futures = await replay(front, requests, arrivals)
                await gateway.drain()
                wall = time.perf_counter() - t0
                summaries = [await f for f in futures]
            if recorder is not None:
                recorder.record_metrics(gateway.metrics)
        finally:
            if recorder is not None:
                recorder.close()
        return StreamReport(
            summaries=summaries,
            wall_s=wall,
            backend=f"{backend}-stream",
            workers=workers,
            queue_cap=queue_cap,
            policy=policy,
            deadline_ms=deadline_ms,
            engine=engine,
            metrics=gateway.metrics.to_dict(),
            transport=used_transport,
        )

    return asyncio.run(_main())


# -- CLI ---------------------------------------------------------------------


def _render(report: StreamReport, arrivals_label: str) -> str:
    from ..analysis import render_table

    doc = report.to_dict()
    metrics = doc["metrics"]
    rows = []
    for label in ("latency", "queue_wait", "service"):
        h = metrics[label]
        rows.append([
            label,
            h["count"],
            f"{h['p50_ms']:.1f}",
            f"{h['p95_ms']:.1f}",
            f"{h['p99_ms']:.1f}",
            f"{h['max_ms']:.1f}",
        ])
    table = render_table(
        f"stream gateway [{report.backend}, workers={report.workers}, "
        f"queue<={report.queue_cap}, policy={report.policy}]",
        ["metric", "count", "p50 ms", "p95 ms", "p99 ms", "max ms"],
        rows,
    )
    lines = [
        table,
        f"stream: {doc['offered']} offered ({arrivals_label}) -> "
        f"{doc['completed']} completed, {doc['rejected']} rejected, "
        f"{doc['cancelled']} cancelled, {doc['failed']} failed in "
        f"{report.wall_s:.2f}s ({report.throughput:.1f} instances/s "
        f"sustained)",
        f"queue depth: max {metrics['queue_depth_max']}, "
        f"mean {metrics['queue_depth_mean']}; digest "
        f"{doc['stream_digest']}",
    ]
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.stream",
        description=(
            "Open-loop streaming gateway over the congested-clique "
            "simulator: Poisson (or uniform/saturated) arrivals, bounded "
            "queue with backpressure, per-request deadlines, tail-latency "
            "metrics."
        ),
    )
    parser.add_argument(
        "--rate", type=float, default=8.0, metavar="R",
        help="arrival rate per second; 0 = saturated (all at t=0)",
    )
    parser.add_argument(
        "--duration", type=float, default=2.0, metavar="D",
        help="seconds of offered arrivals; requests = rate * duration",
    )
    parser.add_argument(
        "--requests", type=int, default=None, metavar="N",
        help="exact request count (overrides rate * duration)",
    )
    parser.add_argument(
        "--arrivals", default="poisson",
        choices=("poisson", "uniform", "saturated", "bursty"),
        help="arrival process (default: poisson; --rate 0 forces saturated)",
    )
    parser.add_argument(
        "--workers", type=int, default=2, metavar="W",
        help="concurrent executions / pool size (default 2)",
    )
    parser.add_argument(
        "--queue-cap", type=int, default=64, metavar="Q",
        help="request queue bound (default 64)",
    )
    parser.add_argument(
        "--policy", default="reject", choices=POLICIES,
        help="backpressure policy when the queue is full (default: reject)",
    )
    parser.add_argument(
        "--deadline-ms", type=float, default=None, metavar="MS",
        help="default per-request latency budget; omit for no deadline",
    )
    parser.add_argument(
        "--backend", default="process", choices=BACKENDS,
        help="executor backend (default: process)",
    )
    parser.add_argument(
        "--transport", default="shm", choices=TRANSPORTS,
        help=(
            "envelope transport of the process backend: shm (shared-memory "
            "slots, auto-degrading to pickle where unavailable) or pickle "
            "(default: shm)"
        ),
    )
    parser.add_argument(
        "--micro-batch", type=int, default=1, metavar="K",
        help=(
            "coalesce up to K queued requests into one executor hop, "
            "adapted to queue depth (default 1: per-request dispatch)"
        ),
    )
    parser.add_argument(
        "--autoscale", action="store_true",
        help=(
            "spawn/retire dispatcher tasks on sustained queue-depth "
            "pressure (pool sized for --workers as the maximum)"
        ),
    )
    parser.add_argument(
        "--engine", default="fast", choices=available_engines(),
        help="execution engine for every run (default: fast)",
    )
    parser.add_argument(
        "--scenario-mix", default=DEFAULT_MIX, metavar="MIX",
        help="weighted kind/family:weight mix (see repro.service)",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="base seed for workloads and the arrival process (default 0)",
    )
    parser.add_argument(
        "--no-warmup", action="store_true",
        help="skip the structural plan-cache warmup pass",
    )
    parser.add_argument(
        "--record", default=None, metavar="PATH",
        help=(
            "append every request/summary envelope plus arrival offsets "
            "to a capture file (replay with python -m "
            "repro.service.recording)"
        ),
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the machine-readable report instead of tables",
    )
    parser.add_argument(
        "--selfcheck", action="store_true",
        help=(
            "re-run the completed requests on the sequential batch backend "
            "and require byte-identical digests (CI smoke mode)"
        ),
    )
    args = parser.parse_args(argv)

    if args.requests is not None:
        count = args.requests
    elif args.rate <= 0:
        parser.error(
            "--rate 0 (saturated mode) has no arrival clock to derive a "
            "request count from; give an explicit --requests"
        )
    else:
        count = int(args.rate * args.duration)
    if count < 1:
        parser.error("need at least one request (--requests or rate*duration)")
    process = "saturated" if args.rate <= 0 else args.arrivals
    try:
        scenarios = mixed_batch(count, mix=args.scenario_mix, seed0=args.seed)
        arrivals = arrival_times(
            process, max(args.rate, 1e-9), count, seed=args.seed
        )
    except ValueError as exc:
        parser.error(str(exc))
    requests = requests_from_scenarios(scenarios, engine=args.engine)

    report = serve(
        requests,
        arrivals,
        workers=args.workers,
        engine=args.engine,
        backend=args.backend,
        queue_cap=args.queue_cap,
        policy=args.policy,
        deadline_ms=args.deadline_ms,
        transport=args.transport,
        micro_batch=args.micro_batch,
        autoscale=args.autoscale,
        warmup=not args.no_warmup,
        record=args.record,
    )

    doc = report.to_dict()
    selfcheck_ok = True
    if args.selfcheck:
        done = [s.request for s in report.completed]
        if done:
            baseline = BatchService(workers=0, engine=args.engine).run_batch(
                done
            )
            selfcheck_ok = (
                baseline.ok
                and baseline.batch_digest() == report.stream_digest()
            )
            doc["selfcheck"] = {
                "sequential_digest": baseline.batch_digest(),
                "match": selfcheck_ok,
            }
        else:
            selfcheck_ok = False
            doc["selfcheck"] = {"sequential_digest": "", "match": False}

    if args.json:
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        label = f"{process} @ {args.rate:g}/s"
        print(_render(report, label))
        if args.selfcheck:
            status = "match" if selfcheck_ok else "MISMATCH"
            print(
                f"selfcheck: sequential backend digest "
                f"{doc['selfcheck']['sequential_digest']} -> {status}"
            )

    if not report.ok:
        for s in report.failures:
            print(f"FAIL {s.request.name}: {s.error}", file=sys.stderr)
        return 1
    if not selfcheck_ok:
        print(
            "selfcheck FAILED: stream and sequential backend disagree",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
