"""Fault injection against live gateways, with recovery gates.

The batch service and streaming gateway are elsewhere only exercised on
healthy workers; this module is the hostile-operations counterpart.  It
plants three fault families inside otherwise ordinary workloads and
drives them through a *live* gateway, then gates on how the service
behaved:

* ``poison`` — the request crashes the engine (an exception inside
  ``execute_request``); must resolve as ``STATUS_FAILED``, never as a
  completion, and never enter success percentiles or digests.
* ``kill`` — the pool worker executing the request SIGKILLs itself,
  breaking the whole ``ProcessPoolExecutor``; the gateway must replace
  the pool and keep serving (in-flight collateral fails, later requests
  complete).
* ``slow:<ms>`` — a straggler: the worker sleeps before executing, the
  run still completes correctly; p99 must degrade *boundedly*.

Fault transport rides the request envelope itself: a ``chaos:``-prefixed
``tag`` travels in the pickled :class:`~repro.core.engine.RunRequest`
and is interpreted by ``execute_request`` inside whichever process runs
it — no worker-side setup, no shared state, works across every backend.
The warmup/prefetch passes skip chaos-tagged requests, so a fault can
only ever fire behind the executor boundary in a disposable worker.

Gates (all must hold for exit code 0):

1. **recovered** — after a kill, ``pool_replacements >= 1`` and requests
   submitted after the kill point complete.
2. **faults contained** — every injected poison/kill request resolves as
   ``STATUS_FAILED`` (with its latency in the failure histogram only).
3. **digests correct** — the digest over the surviving (completed) runs
   is byte-identical to a sequential re-execution of exactly those
   requests.
4. **p99 bounded** — success p99 under stragglers stays within
   ``factor * (clean_p99 + straggler_ms) + slack``.
5. **shm leak free** — the shared-memory transport owns no more live
   segments after the chaos run than before it: worker kills (which
   break the pool mid-envelope) must never strand a parent-owned slot.
   Vacuously true on the pickle transport.

This module's faults live at the *request* level.  The wire-level
counterpart — latency, jitter, rate caps, mid-frame disconnects,
blackholes and byte corruption against the RPC byte stream — is
:mod:`repro.service.net.faultproxy`, which shares this module's typed
:class:`ChaosFault` for malformed fault specs;
:func:`parse_wire_faults` bridges the two vocabularies without
importing the network stack until it is actually asked for.

Command line::

    python -m repro.service.chaos --requests 24 --kills 1 --poisons 2
    python -m repro.service.chaos --record chaos.jsonl --json

See DESIGN.md section 9 for the semantics.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import signal
import sys
import time
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional

from ..core.engine import STATUS_FAILED, RunRequest
from ..scenarios.generators import DEFAULT_MIX, arrival_times, mixed_batch
from .batch import (
    CHAOS_TAG_PREFIX,
    BatchService,
    requests_from_scenarios,
)
from .transport import TRANSPORTS, ShmArena

__all__ = [
    "ChaosFault",
    "ChaosPlan",
    "ChaosReport",
    "apply_fault",
    "build_chaos_plan",
    "inject",
    "parse_wire_faults",
    "run_chaos",
]


class ChaosFault(RuntimeError):
    """Raised by a poison request inside the executing process."""


def inject(req: RunRequest, fault: str) -> RunRequest:
    """Arm ``req`` with a chaos fault (``poison``/``kill``/``slow:<ms>``)."""
    return replace(req, tag=f"{CHAOS_TAG_PREFIX}{fault}")


def parse_wire_faults(specs: List[str]) -> List[Any]:
    """Parse wire-level fault ("toxic") specs for the fault proxy.

    The byte-stream side of the chaos vocabulary: ``latency:20``,
    ``corrupt:0.01``, ``disconnect:65536``, ... (see
    :mod:`repro.service.net.faultproxy` for the grammar).  Malformed
    specs raise :class:`ChaosFault`, same as an unknown request-level
    fault.  The network stack is imported lazily — a chaos run that
    never touches the wire never loads it.
    """
    from .net.faultproxy import parse_toxic

    return [parse_toxic(spec) for spec in specs]


def apply_fault(tag: str) -> None:
    """Interpret a ``chaos:`` tag inside the process executing the run.

    Called by ``execute_request`` before the scenario runs.  ``poison``
    raises (a clean engine crash), ``kill`` SIGKILLs the executing
    process (un-catchable — exactly what an OOM kill looks like to the
    pool), ``slow:<ms>`` sleeps and then lets the run proceed normally.
    An unknown fault raises, which surfaces as a failed run rather than
    silently executing a request that asked for chaos.
    """
    spec = tag[len(CHAOS_TAG_PREFIX):]
    if spec == "poison":
        raise ChaosFault("poison request: injected engine crash")
    if spec == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
        return  # pragma: no cover - process is gone
    if spec.startswith("slow:"):
        try:
            delay_ms = float(spec[len("slow:"):])
        except ValueError:
            raise ChaosFault(f"malformed slow fault {spec!r}") from None
        time.sleep(max(0.0, delay_ms) / 1e3)
        return
    raise ChaosFault(f"unknown chaos fault {spec!r}")


@dataclass
class ChaosPlan:
    """A workload with faults planted at known indices."""

    requests: List[RunRequest]
    clean: List[RunRequest]
    kill_indices: List[int] = field(default_factory=list)
    poison_indices: List[int] = field(default_factory=list)
    straggler_indices: List[int] = field(default_factory=list)

    @property
    def fault_indices(self) -> List[int]:
        """Indices whose requests must fail (kills + poisons)."""
        return sorted(self.kill_indices + self.poison_indices)


def build_chaos_plan(
    count: int = 24,
    *,
    kills: int = 1,
    poisons: int = 2,
    straggler_frac: float = 0.25,
    straggler_ms: float = 100.0,
    mix: str = DEFAULT_MIX,
    seed: int = 0,
    engine: str = "fast",
) -> ChaosPlan:
    """Generate a mixed workload and convert some of it into faults.

    The first kill lands at ``count // 3`` so a healthy prefix exercises
    the warm path and a long suffix proves post-kill recovery; poisons
    and stragglers are scattered deterministically from ``seed``.
    """
    faults = kills + poisons
    if count < faults + 2:
        raise ValueError(
            f"need at least {faults + 2} requests to plant "
            f"{kills} kills + {poisons} poisons"
        )
    clean = requests_from_scenarios(
        mixed_batch(count, mix=mix, seed0=seed), engine=engine
    )
    requests = list(clean)
    rng = random.Random(seed)
    # Kills first: the earliest at count//3, any further ones spread
    # behind it so each lands on an already-replaced pool.
    kill_indices = [
        count // 3 + i * max(1, (count - count // 3) // (kills + 1))
        for i in range(kills)
    ]
    taken = set(kill_indices)
    pool = [i for i in range(count) if i not in taken]
    poison_indices = sorted(rng.sample(pool, poisons)) if poisons else []
    taken.update(poison_indices)
    remaining = [i for i in range(count) if i not in taken]
    n_slow = int(len(remaining) * straggler_frac)
    straggler_indices = (
        sorted(rng.sample(remaining, n_slow)) if n_slow else []
    )
    for i in kill_indices:
        requests[i] = inject(requests[i], "kill")
    for i in poison_indices:
        requests[i] = inject(requests[i], "poison")
    for i in straggler_indices:
        requests[i] = inject(requests[i], f"slow:{straggler_ms:g}")
    return ChaosPlan(
        requests=requests,
        clean=clean,
        kill_indices=kill_indices,
        poison_indices=poison_indices,
        straggler_indices=straggler_indices,
    )


@dataclass
class ChaosReport:
    """Gate-by-gate verdict of one chaos run."""

    gates: Dict[str, bool]
    counts: Dict[str, int]
    p99_clean_ms: float
    p99_chaos_ms: float
    p99_bound_ms: float
    pool_replacements: int
    chaos_digest: str
    baseline_digest: str
    stream: Any = None

    @property
    def ok(self) -> bool:
        return all(self.gates.values())

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "gates": dict(self.gates),
            "counts": dict(self.counts),
            "p99_clean_ms": round(self.p99_clean_ms, 3),
            "p99_chaos_ms": round(self.p99_chaos_ms, 3),
            "p99_bound_ms": round(self.p99_bound_ms, 3),
            "pool_replacements": self.pool_replacements,
            "chaos_digest": self.chaos_digest,
            "baseline_digest": self.baseline_digest,
            "stream": self.stream.to_dict() if self.stream else None,
        }


def run_chaos(
    plan: Optional[ChaosPlan] = None,
    *,
    count: int = 24,
    workers: int = 2,
    backend: str = "process",
    engine: str = "fast",
    kills: int = 1,
    poisons: int = 2,
    straggler_frac: float = 0.25,
    straggler_ms: float = 100.0,
    rate: float = 0.0,
    mix: str = DEFAULT_MIX,
    seed: int = 0,
    queue_cap: Optional[int] = None,
    p99_factor: float = 4.0,
    p99_slack_ms: float = 500.0,
    compare_clean: bool = True,
    record: Optional[str] = None,
    transport: str = "shm",
) -> ChaosReport:
    """Drive a fault-laden workload through a live gateway and gate it.

    Runs the clean twin of the workload first (the p99 baseline), then
    the chaos run, then a sequential re-execution of exactly the
    surviving requests (the digest baseline).  ``rate`` 0 replays
    saturated; ``record`` captures the chaos run's traffic for
    forensics/replay.  Kills require the process backend — in a thread
    backend the "worker" is the calling process itself.
    """
    from .stream import serve

    if plan is None:
        plan = build_chaos_plan(
            count,
            kills=kills,
            poisons=poisons,
            straggler_frac=straggler_frac,
            straggler_ms=straggler_ms,
            mix=mix,
            seed=seed,
            engine=engine,
        )
    if plan.kill_indices and backend != "process":
        raise ValueError(
            "kill faults need the process backend: in a thread backend "
            "the executing process is the gateway itself"
        )
    n = len(plan.requests)
    cap = queue_cap if queue_cap is not None else n
    process = "saturated" if rate <= 0 else "uniform"
    arrivals = arrival_times(process, max(rate, 1e-9), n, seed=seed)

    p99_clean_ms = 0.0
    if compare_clean:
        clean_report = serve(
            plan.clean,
            arrivals,
            workers=workers,
            engine=engine,
            backend=backend,
            queue_cap=cap,
            policy="block",
            transport=transport,
        )
        p99_clean_ms = clean_report.metrics["latency"]["p99_ms"]

    # Worker kills break the pool while envelopes are in flight through
    # shared-memory slots — exactly the path that could strand a segment.
    # Snapshot the live set around the chaos run and gate on it.
    segments_before = set(ShmArena.live_segments())
    chaos_report = serve(
        plan.requests,
        arrivals,
        workers=workers,
        engine=engine,
        backend=backend,
        queue_cap=cap,
        policy="block",
        record=record,
        transport=transport,
    )
    segments_after = set(ShmArena.live_segments())

    summaries = chaos_report.summaries
    completed = chaos_report.completed
    replacements = chaos_report.metrics["pool_replacements"]
    last_kill = max(plan.kill_indices) if plan.kill_indices else -1
    post_kill_completed = [
        i
        for i, s in enumerate(summaries)
        if i > last_kill and s.status not in ("", STATUS_FAILED) and s.resolved
    ]

    # Sequential re-execution of exactly the surviving requests: the
    # digest must be byte-identical (fault survival never corrupts the
    # runs that did complete).
    chaos_digest = chaos_report.stream_digest()
    baseline_digest = ""
    digest_ok = True
    if completed:
        baseline = BatchService(workers=0, engine=engine).run_batch(
            [s.request for s in completed]
        )
        baseline_digest = baseline.batch_digest()
        digest_ok = baseline.ok and baseline_digest == chaos_digest

    p99_chaos_ms = chaos_report.metrics["latency"]["p99_ms"]
    p99_bound_ms = p99_factor * (p99_clean_ms + straggler_ms) + p99_slack_ms

    gates = {
        "recovered": (
            not plan.kill_indices
            or (replacements >= 1 and bool(post_kill_completed))
        ),
        "faults_contained": all(
            summaries[i].status == STATUS_FAILED for i in plan.fault_indices
        ),
        "digests_correct": digest_ok,
        "p99_bounded": (
            not compare_clean
            or not plan.straggler_indices
            or p99_chaos_ms <= p99_bound_ms
        ),
        "shm_leak_free": segments_after <= segments_before,
    }
    counts = {
        "offered": len(summaries),
        "completed": len(completed),
        "failed": len(chaos_report.failed),
        "kills": len(plan.kill_indices),
        "poisons": len(plan.poison_indices),
        "stragglers": len(plan.straggler_indices),
        "post_kill_completed": len(post_kill_completed),
    }
    return ChaosReport(
        gates=gates,
        counts=counts,
        p99_clean_ms=float(p99_clean_ms),
        p99_chaos_ms=float(p99_chaos_ms),
        p99_bound_ms=float(p99_bound_ms),
        pool_replacements=int(replacements),
        chaos_digest=chaos_digest,
        baseline_digest=baseline_digest,
        stream=chaos_report,
    )


# -- CLI ----------------------------------------------------------------------


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.chaos",
        description=(
            "Fault-injection harness for the streaming gateway: worker "
            "kills, poison requests, and stragglers against a live pool, "
            "gated on recovery, digest correctness, and bounded p99."
        ),
    )
    parser.add_argument(
        "--requests", type=int, default=24, metavar="N",
        help="workload size before faults (default 24)",
    )
    parser.add_argument(
        "--workers", type=int, default=2, metavar="W",
        help="gateway workers / pool size (default 2)",
    )
    parser.add_argument(
        "--kills", type=int, default=1,
        help="worker-kill faults to plant (default 1)",
    )
    parser.add_argument(
        "--poisons", type=int, default=2,
        help="poison (engine-crash) requests to plant (default 2)",
    )
    parser.add_argument(
        "--straggler-frac", type=float, default=0.25, metavar="F",
        help="fraction of clean requests slowed down (default 0.25)",
    )
    parser.add_argument(
        "--straggler-ms", type=float, default=100.0, metavar="MS",
        help="straggler injected delay (default 100ms)",
    )
    parser.add_argument(
        "--rate", type=float, default=0.0, metavar="R",
        help="uniform arrival rate per second; 0 = saturated (default)",
    )
    parser.add_argument(
        "--engine", default="fast",
        help="execution engine for every run (default: fast)",
    )
    parser.add_argument(
        "--scenario-mix", default=DEFAULT_MIX, metavar="MIX",
        help="weighted kind/family:weight mix (see repro.service)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--p99-factor", type=float, default=4.0,
        help="p99 bound: factor*(clean_p99+straggler_ms)+slack (default 4)",
    )
    parser.add_argument(
        "--p99-slack-ms", type=float, default=500.0,
        help="additive slack on the p99 bound (default 500ms)",
    )
    parser.add_argument(
        "--no-clean-baseline", action="store_true",
        help="skip the clean twin run (disables the p99 gate)",
    )
    parser.add_argument(
        "--record", default=None, metavar="PATH",
        help="capture the chaos run's traffic for replay/forensics",
    )
    parser.add_argument(
        "--transport", default="shm", choices=TRANSPORTS,
        help=(
            "gateway envelope transport under fault injection "
            "(default: shm)"
        ),
    )
    parser.add_argument("--json", action="store_true")
    args = parser.parse_args(argv)

    try:
        report = run_chaos(
            count=args.requests,
            workers=args.workers,
            engine=args.engine,
            kills=args.kills,
            poisons=args.poisons,
            straggler_frac=args.straggler_frac,
            straggler_ms=args.straggler_ms,
            rate=args.rate,
            mix=args.scenario_mix,
            seed=args.seed,
            p99_factor=args.p99_factor,
            p99_slack_ms=args.p99_slack_ms,
            compare_clean=not args.no_clean_baseline,
            record=args.record,
            transport=args.transport,
        )
    except ValueError as exc:
        parser.error(str(exc))

    doc = report.to_dict()
    if args.json:
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        c = report.counts
        print(
            f"chaos: {c['offered']} offered "
            f"({c['kills']} kills, {c['poisons']} poisons, "
            f"{c['stragglers']} stragglers) -> {c['completed']} completed, "
            f"{c['failed']} failed, {report.pool_replacements} pool "
            f"replacement(s), {c['post_kill_completed']} completions after "
            f"the last kill"
        )
        print(
            f"p99: clean {report.p99_clean_ms:.1f}ms, chaos "
            f"{report.p99_chaos_ms:.1f}ms (bound {report.p99_bound_ms:.1f}ms)"
        )
        print(
            f"digest: chaos {report.chaos_digest or '-'} vs sequential "
            f"baseline {report.baseline_digest or '-'}"
        )
        for gate, passed in report.gates.items():
            print(f"gate {gate}: {'pass' if passed else 'FAIL'}")
    if not report.ok:
        failed = [g for g, p in report.gates.items() if not p]
        print(f"chaos gates FAILED: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
