"""A wire-level fault-injection TCP proxy (toxiproxy-style).

:class:`FaultProxy` sits between a client and a
:class:`~repro.service.net.server.NetServer` and damages the byte
stream in scriptable ways — the resilience layer's test double for a
bad network.  Faults ("toxics") are declarative specs in the same
spirit as the chaos harness's ``poison``/``kill``/``slow:<ms>`` request
vocabulary (see :mod:`repro.service.chaos`), but applied to *bytes in
flight* instead of requests:

========================  ==================================================
spec                      effect
========================  ==================================================
``latency:MS``            delay every chunk by MS milliseconds
``jitter:MS``             delay every chunk by uniform [0, MS) milliseconds
``rate:KBPS``             cap throughput at KBPS kibibytes per second
``disconnect:BYTES``      hard-close the connection after BYTES total
                          bytes — deliberately mid-frame
``blackhole``             swallow bytes silently (connection stays up)
``blackhole:MS``          swallow bytes for the first MS milliseconds of
                          each connection, then pass cleanly
``corrupt:PROB``          flip one byte per chunk with probability PROB
========================  ==================================================

A spec may carry a direction suffix — ``latency:20@up`` (client→server),
``corrupt:0.01@down`` (server→client); the default is ``@both``.
Malformed specs raise the chaos harness's typed
:class:`~repro.service.chaos.ChaosFault`.

All randomness (jitter, corruption) comes from a seeded RNG, so a
failing fault schedule replays exactly.  :class:`ProxyThread` hosts the
asyncio proxy on a background thread for blocking tests and the CLI,
mirroring :class:`~repro.service.net.server.ServerThread`.
"""

from __future__ import annotations

import asyncio
import random
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from ..chaos import ChaosFault

__all__ = ["Toxic", "parse_toxic", "FaultProxy", "ProxyThread"]

#: recognised toxic kinds (the first token of a spec).
TOXIC_KINDS = (
    "latency",
    "jitter",
    "rate",
    "disconnect",
    "blackhole",
    "corrupt",
)

#: direction tags: ``up`` is client→server, ``down`` is server→client.
DIRECTIONS = ("up", "down", "both")

#: proxy read granularity.  Small enough that latency/rate shaping and
#: mid-chunk disconnects operate well below frame size.
CHUNK = 4096


@dataclass(frozen=True)
class Toxic:
    """One parsed fault: ``kind``, its magnitude, and a direction."""

    kind: str
    value: float = 0.0
    direction: str = "both"

    def applies(self, direction: str) -> bool:
        """Whether this toxic shapes traffic flowing ``direction``."""
        return self.direction in ("both", direction)

    @property
    def spec(self) -> str:
        """The canonical spec string this toxic round-trips to."""
        base = self.kind
        if not (self.kind == "blackhole" and self.value == 0.0):
            base += f":{self.value:g}"
        if self.direction != "both":
            base += f"@{self.direction}"
        return base


def parse_toxic(spec: str) -> Toxic:
    """Parse one toxic spec (see module table); typed error if malformed.

    Raises :class:`~repro.service.chaos.ChaosFault` — the same error the
    request-level chaos vocabulary uses for an unknown fault, so a typo
    in a chaos plan surfaces identically whichever layer it targets.
    """
    body, sep, direction = spec.partition("@")
    if sep and direction not in ("up", "down"):
        raise ChaosFault(
            f"malformed toxic direction {direction!r} in {spec!r} "
            f"(expected 'up' or 'down')"
        )
    kind, sep, raw = body.partition(":")
    if kind not in TOXIC_KINDS:
        raise ChaosFault(
            f"unknown toxic kind {kind!r} in {spec!r} "
            f"(expected one of {', '.join(TOXIC_KINDS)})"
        )
    if not sep:
        if kind == "blackhole":
            return Toxic("blackhole", 0.0, direction or "both")
        raise ChaosFault(f"toxic {kind!r} needs a value: {spec!r}")
    try:
        value = float(raw)
    except ValueError:
        raise ChaosFault(
            f"malformed toxic value {raw!r} in {spec!r}"
        ) from None
    if value < 0:
        raise ChaosFault(f"toxic value must be >= 0 in {spec!r}")
    if kind == "corrupt" and value > 1:
        raise ChaosFault(
            f"corrupt probability must be in [0, 1], got {value:g}"
        )
    if kind in ("rate", "disconnect") and value <= 0:
        raise ChaosFault(f"toxic {kind!r} needs a positive value: {spec!r}")
    return Toxic(kind, value, direction or "both")


def _coerce_toxics(toxics: Sequence[Union[str, Toxic]]) -> List[Toxic]:
    return [t if isinstance(t, Toxic) else parse_toxic(t) for t in toxics]


@dataclass
class _ConnState:
    """Per-connection fault bookkeeping shared by both pump directions."""

    started_at: float
    #: cumulative proxied bytes (both directions) for ``disconnect``.
    total_bytes: int = 0
    dropped: bool = False


class FaultProxy:
    """Asyncio TCP proxy that forwards ``host:port`` → upstream, badly.

    Construct, ``await start()``, connect clients to :attr:`port`.
    Toxics can be swapped at runtime (:meth:`set_toxics`) and live
    connections severed on demand (:meth:`drop_connections` — the
    "flap" primitive the reconnect soak is built on).

    Counters (``connections``, ``disconnects``, ``corrupted``,
    ``blackholed``, ``bytes_up``, ``bytes_down``) are plain attributes:
    single-threaded inside the event loop, snapshot-read from outside.
    """

    def __init__(
        self,
        upstream_host: str,
        upstream_port: int,
        host: str = "127.0.0.1",
        port: int = 0,
        toxics: Sequence[Union[str, Toxic]] = (),
        seed: int = 0,
    ) -> None:
        self.upstream_host = upstream_host
        self.upstream_port = int(upstream_port)
        self.host = host
        self.port = int(port)
        self._toxics: List[Toxic] = _coerce_toxics(toxics)
        self._rng = random.Random(seed)
        self._server: Optional[asyncio.base_events.Server] = None
        self._writers: Set[asyncio.StreamWriter] = set()
        self._conn_tasks: Set["asyncio.Task[None]"] = set()
        self.connections = 0
        self.disconnects = 0
        self.corrupted = 0
        self.blackholed = 0
        self.bytes_up = 0
        self.bytes_down = 0

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> "FaultProxy":
        """Bind and start accepting; resolves the ephemeral port."""
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def close(self) -> None:
        """Stop accepting and sever every live connection (idempotent)."""
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()
        self.drop_connections()
        # wait for the pump tasks to observe their aborted transports —
        # a destroyed-while-pending task is a resource leak warning.
        tasks = [t for t in self._conn_tasks if not t.done()]
        if tasks:
            await asyncio.wait(tasks, timeout=5.0)

    # -- runtime control -----------------------------------------------------

    @property
    def toxics(self) -> List[Toxic]:
        """The currently active toxics."""
        return list(self._toxics)

    def set_toxics(self, toxics: Sequence[Union[str, Toxic]]) -> None:
        """Replace the active toxic set (applies to in-flight chunks)."""
        self._toxics = _coerce_toxics(toxics)

    def add_toxic(self, toxic: Union[str, Toxic]) -> None:
        """Append one toxic to the active set."""
        self._toxics = self._toxics + _coerce_toxics([toxic])

    def clear_toxics(self) -> None:
        """Remove every toxic (clean pass-through)."""
        self._toxics = []

    def drop_connections(self) -> int:
        """Hard-close every live connection; returns how many (a flap)."""
        writers, self._writers = self._writers, set()
        for writer in writers:
            _abort_writer(writer)
        dropped = len(writers) // 2  # two writers per proxied connection
        self.disconnects += dropped
        return dropped

    # -- data path -----------------------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        loop = asyncio.get_running_loop()
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        try:
            up_reader, up_writer = await asyncio.open_connection(
                self.upstream_host, self.upstream_port
            )
        except OSError:
            _abort_writer(writer)
            return
        self.connections += 1
        self._writers.add(writer)
        self._writers.add(up_writer)
        state = _ConnState(started_at=loop.time())
        try:
            await asyncio.gather(
                self._pump(reader, up_writer, "up", state),
                self._pump(up_reader, writer, "down", state),
            )
        finally:
            self._writers.discard(writer)
            self._writers.discard(up_writer)
            _abort_writer(writer)
            _abort_writer(up_writer)

    async def _pump(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        direction: str,
        state: _ConnState,
    ) -> None:
        """Forward one direction chunk by chunk, applying toxics."""
        loop = asyncio.get_running_loop()
        while True:
            try:
                data = await reader.read(CHUNK)
            except (OSError, asyncio.IncompleteReadError):
                break
            if not data or state.dropped:
                break
            forward = True
            for toxic in self._toxics:
                if not toxic.applies(direction):
                    continue
                if toxic.kind == "latency":
                    await asyncio.sleep(toxic.value / 1e3)
                elif toxic.kind == "jitter":
                    await asyncio.sleep(
                        self._rng.random() * toxic.value / 1e3
                    )
                elif toxic.kind == "rate":
                    await asyncio.sleep(len(data) / (toxic.value * 1024.0))
                elif toxic.kind == "corrupt":
                    data = self._maybe_corrupt(data, toxic.value)
                elif toxic.kind == "blackhole":
                    if (
                        toxic.value == 0.0
                        or (loop.time() - state.started_at) * 1e3
                        < toxic.value
                    ):
                        forward = False
                elif toxic.kind == "disconnect":
                    budget = int(toxic.value) - state.total_bytes
                    if budget < len(data):
                        # forward a partial chunk then cut: the victim
                        # sees a *mid-frame* close, which is exactly
                        # the TruncatedFrame path under test.
                        data = data[:max(0, budget)]
                        state.dropped = True
            if not forward:
                self.blackholed += len(data)
                continue
            state.total_bytes += len(data)
            if direction == "up":
                self.bytes_up += len(data)
            else:
                self.bytes_down += len(data)
            try:
                if data:
                    writer.write(data)
                    await writer.drain()
            except (OSError, ConnectionResetError):
                break
            if state.dropped:
                self.disconnects += 1
                break
        _abort_writer(writer)

    def _maybe_corrupt(self, data: bytes, probability: float) -> bytes:
        if probability <= 0.0 or self._rng.random() >= probability:
            return data
        index = self._rng.randrange(len(data))
        flipped = bytearray(data)
        flipped[index] ^= 0xFF
        self.corrupted += 1
        return bytes(flipped)


def _abort_writer(writer: asyncio.StreamWriter) -> None:
    """Hard-close a transport without waiting (RST-ish, idempotent)."""
    try:
        writer.transport.abort()
    except (OSError, RuntimeError):
        pass  # transport already gone or loop closing


class ProxyThread:
    """A :class:`FaultProxy` on a background event-loop thread.

    The blocking mirror of :class:`~repro.service.net.server.ServerThread`
    — tests and the CLI compose ``ServerThread`` + ``ProxyThread`` and
    point a blocking client at :attr:`port`.  Control methods marshal
    onto the proxy's loop, so they are safe from the calling thread.
    """

    def __init__(
        self,
        upstream_host: str,
        upstream_port: int,
        host: str = "127.0.0.1",
        port: int = 0,
        toxics: Sequence[Union[str, Toxic]] = (),
        seed: int = 0,
    ) -> None:
        self._proxy = FaultProxy(
            upstream_host,
            upstream_port,
            host=host,
            port=port,
            toxics=toxics,
            seed=seed,
        )
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._error: Optional[BaseException] = None

    @property
    def host(self) -> str:
        """The proxy's listening host."""
        return self._proxy.host

    @property
    def port(self) -> int:
        """The proxy's listening port (resolved once started)."""
        return self._proxy.port

    @property
    def address(self) -> Tuple[str, int]:
        """``(host, port)`` clients should dial."""
        return (self._proxy.host, self._proxy.port)

    def start(self) -> "ProxyThread":
        """Start the loop thread; raises whatever ``bind`` raised."""
        if self._thread is not None:
            raise RuntimeError("proxy thread already started")
        self._thread = threading.Thread(
            target=self._run, name="repro-faultproxy", daemon=True
        )
        self._thread.start()
        self._started.wait(timeout=10.0)
        if self._error is not None:
            thread, self._thread = self._thread, None
            thread.join(timeout=5.0)
            raise self._error
        if not self._started.is_set():
            self.close()
            raise RuntimeError("fault proxy failed to start within 10s")
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        stop = loop.create_future()
        self._stop = stop

        async def main() -> None:
            try:
                await self._proxy.start()
            except BaseException as exc:  # repro: ignore[RPR006] -- bind failure is stored and re-raised by start()
                self._error = exc
                self._started.set()
                return
            self._started.set()
            await stop
            await self._proxy.close()

        try:
            loop.run_until_complete(main())
        finally:
            loop.close()
            self._loop = None

    def _call(self, fn, *args):  # type: ignore[no-untyped-def]
        """Run ``fn(*args)`` on the proxy loop; block for the result."""
        loop = self._loop
        if loop is None or not loop.is_running():
            raise RuntimeError("proxy thread is not running")
        done = threading.Event()
        box: Dict[str, object] = {}

        def call() -> None:
            try:
                box["result"] = fn(*args)
            except BaseException as exc:  # repro: ignore[RPR006] -- marshalled across threads, re-raised below
                box["error"] = exc
            done.set()

        loop.call_soon_threadsafe(call)
        if not done.wait(timeout=10.0):
            raise RuntimeError("proxy control call timed out")
        if "error" in box:
            raise box["error"]  # type: ignore[misc]
        return box["result"]

    def set_toxics(self, toxics: Sequence[Union[str, Toxic]]) -> None:
        """Replace the active toxic set (thread-safe)."""
        parsed = _coerce_toxics(toxics)  # parse errors raise here, typed
        self._call(self._proxy.set_toxics, parsed)

    def add_toxic(self, toxic: Union[str, Toxic]) -> None:
        """Append one toxic (thread-safe)."""
        parsed = _coerce_toxics([toxic])
        self._call(self._proxy.add_toxic, parsed[0])

    def clear_toxics(self) -> None:
        """Remove every toxic (thread-safe)."""
        self._call(self._proxy.clear_toxics)

    def drop_connections(self) -> int:
        """Sever every live proxied connection — one flap (thread-safe)."""
        return int(self._call(self._proxy.drop_connections))

    def stats(self) -> Dict[str, int]:
        """Snapshot of the proxy counters (thread-safe)."""
        proxy = self._proxy
        return {
            "connections": proxy.connections,
            "disconnects": proxy.disconnects,
            "corrupted": proxy.corrupted,
            "blackholed": proxy.blackholed,
            "bytes_up": proxy.bytes_up,
            "bytes_down": proxy.bytes_down,
        }

    def close(self) -> None:
        """Stop the proxy and join the loop thread (idempotent)."""
        thread, self._thread = self._thread, None
        loop = self._loop
        if loop is not None and loop.is_running():
            try:
                loop.call_soon_threadsafe(
                    lambda: self._stop.done() or self._stop.set_result(None)
                )
            except RuntimeError:
                pass  # loop shut down between the check and the call
        if thread is not None and thread.is_alive():
            thread.join(timeout=10.0)

    def __enter__(self) -> "ProxyThread":
        if self._thread is None:
            self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
