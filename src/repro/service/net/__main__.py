"""Network service CLI: ``python -m repro.service.net <command>``.

Five subcommands::

    serve      run a NetServer in the foreground (Ctrl-C to stop)
    client     connect to a running server, execute a mixed batch
    selfcheck  loopback server + client in one process; digests must
               match the sequential baseline (CI smoke mode)
    soak       reconnect soak: loopback server behind a flapping fault
               proxy, resilient client under poisson load; gates on
               digest parity, zero stranded futures, zero duplicate
               executions, bounded retries
    bench      loopback round-trip latency + per-request wire bytes

``client --selfcheck`` re-executes the batch on the in-process
sequential baseline and requires byte-identical digests — the same
gate CI's ``net-smoke`` job runs against a real two-process serve.
``client``/``selfcheck`` accept ``--resilient`` (use the reconnecting
:class:`~repro.service.net.resilience.ResilientClient`) and repeatable
``--toxic SPEC`` flags, which interpose the wire-level fault proxy —
CI's ``net-fault-smoke`` job is ``selfcheck --resilient --toxic ...``
with the same digest gate plus a bounded-retries gate.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import math
import sys
import threading
import time
from typing import Dict, List, Optional

from ..batch import BatchService, requests_from_scenarios, summaries_digest
from ..transport import TRANSPORTS
from .client import Client, CommonClient
from .faultproxy import ProxyThread
from .framing import MAX_FRAME_BYTES
from .resilience import BackoffPolicy, ResilientClient
from .server import DEFAULT_SESSION_QUOTA, NetServer, ServerThread


def _add_gateway_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers", type=int, default=2, metavar="W",
        help="gateway worker count (default 2)",
    )
    parser.add_argument(
        "--engine", default="fast",
        help="default engine stamped on engine-less requests",
    )
    parser.add_argument(
        "--backend", default="thread", choices=("process", "thread"),
        help="gateway executor backend (default thread)",
    )
    parser.add_argument(
        "--queue-cap", type=int, default=64, metavar="N",
        help="gateway queue capacity (default 64)",
    )
    parser.add_argument(
        "--policy", default="reject", choices=("reject", "block"),
        help="gateway backpressure policy (default reject)",
    )
    parser.add_argument(
        "--deadline-ms", type=float, default=None, metavar="MS",
        help="per-request deadline (default none)",
    )
    parser.add_argument(
        "--transport", default="shm", choices=sorted(TRANSPORTS),
        help="process-backend transport (default shm)",
    )
    parser.add_argument(
        "--micro-batch", type=int, default=1, metavar="N",
        help="gateway micro-batch size (default 1)",
    )
    parser.add_argument(
        "--autoscale", action="store_true",
        help="enable the gateway autoscaler",
    )
    parser.add_argument(
        "--quota", type=int, default=DEFAULT_SESSION_QUOTA, metavar="N",
        help=f"per-session queue quota (default {DEFAULT_SESSION_QUOTA})",
    )
    parser.add_argument(
        "--max-frame", type=int, default=MAX_FRAME_BYTES, metavar="BYTES",
        help="maximum frame payload size (default 8 MiB)",
    )


def _add_batch_args(parser: argparse.ArgumentParser) -> None:
    from ...scenarios.generators import DEFAULT_MIX

    parser.add_argument(
        "--batch", type=int, default=64, metavar="B",
        help="number of instances (default 64)",
    )
    parser.add_argument(
        "--scenario-mix", default=DEFAULT_MIX, metavar="MIX",
        help=f"kind/family:weight mix (default {DEFAULT_MIX!r})",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="base seed; request i uses seed+i (default 0)",
    )
    parser.add_argument(
        "--chunk", type=int, default=32, metavar="N",
        help="requests per SUBMIT envelope (default 32)",
    )
    parser.add_argument(
        "--protocol", type=int, default=None, metavar="V",
        help="pin the session to protocol version V (default: negotiate)",
    )


def _add_fault_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--resilient", action="store_true",
        help="use the reconnecting ResilientClient (protocol v2)",
    )
    parser.add_argument(
        "--toxic", action="append", default=[], metavar="SPEC",
        help=(
            "interpose the fault proxy with this toxic (repeatable): "
            "latency:MS, jitter:MS, rate:KBPS, disconnect:BYTES, "
            "blackhole[:MS], corrupt:PROB, each optionally @up/@down"
        ),
    )
    parser.add_argument(
        "--max-retries", type=int, default=None, metavar="N",
        help=(
            "fail if the resilient client resubmitted more than N times "
            "(default: 8 per envelope, the backoff attempt cap)"
        ),
    )


def _server_kwargs(args: argparse.Namespace) -> dict:
    return dict(
        host=args.host,
        port=args.port,
        workers=args.workers,
        engine=args.engine,
        backend=args.backend,
        queue_cap=args.queue_cap,
        policy=args.policy,
        deadline_ms=args.deadline_ms,
        transport=args.transport,
        micro_batch=args.micro_batch,
        autoscale=args.autoscale,
        session_quota=args.quota,
        max_frame=args.max_frame,
    )


def _batch_requests(args: argparse.Namespace):
    from ...scenarios.generators import mixed_batch

    scenarios = mixed_batch(
        args.batch, mix=args.scenario_mix, seed0=args.seed
    )
    return requests_from_scenarios(scenarios, engine=args.engine)


def _cmd_serve(args: argparse.Namespace) -> int:
    async def _run() -> None:
        server = NetServer(**_server_kwargs(args))
        await server.start()
        print(
            f"repro.service.net serving on {server.host}:{server.port} "
            f"(engine {args.engine}, backend {args.backend}, "
            f"quota {args.quota})",
            flush=True,
        )
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            raise
        finally:
            await server.close()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    return 0


def _make_client(
    args: argparse.Namespace, host: str, port: int
) -> CommonClient:
    if getattr(args, "resilient", False):
        return ResilientClient(
            host, port, timeout=args.timeout, seed=args.seed
        )
    return Client(host, port, protocol=args.protocol, timeout=args.timeout)


def _retry_bound(args: argparse.Namespace, envelopes: int) -> int:
    if args.max_retries is not None:
        return int(args.max_retries)
    return BackoffPolicy().max_attempts * max(1, envelopes)


def _run_client(args: argparse.Namespace, host: str, port: int) -> int:
    requests = _batch_requests(args)
    toxics = list(getattr(args, "toxic", []))
    proxy: Optional[ProxyThread] = None
    if toxics:
        proxy = ProxyThread(host, port, toxics=toxics, seed=args.seed)
        proxy.start()
        host, port = proxy.host, proxy.port
    stats: Dict[str, int] = {}
    try:
        with _make_client(args, host, port) as client:
            t0 = time.perf_counter()
            summaries = client.run(requests, chunk=args.chunk)
            wall = time.perf_counter() - t0
            info = client.server_info
            version = client.protocol_version
            cache_hits = client.cache_hits
            sent = getattr(client, "bytes_sent", 0)
            received = getattr(client, "bytes_received", 0)
            if isinstance(client, ResilientClient):
                stats = client.stats()
    finally:
        if proxy is not None:
            proxy.close()
    digest = summaries_digest(summaries)
    ok = all(s.ok for s in summaries)
    envelopes = math.ceil(len(requests) / max(1, args.chunk))
    retries_ok = (
        not stats or stats["resubmits"] <= _retry_bound(args, envelopes)
    )
    doc = {
        "server": info.get("server"),
        "protocol": version,
        "requests": len(requests),
        "ok": ok,
        "wall_s": round(wall, 4),
        "digest": digest,
        "bytes_sent": sent,
        "bytes_received": received,
        "cache_hits": cache_hits,
    }
    if toxics:
        doc["toxics"] = toxics
    if stats:
        doc["resilience"] = dict(stats)
        doc["retries_bounded"] = retries_ok
    selfcheck_ok = True
    if args.selfcheck:
        baseline = BatchService(workers=0, engine=args.engine).run_batch(
            requests
        )
        selfcheck_ok = baseline.batch_digest() == digest
        doc["selfcheck"] = {
            "sequential_digest": baseline.batch_digest(),
            "match": selfcheck_ok,
        }
    if args.json:
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        print(
            f"net client: {len(requests)} requests over protocol v{version} "
            f"in {wall:.2f}s — digest {digest}"
        )
        print(
            f"wire: {sent} bytes sent, {received} received "
            f"({(sent + received) / max(1, len(requests)):.0f} B/request)"
        )
        if stats:
            print(
                f"resilience: {stats['reconnects']} reconnects, "
                f"{stats['resubmits']} resubmits, "
                f"{stats['retry_afters']} retry-afters, "
                f"{stats['cache_hits']} cache hits"
            )
        if args.selfcheck:
            status = "match" if selfcheck_ok else "MISMATCH"
            print(f"selfcheck: sequential digest -> {status}")
    if not ok:
        for s in summaries:
            if not s.ok:
                print(f"FAIL {s.request.name}: {s.error}", file=sys.stderr)
        return 1
    if not selfcheck_ok:
        print(
            "selfcheck FAILED: remote and sequential digests disagree",
            file=sys.stderr,
        )
        return 1
    if not retries_ok:
        print(
            f"retry gate FAILED: {stats['resubmits']} resubmits exceeds "
            f"the bound of {_retry_bound(args, envelopes)}",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_client(args: argparse.Namespace) -> int:
    return _run_client(args, args.host, args.port)


def _cmd_selfcheck(args: argparse.Namespace) -> int:
    args.selfcheck = True
    with ServerThread(**_server_kwargs(args)) as st:
        return _run_client(args, st.host, st.port)


def _cmd_soak(args: argparse.Namespace) -> int:
    """Reconnect soak: flapping proxy, poisson load, four gates.

    The proxy drops every live connection every ``--flap-every``
    seconds (jittered) while a :class:`ResilientClient` pushes a
    poisson-arrival workload through it.  Gates:

    1. every submitted envelope is collected (zero stranded futures);
    2. the digest matches the sequential baseline byte-for-byte;
    3. the gateway executed each request exactly once (its ``offered``
       counter equals the unique request count — resubmits after flaps
       were answered by the idempotency cache, not re-executed);
    4. retries stayed bounded (resubmits <= the backoff attempt cap
       per envelope).
    """
    from ...scenarios.generators import (
        flap_times,
        mixed_batch,
        poisson_arrivals,
    )

    count = max(1, int(args.rate * args.duration))
    scenarios = mixed_batch(count, mix=args.scenario_mix, seed0=args.seed)
    requests = requests_from_scenarios(scenarios, engine=args.engine)
    arrivals = poisson_arrivals(args.rate, count, seed=args.seed)
    flaps = flap_times(
        args.flap_every, args.duration, jitter_frac=0.2, seed=args.seed
    )

    with ServerThread(**_server_kwargs(args)) as st:
        with ProxyThread(
            st.host, st.port, toxics=args.toxic, seed=args.seed
        ) as proxy:
            backoff = BackoffPolicy(
                base_s=0.05,
                max_s=1.0,
                deadline_s=max(60.0, 3.0 * args.duration),
            )
            client = ResilientClient(
                proxy.host,
                proxy.port,
                timeout=args.timeout,
                backoff=backoff,
                seed=args.seed,
            )
            client.connect()
            stop = threading.Event()
            t0 = time.perf_counter()

            def flapper() -> None:
                for at in flaps:
                    delay = at - (time.perf_counter() - t0)
                    if delay > 0 and stop.wait(delay):
                        return
                    proxy.drop_connections()

            flap_thread = threading.Thread(target=flapper, daemon=True)
            flap_thread.start()
            window = max(1, client.session_quota // 2)
            order: List[int] = []
            inflight: List[int] = []
            collected: Dict[int, List] = {}
            try:
                for request, at in zip(requests, arrivals):
                    delay = at - (time.perf_counter() - t0)
                    if delay > 0:
                        time.sleep(delay)
                    while len(inflight) >= window:
                        oldest = inflight.pop(0)
                        collected[oldest] = client.collect(oldest)
                    channel = client.submit([request])
                    order.append(channel)
                    inflight.append(channel)
                for channel in inflight:
                    collected[channel] = client.collect(channel)
            finally:
                stop.set()
                flap_thread.join(timeout=10.0)
            stranded = client.pending
            metrics = client.metrics()
            stats = client.stats()
            client.close()
            proxy_stats = proxy.stats()

    summaries = [s for channel in order for s in collected[channel]]
    digest = summaries_digest(summaries)
    baseline = BatchService(workers=0, engine=args.engine).run_batch(requests)
    gateway = metrics.get("gateway", {})
    offered = gateway.get("offered") if isinstance(gateway, dict) else None
    gates = {
        "all_collected": len(summaries) == count and stranded == 0,
        "digest_match": baseline.batch_digest() == digest,
        "no_duplicate_execution": offered == count,
        "bounded_retries": (
            stats["resubmits"] <= _retry_bound(args, count)
        ),
    }
    doc = {
        "requests": count,
        "duration_s": args.duration,
        "rate": args.rate,
        "flaps": len(flaps),
        "stranded": stranded,
        "gateway_offered": offered,
        "digest": digest,
        "baseline_digest": baseline.batch_digest(),
        "resilience": dict(stats),
        "proxy": dict(proxy_stats),
        "idempotency": metrics.get("idempotency"),
        "gates": gates,
        "ok": all(gates.values()),
    }
    if args.json:
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        print(
            f"soak: {count} requests over {args.duration:.0f}s, "
            f"{len(flaps)} connection flaps -> "
            f"{stats['reconnects']} reconnects, "
            f"{stats['resubmits']} resubmits, "
            f"{stats['cache_hits']} cache hits, {stranded} stranded"
        )
        print(
            f"executions: gateway offered {offered} for {count} unique "
            f"requests; digest {digest} "
            f"({'match' if gates['digest_match'] else 'MISMATCH'})"
        )
        for gate, passed in gates.items():
            print(f"gate {gate}: {'pass' if passed else 'FAIL'}")
    if not all(gates.values()):
        failed = [g for g, p in gates.items() if not p]
        print(f"soak gates FAILED: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    requests = _batch_requests(args)
    with ServerThread(**_server_kwargs(args)) as st:
        with Client(st.host, st.port, timeout=args.timeout) as client:
            lat_ms: List[float] = []
            for i in range(0, len(requests), args.chunk):
                envelope = requests[i:i + args.chunk]
                t0 = time.perf_counter()
                channel = client.submit(envelope)
                client.collect(channel)
                lat_ms.append((time.perf_counter() - t0) * 1e3)
            sent, received = client.bytes_sent, client.bytes_received
    lat_ms.sort()

    def pct(p: float) -> float:
        return lat_ms[min(len(lat_ms) - 1, int(p * len(lat_ms)))]

    per_req = (sent + received) / max(1, len(requests))
    print(
        f"net bench: {len(requests)} requests in {len(lat_ms)} envelopes "
        f"of <= {args.chunk}"
    )
    print(
        f"envelope round-trip ms: p50 {pct(0.50):.2f} "
        f"p95 {pct(0.95):.2f} p99 {pct(0.99):.2f}"
    )
    print(
        f"wire bytes: {sent} sent, {received} received "
        f"({per_req:.0f} B/request)"
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.net",
        description="Versioned binary RPC front end for the simulator.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_serve = sub.add_parser("serve", help="run a server in the foreground")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=7707)
    _add_gateway_args(p_serve)
    p_serve.set_defaults(func=_cmd_serve)

    p_client = sub.add_parser("client", help="run a batch against a server")
    p_client.add_argument("--host", default="127.0.0.1")
    p_client.add_argument("--port", type=int, default=7707)
    p_client.add_argument("--timeout", type=float, default=60.0)
    p_client.add_argument(
        "--engine", default="fast",
        help="engine stamped on every request (default fast)",
    )
    p_client.add_argument(
        "--selfcheck", action="store_true",
        help="compare the remote digest against the sequential baseline",
    )
    p_client.add_argument("--json", action="store_true")
    _add_batch_args(p_client)
    _add_fault_args(p_client)
    p_client.set_defaults(func=_cmd_client)

    p_self = sub.add_parser(
        "selfcheck", help="loopback server+client digest check (CI smoke)"
    )
    p_self.add_argument("--host", default="127.0.0.1")
    p_self.add_argument("--port", type=int, default=0)
    p_self.add_argument("--timeout", type=float, default=60.0)
    p_self.add_argument("--json", action="store_true")
    _add_gateway_args(p_self)
    _add_batch_args(p_self)
    _add_fault_args(p_self)
    from ...scenarios.generators import REMOTE_SELFCHECK_MIX

    # the selfcheck differential defaults to full-taxonomy coverage
    p_self.set_defaults(func=_cmd_selfcheck, scenario_mix=REMOTE_SELFCHECK_MIX)

    p_soak = sub.add_parser(
        "soak",
        help="reconnect soak: flapping fault proxy + resilient client",
    )
    p_soak.add_argument("--host", default="127.0.0.1")
    p_soak.add_argument("--port", type=int, default=0)
    p_soak.add_argument("--timeout", type=float, default=30.0)
    p_soak.add_argument(
        "--duration", type=float, default=60.0, metavar="S",
        help="soak length in seconds (default 60)",
    )
    p_soak.add_argument(
        "--rate", type=float, default=4.0, metavar="R",
        help="poisson arrival rate per second (default 4)",
    )
    p_soak.add_argument(
        "--flap-every", type=float, default=3.0, metavar="S",
        help="drop every proxied connection this often (default 3s)",
    )
    p_soak.add_argument("--json", action="store_true")
    _add_gateway_args(p_soak)
    _add_batch_args(p_soak)
    _add_fault_args(p_soak)
    p_soak.set_defaults(
        func=_cmd_soak,
        scenario_mix=REMOTE_SELFCHECK_MIX,
        policy="block",
        resilient=True,
    )

    p_bench = sub.add_parser(
        "bench", help="loopback latency / wire-bytes micro-bench"
    )
    p_bench.add_argument("--host", default="127.0.0.1")
    p_bench.add_argument("--port", type=int, default=0)
    p_bench.add_argument("--timeout", type=float, default=60.0)
    _add_gateway_args(p_bench)
    _add_batch_args(p_bench)
    p_bench.set_defaults(func=_cmd_bench)

    args = parser.parse_args(argv)
    return int(args.func(args))


if __name__ == "__main__":
    raise SystemExit(main())
