"""Reconnecting client: backoff, circuit breaking, idempotent resume.

:class:`ResilientClient` wraps the blocking
:class:`~repro.service.net.client.Client` behind the same
:class:`~repro.service.net.client.CommonClient` contract and makes the
RPC path survive the network failing under it:

* **reconnect with capped exponential backoff + jitter** — any
  connection-fatal typed error (reset, timeout, truncated or corrupt
  frame, server goodbye) tears the inner client down and dials again;
* **a circuit breaker** — after ``threshold`` consecutive connect
  failures the breaker opens and calls fail fast with a typed
  :class:`CircuitOpen` until ``reset_s`` has passed (then one half-open
  probe decides);
* **idempotent resume** — the client owns a *lineage* id that survives
  connections; every envelope is submitted under an idempotency key, a
  reconnect re-attaches via RESUME, and unacknowledged envelopes are
  resubmitted *under their original keys*, so the server's result cache
  answers anything that already executed.  Digests come out identical
  to an unfailed run, with zero duplicate executions;
* **overload compliance** — a typed ``retry-after`` refusal (the
  server's admission control) is honoured by sleeping the server's hint
  and resubmitting, never by hammering the socket.

Invariant (DESIGN.md §13): *at-least-once delivery, at-most-once
execution*.  The wire may carry an envelope many times; the lineage
cache guarantees the requests inside execute once.

Every retry loop is bounded twice: per-attempt by the inner client's
socket timeout, overall by :attr:`BackoffPolicy.deadline_s` — a dead
server surfaces as a typed :class:`RetriesExhausted` (or
:class:`CircuitOpen`), never a hang.
"""

from __future__ import annotations

import random
import time
import uuid
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ...core.engine import STATUS_REJECTED, RunRequest, RunSummary
from .client import SURVIVABLE_ERROR_CODES, Client, CommonClient
from .framing import (
    MAX_FRAME_BYTES,
    HandshakeError,
    NetError,
    ServerError,
)

__all__ = [
    "BackoffPolicy",
    "CircuitBreaker",
    "CircuitOpen",
    "RetriesExhausted",
    "ResilientClient",
]


class CircuitOpen(NetError):
    """The circuit breaker is open: the server has failed enough
    consecutive connect attempts that calls fail fast instead of
    burning a timeout each."""

    code = "circuit-open"


class RetriesExhausted(NetError):
    """The retry budget (attempt count or overall deadline) ran out
    before the operation could complete."""

    code = "retries-exhausted"


@dataclass(frozen=True)
class BackoffPolicy:
    """Capped exponential backoff with jitter, plus the retry budget.

    Delay for attempt *k* (1-based) is
    ``min(max_s, base_s * factor**(k-1))`` stretched by a uniform
    jitter in ``[1 - jitter_frac, 1 + jitter_frac]`` — jitter prevents
    a fleet of reconnecting clients from thundering in lockstep.
    ``max_attempts`` bounds one operation's retries; ``deadline_s``
    bounds the operation's total wall clock including the time spent
    inside attempts, not just between them.
    """

    base_s: float = 0.05
    factor: float = 2.0
    max_s: float = 2.0
    jitter_frac: float = 0.25
    max_attempts: int = 8
    deadline_s: float = 60.0

    def delay_s(self, attempt: int, rng: random.Random) -> float:
        """The jittered sleep before retry ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        raw = min(self.max_s, self.base_s * self.factor ** (attempt - 1))
        spread = max(0.0, min(1.0, self.jitter_frac))
        return raw * (1.0 - spread + 2.0 * spread * rng.random())


@dataclass
class CircuitBreaker:
    """Consecutive-failure circuit breaker (closed / open / half-open).

    ``record_failure`` past ``threshold`` opens the circuit;
    :meth:`allow` then fails fast until ``reset_s`` has elapsed, after
    which exactly one probe is allowed through (half-open) — its
    success closes the circuit, its failure re-opens it for another
    ``reset_s``.
    """

    threshold: int = 5
    reset_s: float = 5.0
    failures: int = 0
    opened_at: Optional[float] = None
    _probing: bool = field(default=False, repr=False)

    @property
    def state(self) -> str:
        """``"closed"``, ``"open"`` or ``"half-open"``."""
        if self.opened_at is None:
            return "closed"
        if time.monotonic() - self.opened_at >= self.reset_s:
            return "half-open"
        return "open"

    def allow(self) -> bool:
        """Whether a connect attempt may proceed right now."""
        state = self.state
        if state == "closed":
            return True
        if state == "half-open" and not self._probing:
            self._probing = True
            return True
        return False

    def record_success(self) -> None:
        """A connect succeeded: close the circuit."""
        self.failures = 0
        self.opened_at = None
        self._probing = False

    def record_failure(self) -> None:
        """A connect failed: count it; open the circuit past threshold."""
        self.failures += 1
        self._probing = False
        if self.failures >= self.threshold:
            self.opened_at = time.monotonic()


@dataclass
class _Envelope:
    """One logical submit: what reconnection must be able to replay."""

    key: str
    requests: List[RunRequest]
    #: the inner client's channel for the current submission attempt,
    #: or None when the envelope needs (re)submitting.
    inner: Optional[int] = None
    attempts: int = 0


class ResilientClient(CommonClient):
    """A reconnecting, deduplicating client (see module docstring).

    Requires the server to speak protocol v2 — resume without
    idempotency keys would be at-least-once *execution*, which is
    exactly the bug this class exists to rule out.  A v0/v1-only server
    fails :meth:`connect` with a typed, non-retryable
    :class:`~repro.service.net.framing.HandshakeError`.

    ``lineage`` defaults to a fresh UUID: distinct client objects never
    share a result cache unless explicitly configured to.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 30.0,
        max_frame: int = MAX_FRAME_BYTES,
        backoff: Optional[BackoffPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        lineage: Optional[str] = None,
        seed: int = 0,
    ) -> None:
        super().__init__()
        self.host = host
        self.port = port
        self.timeout = float(timeout)
        self.max_frame = int(max_frame)
        self.backoff = backoff if backoff is not None else BackoffPolicy()
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.lineage = lineage if lineage else uuid.uuid4().hex
        self._rng = random.Random(seed)
        self._inner: Optional[Client] = None
        self._envelopes: Dict[int, _Envelope] = {}
        self._by_inner: Dict[int, _Envelope] = {}
        self._ever_connected = False
        #: operational counters (monotone over the client's lifetime).
        self.reconnects = 0
        self.resubmits = 0
        self.retry_afters = 0
        self._hits_accum = 0
        self._sent_accum = 0
        self._received_accum = 0

    # -- aggregated counters -------------------------------------------------

    @property
    def cache_hits(self) -> int:  # type: ignore[override]
        """Cached (FLAG_CACHED) answers received, across connections."""
        inner = self._inner.cache_hits if self._inner is not None else 0
        return self._hits_accum + inner

    @cache_hits.setter
    def cache_hits(self, value: int) -> None:
        # CommonClient.__init__ assigns 0; fold it into the accumulator.
        self._hits_accum = int(value)

    @property
    def bytes_sent(self) -> int:
        """Wire bytes sent, summed across every connection so far."""
        inner = self._inner.bytes_sent if self._inner is not None else 0
        return self._sent_accum + inner

    @property
    def bytes_received(self) -> int:
        """Wire bytes received, summed across every connection so far."""
        inner = self._inner.bytes_received if self._inner is not None else 0
        return self._received_accum + inner

    @property
    def connected(self) -> bool:
        """Whether a live negotiated inner session exists right now."""
        return self._inner is not None and self._inner.connected

    @property
    def pending(self) -> int:
        """Envelopes submitted but not yet collected (stranded-future
        meter: MUST be 0 once every channel has been collected)."""
        return len(self._envelopes)

    def stats(self) -> Dict[str, int]:
        """Snapshot of the resilience counters."""
        return {
            "reconnects": self.reconnects,
            "resubmits": self.resubmits,
            "retry_afters": self.retry_afters,
            "cache_hits": self.cache_hits,
            "breaker_failures": self.breaker.failures,
        }

    # -- connection management -----------------------------------------------

    def connect(self) -> "ResilientClient":
        """Dial (with backoff + breaker), negotiate v2, bind the lineage."""
        self._reconnect(self._deadline())
        return self

    def _deadline(self) -> float:
        return time.monotonic() + self.backoff.deadline_s

    def _sleep_before_retry(
        self, attempt: int, deadline: float, cause: Exception
    ) -> None:
        """Back off before retry ``attempt``; typed error past budget."""
        if attempt > self.backoff.max_attempts:
            raise RetriesExhausted(
                f"gave up after {self.backoff.max_attempts} attempts: "
                f"{cause}"
            ) from cause
        delay = self.backoff.delay_s(attempt, self._rng)
        if time.monotonic() + delay > deadline:
            raise RetriesExhausted(
                f"retry deadline of {self.backoff.deadline_s}s exhausted: "
                f"{cause}"
            ) from cause
        time.sleep(delay)

    def _teardown_inner(self) -> None:
        if self._inner is None:
            return
        self._hits_accum += self._inner.cache_hits
        self._sent_accum += self._inner.bytes_sent
        self._received_accum += self._inner.bytes_received
        self._inner.close()
        self._inner = None

    def _reconnect(self, deadline: float) -> None:
        """Tear down, dial until connected, RESUME, mark for resubmit."""
        self._teardown_inner()
        attempt = 0
        while True:
            if not self.breaker.allow():
                raise CircuitOpen(
                    f"circuit open after {self.breaker.failures} "
                    f"consecutive connect failures to "
                    f"{self.host}:{self.port} (reset in "
                    f"{self.breaker.reset_s}s)"
                )
            try:
                inner = Client(
                    self.host,
                    self.port,
                    timeout=self.timeout,
                    max_frame=self.max_frame,
                )
                inner.connect()
                if inner.protocol_version < 2:
                    version = inner.protocol_version
                    inner.close()
                    raise HandshakeError(
                        f"ResilientClient needs protocol >= 2 "
                        f"(idempotent resume); server negotiated "
                        f"v{version}"
                    )
                inner.resume(self.lineage)
            except HandshakeError:
                # a version/protocol mismatch is configuration, not
                # weather: retrying cannot fix it, so fail loudly now.
                self.breaker.record_failure()
                raise
            except (NetError, OSError) as exc:
                self.breaker.record_failure()
                attempt += 1
                self._sleep_before_retry(attempt, deadline, exc)
                continue
            self.breaker.record_success()
            self._inner = inner
            if self._ever_connected:
                self.reconnects += 1
            self._ever_connected = True
            self._protocol = inner._protocol
            self._session = inner._session
            self._quota = inner._quota
            self._server_info = inner.server_info
            # every uncollected envelope must be resubmitted on this
            # connection; cached keys answer without re-executing.
            self._by_inner.clear()
            for env in self._envelopes.values():
                env.inner = None
            return

    def _ensure_connected(self, deadline: float) -> None:
        if not self.connected:
            self._reconnect(deadline)

    # -- contract ------------------------------------------------------------

    def submit(
        self, requests: Sequence[RunRequest], *, key: Optional[str] = None
    ) -> int:
        """Register one envelope; best-effort ship it now.

        The returned channel id is *stable across reconnects*: it names
        the logical envelope, not any single wire submission.  If the
        wire fails here, the envelope is shipped (or re-shipped) by
        :meth:`collect`.
        """
        deadline = self._deadline()
        self._ensure_connected(deadline)
        outer = self._register(requests)
        env = _Envelope(
            key=key if key else uuid.uuid4().hex, requests=list(requests)
        )
        self._envelopes[outer] = env
        try:
            self._submit_env(env)
        except NetError:
            # collect() owns the retry loop; the envelope stays queued.
            pass
        return outer

    def _submit_env(self, env: _Envelope) -> None:
        assert self._inner is not None
        if env.attempts > 0:
            self.resubmits += 1
        env.attempts += 1
        env.inner = self._inner.submit(env.requests, key=env.key)
        self._by_inner[env.inner] = env

    def collect(self, channel: int) -> List[RunSummary]:
        """Drive one envelope to completion, whatever the wire does."""
        env = self._envelopes.get(channel)
        if env is None:
            raise NetError(f"channel {channel} was never submitted")
        summaries = self._collect_env(env, self._deadline())
        del self._envelopes[channel]
        del self._requests[channel]
        return summaries

    def _collect_env(
        self, env: _Envelope, deadline: float
    ) -> List[RunSummary]:
        """The retry core: (re)submit and collect until executed."""
        attempt = 0
        while True:
            try:
                self._ensure_connected(deadline)
                assert self._inner is not None
                if env.inner is None:
                    self._submit_env(env)
                assert env.inner is not None
                summaries = self._inner.collect(env.inner)
                self._by_inner.pop(env.inner, None)
            except ServerError as exc:
                attempt += 1
                self._on_refusal(exc)
                self._sleep_refusal(exc, attempt, deadline)
                continue
            except (NetError, OSError) as exc:
                # connection-fatal: the inner client has already
                # hard-closed; back off, reconnect, resubmit by key.
                attempt += 1
                self._sleep_before_retry(attempt, deadline, exc)
                continue
            return self._retry_rejected(env, summaries, deadline)

    def _on_refusal(self, exc: ServerError) -> None:
        """Bookkeeping for a survivable per-envelope refusal."""
        if exc.code not in SURVIVABLE_ERROR_CODES:
            return
        self.retry_afters += 1
        # the refusal names the *inner* channel it refused; that
        # submission is void and must be re-shipped after backing off.
        if exc.channel is not None:
            refused = self._by_inner.pop(exc.channel, None)
            if refused is not None:
                refused.inner = None

    def _sleep_refusal(
        self, exc: ServerError, attempt: int, deadline: float
    ) -> None:
        """Honour the server's backoff hint (or backoff policy)."""
        if exc.code not in SURVIVABLE_ERROR_CODES:
            # a non-survivable ServerError aborted the connection; the
            # normal backoff-and-reconnect path applies.
            self._sleep_before_retry(attempt, deadline, exc)
            return
        hint_s = (
            exc.retry_after_ms / 1e3
            if exc.retry_after_ms is not None
            else self.backoff.delay_s(attempt, self._rng)
        )
        if time.monotonic() + hint_s > deadline:
            raise RetriesExhausted(
                f"retry deadline of {self.backoff.deadline_s}s exhausted "
                f"while honouring {exc.code}"
            ) from exc
        time.sleep(hint_s)

    def _retry_rejected(
        self,
        env: _Envelope,
        summaries: List[RunSummary],
        deadline: float,
    ) -> List[RunSummary]:
        """Re-run rows the gateway rejected (backpressure), merge back.

        Rejected rows never executed, so they retry under a *fresh* key
        as a smaller envelope — resubmitting the whole envelope under
        the original key would be wrong twice over: the mixed result
        was never cached (not fully executed), so the completed rows
        would execute a second time.
        """
        while True:
            rejected = [
                i for i, s in enumerate(summaries)
                if s.status == STATUS_REJECTED
            ]
            if not rejected:
                return summaries
            if time.monotonic() > deadline:
                # out of budget: surface the honest partial result —
                # rejected rows are typed failures, not silent gaps.
                return summaries
            retry_env = _Envelope(
                key=uuid.uuid4().hex,
                requests=[env.requests[i] for i in rejected],
            )
            self.resubmits += 1
            time.sleep(self.backoff.delay_s(1, self._rng))
            redone = self._collect_env(retry_env, deadline)
            for slot, summary in zip(rejected, redone):
                summaries[slot] = summary

    def drain(self) -> int:
        """In-band barrier on the *current* connection (reconnects)."""
        deadline = self._deadline()
        attempt = 0
        while True:
            try:
                self._ensure_connected(deadline)
                assert self._inner is not None
                return self._inner.drain()
            except (NetError, OSError) as exc:
                attempt += 1
                self._sleep_before_retry(attempt, deadline, exc)

    def resume(self, lineage: str) -> List[str]:
        """Re-bind the inner session to ``lineage`` (see Client.resume)."""
        deadline = self._deadline()
        attempt = 0
        while True:
            try:
                self._ensure_connected(deadline)
                assert self._inner is not None
                keys = self._inner.resume(lineage)
                self.lineage = lineage
                return keys
            except (NetError, OSError) as exc:
                attempt += 1
                self._sleep_before_retry(attempt, deadline, exc)

    def metrics(self) -> Dict[str, object]:
        """The server's metrics rollup (reconnects if needed)."""
        deadline = self._deadline()
        attempt = 0
        while True:
            try:
                self._ensure_connected(deadline)
                assert self._inner is not None
                return self._inner.metrics()
            except (NetError, OSError) as exc:
                attempt += 1
                self._sleep_before_retry(attempt, deadline, exc)

    def close(self) -> None:
        """Close the inner client and drop session state (idempotent)."""
        self._teardown_inner()
        self._protocol = None
        self._session = None
        self._by_inner.clear()
        self._envelopes.clear()
        self._requests.clear()
