"""Networked RPC front end: versioned binary protocol over TCP.

The first process boundary in the codebase crossed by a socket: an
asyncio server (:mod:`~repro.service.net.server`) fronts the existing
:class:`~repro.service.stream.StreamGateway` and speaks a
length-prefixed binary frame protocol whose data payloads are the
`RENV` columnar envelopes from :mod:`repro.service.transport` — no
per-request pickle on the wire.  Layers, bottom-up:

* :mod:`~repro.service.net.framing` — byte-level frames, the
  incremental decoder and the typed error vocabulary;
* :mod:`~repro.service.net._v0` / :mod:`~repro.service.net._latest` /
  :mod:`~repro.service.net._v2` / :mod:`~repro.service.net._factory` —
  versioned protocol classes and the negotiation registry;
* :mod:`~repro.service.net.server` — the asyncio server: handshake,
  session ids, per-session quotas, graceful drain, and (v2) the
  per-lineage idempotency cache plus overload admission control;
* :mod:`~repro.service.net.client` — the blocking :class:`Client` and
  in-memory :class:`MockClient` behind one :class:`CommonClient` base;
* :mod:`~repro.service.net.resilience` — :class:`ResilientClient`:
  reconnect with backoff and a circuit breaker, idempotent resume,
  ``retry-after`` compliance;
* :mod:`~repro.service.net.faultproxy` — a wire-level fault-injection
  TCP proxy (latency, jitter, rate caps, mid-frame disconnects,
  blackholes, corruption) for testing all of the above.

The wire format's normative specification is ``docs/PROTOCOL.md``;
``tests/test_net_protocol_doc.py`` pins the two together.

Command line::

    python -m repro.service.net serve --port 7707 --workers 4
    python -m repro.service.net client --port 7707 --batch 64
    python -m repro.service.net selfcheck --batch 256
    python -m repro.service.net selfcheck --resilient --toxic latency:5 \
        --toxic disconnect:65536
    python -m repro.service.net soak --duration 60 --flap-every 3
    python -m repro.service.net bench --batch 64

See DESIGN.md section 12.
"""

from ._factory import (
    LATEST,
    PROTOCOLS,
    SUPPORTED_VERSIONS,
    choose_version,
    protocol_for_version,
)
from .framing import (
    MAX_FRAME_BYTES,
    BadMagic,
    CorruptFrame,
    Frame,
    FrameDecoder,
    HandshakeError,
    NetError,
    NetTimeout,
    OversizedFrame,
    ServerError,
    SessionClosed,
    TruncatedFrame,
    UnsupportedFrame,
)

#: Submodule exports resolved lazily (PEP 562), mirroring
#: ``repro.service``: the client pulls in ``repro.service.batch`` and the
#: server pulls in ``repro.service.stream`` — neither belongs in
#: ``sys.modules`` just because someone imported the frame codec.
_CLIENT_EXPORTS = ("Client", "CommonClient", "MockClient")
_SERVER_EXPORTS = ("NetServer", "ServerThread")
_RESILIENCE_EXPORTS = (
    "BackoffPolicy",
    "CircuitBreaker",
    "CircuitOpen",
    "ResilientClient",
    "RetriesExhausted",
)
_FAULTPROXY_EXPORTS = ("FaultProxy", "ProxyThread", "Toxic", "parse_toxic")


def __getattr__(name: str):
    if name in _CLIENT_EXPORTS:
        from . import client

        return getattr(client, name)
    if name in _SERVER_EXPORTS:
        from . import server

        return getattr(server, name)
    if name in _RESILIENCE_EXPORTS:
        from . import resilience

        return getattr(resilience, name)
    if name in _FAULTPROXY_EXPORTS:
        from . import faultproxy

        return getattr(faultproxy, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "LATEST",
    "PROTOCOLS",
    "SUPPORTED_VERSIONS",
    "choose_version",
    "protocol_for_version",
    "MAX_FRAME_BYTES",
    "Frame",
    "FrameDecoder",
    "NetError",
    "BadMagic",
    "OversizedFrame",
    "TruncatedFrame",
    "CorruptFrame",
    "HandshakeError",
    "UnsupportedFrame",
    "ServerError",
    "SessionClosed",
    "NetTimeout",
    *_CLIENT_EXPORTS,
    *_SERVER_EXPORTS,
    *_RESILIENCE_EXPORTS,
    *_FAULTPROXY_EXPORTS,
]
