"""Networked RPC front end: versioned binary protocol over TCP.

The first process boundary in the codebase crossed by a socket: an
asyncio server (:mod:`~repro.service.net.server`) fronts the existing
:class:`~repro.service.stream.StreamGateway` and speaks a
length-prefixed binary frame protocol whose data payloads are the
`RENV` columnar envelopes from :mod:`repro.service.transport` — no
per-request pickle on the wire.  Layers, bottom-up:

* :mod:`~repro.service.net.framing` — byte-level frames, the
  incremental decoder and the typed error vocabulary;
* :mod:`~repro.service.net._v0` / :mod:`~repro.service.net._latest` /
  :mod:`~repro.service.net._factory` — versioned protocol classes and
  the negotiation registry;
* :mod:`~repro.service.net.server` — the asyncio server: handshake,
  session ids, per-session quotas, graceful drain;
* :mod:`~repro.service.net.client` — the blocking :class:`Client` and
  in-memory :class:`MockClient` behind one :class:`CommonClient` base.

The wire format's normative specification is ``docs/PROTOCOL.md``;
``tests/test_net_protocol_doc.py`` pins the two together.

Command line::

    python -m repro.service.net serve --port 7707 --workers 4
    python -m repro.service.net client --port 7707 --batch 64
    python -m repro.service.net selfcheck --batch 256
    python -m repro.service.net bench --batch 64

See DESIGN.md section 12.
"""

from ._factory import (
    LATEST,
    PROTOCOLS,
    SUPPORTED_VERSIONS,
    choose_version,
    protocol_for_version,
)
from .framing import (
    MAX_FRAME_BYTES,
    BadMagic,
    Frame,
    FrameDecoder,
    HandshakeError,
    NetError,
    NetTimeout,
    OversizedFrame,
    ServerError,
    SessionClosed,
    TruncatedFrame,
    UnsupportedFrame,
)

#: Submodule exports resolved lazily (PEP 562), mirroring
#: ``repro.service``: the client pulls in ``repro.service.batch`` and the
#: server pulls in ``repro.service.stream`` — neither belongs in
#: ``sys.modules`` just because someone imported the frame codec.
_CLIENT_EXPORTS = ("Client", "CommonClient", "MockClient")
_SERVER_EXPORTS = ("NetServer", "ServerThread")


def __getattr__(name: str):
    if name in _CLIENT_EXPORTS:
        from . import client

        return getattr(client, name)
    if name in _SERVER_EXPORTS:
        from . import server

        return getattr(server, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "LATEST",
    "PROTOCOLS",
    "SUPPORTED_VERSIONS",
    "choose_version",
    "protocol_for_version",
    "MAX_FRAME_BYTES",
    "Frame",
    "FrameDecoder",
    "NetError",
    "BadMagic",
    "OversizedFrame",
    "TruncatedFrame",
    "HandshakeError",
    "UnsupportedFrame",
    "ServerError",
    "SessionClosed",
    "NetTimeout",
    *_CLIENT_EXPORTS,
    *_SERVER_EXPORTS,
]
