"""Protocol version 1: metrics, drain barriers, unordered summaries.

Subclasses :class:`~repro.service.net._v0.ProtocolV0` and adds the
operational surface a long-lived service needs:

* ``METRICS_REQ``/``METRICS`` — a client can sample the server's live
  :class:`~repro.service.stream.StreamMetrics` rollup plus session
  accounting;
* ``DRAIN``/``DRAINED`` — an in-band barrier: DRAINED answers only after
  every request this session submitted before the DRAIN has resolved;
* **out-of-order summaries** (``ordered_summaries = False``): SUMMARY
  frames are sent as each envelope completes, so one slow envelope never
  convoys the session's other results.  Clients correlate by channel.

Adding a version: subclass this, bump ``version``, register it in
:mod:`repro.service.net._factory`, and extend ``docs/PROTOCOL.md`` —
the factory keeps every older dialect servable.  Idempotency keys,
RESUME, and payload CRCs are version-2 features
(:mod:`repro.service.net._v2`).
"""

from __future__ import annotations

from ._v0 import ProtocolV0
from .framing import (
    FRAME_DRAIN,
    FRAME_DRAINED,
    FRAME_METRICS,
    FRAME_METRICS_REQ,
)

__all__ = ["ProtocolV1"]


class ProtocolV1(ProtocolV0):
    """Wire dialect of protocol version 1 (see module docstring)."""

    version = 1

    #: summaries are delivered as envelopes complete; clients correlate
    #: by channel instead of position.
    ordered_summaries = False

    frame_types = ProtocolV0.frame_types | frozenset(
        {FRAME_METRICS_REQ, FRAME_METRICS, FRAME_DRAIN, FRAME_DRAINED}
    )
