"""Client library of the network service: ``Client`` and ``MockClient``.

Two implementations share one :class:`CommonClient` contract, mirroring
the exploration-tool pattern the ROADMAP points at:

* :class:`Client` — a blocking TCP client: real sockets, real frames,
  real version negotiation.  What applications and the CLI use.
* :class:`MockClient` — an in-memory stand-in with the same surface
  that executes requests in-process.  What tests use when they want the
  client programming model without a server, and what the digest-parity
  differential compares the wire path against.

The shared contract is deliberately small — ``connect``, ``submit``,
``collect``, ``run``, ``drain``, ``metrics``, ``close`` — and
channel-oriented: ``submit`` ships one `RENV` envelope of requests and
returns its channel id, ``collect`` blocks for that channel's summaries.
Summaries never re-ship requests on the wire; the client rejoins them
from the envelope it submitted (the same rule the in-process transport
enforces).
"""

from __future__ import annotations

import socket
import uuid
from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Type

from ...core.engine import RunRequest, RunSummary
from ..batch import execute_request
from ._factory import (
    LATEST,
    SUPPORTED_VERSIONS,
    choose_version,
    protocol_for_version,
)
from ._v0 import ProtocolV0
from .framing import (
    FRAME_ACCEPT,
    FRAME_DRAIN,
    FRAME_DRAINED,
    FRAME_ERROR,
    FRAME_GOODBYE,
    FRAME_HELLO,
    FRAME_METRICS,
    FRAME_METRICS_REQ,
    FRAME_NEGOTIATE,
    FRAME_RESUME,
    FRAME_RESUMED,
    FRAME_SUMMARY,
    MAX_FRAME_BYTES,
    Frame,
    FrameDecoder,
    HandshakeError,
    NetError,
    NetTimeout,
    ServerError,
    SessionClosed,
    UnsupportedFrame,
    control_payload,
    encode_frame,
    parse_control,
)

__all__ = ["CommonClient", "Client", "MockClient", "SURVIVABLE_ERROR_CODES"]

#: default cap on requests per SUBMIT envelope in :meth:`CommonClient.run`.
DEFAULT_CHUNK = 32

#: ERROR codes after which the session stays usable: the server refused
#: one envelope (quota or admission control) but the connection and every
#: other in-flight channel are intact.  Any *other* error the wire
#: surfaces is connection-fatal — the client hard-closes the socket so no
#: later call can block on a stream that will never produce its frame.
SURVIVABLE_ERROR_CODES = frozenset({"quota-exceeded", "retry-after"})


def _int_field(doc: Dict[str, object], key: str) -> int:
    """An integer field of a control document; typed error if absent."""
    value = doc.get(key)
    if not isinstance(value, int) or isinstance(value, bool):
        raise HandshakeError(f"expected integer {key!r} in {doc!r}")
    return value


class CommonClient:
    """The contract both clients implement (see module docstring).

    Subclasses provide :meth:`connect`, :meth:`submit`, :meth:`collect`,
    :meth:`drain`, :meth:`metrics` and :meth:`close`; this base supplies
    the session bookkeeping, the chunking/windowing :meth:`run` loop,
    and context-manager plumbing (``with Client(...) as c:`` connects
    and closes automatically).
    """

    def __init__(self) -> None:
        self._protocol: Optional[Type[ProtocolV0]] = None
        self._session: Optional[int] = None
        self._quota: Optional[int] = None
        self._server_info: Dict[str, object] = {}
        self._requests: Dict[int, List[RunRequest]] = {}
        self._next_channel = 1
        #: SUMMARY frames answered from the server's idempotency cache
        #: (protocol v2 FLAG_CACHED) — the duplicate-execution meter.
        self.cache_hits = 0

    # -- session state -------------------------------------------------------

    @property
    def connected(self) -> bool:
        """Whether a session has been negotiated and not yet closed."""
        return self._protocol is not None

    @property
    def protocol_version(self) -> int:
        """The negotiated protocol version of this session."""
        if self._protocol is None:
            raise SessionClosed("client is not connected")
        return int(self._protocol.version)

    @property
    def session_id(self) -> int:
        """The server-assigned session id of this connection."""
        if self._session is None:
            raise SessionClosed("client is not connected")
        return self._session

    @property
    def session_quota(self) -> int:
        """Max outstanding requests the server allows this session."""
        if self._quota is None:
            raise SessionClosed("client is not connected")
        return self._quota

    @property
    def server_info(self) -> Dict[str, object]:
        """The server's HELLO document (name, versions, limits)."""
        return dict(self._server_info)

    # -- contract ------------------------------------------------------------

    def connect(self) -> "CommonClient":
        """Establish the session (handshake + version negotiation)."""
        raise NotImplementedError

    def submit(
        self, requests: Sequence[RunRequest], *, key: Optional[str] = None
    ) -> int:
        """Ship one envelope of requests; returns its channel id.

        ``key`` is the envelope's idempotency key (protocol v2+); when
        omitted on a v2 session, the client generates one — every
        envelope is resumable by default.  Pre-v2 sessions ignore it.
        """
        raise NotImplementedError

    def collect(self, channel: int) -> List[RunSummary]:
        """Block until ``channel``'s summaries arrive; return them."""
        raise NotImplementedError

    def drain(self) -> int:
        """Barrier: return once every submitted request has resolved."""
        raise NotImplementedError

    def resume(self, lineage: str) -> List[str]:
        """Bind the session to ``lineage`` (protocol v2+).

        Returns the idempotency keys the server still holds cached
        results for — a reconnecting caller resubmits everything
        unacknowledged and the listed keys answer from the cache.
        """
        raise NotImplementedError

    def metrics(self) -> Dict[str, object]:
        """Sample the server's live metrics rollup."""
        raise NotImplementedError

    def close(self) -> None:
        """End the session (idempotent)."""
        raise NotImplementedError

    # -- convenience ---------------------------------------------------------

    def run(
        self, requests: Sequence[RunRequest], chunk: int = DEFAULT_CHUNK
    ) -> List[RunSummary]:
        """Execute ``requests`` remotely; summaries in request order.

        Splits into envelopes of at most ``chunk`` requests and keeps
        several envelopes in flight, windowed so the session's
        outstanding total never exceeds the server's advertised quota —
        a client using ``run`` cannot trip ``quota-exceeded``.
        """
        if chunk < 1:
            raise ValueError("chunk must be >= 1")
        if not requests:
            return []
        quota = self._quota if self._quota is not None else len(requests)
        chunk = min(chunk, quota)
        batches = [
            list(requests[i:i + chunk])
            for i in range(0, len(requests), chunk)
        ]
        collected: Dict[int, List[RunSummary]] = {}
        window: List[int] = []  # submitted, uncollected channels, in order
        inflight = 0
        order: List[int] = []
        for batch in batches:
            while window and inflight + len(batch) > quota:
                oldest = window.pop(0)
                collected[oldest] = self.collect(oldest)
                inflight -= len(collected[oldest])
            ch = self.submit(batch)
            order.append(ch)
            window.append(ch)
            inflight += len(batch)
        for ch in window:
            collected[ch] = self.collect(ch)
        out: List[RunSummary] = []
        for ch in order:
            out.extend(collected[ch])
        return out

    def _register(self, requests: Sequence[RunRequest]) -> int:
        """Allocate a channel and remember its requests for rejoining."""
        channel = self._next_channel
        self._next_channel += 1
        self._requests[channel] = list(requests)
        return channel

    def __enter__(self) -> "CommonClient":
        if not self.connected:
            self.connect()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class Client(CommonClient):
    """Blocking TCP client of a :class:`~repro.service.net.server.NetServer`.

    ``protocol`` pins the session to a specific version (``0`` forces
    the v0 dialect — how the downgrade test drives a v0 client against a
    latest server); ``None`` negotiates the highest mutual version.
    ``timeout`` bounds every socket operation: a dead or wedged server
    surfaces as a typed :class:`NetTimeout`, never a hang.

    ``bytes_sent`` / ``bytes_received`` count raw wire bytes, which is
    what the E19 bench reports as per-request wire cost.
    """

    def __init__(
        self,
        host: str,
        port: int,
        protocol: Optional[int] = None,
        timeout: float = 30.0,
        max_frame: int = MAX_FRAME_BYTES,
    ) -> None:
        super().__init__()
        self.host = host
        self.port = port
        self.timeout = float(timeout)
        self.max_frame = int(max_frame)
        self._requested_version = protocol
        self._sock: Optional[socket.socket] = None
        self._decoder = FrameDecoder(self.max_frame)
        #: SUMMARY frames that arrived while collecting another channel
        #: (protocol v1 delivers out of order).
        self._parked: Dict[int, Frame] = {}
        #: channel -> idempotency key (v2 sessions), for resubmission.
        self._keys: Dict[int, str] = {}
        self.bytes_sent = 0
        self.bytes_received = 0

    # -- wire plumbing -------------------------------------------------------

    def _abort(self) -> None:
        """Hard-close after a connection-fatal error.

        The ISSUE-10 cleanup contract: every typed-error exit closes the
        socket and leaves the object in a state where any later call —
        including a ``collect`` on a channel that was parked behind the
        failure — raises a typed :class:`SessionClosed` immediately
        instead of blocking on a stream that will never produce bytes.
        """
        sock, self._sock = self._sock, None
        self._protocol = None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass  # already torn down by the kernel

    def _send_frame(self, frame: Frame) -> None:
        if self._sock is None:
            raise SessionClosed("client is not connected")
        data = encode_frame(frame, self.max_frame)
        try:
            self._sock.sendall(data)
        except socket.timeout:
            self._abort()
            raise NetTimeout(
                f"send timed out after {self.timeout}s"
            ) from None
        except OSError as exc:
            self._abort()
            raise SessionClosed(
                f"socket failed while sending a {frame.name} frame: {exc}"
            ) from None
        self.bytes_sent += len(data)

    def _recv_frame(self) -> Frame:
        """The next frame off the socket; typed errors, never hangs.

        Every failure here is connection-fatal (timeout, reset, EOF,
        desync, oversize): the socket is closed before the typed error
        propagates, so no parked channel can wait on it afterwards.
        """
        if self._sock is None:
            raise SessionClosed("client is not connected")
        while True:
            try:
                frame = self._decoder.next_frame()
            except NetError:
                self._abort()  # BadMagic / OversizedFrame: stream desync
                raise
            if frame is not None:
                return frame
            try:
                data = self._sock.recv(65536)
            except socket.timeout:
                self._abort()
                raise NetTimeout(
                    f"no frame within {self.timeout}s"
                ) from None
            except OSError as exc:
                self._abort()
                raise SessionClosed(
                    f"socket failed while receiving: {exc}"
                ) from None
            if not data:
                try:
                    self._decoder.eof()  # raises TruncatedFrame mid-frame
                finally:
                    self._abort()
                raise SessionClosed(
                    "server closed the connection while frames were "
                    "still expected"
                )
            self.bytes_received += len(data)
            self._decoder.feed(data)

    def _control_reply(self, frame: Frame) -> Dict[str, object]:
        """Parse a control frame, promoting ERROR/GOODBYE to exceptions.

        A survivable ERROR (``quota-exceeded``, ``retry-after``) leaves
        the session open; anything else — including GOODBYE — aborts the
        connection before the typed error propagates.
        """
        if frame.type == FRAME_ERROR:
            doc = parse_control(frame.payload)
            code = str(doc.get("code", "net-error"))
            hint = doc.get("retry_after_ms")
            if code not in SURVIVABLE_ERROR_CODES:
                self._abort()
            raise ServerError(
                code,
                str(doc.get("message", "")),
                doc.get("channel") if isinstance(doc.get("channel"), int) else None,
                float(hint) if isinstance(hint, (int, float)) else None,
            )
        if frame.type == FRAME_GOODBYE:
            doc = parse_control(frame.payload)
            self._abort()
            raise SessionClosed(
                f"server said goodbye: {doc.get('reason', 'unspecified')}"
            )
        return parse_control(frame.payload)

    def _park(self, frame: Frame) -> None:
        """Park an out-of-order SUMMARY frame under its channel."""
        assert self._protocol is not None
        try:
            channel = self._protocol.summary_channel(frame)
        except NetError:
            self._abort()  # truncated v2 payload: stream cannot be trusted
            raise
        if self._protocol.summary_cached(frame):
            self.cache_hits += 1
        self._parked[channel] = frame

    # -- contract ------------------------------------------------------------

    def connect(self) -> "Client":
        """Dial, handshake, negotiate; returns self once accepted."""
        if self._sock is not None:
            raise RuntimeError("client already connected")
        self._sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        self._sock.settimeout(self.timeout)
        try:
            hello = self._recv_frame()
            if hello.type != FRAME_HELLO:
                raise HandshakeError(
                    f"expected HELLO, got {hello.name}"
                )
            info = self._control_reply(hello)
            versions = info.get("versions")
            if not isinstance(versions, list):
                raise HandshakeError(
                    f"HELLO carries no version list: {info!r}"
                )
            version = choose_version(
                [v for v in versions if isinstance(v, int)],
                self._requested_version,
            )
            self._send_frame(
                Frame(FRAME_NEGOTIATE, control_payload({"version": version}))
            )
            accept = self._recv_frame()
            if accept.type != FRAME_ACCEPT:
                doc = self._control_reply(accept)  # raises on ERROR/GOODBYE
                raise HandshakeError(
                    f"expected ACCEPT, got {accept.name}: {doc!r}"
                )
            doc = self._control_reply(accept)
            self._protocol = protocol_for_version(_int_field(doc, "version"))
            self._session = _int_field(doc, "session")
            self._quota = _int_field(doc, "quota")
            self._server_info = info
        except (NetError, OSError) as exc:
            # _abort() is idempotent: paths through _recv_frame /
            # _control_reply have already hard-closed the socket, the
            # others (choose_version, field validation) have not.
            self._abort()
            if isinstance(exc, NetError):
                raise
            raise SessionClosed(
                f"socket failed during handshake: {exc}"
            ) from None
        return self

    def submit(
        self, requests: Sequence[RunRequest], *, key: Optional[str] = None
    ) -> int:
        """Ship one SUBMIT envelope; returns its channel id.

        On a v2 session every envelope carries an idempotency key —
        ``key`` if given, else a generated UUID — so a resubmit after a
        reconnect can never execute twice.  Pre-v2 dialects have no key
        field; an explicit ``key`` is accepted and silently dropped.
        """
        if self._protocol is None:
            raise SessionClosed("client is not connected")
        if key is None and self._protocol.version >= 2:
            key = uuid.uuid4().hex
        channel = self._register(requests)
        self._keys[channel] = key or ""
        self._send_frame(
            self._protocol.encode_submit(channel, requests, key or "")
        )
        return channel

    def channel_key(self, channel: int) -> str:
        """The idempotency key a channel was submitted under ("" pre-v2)."""
        return self._keys.get(channel, "")

    def collect(self, channel: int) -> List[RunSummary]:
        """Block for ``channel``'s SUMMARY frame; rejoin and return it.

        SUMMARY frames for *other* channels that arrive first are parked
        and handed out when their channel is collected — protocol v1+
        delivers summaries in completion order.
        """
        if self._protocol is None:
            raise SessionClosed("client is not connected")
        proto = self._protocol
        requests = self._requests.get(channel)
        if requests is None:
            raise NetError(f"channel {channel} was never submitted")
        while channel not in self._parked:
            frame = self._recv_frame()
            if frame.type == FRAME_SUMMARY:
                self._park(frame)
                continue
            self._control_reply(frame)  # raises on ERROR/GOODBYE
            self._abort()
            raise NetError(
                f"unexpected {frame.name} frame while collecting "
                f"channel {channel}"
            )
        frame = self._parked.pop(channel)
        try:
            summaries = proto.decode_summary(frame, requests)
        except NetError:
            self._abort()  # CorruptFrame / truncated envelope
            raise
        del self._requests[channel]
        self._keys.pop(channel, None)
        return summaries

    def drain(self) -> int:
        """In-band barrier (protocol v1+); returns the flush count."""
        self._require(FRAME_DRAIN, "DRAIN")
        self._send_frame(Frame(FRAME_DRAIN, control_payload({})))
        while True:
            frame = self._recv_frame()
            if frame.type == FRAME_SUMMARY and self._protocol is not None:
                self._park(frame)
                continue
            if frame.type == FRAME_DRAINED:
                doc = self._control_reply(frame)
                flushed = doc.get("flushed", 0)
                return int(flushed) if isinstance(flushed, int) else 0
            self._control_reply(frame)  # raises on ERROR/GOODBYE
            self._abort()
            raise NetError(f"unexpected {frame.name} frame during drain")

    def resume(self, lineage: str) -> List[str]:
        """Bind this session to ``lineage`` (protocol v2+).

        Returns the idempotency keys the server still holds cached
        results for.  Call right after :meth:`connect` — before any
        submit — so every keyed envelope of this session is resumable.
        """
        self._require(FRAME_RESUME, "RESUME")
        self._send_frame(
            Frame(FRAME_RESUME, control_payload({"lineage": lineage}))
        )
        while True:
            frame = self._recv_frame()
            if frame.type == FRAME_SUMMARY and self._protocol is not None:
                self._park(frame)
                continue
            if frame.type == FRAME_RESUMED:
                doc = self._control_reply(frame)
                cached = doc.get("cached")
                if not isinstance(cached, list):
                    return []
                return [k for k in cached if isinstance(k, str)]
            self._control_reply(frame)  # raises on ERROR/GOODBYE
            self._abort()
            raise NetError(
                f"unexpected {frame.name} frame awaiting RESUMED"
            )

    def metrics(self) -> Dict[str, object]:
        """Sample the server's metrics rollup (protocol v1+)."""
        self._require(FRAME_METRICS_REQ, "METRICS_REQ")
        self._send_frame(Frame(FRAME_METRICS_REQ, control_payload({})))
        while True:
            frame = self._recv_frame()
            if frame.type == FRAME_SUMMARY and self._protocol is not None:
                self._park(frame)
                continue
            if frame.type == FRAME_METRICS:
                return self._control_reply(frame)
            self._control_reply(frame)  # raises on ERROR/GOODBYE
            self._abort()
            raise NetError(
                f"unexpected {frame.name} frame awaiting metrics"
            )

    def close(self) -> None:
        """Say GOODBYE and close the socket (idempotent).

        Safe from every state: never connected, connect failed halfway,
        session aborted by a typed error, or already closed.
        """
        if self._sock is None:
            self._protocol = None
            return
        if self._protocol is not None:
            try:
                self._send_frame(
                    Frame(FRAME_GOODBYE, control_payload({"reason": "done"}))
                )
            except (NetError, OSError):
                pass  # the socket may already be gone; close anyway
        self._abort()

    def _require(self, frame_type: int, name: str) -> None:
        if self._protocol is None:
            raise SessionClosed("client is not connected")
        if not self._protocol.supports(frame_type):
            raise UnsupportedFrame(
                f"{name} frames are not legal on protocol version "
                f"{self._protocol.version}"
            )


class MockClient(CommonClient):
    """In-memory client with the :class:`Client` surface, no server.

    ``submit``/``collect`` execute requests in-process through the same
    :func:`~repro.service.batch.execute_request` worker function the
    gateway dispatches to, stamping unset engines with ``engine`` the
    way a server-side gateway would.  Tests get the client programming
    model with zero sockets; the digest-parity differential uses it as
    the middle rung between "remote Client" and "raw gateway".
    """

    #: the synthetic server name reported in :attr:`server_info`.
    SERVER = "repro.service.net.mock"

    def __init__(self, engine: str = "fast") -> None:
        super().__init__()
        self.engine = engine
        self._results: Dict[int, List[RunSummary]] = {}
        self._executed = 0

    def connect(self) -> "MockClient":
        """Fabricate a session (always protocol latest, session 1)."""
        self._protocol = LATEST
        self._session = 1
        self._quota = 1 << 30  # in-memory: effectively unbounded
        self._server_info = {
            "server": self.SERVER,
            "versions": list(SUPPORTED_VERSIONS),
            "engine": self.engine,
        }
        return self

    def submit(
        self, requests: Sequence[RunRequest], *, key: Optional[str] = None
    ) -> int:
        """Execute one envelope eagerly; returns its channel id.

        ``key`` is accepted for contract parity and remembered, but an
        in-memory client has no wire to lose results on — dedup never
        has anything to do.
        """
        if self._protocol is None:
            raise SessionClosed("client is not connected")
        channel = self._register(requests)
        stamped = [
            r if r.engine is not None else replace(r, engine=self.engine)
            for r in requests
        ]
        self._results[channel] = [execute_request(r) for r in stamped]
        self._executed += len(stamped)
        return channel

    def collect(self, channel: int) -> List[RunSummary]:
        """Return the summaries of an earlier :meth:`submit`."""
        if self._protocol is None:
            raise SessionClosed("client is not connected")
        try:
            summaries = self._results.pop(channel)
        except KeyError:
            raise NetError(
                f"channel {channel} was never submitted"
            ) from None
        del self._requests[channel]
        return summaries

    def drain(self) -> int:
        """No-op barrier: mock execution is synchronous."""
        if self._protocol is None:
            raise SessionClosed("client is not connected")
        return 0

    def resume(self, lineage: str) -> List[str]:
        """Accept any lineage; nothing is ever cached in-memory."""
        if self._protocol is None:
            raise SessionClosed("client is not connected")
        return []

    def metrics(self) -> Dict[str, object]:
        """A synthetic metrics document mirroring the server's shape."""
        if self._protocol is None:
            raise SessionClosed("client is not connected")
        return {
            "gateway": {"offered": self._executed, "completed": self._executed},
            "engine": self.engine,
            "sessions": 1,
            "session": self._session,
            "inflight": 0,
            "quota": self._quota,
            "draining": False,
        }

    def close(self) -> None:
        """Drop the fabricated session (idempotent)."""
        self._protocol = None
        self._results.clear()
        self._requests.clear()
