"""Client library of the network service: ``Client`` and ``MockClient``.

Two implementations share one :class:`CommonClient` contract, mirroring
the exploration-tool pattern the ROADMAP points at:

* :class:`Client` — a blocking TCP client: real sockets, real frames,
  real version negotiation.  What applications and the CLI use.
* :class:`MockClient` — an in-memory stand-in with the same surface
  that executes requests in-process.  What tests use when they want the
  client programming model without a server, and what the digest-parity
  differential compares the wire path against.

The shared contract is deliberately small — ``connect``, ``submit``,
``collect``, ``run``, ``drain``, ``metrics``, ``close`` — and
channel-oriented: ``submit`` ships one `RENV` envelope of requests and
returns its channel id, ``collect`` blocks for that channel's summaries.
Summaries never re-ship requests on the wire; the client rejoins them
from the envelope it submitted (the same rule the in-process transport
enforces).
"""

from __future__ import annotations

import socket
from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Type

from ...core.engine import RunRequest, RunSummary
from ..batch import execute_request
from ._factory import (
    LATEST,
    SUPPORTED_VERSIONS,
    choose_version,
    protocol_for_version,
)
from ._v0 import ProtocolV0
from .framing import (
    FRAME_ACCEPT,
    FRAME_DRAIN,
    FRAME_DRAINED,
    FRAME_ERROR,
    FRAME_GOODBYE,
    FRAME_HELLO,
    FRAME_METRICS,
    FRAME_METRICS_REQ,
    FRAME_NEGOTIATE,
    FRAME_SUMMARY,
    MAX_FRAME_BYTES,
    Frame,
    FrameDecoder,
    HandshakeError,
    NetError,
    NetTimeout,
    ServerError,
    SessionClosed,
    UnsupportedFrame,
    control_payload,
    encode_frame,
    parse_control,
)

__all__ = ["CommonClient", "Client", "MockClient"]

#: default cap on requests per SUBMIT envelope in :meth:`CommonClient.run`.
DEFAULT_CHUNK = 32


def _int_field(doc: Dict[str, object], key: str) -> int:
    """An integer field of a control document; typed error if absent."""
    value = doc.get(key)
    if not isinstance(value, int) or isinstance(value, bool):
        raise HandshakeError(f"expected integer {key!r} in {doc!r}")
    return value


class CommonClient:
    """The contract both clients implement (see module docstring).

    Subclasses provide :meth:`connect`, :meth:`submit`, :meth:`collect`,
    :meth:`drain`, :meth:`metrics` and :meth:`close`; this base supplies
    the session bookkeeping, the chunking/windowing :meth:`run` loop,
    and context-manager plumbing (``with Client(...) as c:`` connects
    and closes automatically).
    """

    def __init__(self) -> None:
        self._protocol: Optional[Type[ProtocolV0]] = None
        self._session: Optional[int] = None
        self._quota: Optional[int] = None
        self._server_info: Dict[str, object] = {}
        self._requests: Dict[int, List[RunRequest]] = {}
        self._next_channel = 1

    # -- session state -------------------------------------------------------

    @property
    def connected(self) -> bool:
        """Whether a session has been negotiated and not yet closed."""
        return self._protocol is not None

    @property
    def protocol_version(self) -> int:
        """The negotiated protocol version of this session."""
        if self._protocol is None:
            raise SessionClosed("client is not connected")
        return int(self._protocol.version)

    @property
    def session_id(self) -> int:
        """The server-assigned session id of this connection."""
        if self._session is None:
            raise SessionClosed("client is not connected")
        return self._session

    @property
    def session_quota(self) -> int:
        """Max outstanding requests the server allows this session."""
        if self._quota is None:
            raise SessionClosed("client is not connected")
        return self._quota

    @property
    def server_info(self) -> Dict[str, object]:
        """The server's HELLO document (name, versions, limits)."""
        return dict(self._server_info)

    # -- contract ------------------------------------------------------------

    def connect(self) -> "CommonClient":
        """Establish the session (handshake + version negotiation)."""
        raise NotImplementedError

    def submit(self, requests: Sequence[RunRequest]) -> int:
        """Ship one envelope of requests; returns its channel id."""
        raise NotImplementedError

    def collect(self, channel: int) -> List[RunSummary]:
        """Block until ``channel``'s summaries arrive; return them."""
        raise NotImplementedError

    def drain(self) -> int:
        """Barrier: return once every submitted request has resolved."""
        raise NotImplementedError

    def metrics(self) -> Dict[str, object]:
        """Sample the server's live metrics rollup."""
        raise NotImplementedError

    def close(self) -> None:
        """End the session (idempotent)."""
        raise NotImplementedError

    # -- convenience ---------------------------------------------------------

    def run(
        self, requests: Sequence[RunRequest], chunk: int = DEFAULT_CHUNK
    ) -> List[RunSummary]:
        """Execute ``requests`` remotely; summaries in request order.

        Splits into envelopes of at most ``chunk`` requests and keeps
        several envelopes in flight, windowed so the session's
        outstanding total never exceeds the server's advertised quota —
        a client using ``run`` cannot trip ``quota-exceeded``.
        """
        if chunk < 1:
            raise ValueError("chunk must be >= 1")
        if not requests:
            return []
        quota = self._quota if self._quota is not None else len(requests)
        chunk = min(chunk, quota)
        batches = [
            list(requests[i:i + chunk])
            for i in range(0, len(requests), chunk)
        ]
        collected: Dict[int, List[RunSummary]] = {}
        window: List[int] = []  # submitted, uncollected channels, in order
        inflight = 0
        order: List[int] = []
        for batch in batches:
            while window and inflight + len(batch) > quota:
                oldest = window.pop(0)
                collected[oldest] = self.collect(oldest)
                inflight -= len(collected[oldest])
            ch = self.submit(batch)
            order.append(ch)
            window.append(ch)
            inflight += len(batch)
        for ch in window:
            collected[ch] = self.collect(ch)
        out: List[RunSummary] = []
        for ch in order:
            out.extend(collected[ch])
        return out

    def _register(self, requests: Sequence[RunRequest]) -> int:
        """Allocate a channel and remember its requests for rejoining."""
        channel = self._next_channel
        self._next_channel += 1
        self._requests[channel] = list(requests)
        return channel

    def __enter__(self) -> "CommonClient":
        if not self.connected:
            self.connect()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class Client(CommonClient):
    """Blocking TCP client of a :class:`~repro.service.net.server.NetServer`.

    ``protocol`` pins the session to a specific version (``0`` forces
    the v0 dialect — how the downgrade test drives a v0 client against a
    latest server); ``None`` negotiates the highest mutual version.
    ``timeout`` bounds every socket operation: a dead or wedged server
    surfaces as a typed :class:`NetTimeout`, never a hang.

    ``bytes_sent`` / ``bytes_received`` count raw wire bytes, which is
    what the E19 bench reports as per-request wire cost.
    """

    def __init__(
        self,
        host: str,
        port: int,
        protocol: Optional[int] = None,
        timeout: float = 30.0,
        max_frame: int = MAX_FRAME_BYTES,
    ) -> None:
        super().__init__()
        self.host = host
        self.port = port
        self.timeout = float(timeout)
        self.max_frame = int(max_frame)
        self._requested_version = protocol
        self._sock: Optional[socket.socket] = None
        self._decoder = FrameDecoder(self.max_frame)
        #: SUMMARY frames that arrived while collecting another channel
        #: (protocol v1 delivers out of order).
        self._parked: Dict[int, Frame] = {}
        self.bytes_sent = 0
        self.bytes_received = 0

    # -- wire plumbing -------------------------------------------------------

    def _send_frame(self, frame: Frame) -> None:
        if self._sock is None:
            raise SessionClosed("client is not connected")
        data = encode_frame(frame, self.max_frame)
        try:
            self._sock.sendall(data)
        except socket.timeout:
            raise NetTimeout(
                f"send timed out after {self.timeout}s"
            ) from None
        self.bytes_sent += len(data)

    def _recv_frame(self) -> Frame:
        """The next frame off the socket; typed errors, never hangs."""
        if self._sock is None:
            raise SessionClosed("client is not connected")
        while True:
            frame = self._decoder.next_frame()
            if frame is not None:
                return frame
            try:
                data = self._sock.recv(65536)
            except socket.timeout:
                raise NetTimeout(
                    f"no frame within {self.timeout}s"
                ) from None
            if not data:
                self._decoder.eof()  # raises TruncatedFrame mid-frame
                raise SessionClosed(
                    "server closed the connection while frames were "
                    "still expected"
                )
            self.bytes_received += len(data)
            self._decoder.feed(data)

    def _control_reply(self, frame: Frame) -> Dict[str, object]:
        """Parse a control frame, promoting ERROR/GOODBYE to exceptions."""
        if frame.type == FRAME_ERROR:
            doc = parse_control(frame.payload)
            raise ServerError(
                str(doc.get("code", "net-error")),
                str(doc.get("message", "")),
                doc.get("channel") if isinstance(doc.get("channel"), int) else None,
            )
        if frame.type == FRAME_GOODBYE:
            doc = parse_control(frame.payload)
            raise SessionClosed(
                f"server said goodbye: {doc.get('reason', 'unspecified')}"
            )
        return parse_control(frame.payload)

    # -- contract ------------------------------------------------------------

    def connect(self) -> "Client":
        """Dial, handshake, negotiate; returns self once accepted."""
        if self._sock is not None:
            raise RuntimeError("client already connected")
        self._sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        self._sock.settimeout(self.timeout)
        try:
            hello = self._recv_frame()
            if hello.type != FRAME_HELLO:
                raise HandshakeError(
                    f"expected HELLO, got {hello.name}"
                )
            info = self._control_reply(hello)
            versions = info.get("versions")
            if not isinstance(versions, list):
                raise HandshakeError(
                    f"HELLO carries no version list: {info!r}"
                )
            version = choose_version(
                [v for v in versions if isinstance(v, int)],
                self._requested_version,
            )
            self._send_frame(
                Frame(FRAME_NEGOTIATE, control_payload({"version": version}))
            )
            accept = self._recv_frame()
            if accept.type != FRAME_ACCEPT:
                doc = self._control_reply(accept)  # raises on ERROR/GOODBYE
                raise HandshakeError(
                    f"expected ACCEPT, got {accept.name}: {doc!r}"
                )
            doc = self._control_reply(accept)
            self._protocol = protocol_for_version(_int_field(doc, "version"))
            self._session = _int_field(doc, "session")
            self._quota = _int_field(doc, "quota")
            self._server_info = info
        except NetError:
            self._sock.close()
            self._sock = None
            raise
        return self

    def submit(self, requests: Sequence[RunRequest]) -> int:
        """Ship one SUBMIT envelope; returns its channel id."""
        if self._protocol is None:
            raise SessionClosed("client is not connected")
        channel = self._register(requests)
        self._send_frame(self._protocol.encode_submit(channel, requests))
        return channel

    def collect(self, channel: int) -> List[RunSummary]:
        """Block for ``channel``'s SUMMARY frame; rejoin and return it.

        SUMMARY frames for *other* channels that arrive first are parked
        and handed out when their channel is collected — protocol v1
        delivers summaries in completion order.
        """
        if self._protocol is None:
            raise SessionClosed("client is not connected")
        proto = self._protocol
        requests = self._requests.get(channel)
        if requests is None:
            raise NetError(f"channel {channel} was never submitted")
        while channel not in self._parked:
            frame = self._recv_frame()
            if frame.type == FRAME_SUMMARY:
                self._parked[proto.summary_channel(frame)] = frame
                continue
            self._control_reply(frame)  # raises on ERROR/GOODBYE
            raise NetError(
                f"unexpected {frame.name} frame while collecting "
                f"channel {channel}"
            )
        frame = self._parked.pop(channel)
        del self._requests[channel]
        return proto.decode_summary(frame, requests)

    def drain(self) -> int:
        """In-band barrier (protocol v1+); returns the flush count."""
        self._require(FRAME_DRAIN, "DRAIN")
        self._send_frame(Frame(FRAME_DRAIN, control_payload({})))
        while True:
            frame = self._recv_frame()
            if frame.type == FRAME_SUMMARY and self._protocol is not None:
                self._parked[self._protocol.summary_channel(frame)] = frame
                continue
            if frame.type == FRAME_DRAINED:
                doc = self._control_reply(frame)
                flushed = doc.get("flushed", 0)
                return int(flushed) if isinstance(flushed, int) else 0
            self._control_reply(frame)  # raises on ERROR/GOODBYE
            raise NetError(f"unexpected {frame.name} frame during drain")

    def metrics(self) -> Dict[str, object]:
        """Sample the server's metrics rollup (protocol v1+)."""
        self._require(FRAME_METRICS_REQ, "METRICS_REQ")
        self._send_frame(Frame(FRAME_METRICS_REQ, control_payload({})))
        while True:
            frame = self._recv_frame()
            if frame.type == FRAME_SUMMARY and self._protocol is not None:
                self._parked[self._protocol.summary_channel(frame)] = frame
                continue
            if frame.type == FRAME_METRICS:
                return self._control_reply(frame)
            self._control_reply(frame)  # raises on ERROR/GOODBYE
            raise NetError(
                f"unexpected {frame.name} frame awaiting metrics"
            )

    def close(self) -> None:
        """Say GOODBYE and close the socket (idempotent)."""
        if self._sock is None:
            return
        if self._protocol is not None:
            try:
                self._send_frame(
                    Frame(FRAME_GOODBYE, control_payload({"reason": "done"}))
                )
            except (NetError, OSError):
                pass  # the socket may already be gone; close anyway
        self._sock.close()
        self._sock = None
        self._protocol = None

    def _require(self, frame_type: int, name: str) -> None:
        if self._protocol is None:
            raise SessionClosed("client is not connected")
        if not self._protocol.supports(frame_type):
            raise UnsupportedFrame(
                f"{name} frames need protocol >= 1; this session "
                f"negotiated version {self._protocol.version}"
            )


class MockClient(CommonClient):
    """In-memory client with the :class:`Client` surface, no server.

    ``submit``/``collect`` execute requests in-process through the same
    :func:`~repro.service.batch.execute_request` worker function the
    gateway dispatches to, stamping unset engines with ``engine`` the
    way a server-side gateway would.  Tests get the client programming
    model with zero sockets; the digest-parity differential uses it as
    the middle rung between "remote Client" and "raw gateway".
    """

    #: the synthetic server name reported in :attr:`server_info`.
    SERVER = "repro.service.net.mock"

    def __init__(self, engine: str = "fast") -> None:
        super().__init__()
        self.engine = engine
        self._results: Dict[int, List[RunSummary]] = {}
        self._executed = 0

    def connect(self) -> "MockClient":
        """Fabricate a session (always protocol latest, session 1)."""
        self._protocol = LATEST
        self._session = 1
        self._quota = 1 << 30  # in-memory: effectively unbounded
        self._server_info = {
            "server": self.SERVER,
            "versions": list(SUPPORTED_VERSIONS),
            "engine": self.engine,
        }
        return self

    def submit(self, requests: Sequence[RunRequest]) -> int:
        """Execute one envelope eagerly; returns its channel id."""
        if self._protocol is None:
            raise SessionClosed("client is not connected")
        channel = self._register(requests)
        stamped = [
            r if r.engine is not None else replace(r, engine=self.engine)
            for r in requests
        ]
        self._results[channel] = [execute_request(r) for r in stamped]
        self._executed += len(stamped)
        return channel

    def collect(self, channel: int) -> List[RunSummary]:
        """Return the summaries of an earlier :meth:`submit`."""
        if self._protocol is None:
            raise SessionClosed("client is not connected")
        try:
            summaries = self._results.pop(channel)
        except KeyError:
            raise NetError(
                f"channel {channel} was never submitted"
            ) from None
        del self._requests[channel]
        return summaries

    def drain(self) -> int:
        """No-op barrier: mock execution is synchronous."""
        if self._protocol is None:
            raise SessionClosed("client is not connected")
        return 0

    def metrics(self) -> Dict[str, object]:
        """A synthetic metrics document mirroring the server's shape."""
        if self._protocol is None:
            raise SessionClosed("client is not connected")
        return {
            "gateway": {"offered": self._executed, "completed": self._executed},
            "engine": self.engine,
            "sessions": 1,
            "session": self._session,
            "inflight": 0,
            "quota": self._quota,
            "draining": False,
        }

    def close(self) -> None:
        """Drop the fabricated session (idempotent)."""
        self._protocol = None
        self._results.clear()
        self._requests.clear()
