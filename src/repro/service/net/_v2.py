"""Protocol version 2: idempotency keys, RESUME, payload CRCs.

The fault-tolerance dialect.  Three additions over version 1, each
answering one failure mode the wire can inflict:

* **idempotency keys** — every SUBMIT carries a client-generated key
  (≤ 255 ASCII bytes) ahead of the request envelope.  The server keeps
  a bounded per-lineage result cache keyed on it, so a reconnecting
  client can resubmit an envelope it never saw answered without the
  requests executing twice.  A cached answer comes back as a SUMMARY
  frame with the :data:`FLAG_CACHED` flag bit set.
* **RESUME/RESUMED** — after reconnecting, a client re-attaches to its
  *lineage* (a client-chosen identity that survives connections) before
  submitting; RESUMED reports which idempotency keys the server still
  holds results for.
* **payload CRCs** — SUBMIT and SUMMARY payloads embed a CRC32 of the
  `RENV` envelope.  A flipped bit surfaces as a typed
  :class:`~repro.service.net.framing.CorruptFrame` instead of a decoder
  crash or — worse — a silently wrong digest.  Corruption is
  connection-fatal; recovery is the reconnect + keyed-resubmit path.

Wire layouts (little-endian)::

    SUBMIT   u32 channel | u8 keylen | keylen bytes key | u32 crc32 | envelope
    SUMMARY  u32 channel | u32 crc32 | envelope

where ``crc32`` is ``zlib.crc32(envelope)``.  Control frames (RESUME,
RESUMED) are canonical JSON like every other control payload.
"""

from __future__ import annotations

import struct
import zlib
from typing import List, Sequence, Tuple

from ...core.engine import RunRequest, RunSummary
from ..transport import decode_requests, decode_summaries, encode_requests
from ._latest import ProtocolV1
from .framing import (
    FRAME_RESUME,
    FRAME_RESUMED,
    FRAME_SUBMIT,
    FRAME_SUMMARY,
    CorruptFrame,
    Frame,
    TruncatedFrame,
)

__all__ = ["ProtocolV2", "FLAG_CACHED", "MAX_KEY_BYTES"]

#: SUMMARY flag bit: this answer was served from the server's
#: idempotency cache, not a fresh execution.  The reconnect differential
#: counts these to assert zero duplicate executions.
FLAG_CACHED = 0x01

#: idempotency keys are length-prefixed with a u8.
MAX_KEY_BYTES = 255

_CHANNEL = struct.Struct("<I")
_KEYLEN = struct.Struct("<B")
_CRC = struct.Struct("<I")


def _check_crc(envelope: bytes, expected: int, frame_name: str) -> None:
    actual = zlib.crc32(envelope) & 0xFFFFFFFF
    if actual != expected:
        raise CorruptFrame(
            f"{frame_name} envelope CRC mismatch: header says "
            f"0x{expected:08x}, payload hashes to 0x{actual:08x}"
        )


class ProtocolV2(ProtocolV1):
    """Wire dialect of protocol version 2 (see module docstring)."""

    version = 2

    frame_types = ProtocolV1.frame_types | frozenset(
        {FRAME_RESUME, FRAME_RESUMED}
    )

    # -- data-plane codec ----------------------------------------------------

    @staticmethod
    def encode_submit(
        channel: int, requests: Sequence[RunRequest], key: str = ""
    ) -> Frame:
        """A keyed SUBMIT frame with an envelope CRC."""
        key_bytes = key.encode("ascii")
        if len(key_bytes) > MAX_KEY_BYTES:
            raise ValueError(
                f"idempotency key of {len(key_bytes)} bytes exceeds the "
                f"u8 length prefix (max {MAX_KEY_BYTES})"
            )
        envelope = encode_requests(requests)
        return Frame(
            FRAME_SUBMIT,
            _CHANNEL.pack(channel)
            + _KEYLEN.pack(len(key_bytes))
            + key_bytes
            + _CRC.pack(zlib.crc32(envelope) & 0xFFFFFFFF)
            + envelope,
        )

    @staticmethod
    def _split_submit(frame: Frame) -> Tuple[int, str, bytes]:
        payload = frame.payload
        fixed = _CHANNEL.size + _KEYLEN.size
        if len(payload) < fixed:
            raise TruncatedFrame(
                f"v2 SUBMIT payload of {len(payload)} bytes is shorter "
                f"than its channel + key-length prefix"
            )
        channel = _CHANNEL.unpack_from(payload)[0]
        keylen = _KEYLEN.unpack_from(payload, _CHANNEL.size)[0]
        if len(payload) < fixed + keylen + _CRC.size:
            raise TruncatedFrame(
                f"v2 SUBMIT payload of {len(payload)} bytes is shorter "
                f"than its {keylen}-byte key + CRC"
            )
        try:
            key = payload[fixed:fixed + keylen].decode("ascii")
        except UnicodeDecodeError:
            raise CorruptFrame(
                "v2 SUBMIT idempotency key is not ASCII"
            ) from None
        crc = _CRC.unpack_from(payload, fixed + keylen)[0]
        envelope = payload[fixed + keylen + _CRC.size:]
        _check_crc(envelope, crc, "SUBMIT")
        return channel, key, envelope

    @classmethod
    def decode_submit(cls, frame: Frame) -> Tuple[int, List[RunRequest]]:
        channel, _, envelope = cls._split_submit(frame)
        return channel, decode_requests(envelope)

    @classmethod
    def decode_submit_ex(
        cls, frame: Frame
    ) -> Tuple[int, str, List[RunRequest]]:
        channel, key, envelope = cls._split_submit(frame)
        return channel, key, decode_requests(envelope)

    @staticmethod
    def wrap_summary(
        channel: int, envelope: bytes, cached: bool = False
    ) -> Frame:
        """A SUMMARY frame around pre-encoded envelope bytes.

        The server's idempotency cache stores *encoded* envelopes, so a
        cache hit re-frames the original bytes — the resubmitted request
        is answered with exactly what the first execution produced.
        """
        return Frame(
            FRAME_SUMMARY,
            _CHANNEL.pack(channel)
            + _CRC.pack(zlib.crc32(envelope) & 0xFFFFFFFF)
            + envelope,
            flags=FLAG_CACHED if cached else 0,
        )

    @staticmethod
    def _split_summary(frame: Frame) -> Tuple[int, bytes]:
        payload = frame.payload
        fixed = _CHANNEL.size + _CRC.size
        if len(payload) < fixed:
            raise TruncatedFrame(
                f"v2 SUMMARY payload of {len(payload)} bytes is shorter "
                f"than its channel + CRC prefix"
            )
        channel = _CHANNEL.unpack_from(payload)[0]
        crc = _CRC.unpack_from(payload, _CHANNEL.size)[0]
        envelope = payload[fixed:]
        _check_crc(envelope, crc, "SUMMARY")
        return channel, envelope

    @classmethod
    def summary_channel(cls, frame: Frame) -> int:
        # channel sits ahead of the CRC, so reading it never needs the
        # CRC to pass — but collect() decodes right after, which does.
        payload = frame.payload
        if len(payload) < _CHANNEL.size:
            raise TruncatedFrame(
                f"v2 SUMMARY payload of {len(payload)} bytes is shorter "
                f"than its channel prefix"
            )
        return int(_CHANNEL.unpack_from(payload)[0])

    @classmethod
    def decode_summary(
        cls, frame: Frame, requests: Sequence[RunRequest]
    ) -> List[RunSummary]:
        _, envelope = cls._split_summary(frame)
        return decode_summaries(envelope, requests)

    @staticmethod
    def summary_cached(frame: Frame) -> bool:
        return bool(frame.flags & FLAG_CACHED)
