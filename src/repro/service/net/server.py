"""Asyncio TCP server fronting :class:`~repro.service.stream.StreamGateway`.

The server owns exactly one gateway and speaks the `RN` frame protocol
(:mod:`repro.service.net.framing`, spec in ``docs/PROTOCOL.md``) to any
number of concurrent clients.  Everything the gateway already does —
backpressure, deadlines, micro-batching, autoscaling, chaos tags,
recording — works unchanged over the socket, because the server is a
thin adapter: SUBMIT frames decode to the same `RENV` request envelopes
the in-process path uses, every request goes through
``gateway.submit()``, and summaries travel back as columnar SUMMARY
frames.  The layer adds only what a *network* front end needs:

* a HELLO → NEGOTIATE → ACCEPT handshake with explicit version
  negotiation (protocol classes from :mod:`repro.service.net._factory`);
* per-client **session ids** and a per-session **queue quota** — the
  first fairness policy: one greedy client exhausts its own quota, not
  the shared gateway queue;
* summary-ordering discipline per negotiated version (v0 sessions get
  summaries in submit order, v1 sessions get them as they complete);
* graceful shutdown: stop accepting, flush every in-flight summary,
  say GOODBYE, then close the gateway.

Every protocol violation maps to a *typed* ERROR frame followed by
GOODBYE — a misbehaving peer is told why and disconnected, never hung.
"""

from __future__ import annotations

import asyncio
import itertools
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Type

from ...core.engine import (
    STATUS_COMPLETED,
    STATUS_FAILED,
    RunRequest,
    RunSummary,
)
from ..stream import StreamGateway
from ._factory import SUPPORTED_VERSIONS, protocol_for_version
from ._v0 import ProtocolV0
from .framing import (
    FRAME_ACCEPT,
    FRAME_DRAIN,
    FRAME_DRAINED,
    FRAME_ERROR,
    FRAME_GOODBYE,
    FRAME_HELLO,
    FRAME_METRICS,
    FRAME_METRICS_REQ,
    FRAME_NEGOTIATE,
    FRAME_RESUME,
    FRAME_RESUMED,
    FRAME_SUBMIT,
    MAX_FRAME_BYTES,
    Frame,
    FrameDecoder,
    HandshakeError,
    NetError,
    UnsupportedFrame,
    control_payload,
    encode_frame,
    parse_control,
)

__all__ = [
    "SERVER_NAME",
    "DEFAULT_SESSION_QUOTA",
    "DEFAULT_IDEMPOTENCY_KEYS",
    "DEFAULT_MAX_LINEAGES",
    "DEFAULT_RETRY_AFTER_MS",
    "HANDSHAKE_TIMEOUT_S",
    "NetServer",
    "ServerThread",
]

#: advertised in the HELLO frame so clients can sanity-check whom they
#: reached before negotiating.
SERVER_NAME = "repro.service.net"

#: max outstanding (submitted, not yet summarised) requests per session.
DEFAULT_SESSION_QUOTA = 64

#: bound on cached idempotency-key results per lineage (LRU-evicted).
DEFAULT_IDEMPOTENCY_KEYS = 512

#: bound on distinct lineages the server remembers (FIFO-evicted).
DEFAULT_MAX_LINEAGES = 64

#: backoff hint stamped into ``retry-after`` errors (admission control).
DEFAULT_RETRY_AFTER_MS = 50.0

#: a connection that has not completed NEGOTIATE within this window is
#: dropped — half-open sockets cannot pin server resources.
HANDSHAKE_TIMEOUT_S = 10.0

#: read-chunk size for the per-connection frame reassembly loop.
_READ_CHUNK = 65536

#: socket-level failures that mean "the peer is gone", not "a bug":
#: they end the session quietly instead of producing an ERROR frame.
_GONE = (ConnectionResetError, BrokenPipeError, OSError)


@dataclass
class _Lineage:
    """Idempotency state for one client identity, across connections.

    A *lineage* is the client-chosen identity a RESUME frame binds a
    session to; it outlives any one TCP connection, which is the whole
    point — a reconnecting client re-attaches and its resubmitted
    envelopes are answered from ``cache`` instead of re-executing.

    ``cache`` maps idempotency key -> *encoded* summary-envelope bytes
    (LRU, bounded by ``cap``): serving original bytes guarantees a
    resubmit's answer is byte-identical to the first execution's.
    ``inflight`` coalesces a resubmit that races the first execution —
    the retry awaits the same result instead of executing again.
    """

    id: str
    cap: int
    cache: "OrderedDict[str, bytes]" = field(default_factory=OrderedDict)
    inflight: Dict[str, "asyncio.Future[bytes]"] = field(
        default_factory=dict
    )
    sessions: int = 0
    hits: int = 0
    misses: int = 0
    coalesced: int = 0
    evictions: int = 0

    def remember(self, key: str, envelope: bytes) -> None:
        """Cache one executed envelope, LRU-evicting past ``cap``."""
        self.cache[key] = envelope
        self.cache.move_to_end(key)
        while len(self.cache) > self.cap:
            self.cache.popitem(last=False)
            self.evictions += 1


@dataclass
class _Session:
    """Per-connection server state (session id, protocol, accounting)."""

    id: int
    protocol: Type[ProtocolV0]
    writer: asyncio.StreamWriter
    quota: int
    #: serialises frame writes: delivery tasks and the read loop share
    #: one socket, and frames must never interleave mid-byte.
    write_lock: asyncio.Lock = field(default_factory=asyncio.Lock)
    #: requests submitted to the gateway but not yet summarised.
    inflight: int = 0
    #: tail of the summary-ordering chain (v0 sessions only).
    chain: Optional["asyncio.Task[None]"] = None
    #: live delivery tasks — what close()/DRAIN wait on.
    pending: Set["asyncio.Task[None]"] = field(default_factory=set)
    #: the lineage a RESUME frame bound this session to (v2+ only).
    lineage: Optional[_Lineage] = None


class NetServer:
    """TCP front end for a :class:`StreamGateway` (see module docstring).

    Gateway-shaping keyword arguments (``workers``, ``engine``,
    ``backend``, ``queue_cap``, ``policy``, ``deadline_ms``,
    ``transport``, ``micro_batch``, ``micro_batch_ms``, ``autoscale``)
    are passed through to the owned gateway verbatim; ``session_quota``
    and ``max_frame`` are the network layer's own knobs.

    Lifecycle mirrors the gateway: ``await start()``, serve, ``await
    close()``.  ``port=0`` binds an ephemeral port; read ``.port`` after
    ``start()``.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        workers: int = 2,
        engine: str = "fast",
        backend: str = "thread",
        queue_cap: int = 64,
        policy: str = "reject",
        deadline_ms: Optional[float] = None,
        transport: str = "shm",
        micro_batch: int = 1,
        micro_batch_ms: float = 2.0,
        autoscale: bool = False,
        session_quota: int = DEFAULT_SESSION_QUOTA,
        max_frame: int = MAX_FRAME_BYTES,
        idempotency_keys: int = DEFAULT_IDEMPOTENCY_KEYS,
        max_lineages: int = DEFAULT_MAX_LINEAGES,
        retry_after_ms: float = DEFAULT_RETRY_AFTER_MS,
    ) -> None:
        if session_quota < 1:
            raise ValueError("session_quota must be >= 1")
        if max_frame < 1024:
            raise ValueError("max_frame must be >= 1024")
        if idempotency_keys < 1:
            raise ValueError("idempotency_keys must be >= 1")
        if max_lineages < 1:
            raise ValueError("max_lineages must be >= 1")
        if retry_after_ms <= 0:
            raise ValueError("retry_after_ms must be > 0")
        self._requested_host = host
        self._requested_port = port
        self.session_quota = int(session_quota)
        self.max_frame = int(max_frame)
        self.idempotency_keys = int(idempotency_keys)
        self.max_lineages = int(max_lineages)
        self.retry_after_ms = float(retry_after_ms)
        self.gateway = StreamGateway(
            workers=workers,
            engine=engine,
            backend=backend,
            queue_cap=queue_cap,
            policy=policy,
            deadline_ms=deadline_ms,
            transport=transport,
            micro_batch=micro_batch,
            micro_batch_ms=micro_batch_ms,
            autoscale=autoscale,
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._sessions: Dict[int, _Session] = {}
        self._lineages: "OrderedDict[str, _Lineage]" = OrderedDict()
        self._session_ids = itertools.count(1)
        self._conn_tasks: Set["asyncio.Task[None]"] = set()
        self._draining = False
        self._closed = False

    # -- lifecycle -----------------------------------------------------------

    @property
    def host(self) -> str:
        """Bound host (valid after :meth:`start`)."""
        return self._bound()[0]

    @property
    def port(self) -> int:
        """Bound port (valid after :meth:`start`; resolves ``port=0``)."""
        return self._bound()[1]

    @property
    def sessions(self) -> int:
        """Number of currently connected, negotiated sessions."""
        return len(self._sessions)

    @property
    def draining(self) -> bool:
        """Whether shutdown has begun (new SUBMITs are refused)."""
        return self._draining

    def _bound(self) -> Tuple[str, int]:
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server is not running")
        name = self._server.sockets[0].getsockname()
        return str(name[0]), int(name[1])

    async def start(self) -> "NetServer":
        """Start the gateway, bind the socket, begin accepting."""
        if self._server is not None:
            raise RuntimeError("server already started")
        if self._closed:
            raise RuntimeError("server already closed; build a new one")
        await self.gateway.start()
        self._server = await asyncio.start_server(
            self._on_connection, self._requested_host, self._requested_port
        )
        return self

    async def serve_forever(self) -> None:
        """Start (if needed) and serve until cancelled."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        await self._server.serve_forever()

    async def close(self) -> None:
        """Graceful shutdown: flush in-flight tickets, say GOODBYE.

        Order matters: (1) flip ``draining`` so new SUBMITs get a typed
        refusal, (2) stop accepting connections, (3) wait for every live
        delivery task — every future the gateway owes a connected client
        resolves and its SUMMARY frame is flushed, (4) GOODBYE + close
        each connection, (5) close the gateway itself.
        """
        if self._closed:
            return
        self._closed = True
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for session in list(self._sessions.values()):
            flushing = list(session.pending)
            if flushing:
                await asyncio.gather(*flushing, return_exceptions=True)
            await self._try_send(
                session,
                _control(
                    FRAME_GOODBYE,
                    {"reason": "server-shutdown", "session": session.id},
                ),
            )
            session.writer.close()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self._sessions.clear()
        await self.gateway.close()

    # -- connection handling -------------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        session: Optional[_Session] = None
        try:
            decoder = FrameDecoder(self.max_frame)
            session = await self._handshake(reader, writer, decoder)
            await self._session_loop(reader, session, decoder)
        except NetError as exc:
            await self._farewell(writer, exc, session)
        except asyncio.TimeoutError:
            await self._farewell(
                writer,
                HandshakeError(
                    f"handshake not completed within {HANDSHAKE_TIMEOUT_S}s"
                ),
                session,
            )
        except _GONE:
            pass  # peer vanished mid-frame; nothing to tell it
        finally:
            if session is not None:
                self._sessions.pop(session.id, None)
            writer.close()

    async def _handshake(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        decoder: FrameDecoder,
    ) -> _Session:
        """HELLO → NEGOTIATE → ACCEPT; returns the negotiated session."""
        hello = {
            "server": SERVER_NAME,
            "versions": list(SUPPORTED_VERSIONS),
            "max_frame": self.max_frame,
            "engine": self.gateway.engine,
            "quota": self.session_quota,
        }
        writer.write(encode_frame(_control(FRAME_HELLO, hello)))
        await writer.drain()
        frame = await asyncio.wait_for(
            self._next_frame(reader, decoder), HANDSHAKE_TIMEOUT_S
        )
        if frame is None:
            raise HandshakeError("peer closed before NEGOTIATE")
        if frame.type != FRAME_NEGOTIATE:
            raise HandshakeError(
                f"expected NEGOTIATE, got {frame.name} before the "
                f"handshake completed"
            )
        doc = parse_control(frame.payload)
        version = doc.get("version")
        if not isinstance(version, int) or isinstance(version, bool):
            raise HandshakeError(
                f"NEGOTIATE carries no integer version: {doc!r}"
            )
        protocol = protocol_for_version(version)
        session = _Session(
            id=next(self._session_ids),
            protocol=protocol,
            writer=writer,
            quota=self.session_quota,
        )
        self._sessions[session.id] = session
        accept = {
            "version": protocol.version,
            "session": session.id,
            "quota": session.quota,
        }
        await self._send(session, _control(FRAME_ACCEPT, accept))
        return session

    async def _next_frame(
        self, reader: asyncio.StreamReader, decoder: FrameDecoder
    ) -> Optional[Frame]:
        """The connection's next frame, or ``None`` on clean EOF.

        Raises the decoder's typed errors (:class:`BadMagic`,
        :class:`OversizedFrame`, :class:`TruncatedFrame`) as soon as the
        offending bytes arrive.
        """
        while True:
            frame = decoder.next_frame()
            if frame is not None:
                return frame
            data = await reader.read(_READ_CHUNK)
            if not data:
                decoder.eof()  # raises TruncatedFrame mid-frame
                return None
            decoder.feed(data)

    async def _session_loop(
        self,
        reader: asyncio.StreamReader,
        session: _Session,
        decoder: FrameDecoder,
    ) -> None:
        """Dispatch frames until GOODBYE, EOF, or a protocol violation."""
        while True:
            frame = await self._next_frame(reader, decoder)
            if frame is None or frame.type == FRAME_GOODBYE:
                return
            if not session.protocol.supports(frame.type):
                raise UnsupportedFrame(
                    f"frame {frame.name} is not legal on protocol "
                    f"version {session.protocol.version}"
                )
            if frame.type == FRAME_SUBMIT:
                await self._on_submit(session, frame)
            elif frame.type == FRAME_RESUME:
                await self._on_resume(session, frame)
            elif frame.type == FRAME_METRICS_REQ:
                await self._on_metrics(session)
            elif frame.type == FRAME_DRAIN:
                await self._on_drain(session)
            else:
                # server-emitted types (SUMMARY, METRICS, DRAINED, ERROR)
                # arriving *from* a client are a protocol violation.
                raise UnsupportedFrame(
                    f"client may not send {frame.name} frames"
                )

    # -- frame handlers ------------------------------------------------------

    async def _on_submit(self, session: _Session, frame: Frame) -> None:
        channel, key, requests = session.protocol.decode_submit_ex(frame)
        if self._draining:
            await self._try_send(
                session,
                _control(
                    FRAME_ERROR,
                    {
                        "code": "draining",
                        "message": "server is shutting down",
                        "channel": channel,
                    },
                ),
            )
            await self._try_send(
                session,
                _control(
                    FRAME_GOODBYE,
                    {"reason": "draining", "session": session.id},
                ),
            )
            return
        lineage = session.lineage
        if lineage is not None and key:
            # Idempotency first: answering a resubmit from the cache (or
            # coalescing onto the in-flight first execution) costs no
            # gateway resources, so it is served even under saturation.
            cached = lineage.cache.get(key)
            if cached is not None:
                lineage.hits += 1
                lineage.cache.move_to_end(key)
                self._spawn_delivery(
                    session,
                    self._deliver_cached(session, channel, cached),
                    channel,
                )
                return
            shared = lineage.inflight.get(key)
            if shared is not None:
                lineage.coalesced += 1
                self._spawn_delivery(
                    session,
                    self._deliver_coalesced(session, channel, shared),
                    channel,
                )
                return
        if self._saturated(session, len(requests)):
            # Admission control (v2+ sessions): convert gateway-queue
            # saturation into a typed, survivable backoff hint instead
            # of letting the reject policy fail the individual requests.
            await self._try_send(
                session,
                _control(
                    FRAME_ERROR,
                    {
                        "code": "retry-after",
                        "message": (
                            f"gateway queue is saturated "
                            f"({self.gateway.queue_depth}/"
                            f"{self.gateway.queue_cap}); retry envelope "
                            f"{channel} after backoff"
                        ),
                        "channel": channel,
                        "retry_after_ms": self.retry_after_ms,
                    },
                ),
            )
            return
        if session.inflight + len(requests) > session.quota:
            await self._try_send(
                session,
                _control(
                    FRAME_ERROR,
                    {
                        "code": "quota-exceeded",
                        "message": (
                            f"session {session.id} has {session.inflight} "
                            f"requests in flight; envelope of "
                            f"{len(requests)} exceeds quota {session.quota}"
                        ),
                        "channel": channel,
                    },
                ),
            )
            return
        inflight_result: Optional["asyncio.Future[bytes]"] = None
        if lineage is not None and key:
            lineage.misses += 1
            inflight_result = asyncio.get_running_loop().create_future()
            lineage.inflight[key] = inflight_result
        session.inflight += len(requests)
        futures = [await self.gateway.submit(r) for r in requests]
        prev = session.chain if session.protocol.ordered_summaries else None
        task = asyncio.create_task(
            self._deliver(
                session, channel, requests, futures, prev,
                key=key, lineage=lineage, inflight_result=inflight_result,
            ),
            name=f"net-deliver-s{session.id}-c{channel}",
        )
        if session.protocol.ordered_summaries:
            session.chain = task
        session.pending.add(task)
        task.add_done_callback(session.pending.discard)

    def _saturated(self, session: _Session, incoming: int) -> bool:
        """Whether admission control should refuse this envelope.

        Only refuses when the queue already holds work (``depth > 0``):
        an envelope larger than the whole queue capacity must still be
        admitted once the queue is empty, or it could never run at all.
        Pre-v2 sessions are never refused — their dialect has no
        ``retry-after`` vocabulary, so they keep the original gateway
        reject/block behaviour unchanged.
        """
        if session.protocol.version < 2:
            return False
        depth = self.gateway.queue_depth
        return depth > 0 and depth + incoming > self.gateway.queue_cap

    def _spawn_delivery(
        self, session: _Session, coro, channel: int
    ) -> None:
        """Track a cache/coalesce delivery like a normal delivery task."""
        task = asyncio.create_task(
            coro, name=f"net-cached-s{session.id}-c{channel}"
        )
        session.pending.add(task)
        task.add_done_callback(session.pending.discard)

    async def _deliver_cached(
        self, session: _Session, channel: int, envelope: bytes
    ) -> None:
        """Answer a resubmitted envelope from the idempotency cache."""
        await self._try_send(
            session,
            session.protocol.wrap_summary(channel, envelope, cached=True),
        )

    async def _deliver_coalesced(
        self,
        session: _Session,
        channel: int,
        shared: "asyncio.Future[bytes]",
    ) -> None:
        """Answer a resubmit by awaiting the first execution's result."""
        envelope = await asyncio.shield(shared)
        await self._try_send(
            session,
            session.protocol.wrap_summary(channel, envelope, cached=True),
        )

    async def _deliver(
        self,
        session: _Session,
        channel: int,
        requests: Sequence[RunRequest],
        futures: Sequence["asyncio.Future[RunSummary]"],
        prev: Optional["asyncio.Task[None]"],
        key: str = "",
        lineage: Optional[_Lineage] = None,
        inflight_result: Optional["asyncio.Future[bytes]"] = None,
    ) -> None:
        """Await one envelope's summaries and send its SUMMARY frame.

        For ordered (v0) sessions, ``prev`` is the previous envelope's
        delivery task: awaiting it before writing guarantees SUMMARY
        frames leave in submit order even when the gateway finishes
        envelopes out of order.

        For keyed (v2, lineage-bound) envelopes the *encoded* result is
        remembered in the lineage cache before the send is attempted —
        a client that disconnected mid-execution still finds its answer
        waiting when it reconnects and resubmits.  Only fully *executed*
        envelopes are cached (every row completed or failed): rejected /
        cancelled rows never ran, and caching them would turn a retry
        into a permanent non-answer.
        """
        try:
            summaries: List[RunSummary] = list(await asyncio.gather(*futures))
        except BaseException as exc:
            if inflight_result is not None and not inflight_result.done():
                inflight_result.set_exception(exc)
                # mark retrieved: coalesced waiters (if any) get the
                # exception through their shield; without waiters the
                # future must not warn at GC time.
                inflight_result.exception()
            if lineage is not None:
                lineage.inflight.pop(key, None)
            raise
        session.inflight -= len(requests)
        envelope = b""
        if lineage is not None and key:
            envelope = session.protocol.summary_envelope(summaries)
            executed = all(
                s.status in (STATUS_COMPLETED, STATUS_FAILED)
                for s in summaries
            )
            if executed:
                lineage.remember(key, envelope)
            if inflight_result is not None and not inflight_result.done():
                inflight_result.set_result(envelope)
            lineage.inflight.pop(key, None)
        if prev is not None:
            await asyncio.gather(prev, return_exceptions=True)
        if envelope:
            frame = session.protocol.wrap_summary(channel, envelope)
        else:
            frame = session.protocol.encode_summary(channel, summaries)
        await self._try_send(session, frame)

    async def _on_resume(self, session: _Session, frame: Frame) -> None:
        """Bind this session to a lineage; report which keys are cached."""
        doc = parse_control(frame.payload)
        lineage_id = doc.get("lineage")
        if not isinstance(lineage_id, str) or not lineage_id:
            raise HandshakeError(
                f"RESUME carries no lineage string: {doc!r}"
            )
        lineage = self._lineages.get(lineage_id)
        if lineage is None:
            lineage = _Lineage(id=lineage_id, cap=self.idempotency_keys)
            self._lineages[lineage_id] = lineage
            while len(self._lineages) > self.max_lineages:
                self._lineages.popitem(last=False)
        else:
            self._lineages.move_to_end(lineage_id)
        session.lineage = lineage
        resumed = lineage.sessions > 0
        lineage.sessions += 1
        await self._send(
            session,
            _control(
                FRAME_RESUMED,
                {
                    "session": session.id,
                    "lineage": lineage_id,
                    "resumed": resumed,
                    "cached": sorted(lineage.cache),
                },
            ),
        )

    async def _on_metrics(self, session: _Session) -> None:
        lineages = list(self._lineages.values())
        doc = {
            "gateway": self.gateway.metrics.to_dict(),
            "engine": self.gateway.engine,
            "sessions": len(self._sessions),
            "session": session.id,
            "inflight": session.inflight,
            "quota": session.quota,
            "draining": self._draining,
            "idempotency": {
                "lineages": len(lineages),
                "cached_keys": sum(len(ln.cache) for ln in lineages),
                "hits": sum(ln.hits for ln in lineages),
                "misses": sum(ln.misses for ln in lineages),
                "coalesced": sum(ln.coalesced for ln in lineages),
                "evictions": sum(ln.evictions for ln in lineages),
            },
        }
        await self._send(session, _control(FRAME_METRICS, doc))

    async def _on_drain(self, session: _Session) -> None:
        """In-band barrier: answer DRAINED once this session is flushed."""
        flushed = 0
        while True:
            pending = [t for t in session.pending if not t.done()]
            if not pending:
                break
            flushed += len(pending)
            await asyncio.gather(*pending, return_exceptions=True)
        await self._send(
            session,
            _control(
                FRAME_DRAINED, {"session": session.id, "flushed": flushed}
            ),
        )

    # -- writes --------------------------------------------------------------

    async def _send(self, session: _Session, frame: Frame) -> None:
        """Write one frame under the session's write lock."""
        async with session.write_lock:
            session.writer.write(encode_frame(frame, self.max_frame))
            await session.writer.drain()

    async def _try_send(self, session: _Session, frame: Frame) -> None:
        """:meth:`_send`, but a vanished peer is not an error."""
        try:
            await self._send(session, frame)
        except _GONE:
            pass  # the session's read loop will observe the close

    async def _farewell(
        self,
        writer: asyncio.StreamWriter,
        exc: NetError,
        session: Optional[_Session],
    ) -> None:
        """Report a typed error to the peer, then say GOODBYE."""
        doc: Dict[str, object] = {"code": exc.code, "message": str(exc)}
        bye: Dict[str, object] = {"reason": exc.code}
        if session is not None:
            bye["session"] = session.id
        try:
            writer.write(encode_frame(_control(FRAME_ERROR, doc)))
            writer.write(encode_frame(_control(FRAME_GOODBYE, bye)))
            await writer.drain()
        except _GONE:
            pass  # nothing left to tell it


def _control(frame_type: int, doc: Dict[str, object]) -> Frame:
    """A control frame carrying a canonical-JSON payload."""
    return Frame(frame_type, control_payload(doc))


class ServerThread:
    """A :class:`NetServer` on a background thread with its own loop.

    The blocking :class:`~repro.service.net.client.Client`, the CLI's
    ``selfcheck``, benchmarks, and tests all need a live server without
    owning an event loop themselves.  ``start()`` returns once the
    socket is bound (``host``/``port`` are then valid); ``close()``
    performs the server's graceful shutdown and joins the thread.
    Usable as a context manager.
    """

    def __init__(self, **server_kwargs: object) -> None:
        self._kwargs = server_kwargs
        self._ready = threading.Event()
        self._stop: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._error: Optional[BaseException] = None
        self.host = ""
        self.port = 0

    def start(self) -> "ServerThread":
        """Spawn the thread; block until the server is accepting.

        A failed start (port in use, bad kwargs, ...) raises *and*
        leaves the object safe to ``close()`` — the error path and
        ``__exit__`` may both run without a second exception.
        """
        if self._thread is not None:
            raise RuntimeError("server thread already started")
        self._thread = threading.Thread(
            target=self._run, name="net-server", daemon=True
        )
        self._thread.start()
        self._ready.wait()
        if self._error is not None:
            # the thread is already on its way out; reap it so close()
            # after a failed start() is a clean no-op.
            self._thread.join(timeout=5.0)
            self._thread = None
            raise RuntimeError(
                f"network server failed to start: {self._error!r}"
            ) from self._error
        return self

    def close(self) -> None:
        """Gracefully stop the server and join its thread (idempotent).

        Safe from error paths: after a failed ``start()``, after a
        previous ``close()``, or with the loop already torn down —
        none of these raise.
        """
        thread, self._thread = self._thread, None
        if thread is None:
            return
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:
                pass  # loop already closed — the thread is finishing
        if thread.is_alive():
            thread.join(timeout=30.0)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except Exception as exc:  # repro: ignore[RPR006] -- surfaced to the starting thread via self._error in start()
            self._error = exc
        finally:
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        server = NetServer(**self._kwargs)  # type: ignore[arg-type]
        await server.start()
        self.host, self.port = server.host, server.port
        self._ready.set()
        try:
            await self._stop.wait()
        finally:
            await server.close()
