"""Asyncio TCP server fronting :class:`~repro.service.stream.StreamGateway`.

The server owns exactly one gateway and speaks the `RN` frame protocol
(:mod:`repro.service.net.framing`, spec in ``docs/PROTOCOL.md``) to any
number of concurrent clients.  Everything the gateway already does —
backpressure, deadlines, micro-batching, autoscaling, chaos tags,
recording — works unchanged over the socket, because the server is a
thin adapter: SUBMIT frames decode to the same `RENV` request envelopes
the in-process path uses, every request goes through
``gateway.submit()``, and summaries travel back as columnar SUMMARY
frames.  The layer adds only what a *network* front end needs:

* a HELLO → NEGOTIATE → ACCEPT handshake with explicit version
  negotiation (protocol classes from :mod:`repro.service.net._factory`);
* per-client **session ids** and a per-session **queue quota** — the
  first fairness policy: one greedy client exhausts its own quota, not
  the shared gateway queue;
* summary-ordering discipline per negotiated version (v0 sessions get
  summaries in submit order, v1 sessions get them as they complete);
* graceful shutdown: stop accepting, flush every in-flight summary,
  say GOODBYE, then close the gateway.

Every protocol violation maps to a *typed* ERROR frame followed by
GOODBYE — a misbehaving peer is told why and disconnected, never hung.
"""

from __future__ import annotations

import asyncio
import itertools
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Type

from ...core.engine import RunRequest, RunSummary
from ..stream import StreamGateway
from ._factory import SUPPORTED_VERSIONS, protocol_for_version
from ._v0 import ProtocolV0
from .framing import (
    FRAME_ACCEPT,
    FRAME_DRAIN,
    FRAME_DRAINED,
    FRAME_ERROR,
    FRAME_GOODBYE,
    FRAME_HELLO,
    FRAME_METRICS,
    FRAME_METRICS_REQ,
    FRAME_NEGOTIATE,
    FRAME_SUBMIT,
    MAX_FRAME_BYTES,
    Frame,
    FrameDecoder,
    HandshakeError,
    NetError,
    UnsupportedFrame,
    control_payload,
    encode_frame,
    parse_control,
)

__all__ = [
    "SERVER_NAME",
    "DEFAULT_SESSION_QUOTA",
    "HANDSHAKE_TIMEOUT_S",
    "NetServer",
    "ServerThread",
]

#: advertised in the HELLO frame so clients can sanity-check whom they
#: reached before negotiating.
SERVER_NAME = "repro.service.net"

#: max outstanding (submitted, not yet summarised) requests per session.
DEFAULT_SESSION_QUOTA = 64

#: a connection that has not completed NEGOTIATE within this window is
#: dropped — half-open sockets cannot pin server resources.
HANDSHAKE_TIMEOUT_S = 10.0

#: read-chunk size for the per-connection frame reassembly loop.
_READ_CHUNK = 65536

#: socket-level failures that mean "the peer is gone", not "a bug":
#: they end the session quietly instead of producing an ERROR frame.
_GONE = (ConnectionResetError, BrokenPipeError, OSError)


@dataclass
class _Session:
    """Per-connection server state (session id, protocol, accounting)."""

    id: int
    protocol: Type[ProtocolV0]
    writer: asyncio.StreamWriter
    quota: int
    #: serialises frame writes: delivery tasks and the read loop share
    #: one socket, and frames must never interleave mid-byte.
    write_lock: asyncio.Lock = field(default_factory=asyncio.Lock)
    #: requests submitted to the gateway but not yet summarised.
    inflight: int = 0
    #: tail of the summary-ordering chain (v0 sessions only).
    chain: Optional["asyncio.Task[None]"] = None
    #: live delivery tasks — what close()/DRAIN wait on.
    pending: Set["asyncio.Task[None]"] = field(default_factory=set)


class NetServer:
    """TCP front end for a :class:`StreamGateway` (see module docstring).

    Gateway-shaping keyword arguments (``workers``, ``engine``,
    ``backend``, ``queue_cap``, ``policy``, ``deadline_ms``,
    ``transport``, ``micro_batch``, ``micro_batch_ms``, ``autoscale``)
    are passed through to the owned gateway verbatim; ``session_quota``
    and ``max_frame`` are the network layer's own knobs.

    Lifecycle mirrors the gateway: ``await start()``, serve, ``await
    close()``.  ``port=0`` binds an ephemeral port; read ``.port`` after
    ``start()``.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        workers: int = 2,
        engine: str = "fast",
        backend: str = "thread",
        queue_cap: int = 64,
        policy: str = "reject",
        deadline_ms: Optional[float] = None,
        transport: str = "shm",
        micro_batch: int = 1,
        micro_batch_ms: float = 2.0,
        autoscale: bool = False,
        session_quota: int = DEFAULT_SESSION_QUOTA,
        max_frame: int = MAX_FRAME_BYTES,
    ) -> None:
        if session_quota < 1:
            raise ValueError("session_quota must be >= 1")
        if max_frame < 1024:
            raise ValueError("max_frame must be >= 1024")
        self._requested_host = host
        self._requested_port = port
        self.session_quota = int(session_quota)
        self.max_frame = int(max_frame)
        self.gateway = StreamGateway(
            workers=workers,
            engine=engine,
            backend=backend,
            queue_cap=queue_cap,
            policy=policy,
            deadline_ms=deadline_ms,
            transport=transport,
            micro_batch=micro_batch,
            micro_batch_ms=micro_batch_ms,
            autoscale=autoscale,
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._sessions: Dict[int, _Session] = {}
        self._session_ids = itertools.count(1)
        self._conn_tasks: Set["asyncio.Task[None]"] = set()
        self._draining = False
        self._closed = False

    # -- lifecycle -----------------------------------------------------------

    @property
    def host(self) -> str:
        """Bound host (valid after :meth:`start`)."""
        return self._bound()[0]

    @property
    def port(self) -> int:
        """Bound port (valid after :meth:`start`; resolves ``port=0``)."""
        return self._bound()[1]

    @property
    def sessions(self) -> int:
        """Number of currently connected, negotiated sessions."""
        return len(self._sessions)

    @property
    def draining(self) -> bool:
        """Whether shutdown has begun (new SUBMITs are refused)."""
        return self._draining

    def _bound(self) -> Tuple[str, int]:
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server is not running")
        name = self._server.sockets[0].getsockname()
        return str(name[0]), int(name[1])

    async def start(self) -> "NetServer":
        """Start the gateway, bind the socket, begin accepting."""
        if self._server is not None:
            raise RuntimeError("server already started")
        if self._closed:
            raise RuntimeError("server already closed; build a new one")
        await self.gateway.start()
        self._server = await asyncio.start_server(
            self._on_connection, self._requested_host, self._requested_port
        )
        return self

    async def serve_forever(self) -> None:
        """Start (if needed) and serve until cancelled."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        await self._server.serve_forever()

    async def close(self) -> None:
        """Graceful shutdown: flush in-flight tickets, say GOODBYE.

        Order matters: (1) flip ``draining`` so new SUBMITs get a typed
        refusal, (2) stop accepting connections, (3) wait for every live
        delivery task — every future the gateway owes a connected client
        resolves and its SUMMARY frame is flushed, (4) GOODBYE + close
        each connection, (5) close the gateway itself.
        """
        if self._closed:
            return
        self._closed = True
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for session in list(self._sessions.values()):
            flushing = list(session.pending)
            if flushing:
                await asyncio.gather(*flushing, return_exceptions=True)
            await self._try_send(
                session,
                _control(
                    FRAME_GOODBYE,
                    {"reason": "server-shutdown", "session": session.id},
                ),
            )
            session.writer.close()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self._sessions.clear()
        await self.gateway.close()

    # -- connection handling -------------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        session: Optional[_Session] = None
        try:
            decoder = FrameDecoder(self.max_frame)
            session = await self._handshake(reader, writer, decoder)
            await self._session_loop(reader, session, decoder)
        except NetError as exc:
            await self._farewell(writer, exc, session)
        except asyncio.TimeoutError:
            await self._farewell(
                writer,
                HandshakeError(
                    f"handshake not completed within {HANDSHAKE_TIMEOUT_S}s"
                ),
                session,
            )
        except _GONE:
            pass  # peer vanished mid-frame; nothing to tell it
        finally:
            if session is not None:
                self._sessions.pop(session.id, None)
            writer.close()

    async def _handshake(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        decoder: FrameDecoder,
    ) -> _Session:
        """HELLO → NEGOTIATE → ACCEPT; returns the negotiated session."""
        hello = {
            "server": SERVER_NAME,
            "versions": list(SUPPORTED_VERSIONS),
            "max_frame": self.max_frame,
            "engine": self.gateway.engine,
            "quota": self.session_quota,
        }
        writer.write(encode_frame(_control(FRAME_HELLO, hello)))
        await writer.drain()
        frame = await asyncio.wait_for(
            self._next_frame(reader, decoder), HANDSHAKE_TIMEOUT_S
        )
        if frame is None:
            raise HandshakeError("peer closed before NEGOTIATE")
        if frame.type != FRAME_NEGOTIATE:
            raise HandshakeError(
                f"expected NEGOTIATE, got {frame.name} before the "
                f"handshake completed"
            )
        doc = parse_control(frame.payload)
        version = doc.get("version")
        if not isinstance(version, int) or isinstance(version, bool):
            raise HandshakeError(
                f"NEGOTIATE carries no integer version: {doc!r}"
            )
        protocol = protocol_for_version(version)
        session = _Session(
            id=next(self._session_ids),
            protocol=protocol,
            writer=writer,
            quota=self.session_quota,
        )
        self._sessions[session.id] = session
        accept = {
            "version": protocol.version,
            "session": session.id,
            "quota": session.quota,
        }
        await self._send(session, _control(FRAME_ACCEPT, accept))
        return session

    async def _next_frame(
        self, reader: asyncio.StreamReader, decoder: FrameDecoder
    ) -> Optional[Frame]:
        """The connection's next frame, or ``None`` on clean EOF.

        Raises the decoder's typed errors (:class:`BadMagic`,
        :class:`OversizedFrame`, :class:`TruncatedFrame`) as soon as the
        offending bytes arrive.
        """
        while True:
            frame = decoder.next_frame()
            if frame is not None:
                return frame
            data = await reader.read(_READ_CHUNK)
            if not data:
                decoder.eof()  # raises TruncatedFrame mid-frame
                return None
            decoder.feed(data)

    async def _session_loop(
        self,
        reader: asyncio.StreamReader,
        session: _Session,
        decoder: FrameDecoder,
    ) -> None:
        """Dispatch frames until GOODBYE, EOF, or a protocol violation."""
        while True:
            frame = await self._next_frame(reader, decoder)
            if frame is None or frame.type == FRAME_GOODBYE:
                return
            if not session.protocol.supports(frame.type):
                raise UnsupportedFrame(
                    f"frame {frame.name} is not legal on protocol "
                    f"version {session.protocol.version}"
                )
            if frame.type == FRAME_SUBMIT:
                await self._on_submit(session, frame)
            elif frame.type == FRAME_METRICS_REQ:
                await self._on_metrics(session)
            elif frame.type == FRAME_DRAIN:
                await self._on_drain(session)
            else:
                # server-emitted types (SUMMARY, METRICS, DRAINED, ERROR)
                # arriving *from* a client are a protocol violation.
                raise UnsupportedFrame(
                    f"client may not send {frame.name} frames"
                )

    # -- frame handlers ------------------------------------------------------

    async def _on_submit(self, session: _Session, frame: Frame) -> None:
        channel, requests = session.protocol.decode_submit(frame)
        if self._draining:
            await self._try_send(
                session,
                _control(
                    FRAME_ERROR,
                    {
                        "code": "draining",
                        "message": "server is shutting down",
                        "channel": channel,
                    },
                ),
            )
            await self._try_send(
                session,
                _control(
                    FRAME_GOODBYE,
                    {"reason": "draining", "session": session.id},
                ),
            )
            return
        if session.inflight + len(requests) > session.quota:
            await self._try_send(
                session,
                _control(
                    FRAME_ERROR,
                    {
                        "code": "quota-exceeded",
                        "message": (
                            f"session {session.id} has {session.inflight} "
                            f"requests in flight; envelope of "
                            f"{len(requests)} exceeds quota {session.quota}"
                        ),
                        "channel": channel,
                    },
                ),
            )
            return
        session.inflight += len(requests)
        futures = [await self.gateway.submit(r) for r in requests]
        prev = session.chain if session.protocol.ordered_summaries else None
        task = asyncio.create_task(
            self._deliver(session, channel, requests, futures, prev),
            name=f"net-deliver-s{session.id}-c{channel}",
        )
        if session.protocol.ordered_summaries:
            session.chain = task
        session.pending.add(task)
        task.add_done_callback(session.pending.discard)

    async def _deliver(
        self,
        session: _Session,
        channel: int,
        requests: Sequence[RunRequest],
        futures: Sequence["asyncio.Future[RunSummary]"],
        prev: Optional["asyncio.Task[None]"],
    ) -> None:
        """Await one envelope's summaries and send its SUMMARY frame.

        For ordered (v0) sessions, ``prev`` is the previous envelope's
        delivery task: awaiting it before writing guarantees SUMMARY
        frames leave in submit order even when the gateway finishes
        envelopes out of order.
        """
        summaries: List[RunSummary] = list(await asyncio.gather(*futures))
        session.inflight -= len(requests)
        if prev is not None:
            await asyncio.gather(prev, return_exceptions=True)
        await self._try_send(
            session, session.protocol.encode_summary(channel, summaries)
        )

    async def _on_metrics(self, session: _Session) -> None:
        doc = {
            "gateway": self.gateway.metrics.to_dict(),
            "engine": self.gateway.engine,
            "sessions": len(self._sessions),
            "session": session.id,
            "inflight": session.inflight,
            "quota": session.quota,
            "draining": self._draining,
        }
        await self._send(session, _control(FRAME_METRICS, doc))

    async def _on_drain(self, session: _Session) -> None:
        """In-band barrier: answer DRAINED once this session is flushed."""
        flushed = 0
        while True:
            pending = [t for t in session.pending if not t.done()]
            if not pending:
                break
            flushed += len(pending)
            await asyncio.gather(*pending, return_exceptions=True)
        await self._send(
            session,
            _control(
                FRAME_DRAINED, {"session": session.id, "flushed": flushed}
            ),
        )

    # -- writes --------------------------------------------------------------

    async def _send(self, session: _Session, frame: Frame) -> None:
        """Write one frame under the session's write lock."""
        async with session.write_lock:
            session.writer.write(encode_frame(frame, self.max_frame))
            await session.writer.drain()

    async def _try_send(self, session: _Session, frame: Frame) -> None:
        """:meth:`_send`, but a vanished peer is not an error."""
        try:
            await self._send(session, frame)
        except _GONE:
            pass  # the session's read loop will observe the close

    async def _farewell(
        self,
        writer: asyncio.StreamWriter,
        exc: NetError,
        session: Optional[_Session],
    ) -> None:
        """Report a typed error to the peer, then say GOODBYE."""
        doc: Dict[str, object] = {"code": exc.code, "message": str(exc)}
        bye: Dict[str, object] = {"reason": exc.code}
        if session is not None:
            bye["session"] = session.id
        try:
            writer.write(encode_frame(_control(FRAME_ERROR, doc)))
            writer.write(encode_frame(_control(FRAME_GOODBYE, bye)))
            await writer.drain()
        except _GONE:
            pass  # nothing left to tell it


def _control(frame_type: int, doc: Dict[str, object]) -> Frame:
    """A control frame carrying a canonical-JSON payload."""
    return Frame(frame_type, control_payload(doc))


class ServerThread:
    """A :class:`NetServer` on a background thread with its own loop.

    The blocking :class:`~repro.service.net.client.Client`, the CLI's
    ``selfcheck``, benchmarks, and tests all need a live server without
    owning an event loop themselves.  ``start()`` returns once the
    socket is bound (``host``/``port`` are then valid); ``close()``
    performs the server's graceful shutdown and joins the thread.
    Usable as a context manager.
    """

    def __init__(self, **server_kwargs: object) -> None:
        self._kwargs = server_kwargs
        self._ready = threading.Event()
        self._stop: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._error: Optional[BaseException] = None
        self.host = ""
        self.port = 0

    def start(self) -> "ServerThread":
        """Spawn the thread; block until the server is accepting."""
        if self._thread is not None:
            raise RuntimeError("server thread already started")
        self._thread = threading.Thread(
            target=self._run, name="net-server", daemon=True
        )
        self._thread.start()
        self._ready.wait()
        if self._error is not None:
            raise RuntimeError(
                f"network server failed to start: {self._error!r}"
            ) from self._error
        return self

    def close(self) -> None:
        """Gracefully stop the server and join its thread."""
        if self._thread is None:
            return
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=30.0)
        self._thread = None

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except Exception as exc:  # repro: ignore[RPR006] -- surfaced to the starting thread via self._error in start()
            self._error = exc
        finally:
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        server = NetServer(**self._kwargs)  # type: ignore[arg-type]
        await server.start()
        self.host, self.port = server.host, server.port
        self._ready.set()
        try:
            await self._stop.wait()
        finally:
            await server.close()
