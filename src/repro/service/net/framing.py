"""Byte-level framing of the network service (`RN` frames).

This is the lowest layer of :mod:`repro.service.net`: a length-prefixed
binary frame format carrying either canonical-JSON control payloads
(handshake, errors, metrics) or `RENV` columnar envelopes from
:mod:`repro.service.transport` (requests and summaries — the data plane
never pickles per request on the wire).  The *normative* byte-level
specification lives in ``docs/PROTOCOL.md``; this module is its reference
implementation, and ``tests/test_net_protocol_doc.py`` round-trips the
spec's worked hex example through these functions so the document cannot
drift from the code.

Frame layout (little-endian)::

    offset  size  field
    0       2     magic  b"RN"
    2       1     type   (FRAME_* constant)
    3       1     flags  (reserved: senders write 0, receivers ignore)
    4       4     length u32 — payload byte count
    8       len   payload

Every malformed-input path raises a *typed* error (:class:`BadMagic`,
:class:`OversizedFrame`, :class:`TruncatedFrame`, ...) rather than a bare
``ValueError`` — the ISSUE-9 contract is "typed errors, never hangs", and
both the server and the clients map these onto `ERROR`/`GOODBYE` frames.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

__all__ = [
    "MAGIC",
    "HEADER",
    "HEADER_BYTES",
    "MAX_FRAME_BYTES",
    "FRAME_HELLO",
    "FRAME_NEGOTIATE",
    "FRAME_ACCEPT",
    "FRAME_RESUME",
    "FRAME_RESUMED",
    "FRAME_SUBMIT",
    "FRAME_SUMMARY",
    "FRAME_METRICS_REQ",
    "FRAME_METRICS",
    "FRAME_DRAIN",
    "FRAME_DRAINED",
    "FRAME_ERROR",
    "FRAME_GOODBYE",
    "FRAME_NAMES",
    "Frame",
    "FrameDecoder",
    "NetError",
    "BadMagic",
    "OversizedFrame",
    "TruncatedFrame",
    "CorruptFrame",
    "HandshakeError",
    "UnsupportedFrame",
    "ServerError",
    "SessionClosed",
    "NetTimeout",
    "control_payload",
    "parse_control",
    "encode_frame",
    "pack_channel",
    "unpack_channel",
]

#: Per-frame magic: every frame on the stream starts with these two bytes,
#: so a desynchronized or foreign peer is detected on the very next frame
#: boundary instead of being misparsed.
MAGIC = b"RN"

#: ``magic(2) | type(u8) | flags(u8) | length(u32 LE)``.
HEADER = struct.Struct("<2sBBI")
HEADER_BYTES = HEADER.size

#: Default ceiling on a single frame's payload.  The server advertises its
#: own limit in the HELLO handshake; both sides enforce theirs on receive,
#: so a corrupt length prefix can never trigger an 4 GiB allocation.
MAX_FRAME_BYTES = 8 * 1024 * 1024

# -- frame types (u8) --------------------------------------------------------
# 0x0x: handshake, 0x1x: data plane, 0x2x: metrics, 0x3x: drain,
# 0x7x: terminal.  Unassigned values are reserved for future versions.
FRAME_HELLO = 0x01
FRAME_NEGOTIATE = 0x02
FRAME_ACCEPT = 0x03
FRAME_RESUME = 0x04
FRAME_RESUMED = 0x05
FRAME_SUBMIT = 0x10
FRAME_SUMMARY = 0x11
FRAME_METRICS_REQ = 0x20
FRAME_METRICS = 0x21
FRAME_DRAIN = 0x30
FRAME_DRAINED = 0x31
FRAME_ERROR = 0x7E
FRAME_GOODBYE = 0x7F

#: Human-readable names for error messages and the CLI's ``--verbose``.
FRAME_NAMES: Dict[int, str] = {
    FRAME_HELLO: "HELLO",
    FRAME_NEGOTIATE: "NEGOTIATE",
    FRAME_ACCEPT: "ACCEPT",
    FRAME_RESUME: "RESUME",
    FRAME_RESUMED: "RESUMED",
    FRAME_SUBMIT: "SUBMIT",
    FRAME_SUMMARY: "SUMMARY",
    FRAME_METRICS_REQ: "METRICS_REQ",
    FRAME_METRICS: "METRICS",
    FRAME_DRAIN: "DRAIN",
    FRAME_DRAINED: "DRAINED",
    FRAME_ERROR: "ERROR",
    FRAME_GOODBYE: "GOODBYE",
}


# -- typed errors ------------------------------------------------------------


class NetError(Exception):
    """Base of every network-service error.

    ``code`` is the machine-readable identifier that travels in ERROR
    frames (``{"code": ..., "message": ...}``), so a client can match on
    the same vocabulary whether the failure was detected locally or
    reported by the peer.
    """

    code = "net-error"


class BadMagic(NetError):
    """The stream's next two bytes are not ``b"RN"`` — a foreign or
    desynchronized peer."""

    code = "bad-magic"


class OversizedFrame(NetError):
    """A frame's length prefix exceeds the enforced maximum."""

    code = "oversized-frame"


class TruncatedFrame(NetError):
    """The connection ended mid-frame (header or payload cut short)."""

    code = "truncated-frame"


class CorruptFrame(NetError):
    """A v2 data payload failed its CRC32 check — bytes were damaged in
    transit (or by a fault proxy).  Connection-fatal: the stream can no
    longer be trusted, so the client reconnects and resubmits under the
    same idempotency keys."""

    code = "corrupt-frame"


class HandshakeError(NetError):
    """Version negotiation failed (no mutual version, or a data frame
    arrived before the handshake completed)."""

    code = "handshake"


class UnsupportedFrame(NetError):
    """A frame type that is not legal on the negotiated protocol version
    (e.g. a DRAIN frame on a v0 session)."""

    code = "unsupported-frame"


class ServerError(NetError):
    """The peer reported a failure in an ERROR frame.

    Attributes mirror the frame payload: ``code`` (machine-readable),
    ``message`` (human-readable), ``channel`` (the submit envelope the
    error refers to, or ``None`` for connection-level errors), and
    ``retry_after_ms`` (the server's backoff hint on ``retry-after``
    admission-control refusals, else ``None``).
    """

    def __init__(
        self,
        code: str,
        message: str,
        channel: Optional[int] = None,
        retry_after_ms: Optional[float] = None,
    ) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message
        self.channel = channel
        self.retry_after_ms = retry_after_ms


class SessionClosed(NetError):
    """The peer said GOODBYE (or closed cleanly) while frames were still
    expected."""

    code = "session-closed"


class NetTimeout(NetError):
    """A blocking client operation exceeded its timeout."""

    code = "timeout"


# -- frame codec -------------------------------------------------------------


@dataclass(frozen=True)
class Frame:
    """One decoded frame: ``type`` (FRAME_* constant) plus raw payload."""

    type: int
    payload: bytes = b""
    flags: int = 0

    @property
    def name(self) -> str:
        """Human-readable frame-type name (``"SUBMIT"``, ...)."""
        return FRAME_NAMES.get(self.type, f"0x{self.type:02x}")


def encode_frame(frame: Frame, max_frame: int = MAX_FRAME_BYTES) -> bytes:
    """Serialize one frame; raises :class:`OversizedFrame` beyond the cap."""
    if len(frame.payload) > max_frame:
        raise OversizedFrame(
            f"refusing to send a {len(frame.payload)}-byte {frame.name} "
            f"payload (cap {max_frame})"
        )
    return HEADER.pack(
        MAGIC, frame.type, frame.flags, len(frame.payload)
    ) + frame.payload


class FrameDecoder:
    """Incremental frame parser over an arbitrary byte-chunk stream.

    Both the asyncio server and the blocking client feed whatever the
    socket yields into :meth:`feed` and pull complete frames out of
    :meth:`next_frame`; TCP's chunking never aligns with frame
    boundaries, so the decoder owns the reassembly buffer.  Call
    :meth:`eof` when the peer closes: a non-empty buffer at EOF is a
    mid-frame disconnect and raises :class:`TruncatedFrame`.
    """

    def __init__(self, max_frame: int = MAX_FRAME_BYTES) -> None:
        self.max_frame = max_frame
        self._buf = bytearray()

    def feed(self, data: bytes) -> None:
        """Append received bytes to the reassembly buffer."""
        self._buf.extend(data)

    def next_frame(self) -> Optional[Frame]:
        """The next complete frame, or ``None`` if more bytes are needed.

        Raises :class:`BadMagic` / :class:`OversizedFrame` as soon as the
        header is readable — malformed input is rejected before the
        payload is buffered, so a garbage peer cannot make the decoder
        hold gigabytes.
        """
        if len(self._buf) < HEADER_BYTES:
            return None
        magic, ftype, flags, length = HEADER.unpack_from(self._buf)
        if magic != MAGIC:
            raise BadMagic(
                f"expected frame magic {MAGIC!r}, got {bytes(magic)!r}"
            )
        if length > self.max_frame:
            raise OversizedFrame(
                f"frame announces a {length}-byte payload "
                f"(cap {self.max_frame})"
            )
        if len(self._buf) < HEADER_BYTES + length:
            return None
        payload = bytes(self._buf[HEADER_BYTES:HEADER_BYTES + length])
        del self._buf[:HEADER_BYTES + length]
        return Frame(ftype, payload, flags)

    def eof(self) -> None:
        """Signal peer close; raises :class:`TruncatedFrame` mid-frame."""
        if self._buf:
            raise TruncatedFrame(
                f"connection closed with {len(self._buf)} buffered bytes "
                f"of an incomplete frame"
            )

    @property
    def buffered(self) -> int:
        """Bytes currently held in the reassembly buffer."""
        return len(self._buf)


# -- payload helpers ---------------------------------------------------------


def control_payload(doc: Dict[str, object]) -> bytes:
    """Canonical-JSON control payload (sorted keys, minimal separators).

    Canonical form matters: the PROTOCOL.md hex example is byte-exact,
    and error-frame CRCs in captures hash the same bytes everywhere.
    """
    return json.dumps(doc, sort_keys=True, separators=(",", ":")).encode()


def parse_control(payload: bytes) -> Dict[str, object]:
    """Parse a control payload; raises :class:`NetError` on non-JSON."""
    try:
        doc = json.loads(payload.decode())
    except (ValueError, UnicodeDecodeError) as exc:
        raise NetError(f"malformed control payload: {exc}") from None
    if not isinstance(doc, dict):
        raise NetError(
            f"control payload must be a JSON object, got {type(doc).__name__}"
        )
    return doc


_CHANNEL = struct.Struct("<I")


def pack_channel(channel: int, envelope: bytes) -> bytes:
    """Prefix a data payload with its u32 channel (submit-envelope id)."""
    return _CHANNEL.pack(channel) + envelope


def unpack_channel(payload: bytes) -> Tuple[int, bytes]:
    """Split a data payload into ``(channel, envelope_bytes)``."""
    if len(payload) < _CHANNEL.size:
        raise TruncatedFrame(
            f"data payload of {len(payload)} bytes is shorter than its "
            f"channel prefix"
        )
    return _CHANNEL.unpack_from(payload)[0], payload[_CHANNEL.size:]
