"""Protocol version 0: the minimal submit/summary wire dialect.

Versioned protocol classes follow the exploration-tool pattern the
ROADMAP points at: each version is a class describing exactly what is
legal on the wire after that version is negotiated, later versions
subclass earlier ones, and :mod:`repro.service.net._factory` maps a
negotiated number to its class.  Version 0 is deliberately small — the
subset every future server must keep serving:

* data frames: ``SUBMIT`` (client) and ``SUMMARY`` (server), payloads are
  ``u32 channel`` + one `RENV` columnar envelope;
* terminal frames: ``ERROR`` and ``GOODBYE``;
* **ordered summaries**: the server delivers SUMMARY frames in submit
  (channel) order, because a v0 client may consume them positionally.

Metrics, drain barriers, and out-of-order summary delivery are version-1
features (:mod:`repro.service.net._latest`); a v0 session that sends
those frame types gets a typed ``unsupported-frame`` error.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ...core.engine import RunRequest, RunSummary
from ..transport import (
    decode_requests,
    decode_summaries,
    encode_requests,
    encode_summaries,
)
from .framing import (
    FRAME_ERROR,
    FRAME_GOODBYE,
    FRAME_SUBMIT,
    FRAME_SUMMARY,
    Frame,
    pack_channel,
    unpack_channel,
)

__all__ = ["ProtocolV0"]


class ProtocolV0:
    """Wire dialect of protocol version 0 (see module docstring)."""

    #: the number a NEGOTIATE frame selects to speak this dialect.
    version = 0

    #: v0 clients may consume SUMMARY frames positionally, so the server
    #: must emit them in submit order for sessions on this version.
    ordered_summaries = True

    #: frame types legal on a session after this version is negotiated
    #: (handshake frames are version-independent and excluded).
    frame_types = frozenset(
        {FRAME_SUBMIT, FRAME_SUMMARY, FRAME_ERROR, FRAME_GOODBYE}
    )

    @classmethod
    def supports(cls, frame_type: int) -> bool:
        """Whether ``frame_type`` is legal on a session of this version."""
        return frame_type in cls.frame_types

    # -- data-plane codec ----------------------------------------------------

    @staticmethod
    def encode_submit(
        channel: int, requests: Sequence[RunRequest], key: str = ""
    ) -> Frame:
        """A SUBMIT frame: channel prefix + columnar request envelope.

        ``key`` (an idempotency key) only travels on the wire from
        protocol v2 on; v0/v1 accept and ignore it so callers can pass
        it unconditionally.
        """
        return Frame(FRAME_SUBMIT, pack_channel(channel, encode_requests(requests)))

    @staticmethod
    def decode_submit(frame: Frame) -> Tuple[int, List[RunRequest]]:
        """Split a SUBMIT frame into ``(channel, requests)``."""
        channel, envelope = unpack_channel(frame.payload)
        return channel, decode_requests(envelope)

    @classmethod
    def decode_submit_ex(
        cls, frame: Frame
    ) -> Tuple[int, str, List[RunRequest]]:
        """``(channel, idempotency_key, requests)`` — key is ``""`` pre-v2.

        One uniform call site for the server: versions without a key
        field report the empty key, which disables result caching.
        """
        channel, requests = cls.decode_submit(frame)
        return channel, "", requests

    @staticmethod
    def summary_envelope(summaries: Sequence[RunSummary]) -> bytes:
        """Encode summaries to raw envelope bytes (what the server's
        idempotency cache stores from protocol v2 on)."""
        return encode_summaries(summaries)

    @staticmethod
    def wrap_summary(
        channel: int, envelope: bytes, cached: bool = False
    ) -> Frame:
        """Frame pre-encoded summary-envelope bytes.

        ``cached`` only has a wire representation from v2 on (the
        FLAG_CACHED bit); earlier dialects write zero flags.
        """
        return Frame(FRAME_SUMMARY, pack_channel(channel, envelope))

    @classmethod
    def encode_summary(
        cls, channel: int, summaries: Sequence[RunSummary]
    ) -> Frame:
        """A SUMMARY frame; requests are *not* re-shipped (RENV rule)."""
        return cls.wrap_summary(channel, cls.summary_envelope(summaries))

    @staticmethod
    def summary_channel(frame: Frame) -> int:
        """The channel a SUMMARY frame answers (for request rejoining)."""
        channel, _ = unpack_channel(frame.payload)
        return channel

    @staticmethod
    def decode_summary(
        frame: Frame, requests: Sequence[RunRequest]
    ) -> List[RunSummary]:
        """Decode a SUMMARY frame, rejoining the submitter-held requests."""
        _, envelope = unpack_channel(frame.payload)
        return decode_summaries(envelope, requests)

    @staticmethod
    def summary_cached(frame: Frame) -> bool:
        """Whether a SUMMARY was served from the idempotency cache.

        Pre-v2 dialects have no cache, so the answer is always False.
        """
        return False
