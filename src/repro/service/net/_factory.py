"""Protocol factory: negotiated version number -> protocol class.

The registry is the single source of truth for what this build can
speak.  The server advertises ``SUPPORTED_VERSIONS`` in its HELLO frame;
the client picks the highest version both sides share (or an explicitly
forced one — how the downgrade path is exercised in tests) and both
sides resolve the number through :func:`protocol_for_version`.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Type

from ._latest import ProtocolV1
from ._v0 import ProtocolV0
from ._v2 import ProtocolV2
from .framing import HandshakeError

__all__ = [
    "LATEST",
    "PROTOCOLS",
    "SUPPORTED_VERSIONS",
    "choose_version",
    "protocol_for_version",
]

#: every dialect this build can speak, keyed by version number.
PROTOCOLS: Dict[int, Type[ProtocolV0]] = {
    ProtocolV0.version: ProtocolV0,
    ProtocolV1.version: ProtocolV1,
    ProtocolV2.version: ProtocolV2,
}

#: the newest dialect — what a fresh client asks for by default.
LATEST: Type[ProtocolV0] = ProtocolV2

#: ascending version numbers, as advertised in the HELLO frame.
SUPPORTED_VERSIONS = tuple(sorted(PROTOCOLS))


def protocol_for_version(version: int) -> Type[ProtocolV0]:
    """The protocol class for ``version``; typed error if unknown."""
    try:
        return PROTOCOLS[version]
    except KeyError:
        raise HandshakeError(
            f"unsupported protocol version {version}; this build speaks "
            f"{', '.join(map(str, SUPPORTED_VERSIONS))}"
        ) from None


def choose_version(
    server_versions: Sequence[int], requested: Optional[int] = None
) -> int:
    """Client-side version choice against a server's advertised list.

    With no ``requested`` version the client picks the highest version
    both sides share — a ``_v0``-era server downgrades a latest client
    transparently.  An explicit ``requested`` must be mutual; it is how
    tests (and cautious operators) pin a session to an old dialect.
    """
    mutual = sorted(set(server_versions) & set(SUPPORTED_VERSIONS))
    if not mutual:
        raise HandshakeError(
            f"no mutual protocol version: server speaks "
            f"{sorted(server_versions)}, client speaks "
            f"{list(SUPPORTED_VERSIONS)}"
        )
    if requested is None:
        return mutual[-1]
    if requested not in mutual:
        raise HandshakeError(
            f"requested protocol version {requested} is not mutual "
            f"(mutual: {mutual})"
        )
    return requested
