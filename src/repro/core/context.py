"""Per-node execution context and the shared deterministic-computation cache.

A :class:`NodeContext` is what a protocol generator receives: the node's
identity, the system size, helpers for deterministic common-knowledge
computations, and instrumentation hooks.  Protocols must treat the context as
their *only* window onto the system — all cross-node information flows
through messages.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, Optional

from .errors import ProtocolError
from .metrics import OperationMeter


class SharedCache:
    """Memoizer for deterministic computations performed by every node.

    Semantics: every node evaluates the same pure function of commonly known
    data and obtains the identical result (this is how the paper's nodes
    agree on edge colorings without communication).  In a single-process
    simulation it is wasteful to recompute the result ``n`` times, so nodes
    may route such computations through this cache.

    ``verify_mode`` recomputes on every call and asserts agreement with the
    cached value — tests use it to confirm that "shared" computations really
    are a pure function of their key-identified inputs.
    """

    def __init__(self, verify_mode: bool = False) -> None:
        self._store: Dict[Hashable, Any] = {}
        self.verify_mode = verify_mode
        self.hits = 0
        self.misses = 0

    def compute(self, key: Hashable, fn: Callable[[], Any]) -> Any:
        if key in self._store:
            self.hits += 1
            if self.verify_mode:
                fresh = fn()
                if fresh != self._store[key]:
                    raise ProtocolError(
                        f"shared computation for key {key!r} is not "
                        "deterministic: nodes would disagree"
                    )
            return self._store[key]
        self.misses += 1
        value = fn()
        self._store[key] = value
        return value


class NodeContext:
    """Everything a protocol running at one node may see and use.

    Attributes:
        node_id: this node's identifier in ``{0, ..., n-1}``.  (The paper
            numbers nodes 1..n; we use 0-based ids throughout and translate
            only in documentation.)
        n: total number of nodes.
        capacity: maximum words per packet on any edge.
        meter: operation meter for Section-5 computation/memory accounting,
            or ``None`` when metering is disabled.
    """

    def __init__(
        self,
        node_id: int,
        n: int,
        capacity: int,
        shared: SharedCache,
        meter: Optional[OperationMeter] = None,
        phase_sink: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.node_id = node_id
        self.n = n
        self.capacity = capacity
        self._shared = shared
        self.meter = meter
        self._phase_sink = phase_sink

    def shared_compute(self, key: Hashable, fn: Callable[[], Any]) -> Any:
        """Evaluate a deterministic common-knowledge function.

        ``key`` must uniquely identify the inputs of ``fn``: two nodes calling
        with the same key are asserting they would compute the same value.
        """
        return self._shared.compute(key, fn)

    def enter_phase(self, name: str) -> None:
        """Attribute subsequent rounds to a named algorithm phase.

        Idempotent across nodes: the engine records the phase transition once
        per round regardless of how many nodes announce it.
        """
        if self._phase_sink is not None:
            self._phase_sink(name)

    def charge(self, steps: int = 1) -> None:
        """Charge local computation steps to this node's meter, if any."""
        if self.meter is not None:
            self.meter.charge(steps)

    def charge_sort(self, length: int) -> None:
        if self.meter is not None:
            self.meter.charge_sort(length)

    def observe_live_words(self, words: int) -> None:
        if self.meter is not None:
            self.meter.observe_live_words(words)
