"""Per-node execution context and the shared deterministic-computation cache.

A :class:`NodeContext` is what a protocol generator receives: the node's
identity, the system size, helpers for deterministic common-knowledge
computations, and instrumentation hooks.  Protocols must treat the context as
their *only* window onto the system — all cross-node information flows
through messages.
"""

from __future__ import annotations

import contextvars
import pickle
from contextlib import contextmanager
from typing import Any, Callable, Dict, Hashable, Iterator, Optional, Tuple

from .errors import ProtocolError
from .metrics import OperationMeter

#: sentinel distinguishing "evicted nothing" from an evicted ``None`` plan.
_MISSING = object()


class SharedCache:
    """Memoizer for deterministic computations performed by every node.

    Semantics: every node evaluates the same pure function of commonly known
    data and obtains the identical result (this is how the paper's nodes
    agree on edge colorings without communication).  In a single-process
    simulation it is wasteful to recompute the result ``n`` times, so nodes
    may route such computations through this cache.

    ``verify_mode`` recomputes on every call and asserts agreement with the
    cached value — tests use it to confirm that "shared" computations really
    are a pure function of their key-identified inputs.
    """

    def __init__(self, verify_mode: bool = False) -> None:
        self._store: Dict[Hashable, Any] = {}
        self.verify_mode = verify_mode
        self.hits = 0
        self.misses = 0

    def compute(self, key: Hashable, fn: Callable[[], Any]) -> Any:
        if key in self._store:
            self.hits += 1
            if self.verify_mode:
                # The recompute must be genuine: shared computations may
                # route through the process-wide plan cache, which would
                # hand back the stored object and make this audit compare
                # a value to itself.  The bypass is *scoped* — flipping the
                # cache's global ``enabled`` flag here would be observable
                # by (and clobbered by) any other run interleaved with this
                # one; see :meth:`PlanCache.bypassed`.
                with _GLOBAL_PLAN_CACHE.bypassed():
                    fresh = fn()
                if fresh != self._store[key]:
                    raise ProtocolError(
                        f"shared computation for key {key!r} is not "
                        "deterministic: nodes would disagree"
                    )
            return self._store[key]
        self.misses += 1
        value = fn()
        self._store[key] = value
        return value


class PlanCache:
    """Process-level memoizer for *structural plans*, layered under
    :class:`SharedCache`.

    A plan is a pure function of structural inputs only — a Koenig coloring
    of a demand matrix, a group partition of ``n`` nodes, a packed-header
    codec for ``(n, load_bound)``.  Unlike the per-run :class:`SharedCache`
    (which models the paper's "every node computes the same thing" argument
    and is torn down with the run), plans recur *across* runs: scenario
    sweeps, benchmark repeats and service-style batched workloads replay the
    same ``n`` and the same demand structures over and over, and the setup
    cost — dominated by the colorings — can be paid once per process.

    Layering contract: algorithm code keeps calling
    ``ctx.shared_compute(key, fn)`` so per-run hit/miss statistics (and the
    engine-equivalence guarantees built on them) are untouched; only ``fn``
    itself routes through :meth:`compute`.  On a shared-cache miss the plan
    cache either replays the stored plan or computes and stores it.

    Cached values are shared by reference across runs and therefore MUST be
    treated as immutable by every consumer (all built-in plans are only ever
    read).  ``verify_mode`` of the shared cache disables the plan cache
    around its recomputation, so determinism audits genuinely re-run the
    underlying computation even when the plan cache is warm.

    The store is bounded: beyond ``maxsize`` entries the oldest plans are
    evicted FIFO — long-lived services sweeping many distinct structures
    cannot grow the cache without bound.  ``evictions`` counts the plans
    dropped this way.

    Determinism audits must *not* toggle ``enabled``: that flag is process
    state, so one run flipping it is visible to every interleaved or
    concurrent run.  Use :meth:`bypassed` instead — a re-entrant, scope-local
    bypass carried in a :mod:`contextvars` variable, so it covers exactly the
    dynamic extent of the ``with`` block in the calling thread/task and
    nothing else.
    """

    def __init__(self, maxsize: int = 4096) -> None:
        self._store: Dict[Hashable, Any] = {}
        self.maxsize = maxsize
        self.enabled = True
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def compute(self, key: Hashable, fn: Callable[[], Any]) -> Any:
        """Return the plan for ``key``, computing it with ``fn`` on a miss."""
        if not self.enabled or id(self) in _BYPASSED_CACHES.get():
            return fn()
        store = self._store
        try:
            value = store[key]
        except KeyError:
            self.misses += 1
            value = fn()
            if len(store) >= self.maxsize:
                # Concurrent evictors (thread-backend workers share this
                # cache) may race to the same oldest key, or mutate the
                # dict mid-iteration; both must degrade to "someone else
                # already evicted", never fail the run computing a plan.
                try:
                    evicted = store.pop(next(iter(store)), _MISSING)
                except (StopIteration, RuntimeError):
                    evicted = _MISSING
                if evicted is not _MISSING:
                    self.evictions += 1
            store[key] = value
            return value
        self.hits += 1
        return value

    @contextmanager
    def bypassed(self) -> Iterator["PlanCache"]:
        """Scoped cache bypass: within the block every :meth:`compute` *on
        this cache* in the current thread/task calls ``fn`` directly,
        without reading or writing the store or the counters.

        Re-entrant (nesting just stacks the id again; the token reset pops
        exactly one level) and invisible to other caches, other threads,
        and code outside the block — unlike mutating ``enabled``, which is
        process-global state.
        """
        token = _BYPASSED_CACHES.set(_BYPASSED_CACHES.get() + (id(self),))
        try:
            yield self
        finally:
            _BYPASSED_CACHES.reset(token)

    def snapshot(self) -> Dict[Hashable, Any]:
        """Picklable copy of the store, for warming another process.

        Entries that do not survive :mod:`pickle` (none of the built-in
        plans, but custom algorithms may cache anything hashable-keyed) are
        silently skipped — a warmup must never make shipping the batch
        fail.
        """
        out: Dict[Hashable, Any] = {}
        for key, value in self._store.items():
            try:
                pickle.dumps((key, value), protocol=pickle.HIGHEST_PROTOCOL)
            # repro: ignore[RPR006] -- deliberately broad: a custom plan's
            # __reduce__ may raise anything; an unpicklable entry is simply
            # not shipped, it must never fail the warmup.
            except Exception:
                continue
            out[key] = value
        return out

    def warm(self, plans: Dict[Hashable, Any]) -> int:
        """Install prefetched plans; returns how many were adopted.

        Existing entries win (a warm cache is never clobbered) and the
        ``maxsize`` bound is respected.  Counters are untouched: warming is
        provisioning, not traffic.
        """
        store = self._store
        adopted = 0
        for key, value in plans.items():
            if len(store) >= self.maxsize:
                break
            if key in store:
                continue
            store[key] = value
            adopted += 1
        return adopted

    def __len__(self) -> int:
        return len(self._store)

    def clear(self) -> None:
        """Drop every stored plan (statistics are kept)."""
        self._store.clear()

    def disable(self) -> None:
        """Bypass the cache entirely (every compute calls ``fn``)."""
        self.enabled = False

    def enable(self) -> None:
        self.enabled = True

    def stats(self) -> Tuple[int, int, int]:
        """``(hits, misses, size)`` — the perf counters the benches record."""
        return self.hits, self.misses, len(self._store)


#: Scope-local stack of bypassed cache ids for :meth:`PlanCache.bypassed`.
#: A contextvar — not an attribute on the cache — so concurrent
#: threads/tasks each see only their own bypasses; ids — not a bare depth —
#: so bypassing one cache never affects another instance.  (The context
#: manager holds a reference to its cache, so an id cannot be recycled
#: while it is on the stack.)
_BYPASSED_CACHES: contextvars.ContextVar[Tuple[int, ...]] = (
    contextvars.ContextVar("plan_cache_bypassed_ids", default=())
)

#: The process-wide plan cache every algorithm layer routes its setup
#: through.  Swap or clear it via :func:`plan_cache` in tests/benchmarks.
_GLOBAL_PLAN_CACHE = PlanCache()


def plan_cache() -> PlanCache:
    """The process-wide :class:`PlanCache` instance."""
    return _GLOBAL_PLAN_CACHE


def planned(key: Hashable, fn: Callable[[], Any]) -> Any:
    """Shorthand for ``plan_cache().compute(key, fn)``."""
    return _GLOBAL_PLAN_CACHE.compute(key, fn)


class NodeContext:
    """Everything a protocol running at one node may see and use.

    Attributes:
        node_id: this node's identifier in ``{0, ..., n-1}``.  (The paper
            numbers nodes 1..n; we use 0-based ids throughout and translate
            only in documentation.)
        n: total number of nodes.
        capacity: maximum words per packet on any edge.
        meter: operation meter for Section-5 computation/memory accounting,
            or ``None`` when metering is disabled.
    """

    def __init__(
        self,
        node_id: int,
        n: int,
        capacity: int,
        shared: SharedCache,
        meter: Optional[OperationMeter] = None,
        phase_sink: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.node_id = node_id
        self.n = n
        self.capacity = capacity
        self._shared = shared
        self.meter = meter
        self._phase_sink = phase_sink

    def shared_compute(self, key: Hashable, fn: Callable[[], Any]) -> Any:
        """Evaluate a deterministic common-knowledge function.

        ``key`` must uniquely identify the inputs of ``fn``: two nodes calling
        with the same key are asserting they would compute the same value.
        """
        return self._shared.compute(key, fn)

    def enter_phase(self, name: str) -> None:
        """Attribute subsequent rounds to a named algorithm phase.

        Idempotent across nodes: the engine records the phase transition once
        per round regardless of how many nodes announce it.
        """
        if self._phase_sink is not None:
            self._phase_sink(name)

    def charge(self, steps: int = 1) -> None:
        """Charge local computation steps to this node's meter, if any."""
        if self.meter is not None:
            self.meter.charge(steps)

    def charge_sort(self, length: int) -> None:
        if self.meter is not None:
            self.meter.charge_sort(length)

    def observe_live_words(self, words: int) -> None:
        if self.meter is not None:
            self.meter.observe_live_words(words)
