"""Instrumentation: round, traffic, and local-computation accounting.

Round counts are the paper's primary cost measure; Section 5 additionally
claims ``O(n log n)`` local computation steps and memory bits per node.  The
:class:`OperationMeter` lets algorithm code charge abstract "computational
steps" (basic arithmetic on O(log n)-bit values, per the paper's model in
Section 2) and track peak live words, so benchmarks can exhibit the claimed
scaling empirically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class RoundStats:
    """Traffic statistics for one synchronous round."""

    round_index: int
    packets: int = 0
    words: int = 0
    max_words_on_edge: int = 0

    def record_packet(self, n_words: int) -> None:
        self.packets += 1
        self.words += n_words
        if n_words > self.max_words_on_edge:
            self.max_words_on_edge = n_words


@dataclass
class RunStats:
    """Aggregate statistics for a full protocol run."""

    n: int
    rounds: int = 0
    total_packets: int = 0
    total_words: int = 0
    per_round: List[RoundStats] = field(default_factory=list)
    #: rounds attributed to named phases, in execution order.
    phase_rounds: List["PhaseSpan"] = field(default_factory=list)

    def begin_round(self, round_index: int) -> RoundStats:
        stats = RoundStats(round_index)
        self.per_round.append(stats)
        return stats

    def commit_round(self, stats: RoundStats) -> None:
        self.rounds += 1
        self.total_packets += stats.packets
        self.total_words += stats.words

    def phase_table(self) -> Dict[str, int]:
        """Rounds per phase name (summed over repeated phases)."""
        table: Dict[str, int] = {}
        for span in self.phase_rounds:
            table[span.name] = table.get(span.name, 0) + span.rounds
        return table


@dataclass
class PhaseSpan:
    """A contiguous span of rounds attributed to a named algorithm phase."""

    name: str
    start_round: int
    rounds: int = 0


class OperationMeter:
    """Per-node counter of abstract local computation steps and memory.

    The paper's computation model (Section 2) charges one step per basic
    arithmetic operation on an O(log n)-bit value.  Algorithms call
    :meth:`charge` at the granularity of such operations (or a tight upper
    bound on a block of them) and :meth:`observe_live_words` when their
    working set changes.  Benchmark E2 reports ``max over nodes of steps``
    against ``c * n * log2(n)``.
    """

    def __init__(self) -> None:
        self.steps = 0
        self.peak_live_words = 0

    def charge(self, steps: int = 1) -> None:
        """Charge ``steps`` computational steps."""
        self.steps += steps

    def observe_live_words(self, words: int) -> None:
        """Record the current working-set size in words."""
        if words > self.peak_live_words:
            self.peak_live_words = words

    def charge_sort(self, length: int) -> None:
        """Charge a comparison sort of ``length`` items: ~length*log2(length)."""
        if length > 1:
            self.charge(int(length * math.log2(length)) + length)
        else:
            self.charge(1)


@dataclass
class MeterReport:
    """Snapshot of every node's meter after a run."""

    steps_per_node: List[int]
    peak_words_per_node: List[int]

    @property
    def max_steps(self) -> int:
        return max(self.steps_per_node) if self.steps_per_node else 0

    @property
    def max_peak_words(self) -> int:
        return max(self.peak_words_per_node) if self.peak_words_per_node else 0

    def normalized_steps(self, n: int) -> float:
        """``max_steps / (n log2 n)`` — constant iff steps are O(n log n)."""
        if n < 2:
            return float(self.max_steps)
        return self.max_steps / (n * math.log2(n))

    def normalized_words(self, n: int) -> float:
        """``max_peak_words / n`` — constant iff memory is O(n log n) bits."""
        return self.max_peak_words / max(n, 1)


def collect_meters(meters: List[Optional[OperationMeter]]) -> MeterReport:
    """Aggregate per-node meters (``None`` entries count as zero)."""
    steps = [m.steps if m is not None else 0 for m in meters]
    words = [m.peak_live_words if m is not None else 0 for m in meters]
    return MeterReport(steps, words)
