"""Instrumentation: round, traffic, and local-computation accounting.

Round counts are the paper's primary cost measure; Section 5 additionally
claims ``O(n log n)`` local computation steps and memory bits per node.  The
:class:`OperationMeter` lets algorithm code charge abstract "computational
steps" (basic arithmetic on O(log n)-bit values, per the paper's model in
Section 2) and track peak live words, so benchmarks can exhibit the claimed
scaling empirically.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class RoundStats:
    """Traffic statistics for one synchronous round."""

    round_index: int
    packets: int = 0
    words: int = 0
    max_words_on_edge: int = 0

    def record_packet(self, n_words: int) -> None:
        self.packets += 1
        self.words += n_words
        if n_words > self.max_words_on_edge:
            self.max_words_on_edge = n_words


@dataclass
class RunStats:
    """Aggregate statistics for a full protocol run."""

    n: int
    rounds: int = 0
    total_packets: int = 0
    total_words: int = 0
    per_round: List[RoundStats] = field(default_factory=list)
    #: rounds attributed to named phases, in execution order.
    phase_rounds: List["PhaseSpan"] = field(default_factory=list)

    def begin_round(self, round_index: int) -> RoundStats:
        stats = RoundStats(round_index)
        self.per_round.append(stats)
        return stats

    def commit_round(self, stats: RoundStats) -> None:
        self.rounds += 1
        self.total_packets += stats.packets
        self.total_words += stats.words

    def phase_table(self) -> Dict[str, int]:
        """Rounds per phase name (summed over repeated phases)."""
        table: Dict[str, int] = {}
        for span in self.phase_rounds:
            table[span.name] = table.get(span.name, 0) + span.rounds
        return table


@dataclass
class PhaseSpan:
    """A contiguous span of rounds attributed to a named algorithm phase."""

    name: str
    start_round: int
    rounds: int = 0


class OperationMeter:
    """Per-node counter of abstract local computation steps and memory.

    The paper's computation model (Section 2) charges one step per basic
    arithmetic operation on an O(log n)-bit value.  Algorithms call
    :meth:`charge` at the granularity of such operations (or a tight upper
    bound on a block of them) and :meth:`observe_live_words` when their
    working set changes.  Benchmark E2 reports ``max over nodes of steps``
    against ``c * n * log2(n)``.
    """

    def __init__(self) -> None:
        self.steps = 0
        self.peak_live_words = 0

    def charge(self, steps: int = 1) -> None:
        """Charge ``steps`` computational steps."""
        self.steps += steps

    def observe_live_words(self, words: int) -> None:
        """Record the current working-set size in words."""
        if words > self.peak_live_words:
            self.peak_live_words = words

    def charge_sort(self, length: int) -> None:
        """Charge a comparison sort of ``length`` items: ~length*log2(length)."""
        if length > 1:
            self.charge(int(length * math.log2(length)) + length)
        else:
            self.charge(1)


@dataclass
class MeterReport:
    """Snapshot of every node's meter after a run."""

    steps_per_node: List[int]
    peak_words_per_node: List[int]

    @property
    def max_steps(self) -> int:
        return max(self.steps_per_node) if self.steps_per_node else 0

    @property
    def max_peak_words(self) -> int:
        return max(self.peak_words_per_node) if self.peak_words_per_node else 0

    def normalized_steps(self, n: int) -> float:
        """``max_steps / (n log2 n)`` — constant iff steps are O(n log n)."""
        if n < 2:
            return float(self.max_steps)
        return self.max_steps / (n * math.log2(n))

    def normalized_words(self, n: int) -> float:
        """``max_peak_words / n`` — constant iff memory is O(n log n) bits."""
        return self.max_peak_words / max(n, 1)


class LatencyHistogram:
    """Geometric-bucket histogram for latency-style measurements.

    The streaming gateway's tail-latency metrics core: ``record`` is O(log
    buckets), the state is a flat counter array (mergeable across workers or
    runs), and percentiles are answered by linear interpolation inside the
    matching bucket — so p99 over millions of samples costs a few hundred
    bytes, not a sample reservoir.

    Buckets span ``[low_s, high_s]`` with ``growth``-factor widths (default
    ~19% per bucket, i.e. percentile error bounded by one bucket width).
    Samples outside the span clamp into the first/last bucket; exact
    ``min``/``max``/``sum``/``count`` are tracked alongside, so means and
    extremes are not quantized.
    """

    __slots__ = ("bounds", "counts", "count", "sum_s", "min_s", "max_s")

    def __init__(
        self,
        low_s: float = 1e-6,
        high_s: float = 600.0,
        growth: float = 2 ** 0.25,
    ) -> None:
        if not (0 < low_s < high_s) or growth <= 1.0:
            raise ValueError("need 0 < low_s < high_s and growth > 1")
        bounds = [low_s]
        while bounds[-1] < high_s:
            bounds.append(bounds[-1] * growth)
        #: upper bound of each bucket; bucket i covers (bounds[i-1], bounds[i]].
        self.bounds = bounds
        self.counts = [0] * len(bounds)
        self.count = 0
        self.sum_s = 0.0
        self.min_s = math.inf
        self.max_s = 0.0

    def record(self, seconds: float) -> None:
        """Record one sample (negative values clamp to zero)."""
        s = seconds if seconds > 0.0 else 0.0
        i = bisect_left(self.bounds, s)
        if i >= len(self.counts):
            i = len(self.counts) - 1
        self.counts[i] += 1
        self.count += 1
        self.sum_s += s
        if s < self.min_s:
            self.min_s = s
        if s > self.max_s:
            self.max_s = s

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold ``other``'s samples into this histogram (same bucketing)."""
        if self.bounds != other.bounds:
            raise ValueError("cannot merge histograms with different buckets")
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.count += other.count
        self.sum_s += other.sum_s
        self.min_s = min(self.min_s, other.min_s)
        self.max_s = max(self.max_s, other.max_s)

    @property
    def mean_s(self) -> float:
        return self.sum_s / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (``0 <= q <= 100``) in seconds.

        Linear interpolation within the matching bucket, clamped to the
        exact observed ``[min, max]`` so the quantization never reports a
        tail beyond what was measured.
        """
        if not 0 <= q <= 100:
            raise ValueError(f"percentile wants 0 <= q <= 100, got {q}")
        if self.count == 0:
            return 0.0
        rank = q / 100.0 * self.count
        seen = 0
        for i, c in enumerate(self.counts):
            if c == 0:
                continue
            if seen + c >= rank:
                lo = self.bounds[i - 1] if i > 0 else 0.0
                hi = self.bounds[i]
                frac = (rank - seen) / c
                value = lo + (hi - lo) * frac
                return max(self.min_s, min(self.max_s, value))
            seen += c
        return self.max_s

    def to_dict(self) -> Dict[str, object]:
        """Lossless JSON-ready state (captures, cross-process merges).

        Only non-empty buckets are stored (sparse), so a quiet histogram
        serializes to a few bytes regardless of bucket count.
        """
        return {
            "low_s": self.bounds[0],
            "high_s": self.bounds[-1],
            "buckets": len(self.bounds),
            "sparse": {
                str(i): c for i, c in enumerate(self.counts) if c
            },
            "count": self.count,
            "sum_s": self.sum_s,
            "min_s": self.min_s if self.count else None,
            "max_s": self.max_s,
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "LatencyHistogram":
        """Rebuild a histogram serialized by :meth:`to_dict`.

        The bucket layout is reconstructed from the stored span with the
        default growth factor (identical float arithmetic, so the bounds
        match exactly); a histogram serialized with a non-default growth
        fails the layout check rather than mis-binning silently.
        """
        hist = cls(low_s=float(doc["low_s"]), high_s=float(doc["high_s"]))
        if len(hist.bounds) != int(doc["buckets"]):
            raise ValueError(
                f"histogram layout mismatch: rebuilt {len(hist.bounds)} "
                f"buckets, serialized {doc['buckets']}"
            )
        for key, c in dict(doc["sparse"]).items():
            hist.counts[int(key)] = int(c)
        hist.count = int(doc["count"])
        hist.sum_s = float(doc["sum_s"])
        hist.min_s = (
            float(doc["min_s"]) if doc.get("min_s") is not None else math.inf
        )
        hist.max_s = float(doc["max_s"])
        return hist

    def summary(self) -> Dict[str, float]:
        """The standard latency rollup (milliseconds for readability)."""
        to_ms = 1e3
        return {
            "count": self.count,
            "mean_ms": round(self.mean_s * to_ms, 3),
            "min_ms": round((self.min_s if self.count else 0.0) * to_ms, 3),
            "p50_ms": round(self.percentile(50) * to_ms, 3),
            "p95_ms": round(self.percentile(95) * to_ms, 3),
            "p99_ms": round(self.percentile(99) * to_ms, 3),
            "max_ms": round(self.max_s * to_ms, 3),
        }


def collect_meters(meters: List[Optional[OperationMeter]]) -> MeterReport:
    """Aggregate per-node meters (``None`` entries count as zero)."""
    steps = [m.steps if m is not None else 0 for m in meters]
    words = [m.peak_live_words if m is not None else 0 for m in meters]
    return MeterReport(steps, words)
