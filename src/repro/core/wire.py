"""The columnar wire data plane: flat per-round traffic buffers.

:class:`~repro.core.message.Packet` stays the *user-facing* unit of
communication — protocols yield and receive ``{dst: Packet}`` mappings — but
internally the engines exchange each round's traffic in *columnar* form:
three parallel flat buffers ``(srcs, dsts, payloads)`` plus the packet
references themselves.  The flat representation enables

* **batched validation** — the polynomial word bound is computed once per
  round and the audit runs as one tight loop over the payload column instead
  of one :func:`~repro.core.message.validate_packet` call per packet (the
  canonical per-packet function is still delegated to on failure so error
  types and messages are byte-identical);
* **bucketed delivery** — inboxes are assembled by bucketing the columns by
  destination, preserving the exact source order the reference semantics
  prescribe;
* **forwarding by reference** — a relay that moves a whole packet unchanged
  (the dominant operation in the Lenzen router: intermediates simply pass
  segments along) re-uses the sender's ``Packet`` object and its words tuple
  instead of re-tupling the payload on every hop
  (:func:`regroup_segments`);
* **lazy packet materialization** — when a new ``Packet`` must exist at the
  protocol boundary, :func:`fast_packet` builds it without the dataclass
  ``__init__``/``__post_init__`` machinery (the words are already tuples on
  the wire, so the defensive re-tupling is skipped).

The module also owns :class:`HeaderCodec`, the memoized pack/unpack table
for ``(source, dest, seq)`` message headers; codecs are structural plans and
live in the process-wide :class:`~repro.core.context.PlanCache`.

Everything here is *semantics-preserving*: outputs, round counts, per-round
traffic statistics and error behavior match the packet-at-a-time code path
(the engine-equivalence and differential-fuzz suites enforce this).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .context import planned
from .errors import ProtocolError
from .message import (
    POLY_BOUND_EXPONENT,
    Packet,
    pack_triple,
    unpack_triple,
    validate_packet,
)

__all__ = [
    "fast_packet",
    "WireBatch",
    "encode_outbox",
    "decode_columns",
    "bad_segment_width",
    "validate_words",
    "validate_columns",
    "word_bound",
    "regroup_segments",
    "HeaderCodec",
    "header_codec",
]

_new_packet = Packet.__new__
_set_attr = object.__setattr__


def fast_packet(words: Tuple[int, ...]) -> Packet:
    """Materialize a :class:`Packet` around an existing words tuple.

    The dataclass constructor re-checks and re-tuples its argument on every
    call; on the wire the words are tuples already, so the protocol boundary
    can materialize packets without that overhead.  ``words`` MUST be a
    tuple of ints — callers on the hot path guarantee this structurally.
    """
    pkt = _new_packet(Packet)
    _set_attr(pkt, "words", words)
    return pkt


def word_bound(n: int) -> int:
    """The polynomial magnitude bound ``max(n, 2) ** k``, hoisted per round."""
    return max(n, 2) ** POLY_BOUND_EXPONENT


def bad_segment_width(n_words: int, seg: int) -> ProtocolError:
    """The canonical ragged-packet error (single source of the message).

    Segment consumers keep their split loops inlined for speed; they share
    this constructor so the wire format's error text cannot drift between
    the relay path and the receiver path.
    """
    return ProtocolError(
        f"packet of {n_words} words is not a multiple of segment "
        f"width {seg}"
    )


def encode_outbox(
    outbox: Dict[int, Packet],
) -> Tuple[List[int], List[Tuple[int, ...]]]:
    """Encode one outbox into columnar ``(dsts, payloads)`` buffers.

    Together with :func:`decode_columns` this is the *boundary codec* of
    the columnar representation — the pair the property suite holds to the
    round-trip-identity contract and the entry point for external tooling;
    the engines themselves exchange traffic through :class:`WireBatch`.
    """
    dsts: List[int] = []
    payloads: List[Tuple[int, ...]] = []
    for dst, pkt in outbox.items():
        dsts.append(dst)
        payloads.append(pkt.words)
    return dsts, payloads


def decode_columns(
    dsts: Sequence[int], payloads: Sequence[Tuple[int, ...]]
) -> Dict[int, Packet]:
    """Inverse of :func:`encode_outbox`: rebuild the ``{dst: Packet}`` view."""
    if len(dsts) != len(payloads):
        raise ProtocolError(
            f"columnar buffers disagree: {len(dsts)} destinations vs "
            f"{len(payloads)} payloads"
        )
    return {
        dst: fast_packet(tuple(words))
        for dst, words in zip(dsts, payloads)
    }


def validate_words(
    pkt: Optional[Packet],
    words: Tuple[int, ...],
    n: int,
    capacity: int,
    bound: int,
) -> None:
    """Audit one payload with the magnitude ``bound`` precomputed.

    The single source of the hoisted-bound audit semantics: checks exactly
    what :func:`~repro.core.message.validate_packet` checks — word count,
    integer-ness, polynomial magnitude.  On anything but a plain in-range
    int the canonical validator is re-run, so it raises — or, for benign
    exotica like an in-range int subclass, passes — with the
    packet-at-a-time error types and messages.
    """
    if len(words) > capacity:
        validate_packet(
            pkt if pkt is not None else fast_packet(words), n, capacity
        )
    neg_bound = -bound
    for w in words:
        # Exact-type fast path: a plain int inside the bound is valid.
        if w.__class__ is int and neg_bound < w < bound:
            continue
        validate_packet(
            pkt if pkt is not None else fast_packet(words), n, capacity
        )
        # The canonical validator passed (benign exotica, e.g. an in-range
        # int subclass) — and it already judged every word, so stop here.
        return


def validate_columns(
    payloads: Sequence[Tuple[int, ...]],
    n: int,
    capacity: int,
    packets: Optional[Sequence[Packet]] = None,
) -> None:
    """Batched model audit over a payload column.

    :func:`validate_words` applied to every payload, with the bound computed
    once for the whole batch.
    """
    bound = word_bound(n)
    for i, words in enumerate(payloads):
        validate_words(
            packets[i] if packets is not None else None,
            words,
            n,
            capacity,
            bound,
        )


class WireBatch:
    """One round's traffic in columnar form.

    Parallel flat buffers: ``srcs[i]``, ``dsts[i]``, ``packets[i]`` and
    ``payloads[i]`` describe the ``i``-th packet of the round in global
    collection order (ascending source, each source's outbox in insertion
    order) — exactly the order the reference engine audits and delivers in.
    """

    __slots__ = ("srcs", "dsts", "packets", "payloads")

    def __init__(self) -> None:
        self.srcs: List[int] = []
        self.dsts: List[int] = []
        self.packets: List[Packet] = []
        self.payloads: List[Tuple[int, ...]] = []

    def __len__(self) -> int:
        return len(self.packets)

    def add_outbox(self, src: int, outbox: Dict[int, Packet]) -> None:
        """Append every packet of one source's outbox to the columns."""
        srcs = self.srcs
        dsts = self.dsts
        packets = self.packets
        payloads = self.payloads
        for dst, pkt in outbox.items():
            srcs.append(src)
            dsts.append(dst)
            packets.append(pkt)
            payloads.append(pkt.words)

    def validate(self, n: int, capacity: int) -> None:
        """Batched audit of the whole round (see :func:`validate_columns`)."""
        validate_columns(self.payloads, n, capacity, self.packets)

    def deliver(
        self, inboxes: List[Dict[int, Packet]]
    ) -> Tuple[int, int, int]:
        """Bucket the columns into per-destination inboxes.

        Mutates ``inboxes`` in place (one dict per node) and returns the
        round's aggregate traffic statistics ``(packets, words, max_edge)``.
        Packets are moved by reference — the object a protocol receives is
        the object its peer sent.
        """
        words_total = 0
        max_edge = 0
        for src, dst, pkt, words in zip(
            self.srcs, self.dsts, self.packets, self.payloads
        ):
            inboxes[dst][src] = pkt
            n_words = len(words)
            words_total += n_words
            if n_words > max_edge:
                max_edge = n_words
        return len(self.packets), words_total, max_edge

    def clear(self) -> None:
        self.srcs.clear()
        self.dsts.clear()
        self.packets.clear()
        self.payloads.clear()


def regroup_segments(
    inbox: Dict[int, Packet], seg: Optional[int]
) -> Dict[int, Packet]:
    """Relay fast path: regroup ``(dest, *item)`` segments by destination.

    This is the intermediate hop of Corollary 3.3 (``route_known``): every
    received packet is a concatenation of fixed-width segments (``seg`` words
    each, ``None`` = one variable-width segment) whose first word names the
    final destination.  Segments are regrouped by destination in ascending
    source order.

    Forward-by-reference: when every segment of an incoming packet names one
    destination and no other source contributes to it, the packet object is
    forwarded untouched — no words are copied.  Mixed packets fall back to
    concatenating the segment tuples (still through :func:`fast_packet`, so
    no dataclass overhead and no re-tupling of the word values).
    """
    whole: Dict[int, Packet] = {}  # dest -> reusable packet (fast path)
    parts: Dict[int, List[int]] = {}  # dest -> accumulated words
    for src in sorted(inbox):
        pkt = inbox[src]
        words = pkt.words
        if not words:
            continue
        if seg is None:
            dest = words[0]
            single_dest: Optional[int] = dest
        else:
            if len(words) % seg != 0:
                raise bad_segment_width(len(words), seg)
            dest = words[0]
            single_dest = dest
            for i in range(seg, len(words), seg):
                if words[i] != dest:
                    single_dest = None
                    break
        if (
            single_dest is not None
            and single_dest not in whole
            and single_dest not in parts
        ):
            whole[single_dest] = pkt  # forward the packet by reference
            continue
        # Slow path: merge into the destination's word accumulator (pulling
        # in any previously whole-forwarded packet for the same dest).
        if seg is None:
            segments = [(words[0], words)]
        else:
            segments = [
                (words[i], words[i : i + seg])
                for i in range(0, len(words), seg)
            ]
        for dest, seg_words in segments:
            acc = parts.get(dest)
            if acc is None:
                prev = whole.pop(dest, None)
                acc = parts[dest] = (
                    list(prev.words) if prev is not None else []
                )
            acc.extend(seg_words)
    out: Dict[int, Packet] = {}
    for dest, pkt in whole.items():
        out[dest] = pkt
    for dest, acc in parts.items():
        out[dest] = fast_packet(tuple(acc))
    return out


class HeaderCodec:
    """Memoized pack/unpack arithmetic for ``(source, dest, seq)`` headers.

    The Lenzen wire format tags every message with one packed header word,
    ``((source * base) + dest) * base + seq``.  :meth:`pack`/:meth:`unpack`
    delegate to the canonical :func:`~repro.core.message.pack_triple` /
    :func:`~repro.core.message.unpack_triple` with the base pre-bound;
    routing touches the header of every message on every hop — usually only
    to extract the destination — so the codec additionally offers the
    partial :meth:`dest_of` that skips materializing the full triple.

    Codecs are pure functions of ``base`` and are plan-cached; fetch them
    via :func:`header_codec`.
    """

    __slots__ = ("base", "_base_sq")

    def __init__(self, base: int) -> None:
        if base < 1:
            raise ValueError("header base must be >= 1")
        self.base = base
        self._base_sq = base * base

    def pack(self, source: int, dest: int, seq: int) -> int:
        return pack_triple(source, dest, seq, self.base)

    def unpack(self, word: int) -> Tuple[int, int, int]:
        return unpack_triple(word, self.base)

    def dest_of(self, word: int) -> int:
        """The ``dest`` field alone — the router's per-hop question."""
        return (word // self.base) % self.base

    def source_of(self, word: int) -> int:
        return word // self._base_sq

    def seq_of(self, word: int) -> int:
        return word % self.base

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"HeaderCodec(base={self.base})"


def header_codec(base: int) -> HeaderCodec:
    """The plan-cached :class:`HeaderCodec` for ``base``."""
    return planned(("header_codec", base), lambda: HeaderCodec(base))
