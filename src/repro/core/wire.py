"""The columnar wire data plane: flat per-round traffic buffers.

:class:`~repro.core.message.Packet` stays the *user-facing* unit of
communication — protocols yield and receive ``{dst: Packet}`` mappings — but
internally the engines exchange each round's traffic in *columnar* form:
three parallel flat buffers ``(srcs, dsts, payloads)`` plus the packet
references themselves.  The flat representation enables

* **batched validation** — the polynomial word bound is computed once per
  round and the audit runs as one tight loop over the payload column instead
  of one :func:`~repro.core.message.validate_packet` call per packet (the
  canonical per-packet function is still delegated to on failure so error
  types and messages are byte-identical);
* **bucketed delivery** — inboxes are assembled by bucketing the columns by
  destination, preserving the exact source order the reference semantics
  prescribe;
* **forwarding by reference** — a relay that moves a whole packet unchanged
  (the dominant operation in the Lenzen router: intermediates simply pass
  segments along) re-uses the sender's ``Packet`` object and its words tuple
  instead of re-tupling the payload on every hop
  (:func:`regroup_segments`);
* **lazy packet materialization** — when a new ``Packet`` must exist at the
  protocol boundary, :func:`fast_packet` builds it without the dataclass
  ``__init__``/``__post_init__`` machinery (the words are already tuples on
  the wire, so the defensive re-tupling is skipped).

The module also owns :class:`HeaderCodec`, the memoized pack/unpack table
for ``(source, dest, seq)`` message headers; codecs are structural plans and
live in the process-wide :class:`~repro.core.context.PlanCache`.

Since PR 7 the same columnar idea crosses the *IPC* boundary: the envelope
column primitives at the bottom of this module (string table, constant /
interned / raw string columns, i64 / f64 / byte / optional-f64 columns) are
the building blocks :mod:`repro.service.transport` assembles into flat
``RunRequest``/``RunSummary`` envelope buffers — the zero-copy request and
result path of the batch and stream backends.  They live here, beside the
data-plane columns, because they are the same representation discipline:
parallel flat buffers, constant-column collapse, one C-speed pass per
column instead of one pickle per object.

Everything here is *semantics-preserving*: outputs, round counts, per-round
traffic statistics and error behavior match the packet-at-a-time code path
(the engine-equivalence and differential-fuzz suites enforce this).
"""

from __future__ import annotations

import struct
from array import array
from typing import Dict, List, Optional, Sequence, Tuple

from .context import planned
from .errors import ProtocolError
from .message import (
    POLY_BOUND_EXPONENT,
    Packet,
    pack_triple,
    unpack_triple,
    validate_packet,
)

__all__ = [
    "fast_packet",
    "WireBatch",
    "encode_outbox",
    "decode_columns",
    "bad_segment_width",
    "validate_words",
    "validate_columns",
    "word_bound",
    "regroup_segments",
    "HeaderCodec",
    "header_codec",
    # envelope column primitives (used by repro.service.transport)
    "NONE_IDX",
    "COL_FULL",
    "COL_CONST",
    "COL_RAW",
    "StringTable",
    "pack_i64_col",
    "pack_f64_col",
    "pack_byte_col",
    "pack_opt_f64_col",
    "pack_raw_str_col",
    "read_string_table",
    "string_lut",
    "read_str_col",
    "read_raw_str_col",
    "read_i64_col",
    "read_f64_col",
    "read_byte_col",
    "read_opt_f64_col",
]

_new_packet = Packet.__new__
_set_attr = object.__setattr__


def fast_packet(words: Tuple[int, ...]) -> Packet:
    """Materialize a :class:`Packet` around an existing words tuple.

    The dataclass constructor re-checks and re-tuples its argument on every
    call; on the wire the words are tuples already, so the protocol boundary
    can materialize packets without that overhead.  ``words`` MUST be a
    tuple of ints — callers on the hot path guarantee this structurally.
    """
    pkt = _new_packet(Packet)
    _set_attr(pkt, "words", words)
    return pkt


def word_bound(n: int) -> int:
    """The polynomial magnitude bound ``max(n, 2) ** k``, hoisted per round."""
    return max(n, 2) ** POLY_BOUND_EXPONENT


def bad_segment_width(n_words: int, seg: int) -> ProtocolError:
    """The canonical ragged-packet error (single source of the message).

    Segment consumers keep their split loops inlined for speed; they share
    this constructor so the wire format's error text cannot drift between
    the relay path and the receiver path.
    """
    return ProtocolError(
        f"packet of {n_words} words is not a multiple of segment "
        f"width {seg}"
    )


def encode_outbox(
    outbox: Dict[int, Packet],
) -> Tuple[List[int], List[Tuple[int, ...]]]:
    """Encode one outbox into columnar ``(dsts, payloads)`` buffers.

    Together with :func:`decode_columns` this is the *boundary codec* of
    the columnar representation — the pair the property suite holds to the
    round-trip-identity contract and the entry point for external tooling;
    the engines themselves exchange traffic through :class:`WireBatch`.
    """
    dsts: List[int] = []
    payloads: List[Tuple[int, ...]] = []
    for dst, pkt in outbox.items():
        dsts.append(dst)
        payloads.append(pkt.words)
    return dsts, payloads


def decode_columns(
    dsts: Sequence[int], payloads: Sequence[Tuple[int, ...]]
) -> Dict[int, Packet]:
    """Inverse of :func:`encode_outbox`: rebuild the ``{dst: Packet}`` view."""
    if len(dsts) != len(payloads):
        raise ProtocolError(
            f"columnar buffers disagree: {len(dsts)} destinations vs "
            f"{len(payloads)} payloads"
        )
    return {
        dst: fast_packet(tuple(words))
        for dst, words in zip(dsts, payloads)
    }


def validate_words(
    pkt: Optional[Packet],
    words: Tuple[int, ...],
    n: int,
    capacity: int,
    bound: int,
) -> None:
    """Audit one payload with the magnitude ``bound`` precomputed.

    The single source of the hoisted-bound audit semantics: checks exactly
    what :func:`~repro.core.message.validate_packet` checks — word count,
    integer-ness, polynomial magnitude.  On anything but a plain in-range
    int the canonical validator is re-run, so it raises — or, for benign
    exotica like an in-range int subclass, passes — with the
    packet-at-a-time error types and messages.
    """
    if len(words) > capacity:
        validate_packet(
            pkt if pkt is not None else fast_packet(words), n, capacity
        )
    neg_bound = -bound
    for w in words:
        # Exact-type fast path: a plain int inside the bound is valid.
        if w.__class__ is int and neg_bound < w < bound:
            continue
        validate_packet(
            pkt if pkt is not None else fast_packet(words), n, capacity
        )
        # The canonical validator passed (benign exotica, e.g. an in-range
        # int subclass) — and it already judged every word, so stop here.
        return


def validate_columns(
    payloads: Sequence[Tuple[int, ...]],
    n: int,
    capacity: int,
    packets: Optional[Sequence[Packet]] = None,
) -> None:
    """Batched model audit over a payload column.

    :func:`validate_words` applied to every payload, with the bound computed
    once for the whole batch.
    """
    bound = word_bound(n)
    for i, words in enumerate(payloads):
        validate_words(
            packets[i] if packets is not None else None,
            words,
            n,
            capacity,
            bound,
        )


class WireBatch:
    """One round's traffic in columnar form.

    Parallel flat buffers: ``srcs[i]``, ``dsts[i]``, ``packets[i]`` and
    ``payloads[i]`` describe the ``i``-th packet of the round in global
    collection order (ascending source, each source's outbox in insertion
    order) — exactly the order the reference engine audits and delivers in.
    """

    __slots__ = ("srcs", "dsts", "packets", "payloads")

    def __init__(self) -> None:
        self.srcs: List[int] = []
        self.dsts: List[int] = []
        self.packets: List[Packet] = []
        self.payloads: List[Tuple[int, ...]] = []

    def __len__(self) -> int:
        return len(self.packets)

    def add_outbox(self, src: int, outbox: Dict[int, Packet]) -> None:
        """Append every packet of one source's outbox to the columns."""
        srcs = self.srcs
        dsts = self.dsts
        packets = self.packets
        payloads = self.payloads
        for dst, pkt in outbox.items():
            srcs.append(src)
            dsts.append(dst)
            packets.append(pkt)
            payloads.append(pkt.words)

    def validate(self, n: int, capacity: int) -> None:
        """Batched audit of the whole round (see :func:`validate_columns`)."""
        validate_columns(self.payloads, n, capacity, self.packets)

    def deliver(
        self, inboxes: List[Dict[int, Packet]]
    ) -> Tuple[int, int, int]:
        """Bucket the columns into per-destination inboxes.

        Mutates ``inboxes`` in place (one dict per node) and returns the
        round's aggregate traffic statistics ``(packets, words, max_edge)``.
        Packets are moved by reference — the object a protocol receives is
        the object its peer sent.
        """
        words_total = 0
        max_edge = 0
        for src, dst, pkt, words in zip(
            self.srcs, self.dsts, self.packets, self.payloads
        ):
            inboxes[dst][src] = pkt
            n_words = len(words)
            words_total += n_words
            if n_words > max_edge:
                max_edge = n_words
        return len(self.packets), words_total, max_edge

    def clear(self) -> None:
        self.srcs.clear()
        self.dsts.clear()
        self.packets.clear()
        self.payloads.clear()


def regroup_segments(
    inbox: Dict[int, Packet], seg: Optional[int]
) -> Dict[int, Packet]:
    """Relay fast path: regroup ``(dest, *item)`` segments by destination.

    This is the intermediate hop of Corollary 3.3 (``route_known``): every
    received packet is a concatenation of fixed-width segments (``seg`` words
    each, ``None`` = one variable-width segment) whose first word names the
    final destination.  Segments are regrouped by destination in ascending
    source order.

    Forward-by-reference: when every segment of an incoming packet names one
    destination and no other source contributes to it, the packet object is
    forwarded untouched — no words are copied.  Mixed packets fall back to
    concatenating the segment tuples (still through :func:`fast_packet`, so
    no dataclass overhead and no re-tupling of the word values).
    """
    whole: Dict[int, Packet] = {}  # dest -> reusable packet (fast path)
    parts: Dict[int, List[int]] = {}  # dest -> accumulated words
    for src in sorted(inbox):
        pkt = inbox[src]
        words = pkt.words
        if not words:
            continue
        if seg is None:
            dest = words[0]
            single_dest: Optional[int] = dest
        else:
            if len(words) % seg != 0:
                raise bad_segment_width(len(words), seg)
            dest = words[0]
            single_dest = dest
            for i in range(seg, len(words), seg):
                if words[i] != dest:
                    single_dest = None
                    break
        if (
            single_dest is not None
            and single_dest not in whole
            and single_dest not in parts
        ):
            whole[single_dest] = pkt  # forward the packet by reference
            continue
        # Slow path: merge into the destination's word accumulator (pulling
        # in any previously whole-forwarded packet for the same dest).
        if seg is None:
            segments = [(words[0], words)]
        else:
            segments = [
                (words[i], words[i : i + seg])
                for i in range(0, len(words), seg)
            ]
        for dest, seg_words in segments:
            acc = parts.get(dest)
            if acc is None:
                prev = whole.pop(dest, None)
                acc = parts[dest] = (
                    list(prev.words) if prev is not None else []
                )
            acc.extend(seg_words)
    out: Dict[int, Packet] = {}
    for dest, pkt in whole.items():
        out[dest] = pkt
    for dest, acc in parts.items():
        out[dest] = fast_packet(tuple(acc))
    return out


class HeaderCodec:
    """Memoized pack/unpack arithmetic for ``(source, dest, seq)`` headers.

    The Lenzen wire format tags every message with one packed header word,
    ``((source * base) + dest) * base + seq``.  :meth:`pack`/:meth:`unpack`
    delegate to the canonical :func:`~repro.core.message.pack_triple` /
    :func:`~repro.core.message.unpack_triple` with the base pre-bound;
    routing touches the header of every message on every hop — usually only
    to extract the destination — so the codec additionally offers the
    partial :meth:`dest_of` that skips materializing the full triple.

    Codecs are pure functions of ``base`` and are plan-cached; fetch them
    via :func:`header_codec`.
    """

    __slots__ = ("base", "_base_sq")

    def __init__(self, base: int) -> None:
        if base < 1:
            raise ValueError("header base must be >= 1")
        self.base = base
        self._base_sq = base * base

    def pack(self, source: int, dest: int, seq: int) -> int:
        return pack_triple(source, dest, seq, self.base)

    def unpack(self, word: int) -> Tuple[int, int, int]:
        return unpack_triple(word, self.base)

    def dest_of(self, word: int) -> int:
        """The ``dest`` field alone — the router's per-hop question."""
        return (word // self.base) % self.base

    def source_of(self, word: int) -> int:
        return word // self._base_sq

    def seq_of(self, word: int) -> int:
        return word % self.base

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"HeaderCodec(base={self.base})"


def header_codec(base: int) -> HeaderCodec:
    """The plan-cached :class:`HeaderCodec` for ``base``."""
    return planned(("header_codec", base), lambda: HeaderCodec(base))


# -- envelope column primitives ----------------------------------------------
#
# The flat building blocks of the service-layer envelope codec
# (:mod:`repro.service.transport`): one column per envelope field, each
# column a flag byte followed by its payload.  Three column shapes:
#
# * ``COL_FULL``  (0) — one fixed-width value per row (``array`` buffers for
#   numerics, u32 string-table indices for strings);
# * ``COL_CONST`` (1) — the column holds a single value repeated ``count``
#   times (the dominant case for service batches: engine, status, tag and
#   deadline are usually uniform) and is collapsed to that one value;
# * ``COL_RAW``   (2) — strings only: per-row *character* lengths plus one
#   concatenated UTF-8 blob.  For high-cardinality columns (output digests
#   are unique per run) this skips the string table entirely; for the
#   optional-f64 column flag 2 instead means "all rows are None".
#
# Numeric columns are little-endian i64 / f64 (``array("q")`` raises
# ``OverflowError`` outside the i64 range — envelope fields are seeds,
# sizes and counters, all far inside it).  ``None`` string rows are the
# sentinel index ``NONE_IDX``.  Constant detection uses ``list.count``
# (identity-shortcut C loop), so even repeated-NaN objects collapse.

NONE_IDX = 0xFFFFFFFF
COL_FULL = 0
COL_CONST = 1
COL_RAW = 2


class StringTable:
    """Interning accumulator for the envelope string columns.

    Encode side only: every distinct string across all of an envelope's
    interned columns gets one table slot; columns store u32 indices.  The
    table itself is serialized once per envelope (:meth:`table_bytes`) and
    decoded back with :func:`read_string_table` / :func:`string_lut`.
    """

    __slots__ = ("map", "order")

    def __init__(self) -> None:
        self.map: Dict[Optional[str], int] = {None: NONE_IDX}
        self.order: List[str] = []

    def idx(self, value: Optional[str]) -> int:
        m = self.map
        i = m.get(value)
        if i is None:
            i = m[value] = len(self.order)
            self.order.append(value)  # type: ignore[arg-type]
        return i

    def col(self, values: Sequence[Optional[str]]) -> bytes:
        """Encode one string column (const-collapsed or interned u32s)."""
        count = len(values)
        v0 = values[0]
        if values.count(v0) == count:  # type: ignore[union-attr]
            return struct.pack("<BI", COL_CONST, self.idx(v0))
        m = self.map
        order = self.order
        for v in dict.fromkeys(values):
            if v not in m:
                m[v] = len(order)
                order.append(v)  # type: ignore[arg-type]
        return bytes([COL_FULL]) + array(
            "I", map(m.__getitem__, values)
        ).tobytes()

    def table_bytes(self) -> bytes:
        parts = [struct.pack("<I", len(self.order))]
        for s in self.order:
            b = s.encode("utf-8")
            parts.append(struct.pack("<I", len(b)))
            parts.append(b)
        return b"".join(parts)


def pack_raw_str_col(values: Sequence[str]) -> bytes:
    """Encode a high-cardinality string column without interning.

    Per-row *character* lengths (so decode can slice one decoded string —
    correct for non-ASCII content) plus a single concatenated UTF-8 blob.
    Rows must not be ``None``; const columns still collapse.
    """
    count = len(values)
    v0 = values[0]
    if values.count(v0) == count:
        b = v0.encode("utf-8")
        return struct.pack("<BI", COL_CONST, len(b)) + b
    blob = "".join(values).encode("utf-8")
    return (
        bytes([COL_RAW])
        + array("I", map(len, values)).tobytes()
        + struct.pack("<I", len(blob))
        + blob
    )


def pack_i64_col(values: Sequence[int], count: int) -> bytes:
    v0 = values[0]
    if values.count(v0) == count:
        return struct.pack("<Bq", COL_CONST, v0)
    return bytes([COL_FULL]) + array("q", values).tobytes()


def pack_f64_col(values: Sequence[float], count: int) -> bytes:
    v0 = values[0]
    if values.count(v0) == count:
        return struct.pack("<Bd", COL_CONST, v0)
    return bytes([COL_FULL]) + array("d", values).tobytes()


def pack_byte_col(values: Sequence[int], count: int) -> bytes:
    v0 = values[0]
    if values.count(v0) == count:
        return struct.pack("<BB", COL_CONST, v0)
    return bytes([COL_FULL]) + bytes(values)


def pack_opt_f64_col(
    values: Sequence[Optional[float]], count: int
) -> bytes:
    v0 = values[0]
    if values.count(v0) == count:
        if v0 is None:
            return bytes([COL_RAW])  # flag 2: every row is None
        return struct.pack("<Bd", COL_CONST, v0)
    present = bytes([0 if v is None else 1 for v in values])
    dvals = array("d", [0.0 if v is None else v for v in values])
    return bytes([COL_FULL]) + present + dvals.tobytes()


def read_string_table(buf: bytes, off: int) -> Tuple[List[str], int]:
    (n,) = struct.unpack_from("<I", buf, off)
    off += 4
    out = []
    for _ in range(n):
        (ln,) = struct.unpack_from("<I", buf, off)
        off += 4
        out.append(buf[off:off + ln].decode("utf-8"))
        off += ln
    return out, off


def string_lut(table: List[str]) -> Dict[int, Optional[str]]:
    """Index -> string mapping with the ``None`` sentinel installed."""
    d: Dict[int, Optional[str]] = dict(enumerate(table))
    d[NONE_IDX] = None
    return d


def read_str_col(
    buf: bytes, off: int, count: int, lut: Dict[int, Optional[str]]
) -> Tuple[Sequence[Optional[str]], int]:
    flag = buf[off]
    off += 1
    if flag == COL_CONST:
        (i,) = struct.unpack_from("<I", buf, off)
        return (lut[i],) * count, off + 4
    col = array("I")
    col.frombytes(buf[off:off + 4 * count])
    return list(map(lut.__getitem__, col)), off + 4 * count


def read_raw_str_col(
    buf: bytes, off: int, count: int
) -> Tuple[Sequence[str], int]:
    """Decode a :func:`pack_raw_str_col` column (no table, no ``None``)."""
    flag = buf[off]
    off += 1
    if flag == COL_CONST:
        (bl,) = struct.unpack_from("<I", buf, off)
        off += 4
        return (buf[off:off + bl].decode("utf-8"),) * count, off + bl
    lens = array("I")
    lens.frombytes(buf[off:off + 4 * count])
    off += 4 * count
    (bl,) = struct.unpack_from("<I", buf, off)
    off += 4
    s = buf[off:off + bl].decode("utf-8")
    out = []
    pos = 0
    for ln in lens:
        out.append(s[pos:pos + ln])
        pos += ln
    return out, off + bl


def read_i64_col(
    buf: bytes, off: int, count: int
) -> Tuple[Sequence[int], int]:
    flag = buf[off]
    off += 1
    if flag == COL_CONST:
        (v,) = struct.unpack_from("<q", buf, off)
        return (v,) * count, off + 8
    col = array("q")
    col.frombytes(buf[off:off + 8 * count])
    return col, off + 8 * count


def read_f64_col(
    buf: bytes, off: int, count: int
) -> Tuple[Sequence[float], int]:
    flag = buf[off]
    off += 1
    if flag == COL_CONST:
        (v,) = struct.unpack_from("<d", buf, off)
        return (v,) * count, off + 8
    col = array("d")
    col.frombytes(buf[off:off + 8 * count])
    return col, off + 8 * count


def read_byte_col(
    buf: bytes, off: int, count: int
) -> Tuple[Sequence[int], int]:
    flag = buf[off]
    off += 1
    if flag == COL_CONST:
        return (buf[off],) * count, off + 1
    return buf[off:off + count], off + count


def read_opt_f64_col(
    buf: bytes, off: int, count: int
) -> Tuple[Sequence[Optional[float]], int]:
    flag = buf[off]
    off += 1
    if flag == COL_RAW:  # all-None fast path
        return (None,) * count, off
    if flag == COL_CONST:
        (v,) = struct.unpack_from("<d", buf, off)
        return (v,) * count, off + 8
    present = buf[off:off + count]
    off += count
    vals = array("d")
    vals.frombytes(buf[off:off + 8 * count])
    return (
        [v if p else None for p, v in zip(present, vals)],
        off + 8 * count,
    )
