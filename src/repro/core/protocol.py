"""Protocol-composition helpers.

Protocols are plain generators, so *sequencing* is native ``yield from``.
This module provides the remaining glue:

* piggyback broadcast — attach one extra word to every outgoing packet of a
  round and fill otherwise-unused edges, so a node can disseminate a single
  value to all nodes "for free" (message size stays O(log n)).  Algorithm 4
  uses this to spread post-bucket-exchange key counts without spending a
  round (see DESIGN.md Section 2).
* idle rounds — explicit synchronization filler so all nodes advance in
  lockstep even when only a subset communicates.
* outbox merging — combine outboxes produced for edge-disjoint concurrent
  activities, with conflict detection.
"""

from __future__ import annotations

from typing import Dict, Generator, Iterable, Optional, Tuple

from .errors import EdgeConflict, ProtocolError
from .message import Packet
from .wire import fast_packet

Outbox = Dict[int, Packet]
Inbox = Dict[int, Packet]


def attach_piggyback(outbox: Outbox, word: int, n: int) -> Outbox:
    """Append ``word`` to every packet and fill unused edges with it.

    After this transformation the sender transmits to *all* ``n`` nodes, and
    every recipient can recover ``word`` as the last word of the packet it
    received.  The caller is responsible for leaving one word of slack in the
    packet capacity during piggyback rounds.

    Wire-level fast path: packet words are already tuples, so the appended
    payload is built with one tuple concatenation and materialized through
    :func:`~repro.core.wire.fast_packet`; all otherwise-unused edges share
    one broadcast-only packet object (packets are immutable, and the engines
    deliver by reference).
    """
    out: Outbox = {}
    tail = (word,)
    filler: Packet = None  # type: ignore[assignment]
    for dst in range(n):
        pkt = outbox.get(dst)
        if pkt is None:
            if filler is None:
                filler = fast_packet(tail)
            out[dst] = filler
        else:
            out[dst] = fast_packet(pkt.words + tail)
    return out


def strip_piggyback(inbox: Inbox) -> Tuple[Inbox, Dict[int, int]]:
    """Split piggybacked inbox packets into payload and broadcast words.

    Returns ``(clean_inbox, words)`` where ``words[src]`` is the piggybacked
    word from ``src`` and ``clean_inbox`` retains only packets that carried
    real payload besides the piggyback word.

    :func:`attach_piggyback` always emits at least the broadcast word, so in
    a piggyback round every received packet carries >= 1 word.  An *empty*
    packet means the sender skipped the attach step; silently dropping it
    (as this function once did) would lose that sender's broadcast word and
    desynchronize the receivers, so it is reported loudly instead.

    Raises:
        ProtocolError: if a zero-word packet arrives — the sender did not
            run :func:`attach_piggyback` for this round.
    """
    clean: Inbox = {}
    words: Dict[int, int] = {}
    for src, pkt in inbox.items():
        payload = pkt.words
        if not payload:
            raise ProtocolError(
                f"piggyback round received an empty packet from node {src}; "
                "attach_piggyback always carries at least the broadcast word"
            )
        words[src] = payload[-1]
        rest = payload[:-1]
        if rest:
            clean[src] = fast_packet(rest)
    return clean, words


def merge_outboxes(parts: Iterable[Outbox]) -> Outbox:
    """Union outboxes from edge-disjoint concurrent activities.

    Raises:
        EdgeConflict: if two parts address the same destination — that would
            put two packets on one edge in one round, which the concurrency
            argument of the algorithm must rule out.
    """
    merged: Outbox = {}
    for part in parts:
        for dst, pkt in part.items():
            if dst in merged:
                raise EdgeConflict(
                    f"merged outboxes both address node {dst}; concurrent "
                    "activities are not edge-disjoint"
                )
            merged[dst] = pkt
    return merged


def idle(rounds: int) -> Generator[Outbox, Inbox, None]:
    """Yield ``rounds`` empty outboxes (a node sitting out a known span).

    Raises:
        EdgeConflict: if a packet arrives while idling — a bug in the
            caller's round accounting.
    """
    for _ in range(rounds):
        inbox = yield {}
        if inbox:
            raise EdgeConflict(
                f"node received {len(inbox)} packet(s) while idle"
            )


def single_round(outbox: Optional[Outbox] = None) -> Generator[Outbox, Inbox, Inbox]:
    """Send ``outbox`` (default empty), return the inbox of that round."""
    inbox = yield (outbox or {})
    return inbox
