"""Packets: the unit of communication on the congested clique.

The model allows ``O(log n)`` bits per directed edge per round.  We express
this as a *packet* of at most ``capacity`` machine words, where each word is
an integer polynomially bounded in ``n`` (so each word is ``O(log n)`` bits).
This mirrors the paper's convention that "in each message nodes may encode a
constant number of integer numbers that are polynomially bounded in n"
(Section 2).

Packets are immutable tuples of ints.  Helper functions bundle and unbundle
logical values (e.g. "two keys per message" in Algorithm 4's Step 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence, Tuple, Union

from .errors import CapacityExceeded, WordSizeViolation

#: Default number of words a packet may carry.  The paper allows any constant;
#: 8 words comfortably fits every primitive in the paper (the largest bundling
#: factor used is 4 keys plus bookkeeping in Algorithm 3 Step 6).
DEFAULT_CAPACITY = 8

#: Exponent ``k`` such that words must satisfy ``|w| < max(n, 2) ** k``.
#: The paper requires words polynomially bounded in ``n``; exponent 12 covers
#: every quantity we ever encode: packed (source, dest, seq) headers are
#: < 8n^3, tagged sort keys are < n^5, and a packed *pair* of tagged keys
#: (Algorithm 4 Step 6, "bundling up to two keys in each message") is
#: < n^10.
POLY_BOUND_EXPONENT = 12


@dataclass(frozen=True)
class Packet:
    """An immutable message: a tuple of integer words.

    Attributes:
        words: the payload words, most-significant semantics first.  The
            interpretation of the words is entirely up to the protocol; the
            simulator only audits count and magnitude.
    """

    words: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.words, tuple):
            object.__setattr__(self, "words", tuple(self.words))

    def __len__(self) -> int:
        return len(self.words)

    def __iter__(self) -> Iterator[int]:
        return iter(self.words)

    def __getitem__(self, idx: Union[int, slice]) -> Union[int, Tuple[int, ...]]:
        return self.words[idx]


def packet(*words: int) -> Packet:
    """Build a packet from the given words."""
    return Packet(tuple(int(w) for w in words))


def validate_packet(pkt: Packet, n: int, capacity: int) -> None:
    """Audit one packet against the model constraints.

    Raises:
        CapacityExceeded: if the packet has more than ``capacity`` words.
        WordSizeViolation: if any word is not an int within the polynomial
            magnitude bound.
    """
    if len(pkt.words) > capacity:
        raise CapacityExceeded(
            f"packet with {len(pkt.words)} words exceeds capacity {capacity}"
        )
    bound = max(n, 2) ** POLY_BOUND_EXPONENT
    for w in pkt.words:
        if not isinstance(w, int) or isinstance(w, bool):
            raise WordSizeViolation(f"non-integer word {w!r} in packet")
        if not -bound < w < bound:
            raise WordSizeViolation(
                f"word {w} outside polynomial bound +-{max(n, 2)}^"
                f"{POLY_BOUND_EXPONENT} for n={n}"
            )


def bundle(values: Sequence[int], per_packet: int) -> List[Packet]:
    """Split a flat list of words into packets of ``per_packet`` words each.

    Used for the paper's "bundling a constant number of keys in each message"
    arguments (e.g. Lemma 4.4: four keys per message in Step 6).
    """
    if per_packet < 1:
        raise ValueError("per_packet must be >= 1")
    return [
        Packet(tuple(values[i : i + per_packet]))
        for i in range(0, len(values), per_packet)
    ]


def unbundle(packets: Iterable[Packet]) -> List[int]:
    """Concatenate packet payloads back into a flat word list."""
    out: List[int] = []
    for pkt in packets:
        out.extend(pkt.words)
    return out


def pack_pair(a: int, b: int, base: int) -> int:
    """Encode two non-negative ints ``< base`` into one word."""
    if not (0 <= a < base and 0 <= b < base):
        raise ValueError(f"pack_pair operands out of range [0, {base})")
    return a * base + b

def unpack_pair(word: int, base: int) -> Tuple[int, int]:
    """Inverse of :func:`pack_pair`."""
    return divmod(word, base)


def pack_triple(a: int, b: int, c: int, base: int) -> int:
    """Encode three non-negative ints ``< base`` into one word.

    With ``base = n`` the result is ``< n^3``, within the polynomial bound.
    Used to tag messages with (source, destination, sequence) as Problem 3.1
    requires ("each such message explicitly contains these values").
    """
    if not (0 <= a < base and 0 <= b < base and 0 <= c < base):
        raise ValueError(f"pack_triple operands out of range [0, {base})")
    return (a * base + b) * base + c


def unpack_triple(word: int, base: int) -> Tuple[int, int, int]:
    """Inverse of :func:`pack_triple`."""
    ab, c = divmod(word, base)
    a, b = divmod(ab, base)
    return a, b, c
