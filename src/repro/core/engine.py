"""Pluggable execution engines for the congested-clique simulator.

The simulator separates *what* is executed (a per-node protocol generator,
see :mod:`repro.core.network`) from *how* the round loop is driven.  An
:class:`ExecutionEngine` owns the loop; :class:`~repro.core.network.
CongestedClique` is the configuration facade that picks one.

Two engines ship with the package:

* :class:`ReferenceEngine` — the fully-audited loop.  Every packet is
  validated against the model bounds on every round, every node is visited
  every round, and traffic statistics are recorded packet by packet.  This
  is the "simulator as proof checker" mode used by the correctness suite.
* :class:`FastEngine` — the throughput loop.  It keeps a *live set* so
  finished or idle nodes cost nothing, builds mailboxes lazily only for
  nodes that actually receive traffic, batches per-round statistics into
  flat counters, caches the word-magnitude bound, and audits packets on a
  sampled stride (or not at all).  Outputs, round counts, and aggregate
  statistics are identical to the reference engine for any well-behaved
  protocol — the engine-equivalence suite enforces this — but a protocol
  that *violates* the model may slip through a sampled audit.

Select an engine by name (``"reference"``, ``"fast"``, ``"fast-audit"``,
``"fast-unchecked"``), by instance (for custom tuning), or register your
own with :func:`register_engine`::

    from repro import CongestedClique
    from repro.core.engine import FastEngine

    CongestedClique(n, engine="fast").run(program)            # by name
    CongestedClique(n, engine=FastEngine(validation="full"))  # by instance
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple, Union

from .context import NodeContext, SharedCache
from .errors import ModelViolation, ProtocolError
from .message import Packet
from .wire import WireBatch, validate_words, word_bound
from .metrics import (
    MeterReport,
    OperationMeter,
    PhaseSpan,
    RoundStats,
    RunStats,
    collect_meters,
)

#: Request lifecycle values carried in :attr:`RunSummary.status`.  The
#: taxonomy is owned here — beside the envelopes — because every layer
#: (batch service, streaming gateway, recording, chaos harness) must agree
#: on what each value means:
#:
#: * ``STATUS_COMPLETED`` — the run executed to the end and was judged;
#:   ``ok`` carries the verdict (a verification/bounds failure is still a
#:   *completed* run).
#: * ``STATUS_FAILED`` — the run never produced a judged result: the engine
#:   crashed, the request could not be resolved, or the executor/pool died
#:   underneath it.  Failed runs carry no output digest and must never be
#:   folded into success latency percentiles or cross-backend digests.
#: * ``STATUS_REJECTED`` — backpressure shed the request before it entered
#:   the queue (streaming gateway only).
#: * ``STATUS_CANCELLED`` — a deadline expired in the queue or mid-run, or
#:   the gateway closed before the request could execute.
STATUS_COMPLETED = "completed"
STATUS_FAILED = "failed"
STATUS_REJECTED = "rejected"
STATUS_CANCELLED = "cancelled"

#: A per-node protocol: yields outboxes, receives inboxes, returns its output.
NodeGen = Generator[Dict[int, Packet], Dict[int, Packet], Any]

#: Factory building the protocol generator for one node.
ProgramFactory = Callable[[NodeContext], NodeGen]


@dataclass
class RunResult:
    """Outcome of one simulated protocol execution."""

    outputs: List[Any]
    stats: RunStats
    meters: Optional[MeterReport] = None
    shared_cache_hits: int = 0
    shared_cache_misses: int = 0
    #: name of the engine that produced this result.
    engine: str = "reference"

    @property
    def rounds(self) -> int:
        return self.stats.rounds

    def phase_table(self) -> Dict[str, int]:
        return self.stats.phase_table()


@dataclass(frozen=True)
class RunRequest:
    """Picklable description of one execution in a batched workload.

    This is the wire envelope of the batch-execution service
    (:mod:`repro.service`): a *coordinate*, not live objects, so it crosses
    process boundaries and can be replayed deterministically.  The scenario
    layer resolves ``(kind, family, n, seed)`` to a concrete workload and
    ``algorithm``/``engine`` to registered implementations.  ``None`` means
    "the kind's default algorithm" / "the simulator's default engine" (the
    fully-audited reference engine, as for ``get_engine(None)``) — note
    the batch service stamps its own engine default onto unset requests
    before execution.
    """

    kind: str
    family: str
    n: int
    seed: int = 0
    algorithm: Optional[str] = None
    #: engine *name* (registry key) — instances are not picklable.
    engine: Optional[str] = None
    #: free-form correlation id echoed back on the summary.
    tag: str = ""
    #: per-request latency budget in milliseconds, measured from submission
    #: to the streaming gateway.  ``None`` defers to the gateway's default
    #: (which may also be ``None`` — no deadline).  The batch service
    #: ignores deadlines: a batch is judged on completion, not latency.
    deadline_ms: Optional[float] = None

    @property
    def name(self) -> str:
        algo = self.algorithm or "default"
        return (
            f"{self.kind}/{self.family}[n={self.n},seed={self.seed}]"
            f"@{algo}"
        )


@dataclass
class RunSummary:
    """Picklable digest of one :class:`RunResult`, judged and timed.

    What the batch service streams back instead of the full result: outputs
    are collapsed to a canonical digest (full per-node outputs of a large
    batch would dwarf the traffic they summarize), statistics are flattened
    to scalars, and verification/bound failures are carried as ``error``.
    """

    request: RunRequest
    ok: bool
    engine: str = ""
    rounds: int = 0
    total_packets: int = 0
    total_words: int = 0
    max_edge_words: int = 0
    digest: str = ""
    wall_s: float = 0.0
    shared_cache_hits: int = 0
    shared_cache_misses: int = 0
    error: str = ""
    #: lifecycle: one of the ``STATUS_*`` values above.  Every execution
    #: path stamps it — :data:`STATUS_COMPLETED` for runs that executed to
    #: a judged end, :data:`STATUS_FAILED` for runs that never produced a
    #: result — so crashed runs are never mistaken for completions.
    status: str = ""

    @property
    def resolved(self) -> bool:
        """The run executed to a judged end (its digest is meaningful)."""
        return bool(self.digest)
    #: seconds spent waiting in the gateway queue before execution began.
    queue_s: float = 0.0
    #: submission-to-resolution seconds (queue wait + execution) as seen
    #: by the gateway — the latency the histograms record.
    latency_s: float = 0.0


_new_request = RunRequest.__new__
_new_summary = RunSummary.__new__
_set_attr = object.__setattr__


def fast_request(
    kind: str,
    family: str,
    n: int,
    seed: int,
    algorithm: Optional[str],
    engine: Optional[str],
    tag: str,
    deadline_ms: Optional[float],
) -> RunRequest:
    """Build a :class:`RunRequest` without dataclass ``__init__`` overhead.

    The envelope decoder (:mod:`repro.service.transport`) materializes
    thousands of requests per batch; this skips argument re-binding and —
    because ``RunRequest`` is frozen — the per-field ``__setattr__`` guard
    by installing the instance ``__dict__`` wholesale.  All eight fields
    are required: the decoder always has full columns.
    """
    r = _new_request(RunRequest)
    _set_attr(r, "__dict__", {
        "kind": kind, "family": family, "n": n, "seed": seed,
        "algorithm": algorithm, "engine": engine, "tag": tag,
        "deadline_ms": deadline_ms,
    })
    return r


def fast_summary(
    request: RunRequest,
    engine: str,
    digest: str,
    error: str,
    status: str,
    ok: int,
    rounds: int,
    total_packets: int,
    total_words: int,
    max_edge_words: int,
    shared_cache_hits: int,
    shared_cache_misses: int,
    wall_s: float,
    queue_s: float,
    latency_s: float,
) -> RunSummary:
    """Build a :class:`RunSummary` without dataclass ``__init__`` overhead.

    Companion of :func:`fast_request` for the result direction; ``ok``
    accepts the wire's byte column (any truthy int) and is normalized to
    ``bool``.
    """
    s = _new_summary(RunSummary)
    s.__dict__ = {
        "request": request, "ok": bool(ok), "engine": engine,
        "rounds": rounds, "total_packets": total_packets,
        "total_words": total_words, "max_edge_words": max_edge_words,
        "digest": digest, "wall_s": wall_s,
        "shared_cache_hits": shared_cache_hits,
        "shared_cache_misses": shared_cache_misses, "error": error,
        "status": status, "queue_s": queue_s, "latency_s": latency_s,
    }
    return s


def coerce_outbox(raw: Any, src: int, n: int) -> Dict[int, Packet]:
    """Normalize a yielded outbox and check addressing."""
    if raw is None:
        return {}
    if not isinstance(raw, dict):
        raise ModelViolation(
            f"node {src} yielded {type(raw).__name__}, expected dict"
        )
    outbox: Dict[int, Packet] = {}
    for dst, pkt in raw.items():
        # Exact-type fast path first; isinstance fallback keeps int/Packet
        # subclasses (and bool destinations, which are ints) accepted as
        # before.
        if not (
            (dst.__class__ is int or isinstance(dst, int)) and 0 <= dst < n
        ):
            raise ModelViolation(
                f"node {src} addressed invalid destination {dst!r}"
            )
        if pkt.__class__ is Packet:
            outbox[dst] = pkt
            continue
        if isinstance(pkt, tuple):
            pkt = Packet(pkt)
        if not isinstance(pkt, Packet):
            raise ModelViolation(
                f"node {src} sent non-packet {pkt!r} to {dst}"
            )
        outbox[dst] = pkt
    return outbox


class _RunState:
    """Per-run scaffolding shared by every engine.

    Builds the shared cache, per-node meters, statistics, phase plumbing and
    node contexts, primes the generators (the first yielded value is the
    round-1 outbox) and assembles the final :class:`RunResult`.
    """

    def __init__(self, net: Any) -> None:
        n = net.n
        self.n = n
        self.shared = SharedCache(verify_mode=net.verify_shared)
        self.meters: List[Optional[OperationMeter]] = [
            OperationMeter() if net.meter else None for _ in range(n)
        ]
        self.stats = RunStats(n=n)
        self.current_phase: List[Optional[PhaseSpan]] = [None]

        stats = self.stats
        current_phase = self.current_phase

        def phase_sink(name: str) -> None:
            span = current_phase[0]
            if span is not None and span.name == name:
                return
            new_span = PhaseSpan(name=name, start_round=stats.rounds)
            stats.phase_rounds.append(new_span)
            current_phase[0] = new_span

        self.contexts = [
            NodeContext(
                node_id=i,
                n=n,
                capacity=net.capacity,
                shared=self.shared,
                meter=self.meters[i],
                phase_sink=phase_sink,
            )
            for i in range(n)
        ]

    def prime(
        self,
        program_factory: ProgramFactory,
        coerce: Callable[[Any, int, int], Dict[int, Packet]],
    ) -> Tuple[
        List[Optional[NodeGen]],
        List[Any],
        List[bool],
        List[Dict[int, Packet]],
    ]:
        """Instantiate and prime every generator.

        Returns ``(gens, outputs, done, pending)`` where ``pending[i]`` is
        node ``i``'s round-1 outbox (``{}`` for nodes that returned without
        yielding).
        """
        n = self.n
        gens: List[Optional[NodeGen]] = [
            program_factory(ctx) for ctx in self.contexts
        ]
        outputs: List[Any] = [None] * n
        done = [False] * n
        pending: List[Dict[int, Packet]] = [{} for _ in range(n)]
        for i in range(n):
            try:
                pending[i] = coerce(next(gens[i]), i, n)
            except StopIteration as stop:
                outputs[i] = stop.value
                done[i] = True
                gens[i] = None
                pending[i] = {}
        return gens, outputs, done, pending

    def finish(self, outputs: List[Any], net: Any, engine: str) -> RunResult:
        meter_report = collect_meters(self.meters) if net.meter else None
        return RunResult(
            outputs=outputs,
            stats=self.stats,
            meters=meter_report,
            shared_cache_hits=self.shared.hits,
            shared_cache_misses=self.shared.misses,
            engine=engine,
        )


class ExecutionEngine:
    """Abstract round-loop driver.  Subclasses implement :meth:`execute`."""

    #: registry name; also stamped on the :class:`RunResult`.
    name: str = "abstract"

    def execute(self, net: Any, program_factory: ProgramFactory) -> RunResult:
        """Run ``program_factory`` on all ``net.n`` nodes until completion."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} name={self.name!r}>"


class ReferenceEngine(ExecutionEngine):
    """The fully-audited loop (the original ``CongestedClique.run``).

    Audits the model constraints the paper assumes (Section 2) on every
    packet of every round: at most ``capacity`` words per packet, every word
    polynomially bounded in ``n``, and no packet delivered to a node that
    already terminated.  Use this engine whenever the simulator doubles as a
    proof checker; use :class:`FastEngine` for large-scale sweeps.
    """

    name = "reference"

    def execute(self, net: Any, program_factory: ProgramFactory) -> RunResult:
        n = net.n
        state = _RunState(net)
        stats = state.stats
        current_phase = state.current_phase
        gens, outputs, done, pending_outbox = state.prime(
            program_factory, coerce_outbox
        )
        batch = WireBatch()

        while not all(done):
            if stats.rounds >= net.max_rounds:
                raise ProtocolError(
                    f"protocol exceeded max_rounds={net.max_rounds}"
                )
            round_stats = stats.begin_round(stats.rounds)
            if current_phase[0] is not None:
                current_phase[0].rounds += 1

            # Collect this round's traffic into the columnar wire batch.
            # Per-edge uniqueness is structural: each source's outbox is
            # keyed by destination, so one packet per ordered pair per round
            # is guaranteed here (concurrent activities merge through
            # :func:`repro.core.protocol.merge_outboxes`, which raises
            # ``EdgeConflict`` on overlap).  Collection order — ascending
            # source, outbox insertion order — is the audit and delivery
            # order.
            batch.clear()
            for src in range(n):
                outbox = pending_outbox[src]
                if outbox:
                    batch.add_outbox(src, outbox)
            if net.validate:
                batch.validate(n, net.capacity)
            inboxes: List[Dict[int, Packet]] = [{} for _ in range(n)]
            packets, words, max_edge = batch.deliver(inboxes)
            round_stats.packets = packets
            round_stats.words = words
            round_stats.max_words_on_edge = max_edge
            any_traffic = packets > 0
            stats.commit_round(round_stats)

            # Deliver inboxes; collect next outboxes.
            for i in range(n):
                gen = gens[i]
                if gen is None:
                    if inboxes[i]:
                        raise ProtocolError(
                            f"packet delivered to finished node {i} in round "
                            f"{stats.rounds - 1}"
                        )
                    continue
                try:
                    pending_outbox[i] = coerce_outbox(
                        gen.send(inboxes[i]), i, n
                    )
                except StopIteration as stop:
                    outputs[i] = stop.value
                    done[i] = True
                    gens[i] = None
                    pending_outbox[i] = {}

            if not any_traffic and all(done):
                break

        return state.finish(outputs, net, self.name)


class FastEngine(ExecutionEngine):
    """Throughput-oriented loop: live-set, lazy mailboxes, sampled audits.

    Args:
        validation: ``"sampled"`` (default) audits every ``sample_stride``-th
            packet, ``"full"`` audits every packet, ``"off"`` skips the audit
            entirely.  ``CongestedClique(validate=False)`` forces ``"off"``.
        sample_stride: stride between audited packets in ``"sampled"`` mode.

    For well-behaved protocols the outputs, round counts, phase tables and
    aggregate traffic statistics are identical to :class:`ReferenceEngine`:
    generators are stepped in the same ascending node order, so inbox
    insertion order, shared-cache hit patterns and meter charges all match.
    The differences are purely in overhead:

    * nodes that finished are dropped from the live list instead of being
      re-inspected every round;
    * inbox dicts exist only for nodes that receive traffic this round;
    * traffic statistics accumulate in local counters and are committed once
      per round;
    * the polynomial word bound ``max(n, 2)**k`` is computed once per run
      instead of once per packet, and the audit runs on a sampled stride.

    Addressing errors (non-int or out-of-range destinations, packets to
    finished nodes) are always checked exactly, on every packet, in every
    validation mode.  Packet-level audits (type, capacity, word magnitude)
    follow the validation mode: ``"full"`` matches the reference audit
    packet-for-packet, ``"sampled"`` checks every ``sample_stride``-th
    packet, ``"off"`` trusts the protocol.
    """

    name = "fast"

    def __init__(
        self, validation: str = "sampled", sample_stride: int = 64
    ) -> None:
        if validation not in ("off", "sampled", "full"):
            raise ValueError(
                f"validation must be 'off', 'sampled' or 'full', "
                f"got {validation!r}"
            )
        self.validation = validation
        self.sample_stride = max(1, int(sample_stride))

    def execute(self, net: Any, program_factory: ProgramFactory) -> RunResult:
        n = net.n
        state = _RunState(net)
        stats = state.stats
        current_phase = state.current_phase
        gens, outputs, done, pending = state.prime(
            program_factory, self._coerce_fast
        )
        live = [i for i in range(n) if not done[i]]
        live_set = set(live)

        capacity = net.capacity
        max_rounds = net.max_rounds
        validation = self.validation if net.validate else "off"
        audit_all = validation == "full"
        audit_some = validation == "sampled"
        stride = self.sample_stride
        bound = word_bound(n)
        per_round = stats.per_round
        seen = 0  # packets inspected so far, drives the sampling stride
        audit_words = validate_words

        while live:
            rounds = stats.rounds
            if rounds >= max_rounds:
                raise ProtocolError(
                    f"protocol exceeded max_rounds={max_rounds}"
                )
            span = current_phase[0]
            if span is not None:
                span.rounds += 1

            # One fused pass over the wire representation: flat payload
            # tuples bucketed into lazily-created mailboxes (delivery moves
            # references, never copies), with the hoisted-bound audit run
            # inline on selected packets.  Destination typing is checked
            # exactly per packet: a float like 1.0 hashes equal to a live
            # node id, so set membership alone would silently deliver it.
            packets = 0
            words = 0
            max_edge = 0
            inboxes: Dict[int, Dict[int, Packet]] = {}
            for src in live:
                outbox = pending[src]
                if not outbox:
                    continue
                for dst, pkt in outbox.items():
                    if dst.__class__ is not int and not isinstance(dst, int):
                        raise ModelViolation(
                            f"node {src} addressed invalid destination "
                            f"{dst!r}"
                        )
                    try:
                        payload = pkt.words
                    except AttributeError:
                        pkt = self._coerce_packet(pkt, src, dst)
                        payload = pkt.words
                    if audit_all or (audit_some and seen % stride == 0):
                        if (
                            pkt.__class__ is not Packet
                            and not isinstance(pkt, Packet)
                        ):
                            raise ModelViolation(
                                f"node {src} sent non-packet {pkt!r} to "
                                f"{dst}"
                            )
                        audit_words(pkt, payload, n, capacity, bound)
                    seen += 1
                    box = inboxes.get(dst)
                    if box is None:
                        if dst not in live_set:
                            self._bad_destination(src, dst, n, rounds)
                        box = inboxes[dst] = {}
                    box[src] = pkt
                    n_words = len(payload)
                    packets += 1
                    words += n_words
                    if n_words > max_edge:
                        max_edge = n_words

            per_round.append(RoundStats(rounds, packets, words, max_edge))
            stats.rounds = rounds + 1
            stats.total_packets += packets
            stats.total_words += words

            # Deliver inboxes; collect next outboxes.  Ascending order over
            # the live list mirrors the reference engine's 0..n-1 sweep.
            any_finished = False
            coerce = self._coerce_fast
            for i in live:
                try:
                    raw = gens[i].send(inboxes.get(i) or {})
                except StopIteration as stop:
                    outputs[i] = stop.value
                    gens[i] = None
                    pending[i] = _EMPTY_OUTBOX
                    any_finished = True
                else:
                    # The copy in coerce() (snapshot-at-yield) is load-bearing:
                    # see _coerce_fast.
                    pending[i] = coerce(raw, i, n)
            if any_finished:
                live = [i for i in live if gens[i] is not None]
                live_set = set(live)

        return state.finish(outputs, net, self.name)

    @staticmethod
    def _coerce_fast(raw: Any, src: int, n: int) -> Dict[int, Packet]:
        """Trusting outbox coercion: dicts are shallow-copied, not validated.

        The traffic loop re-checks destinations exactly on every packet and
        audits packet values per the validation mode, so the per-yield cost
        here is one ``type`` check plus a C-level ``dict`` copy.  The copy is
        what pins down the yield-time snapshot semantics of the reference
        engine: a protocol that mutates or reuses its outbox dict after
        ``yield`` (or shares one dict object across nodes) must not be able
        to retroactively change what was sent.
        """
        if type(raw) is dict:
            return dict(raw)
        return coerce_outbox(raw, src, n)

    @staticmethod
    def _coerce_packet(pkt: Any, src: int, dst: Any) -> Packet:
        if isinstance(pkt, tuple):
            return Packet(pkt)
        raise ModelViolation(f"node {src} sent non-packet {pkt!r} to {dst}")

    @staticmethod
    def _bad_destination(src: int, dst: Any, n: int, rounds: int) -> None:
        if isinstance(dst, int) and 0 <= dst < n:
            raise ProtocolError(
                f"packet delivered to finished node {dst} in round {rounds}"
            )
        raise ModelViolation(
            f"node {src} addressed invalid destination {dst!r}"
        )


#: Shared immutable placeholder for the pending outbox of a finished node.
_EMPTY_OUTBOX: Dict[int, Packet] = {}

#: Accepted engine selectors: ``None`` (default), a registry name, or an
#: engine instance.
EngineSpec = Union[None, str, ExecutionEngine]

_REGISTRY: Dict[str, Callable[[], ExecutionEngine]] = {}


def register_engine(name: str, factory: Callable[[], ExecutionEngine]) -> None:
    """Register an engine factory under ``name`` for string lookup."""
    _REGISTRY[name] = factory


def available_engines() -> List[str]:
    """Names accepted by :func:`get_engine` (and ``engine=`` parameters)."""
    return sorted(_REGISTRY)


def get_engine(spec: EngineSpec) -> ExecutionEngine:
    """Resolve an engine selector to an engine instance.

    ``None`` resolves to the fully-audited :class:`ReferenceEngine`; engine
    instances pass through; strings are looked up in the registry.
    """
    if spec is None:
        return ReferenceEngine()
    if isinstance(spec, ExecutionEngine):
        return spec
    if isinstance(spec, str):
        try:
            return _REGISTRY[spec]()
        except KeyError:
            raise ValueError(
                f"unknown engine {spec!r}; available: "
                f"{', '.join(available_engines())}"
            ) from None
    raise TypeError(f"engine must be None, a name, or an ExecutionEngine; "
                    f"got {type(spec).__name__}")


register_engine("reference", ReferenceEngine)
register_engine("fast", FastEngine)
register_engine("fast-audit", lambda: FastEngine(validation="full"))
register_engine("fast-unchecked", lambda: FastEngine(validation="off"))
