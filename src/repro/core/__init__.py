"""Core congested-clique simulation substrate.

Public surface:

* :class:`CongestedClique` / :func:`run_protocol` — the simulator facade.
* :class:`ExecutionEngine` and the :func:`get_engine` registry — pluggable
  round-loop drivers (:class:`ReferenceEngine`, :class:`FastEngine`).
* :class:`Packet` and packing helpers — the message model.
* The columnar wire data plane in :mod:`repro.core.wire` —
  :class:`WireBatch`, :func:`fast_packet`, :class:`HeaderCodec`.
* :class:`NodeContext` — the per-node execution environment.
* :class:`PlanCache` / :func:`plan_cache` — the process-wide memoizer for
  structural plans (colorings, partitions, header codecs).
* :class:`GroupPartition` / :class:`OverlayDecomposition` — the paper's
  node-set partitions.
* Piggyback and outbox-composition helpers in :mod:`repro.core.protocol`.
"""

from .context import NodeContext, PlanCache, SharedCache, plan_cache, planned
from .engine import (
    ExecutionEngine,
    FastEngine,
    ReferenceEngine,
    RunRequest,
    RunSummary,
    available_engines,
    fast_request,
    fast_summary,
    get_engine,
    register_engine,
)
from .errors import (
    CapacityExceeded,
    ColoringError,
    EdgeConflict,
    InvalidInstance,
    ModelViolation,
    ProtocolError,
    ReproError,
    VerificationError,
    WordSizeViolation,
)
from .message import (
    DEFAULT_CAPACITY,
    Packet,
    bundle,
    pack_pair,
    pack_triple,
    packet,
    unbundle,
    unpack_pair,
    unpack_triple,
    validate_packet,
)
from .metrics import LatencyHistogram, MeterReport, OperationMeter, RunStats
from .network import CongestedClique, NodeGen, RunResult, run_protocol
from .protocol import (
    attach_piggyback,
    idle,
    merge_outboxes,
    single_round,
    strip_piggyback,
)
from .wire import (
    HeaderCodec,
    WireBatch,
    decode_columns,
    encode_outbox,
    fast_packet,
    header_codec,
    regroup_segments,
    validate_columns,
    validate_words,
    word_bound,
)
from .topology import (
    GroupPartition,
    OverlayDecomposition,
    contiguous_ranges,
    is_perfect_square,
    isqrt_exact,
    split_evenly,
    square_partition,
)

__all__ = [
    "CongestedClique",
    "NodeGen",
    "RunResult",
    "RunRequest",
    "RunSummary",
    "fast_request",
    "fast_summary",
    "run_protocol",
    "ExecutionEngine",
    "ReferenceEngine",
    "FastEngine",
    "get_engine",
    "register_engine",
    "available_engines",
    "NodeContext",
    "SharedCache",
    "PlanCache",
    "plan_cache",
    "planned",
    "WireBatch",
    "HeaderCodec",
    "header_codec",
    "fast_packet",
    "encode_outbox",
    "decode_columns",
    "validate_columns",
    "validate_words",
    "word_bound",
    "regroup_segments",
    "Packet",
    "packet",
    "bundle",
    "unbundle",
    "pack_pair",
    "unpack_pair",
    "pack_triple",
    "unpack_triple",
    "validate_packet",
    "DEFAULT_CAPACITY",
    "LatencyHistogram",
    "MeterReport",
    "OperationMeter",
    "RunStats",
    "GroupPartition",
    "OverlayDecomposition",
    "square_partition",
    "isqrt_exact",
    "is_perfect_square",
    "split_evenly",
    "contiguous_ranges",
    "attach_piggyback",
    "strip_piggyback",
    "merge_outboxes",
    "idle",
    "single_round",
    "ReproError",
    "ModelViolation",
    "CapacityExceeded",
    "EdgeConflict",
    "WordSizeViolation",
    "InvalidInstance",
    "ProtocolError",
    "ColoringError",
    "VerificationError",
]
