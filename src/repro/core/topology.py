"""Node-set partitioning used throughout the paper's algorithms.

Algorithm 1 partitions ``V = {0..n-1}`` into ``sqrt(n)`` consecutive groups
of ``sqrt(n)`` nodes each (the sets the paper calls ``W`` and ``W'``).
Theorem 3.7 handles non-square ``n`` via the overlay sets ``V1``, ``V2``,
``V3``.  This module centralizes those index calculations so every algorithm
and test uses identical group arithmetic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple


def isqrt_exact(n: int) -> int:
    """Return ``sqrt(n)`` if ``n`` is a perfect square, else raise."""
    r = math.isqrt(n)
    if r * r != n:
        raise ValueError(f"n={n} is not a perfect square")
    return r


def is_perfect_square(n: int) -> bool:
    r = math.isqrt(n)
    return r * r == n


@dataclass(frozen=True)
class GroupPartition:
    """Partition of ``{0..n-1}`` into ``num_groups`` consecutive groups.

    For square ``n`` the paper's layout is ``num_groups = group_size =
    sqrt(n)``; group ``g`` holds nodes ``g*s .. (g+1)*s - 1``.
    """

    n: int
    group_size: int

    def __post_init__(self) -> None:
        if self.n % self.group_size != 0:
            raise ValueError(
                f"group_size {self.group_size} does not divide n={self.n}"
            )

    @property
    def num_groups(self) -> int:
        return self.n // self.group_size

    def group_of(self, node: int) -> int:
        """Index of the group containing ``node``."""
        if not 0 <= node < self.n:
            raise ValueError(f"node {node} out of range for n={self.n}")
        return node // self.group_size

    def rank_in_group(self, node: int) -> int:
        """Position of ``node`` within its group (0-based)."""
        if not 0 <= node < self.n:
            raise ValueError(f"node {node} out of range for n={self.n}")
        return node % self.group_size

    def members(self, group: int) -> range:
        """Nodes of group ``group`` in increasing id order."""
        if not 0 <= group < self.num_groups:
            raise ValueError(
                f"group {group} out of range (num_groups={self.num_groups})"
            )
        start = group * self.group_size
        return range(start, start + self.group_size)

    def member(self, group: int, rank: int) -> int:
        """The ``rank``-th node of group ``group``."""
        if not 0 <= rank < self.group_size:
            raise ValueError(f"rank {rank} out of range")
        return group * self.group_size + rank

    def groups(self) -> range:
        return range(self.num_groups)


def square_partition(n: int) -> GroupPartition:
    """The paper's canonical partition for square ``n``: sqrt(n) groups."""
    r = isqrt_exact(n)
    return GroupPartition(n=n, group_size=r)


def square_groups(n: int) -> Tuple[Tuple[int, ...], ...]:
    """Materialized member tuples of :func:`square_partition`, plan-cached.

    Every program factory needs the same ``sqrt(n)`` tuples of member ids;
    they are a pure function of ``n`` and recur across runs, so they live in
    the process-wide :class:`~repro.core.context.PlanCache`.  The returned
    structure is shared — treat it as immutable.
    """
    from .context import planned

    def build() -> Tuple[Tuple[int, ...], ...]:
        part = square_partition(n)
        return tuple(tuple(part.members(g)) for g in part.groups())

    return planned(("square_groups", n), build)


@dataclass(frozen=True)
class OverlayDecomposition:
    """Theorem 3.7's decomposition for non-square ``n``.

    ``V1 = {0 .. m-1}`` and ``V2 = {n-m .. n-1}`` with ``m = floor(sqrt(n))^2``
    are two (overlapping) perfect-square windows covering all of ``V``.
    ``V3`` is the union of the non-overlap parts: traffic between the low
    fringe ``V1 \\ V2`` and the high fringe ``V2 \\ V1`` cannot be handled
    inside either window and takes the paper's dedicated 6-round detour.
    """

    n: int

    @property
    def m(self) -> int:
        """Size of each square window: ``floor(sqrt(n))**2``."""
        r = math.isqrt(self.n)
        return r * r

    @property
    def v1(self) -> range:
        return range(0, self.m)

    @property
    def v2(self) -> range:
        return range(self.n - self.m, self.n)

    @property
    def low_fringe(self) -> range:
        """``V1 \\ V2`` — nodes only reachable inside window 1."""
        return range(0, self.n - self.m)

    @property
    def high_fringe(self) -> range:
        """``V2 \\ V1`` — nodes only reachable inside window 2."""
        return range(self.m, self.n)

    @property
    def core(self) -> range:
        """``V1 ∩ V2`` — nodes present in both windows."""
        return range(self.n - self.m, self.m)

    def classify_pair(self, src: int, dst: int) -> str:
        """Which sub-instance handles a (src, dst) message.

        Returns ``"v1"`` or ``"v2"`` when both endpoints fit a window (core
        pairs are canonically assigned to ``"v1"``), else ``"cross"`` for the
        fringe-to-fringe traffic routed by the 6-round detour.
        """
        in_v1 = src < self.m and dst < self.m
        in_v2 = src >= self.n - self.m and dst >= self.n - self.m
        if in_v1:
            return "v1"
        if in_v2:
            return "v2"
        return "cross"


def split_evenly(total: int, parts: int) -> List[int]:
    """Sizes of ``parts`` near-equal shares of ``total`` (larger shares first).

    Used whenever the paper distributes a bucket of keys across the members
    of a group "such that each node receives either floor or ceil" (Algorithm
    4 Step 6).
    """
    if parts < 1:
        raise ValueError("parts must be >= 1")
    base, extra = divmod(total, parts)
    return [base + (1 if i < extra else 0) for i in range(parts)]


def contiguous_ranges(sizes: List[int]) -> List[Tuple[int, int]]:
    """Half-open ``(start, end)`` ranges for consecutive blocks of ``sizes``."""
    out: List[Tuple[int, int]] = []
    pos = 0
    for s in sizes:
        out.append((pos, pos + s))
        pos += s
    return out
